"""Tests for the ASCII schedule renderer."""

import pytest

from repro.analysis.timeline import IDLE_GLYPH, SETUP_GLYPH, render_timeline
from repro.core.coflow import Coflow
from repro.core.sunflow import SunflowScheduler
from repro.core.prt import Reservation
from repro.units import GBPS, MB


def reservation(src, dst, start, end, setup=0.0):
    return Reservation(start=start, end=end, src=src, dst=dst, coflow_id=1, setup=setup)


class TestRenderTimeline:
    def test_empty_input(self):
        assert render_timeline([]) == ""

    def test_one_row_per_input_port(self):
        text = render_timeline(
            [reservation(0, 1, 0.0, 1.0), reservation(2, 3, 0.0, 1.0)], width=20
        )
        lines = text.splitlines()
        assert lines[0].startswith("in.0")
        assert lines[1].startswith("in.2")

    def test_setup_and_transmit_glyphs(self):
        text = render_timeline([reservation(0, 7, 0.0, 1.0, setup=0.5)], width=10)
        row = text.splitlines()[0]
        assert SETUP_GLYPH in row
        assert "7" in row
        # Setup comes before transmission.
        assert row.index(SETUP_GLYPH) < row.index("7")

    def test_idle_time_rendered(self):
        text = render_timeline(
            [reservation(0, 1, 0.0, 0.2), reservation(0, 2, 0.8, 1.0)], width=20
        )
        assert IDLE_GLYPH in text.splitlines()[0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            render_timeline([reservation(0, 1, 0.0, 1.0)], start=2.0, end=2.0)

    def test_renders_a_real_schedule(self, figure1_coflow):
        schedule = SunflowScheduler(delta=0.01).schedule_coflow(
            figure1_coflow, 1 * GBPS, start_time=0.0
        )
        text = render_timeline(schedule.reservations, width=60)
        # Every sender port appears as a row.
        for port in figure1_coflow.senders:
            assert f"in.{port}" in text
        # The axis line carries the window boundaries.
        assert "0.000" in text
