"""Tests for CSV export of simulation results."""

import csv
import io

import pytest

from repro.analysis.export import (
    records_csv_text,
    write_cdf_csv,
    write_records_csv,
    write_sweep_csv,
)
from repro.core.coflow import Coflow, CoflowTrace
from repro.sim import simulate_intra_sunflow
from repro.units import GBPS, MB, MS


@pytest.fixture
def report():
    trace = CoflowTrace(
        num_ports=6,
        coflows=[
            Coflow.from_demand(1, {(0, 1): 10 * MB}),
            Coflow.from_demand(2, {(0, 1): 5 * MB, (2, 3): 7 * MB}),
        ],
    )
    return simulate_intra_sunflow(trace, 1 * GBPS, 10 * MS)


class TestRecordsCsv:
    def test_one_row_per_record(self, report):
        buffer = io.StringIO()
        count = write_records_csv(report, buffer)
        assert count == 2
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert len(rows) == 2
        assert rows[0]["scheduler"] == "sunflow"
        assert rows[0]["coflow_id"] == "1"
        assert float(rows[0]["cct"]) > 0

    def test_ratios_round_trip(self, report):
        rows = list(csv.DictReader(io.StringIO(records_csv_text(report))))
        for row, record in zip(rows, report.records):
            assert float(row["cct_over_circuit_lower"]) == pytest.approx(
                record.cct_over_circuit_lower
            )
            assert row["category"] == record.category.value

    def test_writes_to_file(self, report, tmp_path):
        path = tmp_path / "records.csv"
        write_records_csv(report, path)
        content = path.read_text()
        assert content.startswith("scheduler,")
        assert content.count("\n") == 3  # header + 2 rows


class TestCdfCsv:
    def test_fractions_reach_one(self):
        buffer = io.StringIO()
        rows = write_cdf_csv({"a": [3.0, 1.0, 2.0], "b": [5.0]}, buffer)
        assert rows == 4
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        last_a = [r for r in parsed if r["series"] == "a"][-1]
        assert float(last_a["fraction"]) == pytest.approx(1.0)
        assert float(last_a["value"]) == pytest.approx(3.0)

    def test_series_sorted_and_labeled(self):
        buffer = io.StringIO()
        write_cdf_csv({"z": [1.0], "a": [2.0]}, buffer)
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert [r["series"] for r in parsed] == ["a", "z"]


class TestSweepCsv:
    def test_rows_written_in_order(self, tmp_path):
        path = tmp_path / "sweep.csv"
        count = write_sweep_csv(
            [
                {"delta_ms": 100, "avg": 5.7},
                {"delta_ms": 10, "avg": 1.0},
            ],
            path,
        )
        assert count == 2
        parsed = list(csv.DictReader(path.open()))
        assert parsed[0]["delta_ms"] == "100"
        assert parsed[1]["avg"] == "1.0"

    def test_explicit_fieldnames_and_missing_cells(self):
        buffer = io.StringIO()
        write_sweep_csv(
            [{"x": 1}, {"x": 2, "y": 3}], buffer, fieldnames=["x", "y"]
        )
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert parsed[0]["y"] == ""
        assert parsed[1]["y"] == "3"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            write_sweep_csv([{"x": 1, "zz": 2}], io.StringIO(), fieldnames=["x"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            write_sweep_csv([], io.StringIO())
