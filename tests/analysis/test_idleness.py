"""Tests for the network-idleness metric (§5.4)."""

import pytest

from repro.analysis.idleness import active_intervals, merge_intervals, network_idleness
from repro.core.coflow import Coflow, CoflowTrace
from repro.units import GBPS, MB

B = 1 * GBPS


def trace_of(*coflows, num_ports=10):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestMergeIntervals:
    def test_disjoint(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_contained(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_empty(self):
        assert merge_intervals([]) == []


class TestActiveIntervals:
    def test_interval_is_arrival_plus_packet_bound(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB}, arrival_time=2.0)
        intervals = active_intervals(trace_of(coflow), B)
        assert intervals == [(2.0, pytest.approx(3.0))]


class TestNetworkIdleness:
    def test_back_to_back_coflows_zero_idle(self):
        # Each coflow is active exactly 1 s; arrivals 1 s apart.
        coflows = [
            Coflow.from_demand(i, {(0, 1): 125 * MB}, arrival_time=float(i))
            for i in range(5)
        ]
        assert network_idleness(trace_of(*coflows), B) == pytest.approx(0.0)

    def test_half_idle(self):
        # 1 s active, 1 s gap, repeated.
        coflows = [
            Coflow.from_demand(i, {(0, 1): 125 * MB}, arrival_time=2.0 * i)
            for i in range(5)
        ]
        # Horizon [0, 9]: busy 5 s of 9 s -> idleness 4/9.
        assert network_idleness(trace_of(*coflows), B) == pytest.approx(4 / 9)

    def test_single_coflow_zero_idle(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB})
        assert network_idleness(trace_of(coflow), B) == pytest.approx(0.0)

    def test_empty_trace(self):
        assert network_idleness(trace_of(), B) == 0.0

    def test_higher_bandwidth_more_idle(self):
        coflows = [
            Coflow.from_demand(i, {(0, 1): 125 * MB}, arrival_time=2.0 * i)
            for i in range(5)
        ]
        trace = trace_of(*coflows)
        assert network_idleness(trace, 10 * B) > network_idleness(trace, B)

    def test_metric_is_schedule_independent(self):
        """Idleness only reads arrivals + T^p_L; overlapping coflows merge."""
        a = Coflow.from_demand(1, {(0, 1): 125 * MB}, arrival_time=0.0)
        b = Coflow.from_demand(2, {(3, 4): 125 * MB}, arrival_time=0.5)
        # Active union is [0, 1.5] -> no idleness over the [0, 1.5] horizon.
        assert network_idleness(trace_of(a, b), B) == pytest.approx(0.0)
