"""Tests for Coflow classification (Table 4)."""

import pytest

from repro.analysis.classify import classify
from repro.core.coflow import Coflow, CoflowCategory
from repro.units import MB


def coflows():
    return [
        Coflow.from_demand(1, {(0, 1): 1 * MB}),  # O2O
        Coflow.from_demand(2, {(0, 1): 1 * MB, (0, 2): 1 * MB}),  # O2M
        Coflow.from_demand(3, {(1, 5): 1 * MB, (2, 5): 1 * MB}),  # M2O
        Coflow.from_demand(4, {(0, 1): 96 * MB, (3, 2): 1 * MB}),  # M2M
    ]


class TestClassify:
    def test_counts(self):
        breakdown = classify(coflows())
        assert breakdown.coflow_counts[CoflowCategory.ONE_TO_ONE] == 1
        assert breakdown.coflow_counts[CoflowCategory.ONE_TO_MANY] == 1
        assert breakdown.coflow_counts[CoflowCategory.MANY_TO_ONE] == 1
        assert breakdown.coflow_counts[CoflowCategory.MANY_TO_MANY] == 1
        assert breakdown.total_coflows == 4

    def test_percentages(self):
        breakdown = classify(coflows())
        assert breakdown.coflow_percent(CoflowCategory.ONE_TO_ONE) == pytest.approx(25.0)
        # Bytes: O2O 1, O2M 2, M2O 2, M2M 97 of 102 total.
        assert breakdown.bytes_percent(CoflowCategory.MANY_TO_MANY) == pytest.approx(
            100.0 * 97 / 102
        )

    def test_empty_input(self):
        breakdown = classify([])
        assert breakdown.total_coflows == 0
        assert breakdown.coflow_percent(CoflowCategory.ONE_TO_ONE) == 0.0
        assert breakdown.bytes_percent(CoflowCategory.ONE_TO_ONE) == 0.0

    def test_as_table_rows(self):
        rows = classify(coflows()).as_table()
        assert [row["category"] for row in rows] == ["O2O", "O2M", "M2O", "M2M"]
        assert sum(row["coflow_percent"] for row in rows) == pytest.approx(100.0)
        assert sum(row["bytes_percent"] for row in rows) == pytest.approx(100.0)
