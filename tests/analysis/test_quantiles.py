"""Tests for the streaming quantile sketch and its exact oracle."""

import math
import random

import pytest

from repro.analysis.quantiles import ExactQuantiles, QuantileDigest, rank_error
from repro.sim.results import percentile

QUANTILES = (0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)

#: The documented bound the sketch meets at the default compression of
#: 200 (see ``repro.analysis.quantiles``); measured error is ~20x lower.
RANK_ERROR_BOUND = 0.02


def heavy_tailed(n, seed=7):
    """Deterministic lognormal-ish values, shaped like CCT distributions."""
    rng = random.Random(seed)
    return [math.exp(rng.gauss(0.0, 2.0)) for _ in range(n)]


class TestSingletonRegimeExactness:
    """Below ~2*compression/pi points no centroids merge, so the digest
    must reproduce the in-memory ``percentile`` bit-for-bit."""

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 120])
    def test_matches_percentile_exactly(self, n):
        values = heavy_tailed(n)
        digest = QuantileDigest(compression=200)
        digest.extend(values)
        for q in QUANTILES:
            assert digest.quantile(q) == percentile(values, q * 100.0)

    def test_min_max_always_exact(self):
        values = heavy_tailed(5000)
        digest = QuantileDigest(compression=200)
        digest.extend(values)
        assert digest.min == min(values)
        assert digest.max == max(values)
        assert digest.quantile(0.0) == min(values)
        assert digest.quantile(1.0) == max(values)


class TestRankErrorBound:
    @pytest.mark.parametrize("n", [1000, 5000, 50000])
    def test_within_documented_bound(self, n):
        digest = QuantileDigest(compression=200)
        oracle = ExactQuantiles()
        for value in heavy_tailed(n):
            digest.add(value)
            oracle.add(value)
        for q in QUANTILES:
            assert rank_error(oracle, digest.quantile(q), q) <= RANK_ERROR_BOUND

    def test_merge_stays_within_bound(self):
        values = heavy_tailed(8000, seed=3)
        left = QuantileDigest(compression=200)
        right = QuantileDigest(compression=200)
        oracle = ExactQuantiles()
        for i, value in enumerate(values):
            (left if i % 2 else right).add(value)
            oracle.add(value)
        left.merge(right)
        assert left.count == len(values)
        for q in QUANTILES:
            assert rank_error(oracle, left.quantile(q), q) <= RANK_ERROR_BOUND

    def test_memory_stays_bounded(self):
        digest = QuantileDigest(compression=100)
        digest.extend(heavy_tailed(50000))
        digest.quantile(0.5)  # flush the buffer
        assert digest.num_centroids() <= 2 * digest.compression


class TestDeterminism:
    def test_same_stream_same_estimates(self):
        values = heavy_tailed(3000)
        first = QuantileDigest(compression=50)
        second = QuantileDigest(compression=50)
        first.extend(values)
        second.extend(values)
        for q in QUANTILES:
            assert first.quantile(q) == second.quantile(q)
        assert first.compressions == second.compressions


class TestValidation:
    def test_rejects_small_compression(self):
        with pytest.raises(ValueError, match="compression"):
            QuantileDigest(compression=10)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            QuantileDigest().add(float("nan"))

    def test_empty_sketch_has_no_quantile(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileDigest().quantile(0.5)

    def test_rejects_out_of_range_quantile(self):
        digest = QuantileDigest()
        digest.add(1.0)
        with pytest.raises(ValueError, match="quantile"):
            digest.quantile(1.5)
        with pytest.raises(ValueError, match="percentile"):
            digest.percentile(-1.0)


class TestExactOracle:
    def test_matches_results_percentile(self):
        values = heavy_tailed(321)
        oracle = ExactQuantiles()
        oracle.extend(values)
        for q in QUANTILES:
            assert oracle.quantile(q) == percentile(values, q * 100.0)

    def test_rank_of_widens_over_duplicates(self):
        oracle = ExactQuantiles()
        oracle.extend([1.0, 2.0, 2.0, 2.0, 3.0])
        lo, hi = oracle.rank_of(2.0)
        assert (lo, hi) == (0.2, 0.8)
        assert rank_error(oracle, 2.0, 0.5) == 0.0
        assert rank_error(oracle, 2.0, 0.9) == pytest.approx(0.1)
