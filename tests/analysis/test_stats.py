"""Tests for correlation and CDF helpers."""

import pytest

from repro.analysis.stats import cdf_at, ecdf, pearson, spearman


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        import scipy.stats

        xs = [1.0, 4.0, 2.0, 9.0, 3.5, 0.5]
        ys = [2.0, 3.0, 8.0, 7.0, 1.0, 4.0]
        expected = scipy.stats.pearsonr(xs, ys)[0]
        assert pearson(xs, ys) == pytest.approx(expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_zero_variance(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [1.0, 8.0, 27.0, 64.0]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_matches_scipy_with_ties(self):
        import scipy.stats

        xs = [1.0, 2.0, 2.0, 3.0, 5.0, 4.0]
        ys = [3.0, 1.0, 4.0, 4.0, 9.0, 2.0]
        expected = scipy.stats.spearmanr(xs, ys)[0]
        assert spearman(xs, ys) == pytest.approx(expected)

    def test_anticorrelated(self):
        assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


class TestEcdf:
    def test_steps(self):
        points = ecdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_ties_collapsed(self):
        points = ecdf([1.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(2 / 3)), (2.0, 1.0)]

    def test_empty(self):
        assert ecdf([]) == []


class TestCdfAt:
    def test_fraction_below(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == pytest.approx(0.5)
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 4.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_at([], 1.0)
