"""Tests for the trace-statistics summary."""

import pytest

from repro.analysis.tracestats import trace_statistics
from repro.core.coflow import Coflow, CoflowTrace
from repro.units import MB


def build_trace():
    coflows = [
        Coflow.from_demand(1, {(0, 1): 10 * MB}, arrival_time=0.0),
        Coflow.from_demand(2, {(0, 1): 2 * MB, (0, 2): 2 * MB}, arrival_time=2.0),
        Coflow.from_demand(3, {(1, 2): 30 * MB}, arrival_time=6.0),
    ]
    return CoflowTrace(num_ports=5, coflows=coflows)


class TestTraceStatistics:
    def test_counts_and_totals(self):
        stats = trace_statistics(build_trace())
        assert stats.num_ports == 5
        assert stats.num_coflows == 3
        assert stats.total_bytes == pytest.approx(44 * MB)
        assert stats.span_seconds == pytest.approx(6.0)

    def test_interarrivals(self):
        stats = trace_statistics(build_trace())
        assert stats.interarrivals == [2.0, 4.0]
        assert stats.mean_interarrival == pytest.approx(3.0)

    def test_widths_and_sizes(self):
        stats = trace_statistics(build_trace())
        assert sorted(stats.widths) == [1, 1, 2]
        assert max(stats.flow_sizes) == pytest.approx(30 * MB)
        assert stats.width_percentile(100) == 2
        assert stats.flow_size_percentile(0) == pytest.approx(2 * MB)

    def test_unsorted_trace_handled(self):
        trace = build_trace()
        trace.coflows.reverse()
        stats = trace_statistics(trace)
        assert all(gap >= 0 for gap in stats.interarrivals)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics(CoflowTrace(num_ports=2))

    def test_as_text_mentions_key_figures(self):
        text = trace_statistics(build_trace()).as_text()
        assert "coflows: 3" in text
        assert "O2O" in text and "M2M" in text
        assert "width |C|" in text
        assert "flow size" in text
