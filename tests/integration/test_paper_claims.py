"""Integration tests: the paper's headline claims at reduced scale.

Each test replays a seeded Facebook-like trace end-to-end through the full
stack (workload → scheduler → simulator → analysis) and asserts the
*shape* of a published result.  Absolute numbers differ from the paper —
the trace is synthetic and smaller — but orderings, bounds and qualitative
relationships must hold.
"""

import pytest

from repro.core.sunflow import ReservationOrder
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    mean,
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
    simulate_packet,
)
from repro.units import GBPS, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes

B = 1 * GBPS
DELTA = 10 * MS


@pytest.fixture(scope="module")
def trace():
    config = GeneratorConfig(
        num_ports=30, num_coflows=40, max_width=12, mean_interarrival=2.0, seed=42
    )
    return perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=42)


@pytest.fixture(scope="module")
def sunflow_intra(trace):
    return simulate_intra_sunflow(trace, B, DELTA)


@pytest.fixture(scope="module")
def solstice_intra(trace):
    return simulate_intra_assignment(trace, SolsticeScheduler(), B, DELTA)


class TestSection53IntraCoflow:
    def test_sunflow_near_optimal(self, sunflow_intra):
        """§5.3.1: Sunflow CCT/TcL ≈ 1.03 on average; always < 2."""
        ratios = [r.cct_over_circuit_lower for r in sunflow_intra.records]
        assert mean(ratios) < 1.15
        assert max(ratios) < 2.0

    def test_solstice_worse_than_sunflow(self, sunflow_intra, solstice_intra):
        """§5.3.1: Solstice averages well above Sunflow (1.48 vs 1.03)."""
        sunflow_avg = mean([r.cct_over_circuit_lower for r in sunflow_intra.records])
        solstice_avg = mean([r.cct_over_circuit_lower for r in solstice_intra.records])
        assert solstice_avg > sunflow_avg * 1.15

    def test_sunflow_switching_always_minimal(self, sunflow_intra):
        """Figure 5: Sunflow's switching count equals |C| for every Coflow."""
        assert all(r.normalized_switching == 1.0 for r in sunflow_intra.records)

    def test_solstice_switching_above_minimum(self, solstice_intra):
        """Figure 5: Solstice schedules multiple switchings per subflow for
        dense Coflows."""
        m2m = [r for r in solstice_intra.records if r.category.value == "M2M"]
        assert mean([r.normalized_switching for r in m2m]) > 1.5

    def test_solstice_switching_grows_with_subflow_count(self, solstice_intra):
        """§5.3.1: Solstice schedules more switchings per subflow as |C|
        grows (paper: linear correlation 0.84).  The overhead saturates at
        the threshold-cascade depth for very wide Coflows, so the trend is
        asserted on halves: wide M2M Coflows pay more per subflow than
        narrow ones."""
        m2m = sorted(
            (r for r in solstice_intra.records if r.category.value == "M2M"),
            key=lambda r: r.num_flows,
        )
        assert len(m2m) >= 4
        half = len(m2m) // 2
        narrow = sum(r.normalized_switching for r in m2m[:half]) / half
        wide = sum(r.normalized_switching for r in m2m[half:]) / (len(m2m) - half)
        assert wide > narrow

    def test_intra_baseline_ordering(self, trace, solstice_intra):
        """§5.2: Solstice beats TMS (≈2×) and Edmond (≈6×) on average."""
        tms = simulate_intra_assignment(trace, TmsScheduler(), B, DELTA)
        edmond = simulate_intra_assignment(trace, EdmondScheduler(), B, DELTA)
        solstice_ccts = solstice_intra.by_id()
        tms_ratio = mean(
            [tms.by_id()[c].cct / solstice_ccts[c].cct for c in solstice_ccts]
        )
        edmond_ratio = mean(
            [edmond.by_id()[c].cct / solstice_ccts[c].cct for c in solstice_ccts]
        )
        assert tms_ratio > 1.2
        assert edmond_ratio > tms_ratio

    def test_ordering_insensitivity(self, trace, sunflow_intra):
        """§5.3.1: Random and SortedDemand orderings land within a few
        percent of OrderedPort."""
        base = sunflow_intra.average_cct()
        for order in (ReservationOrder.RANDOM, ReservationOrder.SORTED_DEMAND):
            other = simulate_intra_sunflow(trace, B, DELTA, order=order)
            assert other.average_cct() == pytest.approx(base, rel=0.10)

    def test_delta_sensitivity_direction(self, trace):
        """Figure 6: slower switches hurt; faster switches help, with
        diminishing returns below ~1 ms."""
        base = simulate_intra_sunflow(trace, B, 10 * MS).average_cct()
        slow = simulate_intra_sunflow(trace, B, 100 * MS).average_cct()
        fast = simulate_intra_sunflow(trace, B, 1 * MS).average_cct()
        fastest = simulate_intra_sunflow(trace, B, 10 * 1e-6).average_cct()
        assert slow > base > fast > fastest
        # Diminishing returns: 10 ms -> 1 ms gains much more than 1 ms -> 10 µs.
        assert (base - fast) > (fast - fastest)


class TestSection532PacketBound:
    def test_long_coflows_near_packet_bound(self, trace, sunflow_intra):
        """§5.3.2: long Coflows (p_avg > 40δ) get CCT/TpL ≈ 1.09."""
        long_ids = {
            c.coflow_id for c in trace if c.is_long(B, DELTA)
        }
        assert long_ids, "fixture should contain long coflows"
        ratios = [
            r.cct_over_packet_lower
            for r in sunflow_intra.records
            if r.coflow_id in long_ids
        ]
        assert mean(ratios) < 1.35

    def test_rank_correlation_with_pavg_negative(self, sunflow_intra):
        """§5.3.2: CCT/TpL falls as p_avg grows (paper: ρ = -0.96)."""
        from repro.analysis import spearman

        xs = [r.average_processing_time for r in sunflow_intra.records]
        ys = [r.cct_over_packet_lower for r in sunflow_intra.records]
        assert spearman(xs, ys) < -0.5


class TestSection54InterCoflow:
    @pytest.fixture(scope="class")
    def reports(self, trace):
        return {
            "sunflow": simulate_inter_sunflow(trace, B, DELTA),
            "varys": simulate_packet(trace, VarysAllocator(), B),
            "aalo": simulate_packet(trace, AaloAllocator(), B),
        }

    def test_all_complete_everywhere(self, trace, reports):
        for report in reports.values():
            assert len(report) == len(trace)

    def test_average_cct_comparable_to_varys(self, reports):
        """§5.4 headline: under moderate load, Sunflow's average CCT is
        within ~1.1× of Varys (paper: ≤1.01×)."""
        ratio = reports["sunflow"].average_cct() / reports["varys"].average_cct()
        assert ratio < 1.2

    def test_average_cct_not_worse_than_aalo(self, reports):
        """§5.4: Sunflow averages at or below Aalo (paper: 0.83×)."""
        ratio = reports["sunflow"].average_cct() / reports["aalo"].average_cct()
        assert ratio < 1.05

    def test_per_coflow_ratio_penalizes_short_coflows(self, trace, reports):
        """§5.4: the CCT-ratio metric disfavors Sunflow on short Coflows
        (circuit setup dominates) but not on long ones."""
        sunflow, varys = reports["sunflow"].by_id(), reports["varys"].by_id()
        long_ids = {c.coflow_id for c in trace if c.is_long(B, DELTA)}
        short_ratios = [
            sunflow[c].cct / varys[c].cct for c in sunflow if c not in long_ids
        ]
        long_ratios = [
            sunflow[c].cct / varys[c].cct for c in sunflow if c in long_ids
        ]
        assert mean(short_ratios) > mean(long_ratios)
