"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.txt"
    assert main([
        "generate", str(path), "--coflows", "12", "--ports", "20",
        "--max-width", "6", "--seed", "5", "--perturb",
    ]) == 0
    return path


class TestGenerate:
    def test_writes_parseable_trace(self, trace_file, capsys):
        from repro.workloads import parse_trace

        trace = parse_trace(trace_file)
        assert len(trace) == 12
        assert trace.num_ports == 20

    def test_reports_summary(self, tmp_path, capsys):
        path = tmp_path / "t.txt"
        main(["generate", str(path), "--coflows", "5", "--max-width", "4"])
        out = capsys.readouterr().out
        assert "wrote 5 coflows" in out


class TestClassify:
    def test_prints_table(self, trace_file, capsys):
        assert main(["classify", str(trace_file)]) == 0
        out = capsys.readouterr().out
        for label in ("O2O", "O2M", "M2O", "M2M"):
            assert label in out


class TestIdleness:
    def test_prints_fraction(self, trace_file, capsys):
        assert main(["idleness", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("idleness:")
        value = float(out.split(":")[1])
        assert 0.0 <= value <= 1.0


class TestIntra:
    @pytest.mark.parametrize("scheduler", ["sunflow", "solstice"])
    def test_runs_and_prints_summaries(self, trace_file, capsys, scheduler):
        assert main(["intra", str(trace_file), "--scheduler", scheduler]) == 0
        out = capsys.readouterr().out
        assert "CCT / TcL" in out
        assert "switching / minimum" in out

    def test_bandwidth_and_delta_flags(self, trace_file, capsys):
        assert main([
            "intra", str(trace_file), "--bandwidth-gbps", "10",
            "--delta-ms", "1",
        ]) == 0


class TestInter:
    @pytest.mark.parametrize("scheduler", ["sunflow", "varys", "aalo"])
    def test_runs_all_schedulers(self, trace_file, capsys, scheduler):
        assert main(["inter", str(trace_file), "--scheduler", scheduler]) == 0
        out = capsys.readouterr().out
        assert "average CCT" in out

    def test_policy_flag(self, trace_file, capsys):
        assert main([
            "inter", str(trace_file), "--scheduler", "sunflow", "--policy", "fifo",
        ]) == 0


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["intra", "x", "--scheduler", "nope"])


class TestCompare:
    @pytest.mark.parametrize("mode", ["intra", "inter"])
    def test_tabulates_all_schedulers(self, trace_file, capsys, mode):
        assert main(["compare", str(trace_file), "--mode", mode]) == 0
        out = capsys.readouterr().out
        assert "sunflow" in out
        if mode == "intra":
            for name in ("solstice", "tms", "edmond"):
                assert name in out
        else:
            assert "varys" in out and "aalo" in out


class TestTimeline:
    def test_renders_schedule(self, trace_file, capsys):
        assert main(["timeline", str(trace_file), "--coflow-id", "1"]) == 0
        out = capsys.readouterr().out
        assert "coflow 1" in out
        assert "CCT =" in out
        assert "in." in out

    def test_missing_coflow_id(self, trace_file, capsys):
        assert main(["timeline", str(trace_file), "--coflow-id", "9999"]) == 1


class TestStats:
    def test_prints_summary(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "coflows: 12" in out
        assert "width |C|" in out


class TestSweep:
    GRID = """
name = "cli-demo"

[base]
mode = "intra"
scheduler = "sunflow"

[base.trace]
kind = "facebook"
num_ports = 10
num_coflows = 4
max_width = 3
seed = 1

[axes]
"network.delta" = [0.01, 0.001]
scheduler = ["sunflow", "solstice"]
"""

    @pytest.fixture
    def grid_file(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(self.GRID)
        return path

    def test_runs_grid_and_writes_outputs(self, grid_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main([
            "sweep", str(grid_file), "--output-dir", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "[4/4]" in out
        assert "4 cells" in out and "0 failed" in out
        assert (out_dir / "sweep.json").exists()
        assert (out_dir / "cells.csv").exists()

    def test_cache_dir_serves_second_run(self, grid_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["sweep", str(grid_file), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["sweep", str(grid_file), "--cache-dir", str(cache)]) == 0
        assert "4 cached" in capsys.readouterr().out

    def test_failing_cell_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "grid.toml"
        path.write_text(self.GRID.replace('"solstice"]', '"bogus"]'))
        assert main(["sweep", str(path)]) == 1
        out = capsys.readouterr().out
        assert "error" in out
        assert "2 failed" in out


class TestExport:
    def test_writes_records_csv(self, trace_file, tmp_path, capsys):
        out = tmp_path / "records.csv"
        assert main(["export", str(trace_file), str(out)]) == 0
        content = out.read_text()
        assert content.startswith("scheduler,")
        assert content.count("\n") == 13  # header + 12 coflows
        assert "wrote 12 records" in capsys.readouterr().out

    @pytest.mark.parametrize("scheduler", ["solstice", "varys"])
    def test_other_schedulers(self, trace_file, tmp_path, scheduler):
        out = tmp_path / "records.csv"
        assert main([
            "export", str(trace_file), str(out), "--scheduler", scheduler,
        ]) == 0
        assert scheduler in out.read_text()

    def test_inter_mode(self, trace_file, tmp_path):
        out = tmp_path / "records.csv"
        assert main([
            "export", str(trace_file), str(out), "--mode", "inter",
        ]) == 0
        assert out.exists()


class TestConvert:
    def test_writes_binary_trace(self, trace_file, tmp_path, capsys):
        from repro.workloads import parse_trace, read_stream_trace

        output = tmp_path / "trace.sftr"
        assert main(["convert", str(trace_file), str(output)]) == 0
        out = capsys.readouterr().out
        assert "wrote 12 coflows" in out
        assert read_stream_trace(output).coflows == parse_trace(trace_file).coflows


class TestReplay:
    def test_in_memory_replay(self, trace_file, capsys):
        assert main(["replay", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "average CCT:" in out
        assert "over 12 coflows" in out

    def test_streaming_matches_in_memory_mean(self, trace_file, tmp_path, capsys):
        assert main(["replay", str(trace_file)]) == 0
        memory_out = capsys.readouterr().out
        assert main(["replay", str(trace_file), "--stream"]) == 0
        stream_out = capsys.readouterr().out
        # Identical CCT summary line: the streaming engine is bitwise.
        assert stream_out.splitlines()[0] == memory_out.splitlines()[0]
        assert "events/s" in stream_out

    def test_streaming_binary_trace(self, trace_file, tmp_path, capsys):
        binary = tmp_path / "trace.sftr"
        assert main(["convert", str(trace_file), str(binary)]) == 0
        capsys.readouterr()
        assert main(["replay", str(trace_file)]) == 0
        text_out = capsys.readouterr().out
        assert main(["replay", str(binary), "--stream"]) == 0
        binary_out = capsys.readouterr().out
        assert binary_out.splitlines()[0] == text_out.splitlines()[0]
