"""Tests for the Facebook-like synthetic trace generator."""

import pytest

from repro.analysis import classify
from repro.core.coflow import CoflowCategory
from repro.units import MB
from repro.workloads.synthetic import (
    CategoryMix,
    FacebookLikeTraceGenerator,
    GeneratorConfig,
    paper_trace,
)


def generate(**overrides):
    params = dict(num_ports=40, num_coflows=120, max_width=12, seed=11)
    params.update(overrides)
    return FacebookLikeTraceGenerator(GeneratorConfig(**params)).generate()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a, b = generate(), generate()
        assert len(a) == len(b)
        for ca, cb in zip(a, b):
            assert ca.arrival_time == cb.arrival_time
            assert ca.demand() == cb.demand()

    def test_different_seed_different_trace(self):
        a, b = generate(seed=1), generate(seed=2)
        assert any(ca.demand() != cb.demand() for ca, cb in zip(a, b))


class TestStructure:
    def test_requested_counts(self):
        trace = generate()
        assert len(trace) == 120
        assert trace.num_ports == 40

    def test_arrivals_increasing(self):
        trace = generate()
        arrivals = [c.arrival_time for c in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_ports_in_range(self):
        trace = generate()
        for coflow in trace:
            for flow in coflow.flows:
                assert 0 <= flow.src < 40
                assert 0 <= flow.dst < 40

    def test_max_width_respected(self):
        trace = generate(max_width=5)
        for coflow in trace:
            if coflow.category is CoflowCategory.MANY_TO_MANY:
                assert len(coflow.senders) <= 5
                assert len(coflow.receivers) <= 5

    def test_sizes_are_mb_granular_with_floor(self):
        trace = generate()
        for coflow in trace:
            for flow in coflow.flows:
                assert flow.size_bytes >= 1 * MB
                assert flow.size_bytes % MB == pytest.approx(0.0)


class TestTable4Statistics:
    def test_category_mix_close_to_table_4(self):
        trace = generate(num_coflows=500)
        breakdown = classify(trace)
        assert breakdown.coflow_percent(CoflowCategory.ONE_TO_ONE) == pytest.approx(
            23.4, abs=1.5
        )
        assert breakdown.coflow_percent(CoflowCategory.ONE_TO_MANY) == pytest.approx(
            9.9, abs=1.5
        )
        assert breakdown.coflow_percent(CoflowCategory.MANY_TO_ONE) == pytest.approx(
            40.1, abs=1.5
        )
        assert breakdown.coflow_percent(CoflowCategory.MANY_TO_MANY) == pytest.approx(
            26.6, abs=1.5
        )

    def test_m2m_dominates_bytes(self):
        trace = generate(num_coflows=500)
        breakdown = classify(trace)
        assert breakdown.bytes_percent(CoflowCategory.MANY_TO_MANY) > 98.0

    def test_custom_mix(self):
        mix = CategoryMix(one_to_one=1.0, one_to_many=0.0, many_to_one=0.0, many_to_many=0.0)
        config = GeneratorConfig(num_ports=10, num_coflows=30, mix=mix, seed=1)
        trace = FacebookLikeTraceGenerator(config).generate()
        assert all(c.category is CoflowCategory.ONE_TO_ONE for c in trace)

    def test_invalid_mix_rejected(self):
        mix = CategoryMix(0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            mix.normalized()


class TestPaperTrace:
    def test_defaults_match_paper_scale(self):
        trace = paper_trace(num_coflows=50, max_width=10)
        assert trace.num_ports == 150
        assert len(trace) == 50

    def test_mean_interarrival_scales_span(self):
        fast = generate(mean_interarrival=0.5)
        slow = generate(mean_interarrival=8.0)
        assert slow.span > fast.span
