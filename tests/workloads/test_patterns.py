"""Tests for the canonical Coflow pattern constructors."""

import pytest

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import CoflowCategory
from repro.core.sunflow import SunflowScheduler
from repro.units import GBPS, MB, MS
from repro.workloads.patterns import (
    broadcast,
    hotspot,
    incast,
    one_to_one,
    permutation,
    shuffle,
)

B = 1 * GBPS
DELTA = 10 * MS


class TestConstructors:
    def test_one_to_one(self):
        coflow = one_to_one(1, 2, 7, 5 * MB)
        assert coflow.category is CoflowCategory.ONE_TO_ONE
        assert coflow.demand() == {(2, 7): 5 * MB}

    def test_broadcast(self):
        coflow = broadcast(1, 0, [1, 2, 3], 5 * MB)
        assert coflow.category is CoflowCategory.ONE_TO_MANY
        assert coflow.num_flows == 3
        assert all(f.src == 0 for f in coflow.flows)

    def test_broadcast_duplicate_receivers_rejected(self):
        with pytest.raises(ValueError):
            broadcast(1, 0, [1, 1], 5 * MB)

    def test_incast(self):
        coflow = incast(1, [1, 2, 3], 0, 5 * MB)
        assert coflow.category is CoflowCategory.MANY_TO_ONE
        assert all(f.dst == 0 for f in coflow.flows)

    def test_incast_empty_rejected(self):
        with pytest.raises(ValueError):
            incast(1, [], 0, 5 * MB)

    def test_shuffle_full_bipartite(self):
        coflow = shuffle(1, [0, 1], [2, 3, 4], 5 * MB)
        assert coflow.category is CoflowCategory.MANY_TO_MANY
        assert coflow.num_flows == 6

    def test_shuffle_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            shuffle(1, [0, 0], [1, 2], 5 * MB)

    def test_permutation(self):
        coflow = permutation(1, {0: 3, 1: 4, 2: 5}, 5 * MB)
        assert coflow.num_flows == 3

    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            permutation(1, {0: 3, 1: 3}, 5 * MB)

    def test_hotspot_sizes(self):
        coflow = hotspot(1, [0, 1], [5, 6], base_bytes=1 * MB, hot_factor=10)
        demand = coflow.demand()
        assert demand[(0, 5)] == 10 * MB
        assert demand[(0, 6)] == 1 * MB

    def test_hotspot_target_validated(self):
        with pytest.raises(ValueError):
            hotspot(1, [0], [5, 6], 1 * MB, hot_dst=9)

    def test_sizes_validated(self):
        with pytest.raises(ValueError):
            one_to_one(1, 0, 1, 0.0)
        with pytest.raises(ValueError):
            hotspot(1, [0], [5], 1 * MB, hot_factor=0)


class TestSchedulingBehaviour:
    def test_permutation_is_fully_parallel(self):
        coflow = permutation(1, {i: i + 5 for i in range(4)}, 125 * MB)
        schedule = SunflowScheduler(delta=DELTA).schedule_coflow(coflow, B)
        assert schedule.makespan == pytest.approx(1.0 + DELTA)

    def test_incast_serializes_to_bound(self):
        coflow = incast(1, [0, 1, 2], 9, 25 * MB)
        schedule = SunflowScheduler(delta=DELTA).schedule_coflow(coflow, B)
        assert schedule.makespan == pytest.approx(
            circuit_lower_bound(coflow, B, DELTA)
        )

    def test_shuffle_within_factor_two(self):
        coflow = shuffle(1, [0, 1, 2], [5, 6], 25 * MB)
        schedule = SunflowScheduler(delta=DELTA).schedule_coflow(coflow, B)
        lower = circuit_lower_bound(coflow, B, DELTA)
        assert lower <= schedule.makespan <= 2 * lower
