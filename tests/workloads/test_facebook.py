"""Tests for the coflow-benchmark trace format."""

import io

import pytest

from repro.core.coflow import CoflowCategory
from repro.units import MB
from repro.workloads.facebook import TraceFormatError, parse_trace, write_trace
from repro.workloads.synthetic import GeneratorConfig, FacebookLikeTraceGenerator

SAMPLE = """\
150 3
1 0 1 10 1 20:100
2 1500 2 3 4 1 7:60
3 3000 2 5 6 2 8:10 9:30
"""


class TestParsing:
    def test_header_and_count(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        assert trace.num_ports == 150
        assert len(trace) == 3

    def test_arrival_milliseconds_to_seconds(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        assert trace[1].arrival_time == pytest.approx(1.5)

    def test_single_mapper_single_reducer(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        coflow = trace[0]
        assert coflow.num_flows == 1
        flow = coflow.flows[0]
        assert (flow.src, flow.dst) == (10, 20)
        assert flow.size_bytes == pytest.approx(100 * MB)

    def test_reducer_total_split_across_mappers(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        coflow = trace[1]
        assert coflow.num_flows == 2
        for flow in coflow.flows:
            assert flow.size_bytes == pytest.approx(30 * MB)
            assert flow.dst == 7
        assert coflow.senders == [3, 4]
        assert coflow.category is CoflowCategory.MANY_TO_ONE

    def test_many_to_many(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        coflow = trace[2]
        assert coflow.category is CoflowCategory.MANY_TO_MANY
        assert coflow.num_flows == 4
        assert coflow.total_bytes == pytest.approx(40 * MB)

    def test_parse_from_raw_text(self):
        trace = parse_trace(SAMPLE)
        assert len(trace) == 3

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        trace = parse_trace(path)
        assert len(trace) == 3


class TestFormatErrors:
    def test_empty_file(self):
        with pytest.raises(TraceFormatError, match="empty"):
            parse_trace(io.StringIO(""))

    def test_bad_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            parse_trace(io.StringIO("abc\n"))

    def test_count_mismatch(self):
        with pytest.raises(TraceFormatError, match="promises"):
            parse_trace(io.StringIO("10 2\n1 0 1 0 1 1:5\n"))

    def test_truncated_record(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            parse_trace(io.StringIO("10 1\n1 0 2 0\n"))

    def test_bad_reducer_token(self):
        with pytest.raises(TraceFormatError, match="reducer"):
            parse_trace(io.StringIO("10 1\n1 0 1 0 1 5-3\n"))

    def test_trailing_tokens(self):
        with pytest.raises(TraceFormatError, match="trailing"):
            parse_trace(io.StringIO("10 1\n1 0 1 0 1 1:5 99\n"))


class TestRoundTrip:
    def test_sample_round_trips(self):
        trace = parse_trace(io.StringIO(SAMPLE))
        buffer = io.StringIO()
        write_trace(trace, buffer)
        reparsed = parse_trace(io.StringIO(buffer.getvalue()))
        assert len(reparsed) == len(trace)
        for original, copy in zip(trace, reparsed):
            assert copy.coflow_id == original.coflow_id
            assert copy.arrival_time == pytest.approx(original.arrival_time)
            assert copy.demand() == pytest.approx(original.demand())

    def test_generated_trace_round_trips(self, tmp_path):
        """Synthetic traces split reducer totals evenly, so the format
        round-trips them exactly."""
        config = GeneratorConfig(num_ports=30, num_coflows=20, max_width=6, seed=3)
        trace = FacebookLikeTraceGenerator(config).generate()
        path = tmp_path / "generated.txt"
        write_trace(trace, path)
        reparsed = parse_trace(path)
        assert len(reparsed) == len(trace)
        for original, copy in zip(trace, reparsed):
            assert copy.demand() == pytest.approx(original.demand())
            assert copy.arrival_time == pytest.approx(original.arrival_time)
