"""Tests for the binary streaming trace format and streaming adapters."""

import io

import pytest

from repro.core.coflow import Coflow, CoflowTrace, Flow
from repro.units import MB
from repro.workloads.facebook import TraceReader, iter_trace, parse_trace, write_trace
from repro.workloads.stream import (
    StreamTraceError,
    StreamTraceReader,
    StreamTraceWriter,
    convert_text_trace,
    is_stream_trace,
    iter_chunks,
    open_any_trace,
    open_stream_trace,
    read_stream_trace,
    stream_synthetic,
    write_stream_trace,
)
from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig
from repro.workloads.transforms import perturb_sizes, perturb_sizes_iter


def sample_coflows():
    return [
        Coflow(1, 0.0, [Flow(0, 1, 100 * MB)]),
        Coflow(2, 1.5, [Flow(3, 7, 30 * MB), Flow(4, 7, 30 * MB)]),
        Coflow(3, 3.0, [Flow(5, 8, 10 * MB), Flow(6, 9, 30 * MB)]),
    ]


class TestBinaryRoundTrip:
    def test_round_trip_preserves_coflows(self, tmp_path):
        path = tmp_path / "trace.sftr"
        coflows = sample_coflows()
        assert write_stream_trace(path, coflows, num_ports=150) == 3
        trace = read_stream_trace(path)
        assert trace.num_ports == 150
        assert trace.coflows == coflows

    def test_streaming_read_matches_materialized(self, tmp_path):
        path = tmp_path / "trace.sftr"
        write_stream_trace(path, sample_coflows(), num_ports=150)
        with open_stream_trace(path) as arrivals:
            assert arrivals.num_ports == 150
            assert arrivals.length_hint == 3
            assert list(arrivals) == sample_coflows()
        with StreamTraceReader(path) as reader:
            assert reader.num_ports == 150
            assert reader.num_coflows == 3

    def test_is_stream_trace_sniffs_magic(self, tmp_path):
        binary = tmp_path / "t.sftr"
        write_stream_trace(binary, sample_coflows(), num_ports=150)
        text = tmp_path / "t.txt"
        text.write_text("4 0\n")
        assert is_stream_trace(binary)
        assert not is_stream_trace(text)

    def test_open_any_trace_dispatches(self, tmp_path):
        binary = tmp_path / "t.sftr"
        write_stream_trace(binary, sample_coflows(), num_ports=150)
        with open_any_trace(binary) as arrivals:
            assert arrivals.num_ports == 150
            assert list(arrivals) == sample_coflows()
        text = tmp_path / "t.txt"
        write_trace(CoflowTrace(num_ports=150, coflows=sample_coflows()), text)
        with open_any_trace(text) as arrivals:
            assert arrivals.num_ports == 150
            assert [c.coflow_id for c in arrivals] == [1, 2, 3]


class TestValidation:
    def test_writer_rejects_non_monotonic_arrivals(self, tmp_path):
        with StreamTraceWriter(tmp_path / "t.sftr", num_ports=10) as writer:
            writer.write(Coflow(1, 5.0, [Flow(0, 1, MB)]))
            with pytest.raises(StreamTraceError, match="sorted by arrival"):
                writer.write(Coflow(2, 1.0, [Flow(0, 1, MB)]))

    def test_writer_rejects_out_of_range_port(self, tmp_path):
        with StreamTraceWriter(tmp_path / "t.sftr", num_ports=4) as writer:
            with pytest.raises(StreamTraceError, match="port"):
                writer.write(Coflow(1, 0.0, [Flow(0, 9, MB)]))

    def test_reader_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.sftr"
        path.write_bytes(b"NOPE" + bytes(20))
        with pytest.raises(StreamTraceError, match="magic"):
            read_stream_trace(path)

    def test_reader_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "t.sftr"
        write_stream_trace(path, sample_coflows(), num_ports=150)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(StreamTraceError, match="truncated"):
            read_stream_trace(path)

    def test_reader_rejects_trailing_bytes(self, tmp_path):
        path = tmp_path / "t.sftr"
        write_stream_trace(path, sample_coflows(), num_ports=150)
        with path.open("ab") as handle:
            handle.write(b"xx")
        with pytest.raises(StreamTraceError, match="trailing"):
            read_stream_trace(path)


class TestConversion:
    def test_convert_text_trace_round_trips(self, tmp_path):
        trace = FacebookLikeTraceGenerator(
            GeneratorConfig(num_ports=20, num_coflows=12, seed=5)
        ).generate()
        text = tmp_path / "t.txt"
        write_trace(trace, text)
        binary = tmp_path / "t.sftr"
        assert convert_text_trace(text, binary) == 12
        converted = read_stream_trace(binary)
        # The text format rounds sizes to whole MB, so compare against a
        # reparse of the text file, which both paths share.
        assert converted.coflows == parse_trace(text).coflows
        assert converted.num_ports == 20


class TestTextIterator:
    SAMPLE = "150 2\n1 0 1 10 1 20:100\n2 1500 1 3 1 7:60\n"

    def test_iter_trace_matches_parse_trace(self):
        assert list(iter_trace(io.StringIO(self.SAMPLE))) == parse_trace(
            io.StringIO(self.SAMPLE)
        ).coflows

    def test_reader_exposes_header_before_iteration(self):
        reader = TraceReader(io.StringIO(self.SAMPLE))
        assert reader.num_ports == 150
        assert reader.num_coflows == 2

    def test_count_mismatch_detected_at_end(self):
        reader = TraceReader(io.StringIO("150 3\n1 0 1 10 1 20:100\n"))
        iterator = iter(reader)
        next(iterator)
        with pytest.raises(Exception, match="header promises 3"):
            next(iterator)


class TestStreamingAdapters:
    def test_stream_synthetic_matches_generate(self):
        config = GeneratorConfig(num_ports=24, num_coflows=30, seed=11)
        materialized = FacebookLikeTraceGenerator(config).generate()
        arrivals = stream_synthetic(config)
        assert arrivals.num_ports == 24
        assert list(arrivals) == materialized.coflows

    def test_perturb_sizes_iter_matches_materialized(self):
        config = GeneratorConfig(num_ports=24, num_coflows=30, seed=11)
        trace = FacebookLikeTraceGenerator(config).generate()
        expected = perturb_sizes(trace, seed=7).coflows
        streamed = list(perturb_sizes_iter(iter(trace.coflows), seed=7))
        assert streamed == expected

    def test_iter_chunks_partitions_without_loss(self):
        coflows = sample_coflows()
        chunks = list(iter_chunks(iter(coflows), 2))
        assert [len(chunk) for chunk in chunks] == [2, 1]
        assert [c for chunk in chunks for c in chunk] == coflows
