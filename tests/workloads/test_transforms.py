"""Tests for trace transforms: perturbation and idleness scaling."""

import pytest

from repro.analysis import network_idleness
from repro.core.coflow import Coflow, CoflowTrace
from repro.units import GBPS, MB
from repro.workloads.transforms import perturb_sizes, scale_bytes, scale_to_idleness

B = 1 * GBPS


def trace_of(*coflows, num_ports=10):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestPerturbSizes:
    def base_trace(self):
        return trace_of(
            Coflow.from_demand(1, {(0, 1): 100 * MB, (1, 2): 100 * MB}),
            Coflow.from_demand(2, {(2, 3): 1 * MB}),
        )

    def test_sizes_within_fraction(self):
        trace = perturb_sizes(self.base_trace(), fraction=0.05, seed=1)
        big_flows = [f for c in trace for f in c.flows if f.size_bytes > 50 * MB]
        for flow in big_flows:
            assert 95 * MB <= flow.size_bytes <= 105 * MB

    def test_floor_applied(self):
        trace = perturb_sizes(self.base_trace(), fraction=0.5, seed=1, min_bytes=1 * MB)
        for coflow in trace:
            for flow in coflow.flows:
                assert flow.size_bytes >= 1 * MB

    def test_equal_sizes_become_unequal(self):
        """The point of the perturbation: MB-rounded equal subflows
        de-synchronize."""
        trace = perturb_sizes(self.base_trace(), fraction=0.05, seed=1)
        sizes = [f.size_bytes for f in trace[0].flows]
        assert sizes[0] != sizes[1]

    def test_deterministic_for_seed(self):
        a = perturb_sizes(self.base_trace(), seed=4)
        b = perturb_sizes(self.base_trace(), seed=4)
        assert a[0].demand() == b[0].demand()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            perturb_sizes(self.base_trace(), fraction=1.5)

    def test_structure_preserved(self):
        original = self.base_trace()
        trace = perturb_sizes(original, seed=9)
        for before, after in zip(original, trace):
            assert set(before.demand()) == set(after.demand())
            assert before.arrival_time == after.arrival_time


class TestScaleBytes:
    def test_multiplies(self):
        trace = trace_of(Coflow.from_demand(1, {(0, 1): 10 * MB}))
        scaled = scale_bytes(trace, 2.5)
        assert scaled[0].flows[0].size_bytes == pytest.approx(25 * MB)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_bytes(trace_of(), 0.0)


class TestScaleToIdleness:
    def staggered_trace(self):
        """Arrivals spaced 1 s apart with 0.8 s of work each -> some idleness."""
        coflows = [
            Coflow.from_demand(i, {(0, 1): 100 * MB}, arrival_time=float(i) * 1.0)
            for i in range(1, 11)
        ]
        return trace_of(*coflows)

    def test_hits_target_upward(self):
        """Shrinking sizes raises idleness to the target."""
        trace = self.staggered_trace()
        base = network_idleness(trace, B)
        target = min(0.9, base + 0.3)
        scaled = scale_to_idleness(trace, B, target, tolerance=0.01)
        assert network_idleness(scaled, B) == pytest.approx(target, abs=0.015)

    def test_hits_target_downward(self):
        """Growing sizes lowers idleness to the target."""
        trace = self.staggered_trace()
        base = network_idleness(trace, B)
        target = max(0.05, base - 0.1)
        scaled = scale_to_idleness(trace, B, target, tolerance=0.01)
        assert network_idleness(scaled, B) == pytest.approx(target, abs=0.015)

    def test_structure_preserved(self):
        trace = self.staggered_trace()
        scaled = scale_to_idleness(trace, B, 0.5, tolerance=0.01)
        for before, after in zip(trace, scaled):
            assert set(before.demand()) == set(after.demand())
            assert before.arrival_time == after.arrival_time

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            scale_to_idleness(self.staggered_trace(), B, 0.0)
        with pytest.raises(ValueError):
            scale_to_idleness(self.staggered_trace(), B, 1.0)

    def test_monotone_in_factor(self):
        trace = self.staggered_trace()
        idle_small = network_idleness(scale_bytes(trace, 0.5), B)
        idle_large = network_idleness(scale_bytes(trace, 2.0), B)
        assert idle_small >= idle_large
