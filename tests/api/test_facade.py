"""``repro.api.simulate`` must match every legacy entry point exactly.

The facade is a dispatcher, not a reimplementation: for each of the seven
historical ``simulate_*`` functions there is a (mode, scheduler) spec
that produces the identical report, record for record.
"""

import random

import pytest

from repro.api import (
    GuardSpec,
    NetworkSpec,
    SimulationSpec,
    TraceSpec,
    simulate,
    spec_from_payload,
    spec_to_payload,
)
from repro.core.policies import POLICIES
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import ReservationOrder
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import (
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
    simulate_packet,
)
from repro.sim.aalo import AaloAllocator
from repro.sim.hybrid import HybridConfig, simulate_inter_hybrid, simulate_intra_hybrid
from repro.sim.varys import VarysAllocator
from repro.system.runner import simulate_system
from repro.units import GBPS, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


@pytest.fixture(scope="module")
def tiny_trace():
    """A fast 8-Coflow workload shared by all equivalence checks."""
    config = GeneratorConfig(
        num_ports=12, num_coflows=8, max_width=4, mean_interarrival=1.5, seed=3
    )
    return FacebookLikeTraceGenerator(config).generate()


def assert_reports_equal(ours, legacy):
    assert len(ours.records) == len(legacy.records)
    key = lambda record: record.coflow_id  # noqa: E731
    for mine, theirs in zip(
        sorted(ours.records, key=key), sorted(legacy.records, key=key)
    ):
        assert mine == theirs


def spec_for(trace, **kwargs):
    kwargs.setdefault("network", NetworkSpec(bandwidth_bps=BANDWIDTH, delta=DELTA))
    return SimulationSpec(trace=trace, **kwargs)


# ----------------------------------------------------------------------
# One equivalence test per legacy entry point
# ----------------------------------------------------------------------
def test_intra_sunflow(tiny_trace):
    report = simulate(spec_for(tiny_trace, mode="intra", scheduler="sunflow"))
    legacy = simulate_intra_sunflow(tiny_trace, BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


@pytest.mark.parametrize(
    "name, scheduler_cls",
    [("solstice", SolsticeScheduler), ("tms", TmsScheduler), ("edmond", EdmondScheduler)],
)
def test_intra_assignment(tiny_trace, name, scheduler_cls):
    report = simulate(spec_for(tiny_trace, mode="intra", scheduler=name))
    legacy = simulate_intra_assignment(tiny_trace, scheduler_cls(), BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


def test_inter_sunflow(tiny_trace):
    report = simulate(spec_for(tiny_trace, mode="inter", scheduler="sunflow"))
    legacy = simulate_inter_sunflow(tiny_trace, BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


def test_inter_sunflow_policy_and_guard(tiny_trace):
    guard = GuardSpec(period=2.0, tau=0.5)
    report = simulate(
        spec_for(
            tiny_trace, mode="inter", scheduler="sunflow", policy="fifo", guard=guard
        )
    )
    legacy = simulate_inter_sunflow(
        tiny_trace,
        BANDWIDTH,
        DELTA,
        policy=POLICIES["fifo"],
        guard=StarvationGuard(
            num_ports=tiny_trace.num_ports, period=2.0, tau=0.5, delta=DELTA
        ),
    )
    assert_reports_equal(report, legacy)


@pytest.mark.parametrize(
    "name, allocator_cls", [("varys", VarysAllocator), ("aalo", AaloAllocator)]
)
def test_packet(tiny_trace, name, allocator_cls):
    report = simulate(spec_for(tiny_trace, mode="inter", scheduler=name))
    legacy = simulate_packet(tiny_trace, allocator_cls(), BANDWIDTH)
    assert_reports_equal(report, legacy)


def test_intra_hybrid(tiny_trace):
    report = simulate(spec_for(tiny_trace, mode="intra", scheduler="sunflow-hybrid"))
    legacy = simulate_intra_hybrid(tiny_trace, HybridConfig(), BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


def test_inter_hybrid(tiny_trace):
    report = simulate(spec_for(tiny_trace, mode="inter", scheduler="sunflow-hybrid"))
    legacy = simulate_inter_hybrid(tiny_trace, HybridConfig(), BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


def test_system(tiny_trace):
    report = simulate(spec_for(tiny_trace, mode="inter", scheduler="system"))
    legacy = simulate_system(tiny_trace, BANDWIDTH, DELTA)
    assert_reports_equal(report, legacy)


def test_seeded_random_order(tiny_trace):
    """``spec.seed`` reproduces the legacy explicit-rng call."""
    spec = spec_for(
        tiny_trace, mode="intra", scheduler="sunflow", order="random", seed=5
    )
    legacy = simulate_intra_sunflow(
        tiny_trace,
        BANDWIDTH,
        DELTA,
        order=ReservationOrder.RANDOM,
        rng=random.Random(5),
    )
    assert_reports_equal(simulate(spec), legacy)
    # …and the same spec is reproducible.
    assert_reports_equal(simulate(spec), simulate(spec))


# ----------------------------------------------------------------------
# Validation and declarative traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "mode, scheduler",
    [("intra", "varys"), ("intra", "aalo"), ("inter", "solstice"),
     ("inter", "tms"), ("inter", "edmond"), ("intra", "system")],
)
def test_unsupported_combination_raises(tiny_trace, mode, scheduler):
    with pytest.raises(ValueError, match="does not support"):
        simulate(spec_for(tiny_trace, mode=mode, scheduler=scheduler))


def test_unknown_names_rejected_at_construction(tiny_trace):
    with pytest.raises(ValueError, match="unknown scheduler"):
        spec_for(tiny_trace, scheduler="bogus")
    with pytest.raises(ValueError, match="unknown mode"):
        spec_for(tiny_trace, mode="sideways")
    with pytest.raises(ValueError, match="unknown policy"):
        simulate(spec_for(tiny_trace, mode="inter", policy="bogus"))


def test_trace_spec_matches_generator(small_trace):
    """A declarative ``TraceSpec`` regenerates the fixture trace exactly."""
    declared = TraceSpec(
        kind="facebook",
        num_ports=20,
        num_coflows=24,
        max_width=8,
        mean_interarrival=2.0,
        seed=7,
        perturb=0.05,
    ).load()
    assert declared.num_ports == small_trace.num_ports
    assert len(declared) == len(small_trace)
    for mine, theirs in zip(declared, small_trace):
        assert mine.coflow_id == theirs.coflow_id
        assert mine.arrival_time == theirs.arrival_time
        assert {(f.src, f.dst): f.size_bytes for f in mine.flows} == {
            (f.src, f.dst): f.size_bytes for f in theirs.flows
        }


def test_trace_spec_simulates_like_inline_trace(small_trace):
    declared = TraceSpec(
        kind="facebook",
        num_ports=20,
        num_coflows=24,
        max_width=8,
        mean_interarrival=2.0,
        seed=7,
        perturb=0.05,
    )
    assert_reports_equal(
        simulate(spec_for(declared)), simulate(spec_for(small_trace))
    )


@pytest.mark.parametrize("declarative", [True, False])
def test_payload_round_trip(tiny_trace, declarative):
    trace = TraceSpec(num_coflows=4, seed=9) if declarative else tiny_trace
    spec = spec_for(
        trace,
        mode="inter",
        scheduler="sunflow",
        policy="fifo",
        guard=GuardSpec(period=3.0, tau=1.0),
        priority_classes={2: 1, 1: 0},
        seed=11,
    )
    payload = spec_to_payload(spec)
    assert spec_to_payload(spec_from_payload(payload)) == payload
    if declarative:
        assert spec_from_payload(payload) == spec
