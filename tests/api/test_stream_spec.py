"""Tests for the ``stream=True`` spec/facade surface."""

import pytest

from repro.api import (
    NetworkSpec,
    SimulationSpec,
    TraceSpec,
    simulate,
    spec_from_payload,
    spec_to_payload,
)
from repro.sim.streaming import StreamingReport, StreamingResult
from repro.workloads import paper_trace


@pytest.fixture(scope="module")
def trace_spec():
    return TraceSpec(num_coflows=60, num_ports=24, max_width=8, seed=6, perturb=0.05)


class TestFacade:
    def test_returns_streaming_result(self, trace_spec):
        result = simulate(
            SimulationSpec(trace=trace_spec, mode="inter", scheduler="sunflow", stream=True)
        )
        assert isinstance(result, StreamingResult)
        assert isinstance(result.report, StreamingReport)

    def test_aggregates_match_in_memory(self, trace_spec):
        base = SimulationSpec(trace=trace_spec, mode="inter", scheduler="sunflow")
        memory_report = simulate(base)
        result = simulate(
            SimulationSpec(trace=trace_spec, mode="inter", scheduler="sunflow", stream=True)
        )
        assert result.report.count == len(memory_report.records)
        assert result.report.average_cct() == memory_report.average_cct()
        assert result.report.max_cct == max(memory_report.ccts())

    def test_inline_trace_streams(self):
        trace = paper_trace(num_coflows=30, num_ports=20, seed=3)
        memory_report = simulate(
            SimulationSpec(trace=trace, mode="inter", scheduler="sunflow")
        )
        result = simulate(
            SimulationSpec(trace=trace, mode="inter", scheduler="sunflow", stream=True)
        )
        assert result.report.count == len(memory_report.records)
        assert result.report.average_cct() == memory_report.average_cct()


class TestPayload:
    def test_legacy_payload_byte_identity(self, trace_spec):
        """Non-stream specs must not grow a ``stream`` key — the sweep
        cache hashes payloads, so a new default key would invalidate
        every committed cache entry."""
        base = SimulationSpec(trace=trace_spec, mode="inter", scheduler="sunflow")
        payload = spec_to_payload(base)
        assert "stream" not in payload
        assert spec_from_payload(payload) == base

    def test_stream_payload_round_trips(self, trace_spec):
        spec = SimulationSpec(
            trace=trace_spec, mode="inter", scheduler="sunflow", stream=True
        )
        payload = spec_to_payload(spec)
        assert payload["stream"] is True
        assert spec_from_payload(payload) == spec


class TestValidation:
    def test_requires_inter_sunflow(self, trace_spec):
        with pytest.raises(ValueError, match="stream=True requires"):
            SimulationSpec(
                trace=trace_spec, mode="intra", scheduler="sunflow", stream=True
            )
        with pytest.raises(ValueError, match="stream=True requires"):
            SimulationSpec(
                trace=trace_spec, mode="inter", scheduler="varys", stream=True
            )

    def test_rejects_multicore(self, trace_spec):
        with pytest.raises(ValueError, match="K-core"):
            SimulationSpec(
                trace=trace_spec,
                mode="inter",
                scheduler="sunflow",
                network=NetworkSpec(num_cores=2),
                stream=True,
            )
