"""Public-API tests for the K-core spec surface and facade dispatch."""

import json

import pytest

from repro.api import (
    GuardSpec,
    NetworkSpec,
    SimulationSpec,
    TraceSpec,
    override_spec,
    simulate,
    spec_from_payload,
    spec_to_payload,
)
from repro.units import GBPS, MS

#: Small Facebook-like workload reused by every cell here.
TRACE = TraceSpec(num_ports=30, num_coflows=25, seed=2016)


class TestNetworkSpecCores:
    def test_defaults_are_single_core(self):
        network = NetworkSpec()
        assert network.num_cores == 1
        assert network.core_deltas is None and network.core_bandwidths is None
        cores = network.cores()
        assert len(cores) == 1
        assert cores[0].bandwidth_bps == network.bandwidth_bps
        assert cores[0].delta == network.delta

    def test_core_overrides_normalized_and_validated(self):
        network = NetworkSpec(num_cores=2, core_deltas=[0.01, 0.02])
        assert network.core_deltas == (0.01, 0.02)
        assert [c.delta for c in network.cores()] == [0.01, 0.02]
        with pytest.raises(ValueError):
            NetworkSpec(num_cores=0)
        with pytest.raises(ValueError):
            NetworkSpec(num_cores=2, core_deltas=(0.01,))
        with pytest.raises(ValueError):
            NetworkSpec(num_cores=2, core_bandwidths=(1e9, -1.0))

    def test_multicore_policy_validated(self):
        SimulationSpec(trace=TRACE, multicore_policy="balanced-split")
        with pytest.raises(ValueError, match="multicore policy"):
            SimulationSpec(trace=TRACE, multicore_policy="bogus")


class TestPayloadRoundTrip:
    def test_single_core_payload_is_byte_identical_to_legacy_layout(self):
        """The K-core fields must be invisible on single-core specs, so
        sweep caches keyed on payload hashes keep hitting."""
        spec = SimulationSpec(trace=TRACE, mode="inter")
        payload = spec_to_payload(spec)
        assert payload["network"] == {
            "bandwidth_bps": spec.network.bandwidth_bps,
            "delta": spec.network.delta,
        }
        assert "multicore_policy" not in payload
        assert spec_from_payload(json.loads(json.dumps(payload))) == spec

    def test_multicore_payload_round_trips(self):
        spec = SimulationSpec(
            trace=TRACE,
            mode="inter",
            network=NetworkSpec(
                num_cores=4,
                core_deltas=(0.01, 0.01, 0.02, 0.02),
                core_bandwidths=(1 * GBPS, 1 * GBPS, 2 * GBPS, 2 * GBPS),
            ),
            multicore_policy="ok-approx",
        )
        payload = spec_to_payload(spec)
        assert payload["network"]["num_cores"] == 4
        assert payload["multicore_policy"] == "ok-approx"
        assert spec_from_payload(json.loads(json.dumps(payload))) == spec

    def test_override_spec_reaches_core_fields(self):
        spec = SimulationSpec(trace=TRACE)
        assert override_spec(spec, "network.num_cores", 4).network.num_cores == 4
        assert (
            override_spec(spec, "multicore_policy", "balanced-split")
            .multicore_policy
            == "balanced-split"
        )


class TestFacadeDispatch:
    @pytest.mark.parametrize("delta", [2 * MS, 10 * MS])
    def test_fig6_intra_k1_bitwise(self, delta):
        """Fig-6 mode (intra δ-sensitivity): a one-core fabric must give
        record-for-record identical results through the public API."""
        network = NetworkSpec(delta=delta)
        expected = simulate(SimulationSpec(trace=TRACE, mode="intra", network=network))
        got = simulate(
            SimulationSpec(
                trace=TRACE,
                mode="intra",
                network=NetworkSpec(delta=delta, num_cores=1),
                multicore_policy="first-fit",
            )
        )
        assert got.records == expected.records

    @pytest.mark.parametrize("delta", [2 * MS, 10 * MS])
    def test_fig10_inter_k1_bitwise(self, delta):
        """Fig-10 mode (inter δ-sensitivity): same bitwise guarantee on
        the trace-replay path."""
        expected = simulate(
            SimulationSpec(
                trace=TRACE, mode="inter", network=NetworkSpec(delta=delta)
            )
        )
        got = simulate(
            SimulationSpec(
                trace=TRACE,
                mode="inter",
                network=NetworkSpec(delta=delta, num_cores=1),
                multicore_policy="ok-approx",
            )
        )
        assert got.records == expected.records

    @pytest.mark.parametrize("mode", ["intra", "inter"])
    @pytest.mark.parametrize("k", [2, 4])
    def test_multicore_runs_through_facade(self, mode, k):
        report = simulate(
            SimulationSpec(
                trace=TRACE, mode=mode, network=NetworkSpec(num_cores=k)
            )
        )
        assert len(report.records) == TRACE.num_coflows

    def test_non_sunflow_schedulers_reject_cores(self):
        with pytest.raises(ValueError, match="K-core"):
            simulate(
                SimulationSpec(
                    trace=TRACE,
                    scheduler="solstice",
                    network=NetworkSpec(num_cores=2),
                )
            )
        with pytest.raises(ValueError, match="K-core"):
            simulate(
                SimulationSpec(
                    trace=TRACE,
                    mode="inter",
                    scheduler="varys",
                    multicore_policy="ok-approx",
                )
            )

    def test_guard_rejected_on_multicore(self):
        with pytest.raises(ValueError, match="single-switch"):
            simulate(
                SimulationSpec(
                    trace=TRACE,
                    mode="inter",
                    network=NetworkSpec(num_cores=2),
                    guard=GuardSpec(period=1.0, tau=0.1),
                )
            )

    def test_first_fit_rejected_in_inter_mode(self):
        with pytest.raises(ValueError, match="first-fit"):
            simulate(
                SimulationSpec(
                    trace=TRACE, mode="inter", multicore_policy="first-fit"
                )
            )
