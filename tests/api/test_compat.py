"""Legacy keyword spellings stay usable — with a ``DeprecationWarning``.

Historical call sites spelled the network parameters differently
(``bandwidth=``, ``rate_bps=``, ``reconf_delay=``…).  The
``repro.compat.legacy_entry_point`` shim maps them onto the canonical
``bandwidth_bps``/``delta`` vocabulary on every ``simulate_*`` function.
"""

import warnings

import pytest

from repro.compat import LEGACY_KEYWORD_ALIASES, canonical_kwargs
from repro.sim import simulate_inter_sunflow, simulate_intra_sunflow
from repro.units import GBPS, MS

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


@pytest.mark.parametrize("alias", ["reconf_delay", "reconfiguration_delay"])
def test_delta_aliases(figure1_coflow, alias):
    from repro.core.coflow import CoflowTrace

    trace = CoflowTrace(7, [figure1_coflow])
    canonical = simulate_intra_sunflow(trace, BANDWIDTH, DELTA)
    with pytest.deprecated_call(match=f"{alias}.*delta"):
        aliased = simulate_intra_sunflow(trace, BANDWIDTH, **{alias: DELTA})
    assert aliased.records == canonical.records


@pytest.mark.parametrize("alias", ["bandwidth", "rate_bps"])
def test_bandwidth_aliases(figure1_coflow, alias):
    from repro.core.coflow import CoflowTrace

    trace = CoflowTrace(7, [figure1_coflow])
    canonical = simulate_inter_sunflow(trace, BANDWIDTH, DELTA)
    with pytest.deprecated_call(match=f"{alias}.*bandwidth_bps"):
        aliased = simulate_inter_sunflow(trace, delta=DELTA, **{alias: BANDWIDTH})
    assert aliased.records == canonical.records


def test_alias_and_canonical_together_rejected(figure1_coflow):
    from repro.core.coflow import CoflowTrace

    trace = CoflowTrace(7, [figure1_coflow])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError, match="alongside"):
            simulate_intra_sunflow(
                trace, BANDWIDTH, delta=DELTA, reconf_delay=DELTA
            )


def test_canonical_spelling_warns_nothing(figure1_coflow):
    from repro.core.coflow import CoflowTrace

    trace = CoflowTrace(7, [figure1_coflow])
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        simulate_intra_sunflow(trace, bandwidth_bps=BANDWIDTH, delta=DELTA)


def test_decorator_is_reusable():
    @canonical_kwargs(old_name="new_name")
    def f(new_name=0):
        return new_name

    with pytest.deprecated_call():
        assert f(old_name=42) == 42
    assert f(new_name=7) == 7


def test_every_alias_is_registered():
    assert LEGACY_KEYWORD_ALIASES == {
        "reconf_delay": "delta",
        "reconfiguration_delay": "delta",
        "bandwidth": "bandwidth_bps",
        "rate_bps": "bandwidth_bps",
    }


def test_warning_fires_once_per_call_site():
    """A looping legacy caller warns on the first iteration only — but the
    keyword rewrite still happens on every call."""

    @canonical_kwargs(old_name="new_name")
    def f(new_name=0):
        return new_name

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = [f(old_name=i) for i in range(5)]  # one call site
    assert results == [0, 1, 2, 3, 4]  # rewrite applied on all five calls
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)


def test_distinct_call_sites_each_warn():
    @canonical_kwargs(old_name="new_name")
    def f(new_name=0):
        return new_name

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        f(old_name=1)
        f(old_name=2)  # different line: its own notice
    assert len(caught) == 2
