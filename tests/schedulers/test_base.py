"""Tests for the assignment-schedule abstractions."""

import numpy as np
import pytest

from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    compact_demand,
)


class TestAssignment:
    def test_valid_matching_accepted(self):
        assignment = Assignment(circuits=((0, 1), (1, 0)), duration=1.0)
        assert assignment.circuit_set == frozenset({(0, 1), (1, 0)})

    def test_duplicate_source_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            Assignment(circuits=((0, 1), (0, 2)), duration=1.0)

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            Assignment(circuits=((0, 1), (2, 1)), duration=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Assignment(circuits=((0, 1),), duration=0.0)

    def test_empty_assignment_allowed(self):
        # Valid: an assignment whose circuits all served dummy pad ports.
        Assignment(circuits=(), duration=1.0)


class TestAssignmentSchedule:
    def make(self):
        return AssignmentSchedule(
            assignments=[
                Assignment(circuits=((0, 1), (1, 0)), duration=2.0),
                Assignment(circuits=((0, 1),), duration=1.0),
            ]
        )

    def test_totals(self):
        schedule = self.make()
        assert schedule.num_assignments == 2
        assert schedule.total_transmission_time == pytest.approx(3.0)

    def test_service_per_circuit(self):
        service = self.make().service_per_circuit()
        assert service == {(0, 1): 3.0, (1, 0): 2.0}

    def test_covers(self):
        schedule = self.make()
        assert schedule.covers({(0, 1): 3.0, (1, 0): 1.5})
        assert not schedule.covers({(0, 1): 3.5})
        assert not schedule.covers({(2, 2): 0.1})
        assert schedule.covers({(2, 2): 0.0})  # zero demand needs no service


class TestDemandMatrix:
    def test_densify(self):
        matrix = AssignmentScheduler.demand_matrix({(0, 2): 1.0, (1, 1): 2.0}, 3)
        assert matrix.dtype == np.float64
        assert matrix.tolist() == [[0.0, 0.0, 1.0], [0.0, 2.0, 0.0], [0.0, 0.0, 0.0]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            AssignmentScheduler.demand_matrix({(0, 5): 1.0}, 3)

    def test_used_ports(self):
        sources, destinations = AssignmentScheduler.used_ports(
            {(3, 1): 1.0, (0, 1): 2.0, (5, 9): 0.0}
        )
        assert sources == [0, 3]
        assert destinations == [1]


class TestCompactDemand:
    def test_square_case(self):
        matrix, src_labels, dst_labels = compact_demand({(10, 20): 1.0, (11, 21): 2.0})
        assert len(matrix) == 2
        assert src_labels == [10, 11]
        assert dst_labels == [20, 21]
        assert matrix[0][0] == 1.0
        assert matrix[1][1] == 2.0

    def test_rectangular_demand_padded_with_virtual_ports(self):
        # 1 source, 3 destinations: matrix is 3x3 with 2 virtual sources.
        matrix, src_labels, dst_labels = compact_demand(
            {(5, 0): 1.0, (5, 1): 1.0, (5, 2): 1.0}
        )
        assert len(matrix) == 3
        assert src_labels[0] == 5
        assert src_labels[1] < 0 and src_labels[2] < 0
        assert dst_labels == [0, 1, 2]
        assert sum(matrix[0]) == pytest.approx(3.0)
        assert sum(matrix[1]) == 0.0

    def test_zero_entries_ignored(self):
        matrix, src_labels, dst_labels = compact_demand({(0, 0): 0.0})
        assert matrix.size == 0
        assert src_labels == []
