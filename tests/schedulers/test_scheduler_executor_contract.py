"""Cross-cutting contract tests: every assignment scheduler's output must
execute to completion under both switch models, and the executed makespan
must respect the theoretical floor.

These fuzz the scheduler ⇄ executor boundary that the per-scheduler test
files only probe pointwise.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import (
    BvnScheduler,
    EdmondScheduler,
    SolsticeScheduler,
    TmsScheduler,
)
from repro.sim.assignment_exec import SwitchModel, execute_assignments

SCHEDULERS = [
    SolsticeScheduler(),
    TmsScheduler(),
    EdmondScheduler(slot_duration=0.2),
    BvnScheduler(),
]


@st.composite
def sparse_demands(draw, max_ports=5, max_flows=7):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        demand[(src, dst)] = draw(st.floats(min_value=0.01, max_value=3.0))
    return demand


def bottleneck(demand):
    loads = {}
    for (src, dst), p in demand.items():
        loads[("in", src)] = loads.get(("in", src), 0.0) + p
        loads[("out", dst)] = loads.get(("out", dst), 0.0) + p
    return max(loads.values())


class TestExecutionContract:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @given(demand=sparse_demands())
    @settings(max_examples=25, deadline=None)
    def test_every_schedule_finishes_under_not_all_stop(self, scheduler, demand):
        schedule = scheduler.schedule(dict(demand), 5)
        result = execute_assignments(schedule, demand, delta=0.01)
        assert result.finished
        # Physical floor: nothing beats the bottleneck-port load.
        assert result.completion_time >= bottleneck(demand) * (1 - 1e-9)

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @given(demand=sparse_demands())
    @settings(max_examples=15, deadline=None)
    def test_all_stop_never_beats_not_all_stop(self, scheduler, demand):
        schedule = scheduler.schedule(dict(demand), 5)
        fast = execute_assignments(
            schedule, demand, delta=0.01, model=SwitchModel.NOT_ALL_STOP
        )
        slow = execute_assignments(
            schedule, demand, delta=0.01, model=SwitchModel.ALL_STOP
        )
        assert fast.finished
        if slow.finished:
            assert slow.completion_time >= fast.completion_time - 1e-9

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @given(demand=sparse_demands())
    @settings(max_examples=15, deadline=None)
    def test_switching_count_at_least_flow_count(self, scheduler, demand):
        """Every flow needs at least one circuit establishment."""
        schedule = scheduler.schedule(dict(demand), 5)
        result = execute_assignments(schedule, demand, delta=0.01)
        distinct_circuits_used = {
            circuit for assignment in schedule.assignments
            for circuit in assignment.circuits
        }
        demanded = {c for c, p in demand.items() if p > 0}
        assert demanded <= distinct_circuits_used
        assert result.switching_count >= len(demanded)

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @given(demand=sparse_demands())
    @settings(max_examples=15, deadline=None)
    def test_zero_delta_execution_matches_planned_service(self, scheduler, demand):
        """At δ = 0 the executed completion is within the planned total
        transmission time (preemption is free)."""
        schedule = scheduler.schedule(dict(demand), 5)
        result = execute_assignments(schedule, demand, delta=0.0)
        assert result.finished
        assert result.completion_time <= schedule.total_transmission_time + 1e-9
