"""Tests for the Solstice baseline scheduler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.solstice import SolsticeScheduler


@st.composite
def sparse_demands(draw, max_ports=6, max_flows=10):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        demand[(src, dst)] = draw(st.floats(min_value=0.001, max_value=5.0))
    return demand


class TestScheduleShape:
    def test_empty_demand(self):
        schedule = SolsticeScheduler().schedule({}, 8)
        assert schedule.assignments == []

    def test_single_flow_single_assignment_family(self):
        schedule = SolsticeScheduler().schedule({(0, 1): 1.0}, 8)
        assert schedule.covers({(0, 1): 1.0})
        # One flow: all service on its circuit.
        assert set(schedule.service_per_circuit()) == {(0, 1)}

    def test_permutation_demand(self):
        demand = {(i, i): 1.0 for i in range(4)}
        schedule = SolsticeScheduler().schedule(demand, 4)
        assert schedule.covers(demand)

    def test_assignments_are_matchings(self):
        demand = {(0, 1): 2.0, (0, 2): 1.0, (1, 1): 1.5, (2, 0): 0.7}
        schedule = SolsticeScheduler().schedule(demand, 4)
        for assignment in schedule.assignments:
            sources = [src for src, _ in assignment.circuits]
            destinations = [dst for _, dst in assignment.circuits]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)

    def test_durations_positive(self):
        demand = {(0, 1): 0.37, (1, 0): 1.23}
        schedule = SolsticeScheduler().schedule(demand, 4)
        assert all(a.duration > 0 for a in schedule.assignments)

    def test_tail_fraction_validation(self):
        with pytest.raises(ValueError):
            SolsticeScheduler(tail_fraction=0.0)
        with pytest.raises(ValueError):
            SolsticeScheduler(tail_fraction=1.5)


class TestCoverage:
    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_schedule_always_covers_demand(self, demand):
        schedule = SolsticeScheduler().schedule(demand, 8)
        assert schedule.covers(demand)

    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_all_assignments_are_matchings(self, demand):
        schedule = SolsticeScheduler().schedule(demand, 8)
        for assignment in schedule.assignments:
            sources = [src for src, _ in assignment.circuits]
            destinations = [dst for _, dst in assignment.circuits]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)


class TestPreemptiveBehaviour:
    def test_flows_are_split_across_assignments(self):
        """Solstice's signature inefficiency: a flow's service is spread
        over several assignments (unlike Sunflow's single reservation)."""
        rng = random.Random(3)
        demand = {
            (i, j): rng.uniform(0.2, 2.0) for i in range(4) for j in range(4)
        }
        schedule = SolsticeScheduler().schedule(demand, 4)
        appearances = {}
        for assignment in schedule.assignments:
            for circuit in assignment.circuits:
                appearances[circuit] = appearances.get(circuit, 0) + 1
        assert max(appearances.values()) > 1

    def test_coarser_tail_gives_fewer_assignments(self):
        rng = random.Random(3)
        demand = {(i, j): rng.uniform(0.2, 2.0) for i in range(4) for j in range(4)}
        fine = SolsticeScheduler(tail_fraction=2.0**-12).schedule(demand, 4)
        coarse = SolsticeScheduler(tail_fraction=2.0**-4).schedule(demand, 4)
        assert coarse.num_assignments <= fine.num_assignments
