"""Tests for the Edmond (max-weight matching per slot) baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.edmond import EdmondScheduler


@st.composite
def sparse_demands(draw, max_ports=5, max_flows=8):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        demand[(src, dst)] = draw(st.floats(min_value=0.01, max_value=3.0))
    return demand


class TestConfiguration:
    def test_slot_duration_validated(self):
        with pytest.raises(ValueError):
            EdmondScheduler(slot_duration=0.0)

    def test_empty_demand(self):
        assert EdmondScheduler().schedule({}, 4).assignments == []


class TestSlotting:
    def test_small_demand_occupies_full_slot(self):
        """Slots are fixed externally: demand smaller than a slot still
        holds the circuit for the whole slot (the paper's inefficiency)."""
        schedule = EdmondScheduler(slot_duration=0.1).schedule({(0, 1): 0.03}, 4)
        assert schedule.num_assignments == 1
        assert schedule.assignments[0].duration == pytest.approx(0.1)

    def test_long_flow_needs_multiple_slots(self):
        schedule = EdmondScheduler(slot_duration=0.1).schedule({(0, 1): 0.35}, 4)
        # 0.35 s at 0.1 s slots -> 4 assignments (3 full + 1 remainder).
        assert schedule.num_assignments == 4
        assert schedule.covers({(0, 1): 0.35})

    def test_parallel_flows_share_slots(self):
        demand = {(0, 1): 0.1, (1, 0): 0.1}
        schedule = EdmondScheduler(slot_duration=0.1).schedule(demand, 4)
        assert schedule.num_assignments == 1
        assert set(schedule.assignments[0].circuits) == {(0, 1), (1, 0)}

    def test_matching_prefers_heavier_total(self):
        """The max-weight matching picks the heavier of two conflicting
        configurations first."""
        demand = {(0, 0): 5.0, (0, 1): 0.1, (1, 0): 0.1}
        schedule = EdmondScheduler(slot_duration=10.0).schedule(demand, 2)
        first = schedule.assignments[0]
        assert (0, 0) in first.circuits


class TestCoverage:
    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_schedule_always_covers_demand(self, demand):
        schedule = EdmondScheduler(slot_duration=0.25).schedule(demand, 5)
        assert schedule.covers(demand)

    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_assignments_are_matchings(self, demand):
        schedule = EdmondScheduler(slot_duration=0.25).schedule(demand, 5)
        for assignment in schedule.assignments:
            sources = [src for src, _ in assignment.circuits]
            destinations = [dst for _, dst in assignment.circuits]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)
