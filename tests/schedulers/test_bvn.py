"""Tests for the pure-BvN scheduler (the δ = 0 optimum of §2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import packet_lower_bound
from repro.core.coflow import Coflow
from repro.schedulers.bvn import BvnScheduler
from repro.sim.assignment_exec import execute_assignments
from repro.units import GBPS, MB

B = 1 * GBPS


@st.composite
def sparse_demands(draw, max_ports=5, max_flows=8):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        demand[(src, dst)] = draw(st.floats(min_value=0.01, max_value=5.0))
    return demand


class TestShape:
    def test_empty_demand(self):
        assert BvnScheduler().schedule({}, 4).assignments == []

    def test_permutation_demand_single_assignment(self):
        demand = {(i, i): 2.0 for i in range(3)}
        schedule = BvnScheduler().schedule(demand, 3)
        assert schedule.covers(demand)
        # No stuffing needed, exact decomposition: one term.
        assert schedule.num_assignments == 1

    def test_assignments_are_matchings(self):
        demand = {(0, 1): 2.0, (1, 0): 1.0, (0, 0): 0.5}
        for assignment in BvnScheduler().schedule(demand, 2).assignments:
            sources = [src for src, _ in assignment.circuits]
            destinations = [dst for _, dst in assignment.circuits]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)


class TestOptimalityAtZeroDelta:
    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_makespan_equals_packet_bound_at_zero_delta(self, demand):
        """§2.3: BvN is optimal at δ = 0 — the executed schedule finishes
        exactly at the bottleneck-port load T^p_L."""
        schedule = BvnScheduler().schedule(demand, 5)
        result = execute_assignments(schedule, demand, delta=0.0)
        assert result.finished
        coflow = Coflow.from_demand(1, {k: v * B / 8 for k, v in demand.items()})
        assert result.completion_time <= packet_lower_bound(coflow, B) * (1 + 1e-6)

    @given(sparse_demands())
    @settings(max_examples=60, deadline=None)
    def test_schedule_always_covers_demand(self, demand):
        assert BvnScheduler().schedule(demand, 5).covers(demand)

    def test_collapses_at_positive_delta(self):
        """The §3.1 critique: at δ > 0 the preemptive decomposition pays a
        reconfiguration per assignment and loses to the bound badly when
        the matrix is dense."""
        import random

        rng = random.Random(4)
        demand = {(i, j): rng.uniform(0.02, 0.2) for i in range(4) for j in range(4)}
        schedule = BvnScheduler().schedule(demand, 4)
        result = execute_assignments(schedule, demand, delta=0.05)
        coflow = Coflow.from_demand(1, {k: v * B / 8 for k, v in demand.items()})
        bound = packet_lower_bound(coflow, B)
        assert result.completion_time > 1.3 * bound
