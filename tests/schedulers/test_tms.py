"""Tests for the TMS baseline scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.tms import TmsScheduler


@st.composite
def sparse_demands(draw, max_ports=5, max_flows=8):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        demand[(src, dst)] = draw(st.floats(min_value=0.01, max_value=5.0))
    return demand


class TestScheduleShape:
    def test_empty_demand(self):
        assert TmsScheduler().schedule({}, 4).assignments == []

    def test_permutation_demand_dominated_by_one_assignment(self):
        """A permutation demand decomposes into one dominant assignment plus
        short slots created by the zero-fill pre-processing."""
        demand = {(i, i): 2.0 for i in range(3)}
        schedule = TmsScheduler().schedule(demand, 3)
        assert schedule.covers(demand)
        longest = max(a.duration for a in schedule.assignments)
        assert longest >= 2.0
        assert longest / schedule.total_transmission_time > 0.9

    def test_covers_uniform_demand(self):
        demand = {(i, j): 1.0 for i in range(3) for j in range(3)}
        schedule = TmsScheduler().schedule(demand, 3)
        assert schedule.covers(demand)

    def test_assignments_are_matchings(self):
        demand = {(0, 1): 2.0, (1, 0): 1.0, (0, 0): 0.5}
        for assignment in TmsScheduler().schedule(demand, 2).assignments:
            sources = [src for src, _ in assignment.circuits]
            assert len(set(sources)) == len(sources)


class TestOverservice:
    def test_skewed_demand_is_overserved(self):
        """The paper's critique: the zero-fill + Sinkhorn pre-processing
        misshapes skewed demand, so TMS spends far more circuit-time than
        the bottleneck load requires."""
        demand = {(0, 0): 1.0, (0, 1): 1.0, (1, 0): 1.0}
        schedule = TmsScheduler().schedule(demand, 2)
        assert schedule.covers(demand)
        bottleneck = 2.0  # input 0 and output 0 each carry 2 s
        assert schedule.total_transmission_time > 2 * bottleneck

    @given(sparse_demands())
    @settings(max_examples=50, deadline=None)
    def test_schedule_always_covers_demand(self, demand):
        schedule = TmsScheduler().schedule(demand, 5)
        assert schedule.covers(demand)

    @given(sparse_demands())
    @settings(max_examples=50, deadline=None)
    def test_total_time_at_least_bottleneck(self, demand):
        """No schedule can beat the busiest-port load."""
        schedule = TmsScheduler().schedule(demand, 5)
        loads = {}
        for (src, dst), p in demand.items():
            loads[("in", src)] = loads.get(("in", src), 0.0) + p
            loads[("out", dst)] = loads.get(("out", dst), 0.0) + p
        assert schedule.total_transmission_time >= max(loads.values()) * (1 - 1e-9)
