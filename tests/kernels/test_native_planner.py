"""Differential suite for the compiled Sunflow planner (``repro._native``).

The native kernel promises *bitwise* identity with the pure-Python
``schedule_demand`` loop — same reservations in the same order with the
same float bit patterns, and the same PRT boundary arrays afterwards.
Every comparison here is exact (``float.hex()``, array equality), never
approximate: the C source keeps the Python loop's float expressions
verbatim and is compiled with ``-ffp-contract=off``, so any drift at all
is a kernel bug.

Covered surfaces:

* hypothesis fuzz over dense/sparse demands, pre-blocked ports, and
  established-circuit continuations (setup remainders + anchors);
* the RANDOM reservation-order bypass (same-seeded rng streams must
  stay synchronized across backends) and SORTED_DEMAND + quantum;
* multi-coflow ``schedule_many`` sequences sharing one PRT;
* end-to-end Fig-6/Fig-10 API cells (intra and inter Sunflow replays)
  and the K-core fabric at K ∈ {2, 4};
* the graceful-fallback contract: ``REPRO_KERNEL=native`` without the
  extension runs the Python loop and warns exactly once.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.sunflow as sunflow_mod
from repro.core.prt import PortReservationTable
from repro.core.sunflow import (
    ReservationOrder,
    SunflowScheduler,
    native_planner_available,
    planner_backend,
)
from repro.kernels import use_backend

needs_native = pytest.mark.skipif(
    not native_planner_available(),
    reason="repro._native is not built (python setup.py build_ext --inplace)",
)

_PORT = st.integers(min_value=0, max_value=9)
_PAIR = st.tuples(_PORT, _PORT)
_SECONDS = st.floats(
    min_value=1e-6, max_value=8.0, allow_nan=False, allow_infinity=False
)
_DEMAND = st.dictionaries(_PAIR, _SECONDS, min_size=1, max_size=24)
_BLOCKERS = st.dictionaries(_PAIR, _SECONDS, max_size=8)
_ESTABLISHED_VALUE = st.tuples(
    st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
)

_FUZZ = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _reservation_keys(schedule):
    """Bitwise-comparable projection of a schedule (hex floats)."""
    return [
        (r.src, r.dst, r.start.hex(), r.end.hex(), r.setup.hex())
        for r in schedule.reservations
    ]


def _prt_state(prt):
    """The PRT's full boundary state, bitwise (arrays compare exactly)."""
    return (
        {k: v.tolist() for k, v in prt._in_bounds.items()},
        {k: v.tolist() for k, v in prt._out_bounds.items()},
        {k: v.tolist() for k, v in prt._in_refs.items()},
        {k: v.tolist() for k, v in prt._out_refs.items()},
    )


def _plan_once(backend, demand, blockers, established, start_time, **scheduler_kwargs):
    """One blocked-then-planned run under ``backend``; returns keys + state."""
    import random

    with use_backend(backend):
        prt = PortReservationTable()
        if blockers:
            SunflowScheduler().schedule_demand(prt, "blk", blockers, start_time=0.0)
        scheduler = SunflowScheduler(rng=random.Random(99), **scheduler_kwargs)
        schedule = scheduler.schedule_demand(
            prt, "cf", demand, start_time=start_time, established=established
        )
    return _reservation_keys(schedule), _prt_state(prt)


@needs_native
class TestDifferentialFuzz:
    @_FUZZ
    @given(demand=_DEMAND, blockers=_BLOCKERS, start=st.floats(0.0, 2.0))
    def test_ordered_port(self, demand, blockers, start):
        py = _plan_once("python", demand, blockers, None, start)
        nat = _plan_once("native", demand, blockers, None, start)
        assert py == nat

    @_FUZZ
    @given(
        demand=_DEMAND,
        blockers=_BLOCKERS,
        established=st.dictionaries(_PAIR, _ESTABLISHED_VALUE, max_size=6),
        start=st.floats(0.0, 2.0),
    )
    def test_established_continuations(self, demand, blockers, established, start):
        # Only keys present in the demand matter, but stray keys must be
        # ignored identically too — pass the dict through unfiltered.
        py = _plan_once("python", demand, blockers, established, start)
        nat = _plan_once("native", demand, blockers, established, start)
        assert py == nat

    @_FUZZ
    @given(demand=_DEMAND, blockers=_BLOCKERS, seed=st.integers(0, 2**16))
    def test_random_order_rng_stays_synchronized(self, demand, blockers, seed):
        """RANDOM order shuffles via ``_make_entries`` on both backends, so
        same-seeded rng streams must produce the same plan."""
        import random

        results = []
        for backend in ("python", "native"):
            with use_backend(backend):
                prt = PortReservationTable()
                if blockers:
                    SunflowScheduler().schedule_demand(prt, "blk", blockers)
                scheduler = SunflowScheduler(
                    order=ReservationOrder.RANDOM, rng=random.Random(seed)
                )
                first = scheduler.schedule_demand(prt, "a", demand)
                # A second plan proves the rng stream advanced identically.
                second = scheduler.schedule_demand(prt, "b", demand, start_time=0.5)
            results.append(
                (_reservation_keys(first), _reservation_keys(second), _prt_state(prt))
            )
        assert results[0] == results[1]

    @_FUZZ
    @given(demand=_DEMAND, quantum=st.one_of(st.none(), st.floats(0.001, 0.1)))
    def test_sorted_demand_with_quantum(self, demand, quantum):
        py = _plan_once(
            "python",
            demand,
            None,
            None,
            0.0,
            order=ReservationOrder.SORTED_DEMAND,
            quantum=quantum,
        )
        nat = _plan_once(
            "native",
            demand,
            None,
            None,
            0.0,
            order=ReservationOrder.SORTED_DEMAND,
            quantum=quantum,
        )
        assert py == nat

    @_FUZZ
    @given(
        demands=st.lists(st.tuples(_PAIR, _SECONDS), min_size=2, max_size=20),
        start=st.floats(0.0, 1.0),
    )
    def test_schedule_many_sequence(self, demands, start):
        """Several coflows planned back-to-back on one shared PRT."""
        split = max(1, len(demands) // 2)
        coflows = [
            (1, dict(demands[:split])),
            (2, dict(demands[split:]) or {(0, 1): 0.5}),
        ]
        results = []
        for backend in ("python", "native"):
            with use_backend(backend):
                prt, schedules = SunflowScheduler().schedule_many(
                    coflows, start_time=start
                )
            results.append(
                (
                    {k: _reservation_keys(s) for k, s in schedules.items()},
                    _prt_state(prt),
                )
            )
        assert results[0] == results[1]


@needs_native
class TestPinnedApiCells:
    """Fig-6/Fig-10 sweep cells must be backend-invariant, bitwise."""

    @pytest.fixture(scope="class")
    def tiny_trace(self):
        from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig

        config = GeneratorConfig(
            num_ports=12, num_coflows=8, max_width=4, mean_interarrival=1.5, seed=3
        )
        return FacebookLikeTraceGenerator(config).generate()

    def run_cell(self, trace, backend, mode, num_cores=1):
        from repro.api import NetworkSpec, SimulationSpec, simulate
        from repro.units import GBPS, MS

        spec = SimulationSpec(
            trace=trace,
            mode=mode,
            scheduler="sunflow",
            network=NetworkSpec(
                bandwidth_bps=1 * GBPS, delta=10 * MS, num_cores=num_cores
            ),
        )
        with use_backend(backend):
            report = simulate(spec)
        return sorted(
            (
                r.coflow_id,
                r.cct.hex(),
                r.completion_time.hex(),
                r.switching_count,
            )
            for r in report.records
        )

    @pytest.mark.parametrize("mode", ["intra", "inter"])
    def test_sunflow_cell_backend_invariant(self, tiny_trace, mode):
        assert self.run_cell(tiny_trace, "python", mode) == self.run_cell(
            tiny_trace, "native", mode
        )

    @pytest.mark.parametrize("cores", [2, 4])
    def test_multicore_cell_backend_invariant(self, tiny_trace, cores):
        assert self.run_cell(tiny_trace, "python", "inter", cores) == self.run_cell(
            tiny_trace, "native", "inter", cores
        )


class TestFallback:
    def test_planner_backend_reporting(self):
        with use_backend("python"):
            assert planner_backend() == "python"
        if native_planner_available():
            with use_backend("native"):
                assert planner_backend() == "native"

    def test_missing_extension_falls_back_with_one_warning(self, monkeypatch):
        """Extension artificially absent: REPRO_KERNEL=native plans via the
        Python loop, bitwise-equal to REPRO_KERNEL=python, warning once."""
        demand = {(0, 1): 1.25, (1, 0): 0.5}
        with use_backend("python"):
            expected_prt = PortReservationTable()
            expected = SunflowScheduler().schedule_demand(expected_prt, 7, demand)

        monkeypatch.setattr(sunflow_mod, "_native", None)
        monkeypatch.setattr(sunflow_mod, "_warned_native_missing", False)
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert not native_planner_available()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert planner_backend() == "python"  # reports the loop that runs
            prt = PortReservationTable()
            schedule = SunflowScheduler().schedule_demand(prt, 7, demand)
        native_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(native_warnings) == 1
        assert "pure-Python planner" in str(native_warnings[0].message)

        assert _reservation_keys(schedule) == _reservation_keys(expected)
        assert _prt_state(prt) == _prt_state(expected_prt)

        # The warning is once-per-process, not once-per-call.
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            SunflowScheduler().schedule_demand(PortReservationTable(), 8, demand)
        assert not [w for w in again if issubclass(w.category, RuntimeWarning)]

    def test_layout_version_matches(self):
        if not native_planner_available():
            pytest.skip("repro._native is not built")
        from repro import _native
        from repro.core.prt import PRT_LAYOUT_VERSION

        assert _native.LAYOUT_VERSION == PRT_LAYOUT_VERSION
