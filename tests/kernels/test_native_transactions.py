"""Differential suite for the compiled PRT transaction kernels.

``repro._native`` carries four replan-transaction entry points —
``prt_rollback``, ``prt_replay``, ``transform_continuation``, and
``schedule_demand_packed`` — each promising *bitwise* identity with the
pure-Python twin it shadows (``_rollback_python``, ``_replay_python``,
``InterCoflowSimulator._transform_continuation``, and the
``_pack_demand`` + ``schedule_demand`` path).  Every comparison here is
exact: ``array.tobytes()`` for the per-port buffers (true bit patterns,
not float equality) and ``float.hex()`` for reservation fields.

The decline contract is load-bearing and tested directly: a kernel that
cannot finish a transaction (foreign reservation types, ports outside
the int32 hashing range, a replay conflict) must refuse *before any
mutation*, so the dispatcher's fall-through to the Python twin sees an
intact table and reproduces the byte-identical outcome — including the
exact :class:`PortConflictError` text on conflicting replays.
"""

from __future__ import annotations

import random

import pytest

import repro.core.prt as prt_mod
from repro.core.demand import PackedDemand
from repro.core.prt import (
    TIME_EPS,
    PortConflictError,
    PortReservationTable,
    Reservation,
    native_transactions_available,
)
from repro.core.sunflow import SunflowScheduler
from repro.kernels import use_backend

needs_native = pytest.mark.skipif(
    not native_transactions_available(),
    reason="repro._native is not built (python setup.py build_ext --inplace)",
)


def _bitwise_state(prt):
    """The table's complete storage, bit-for-bit."""
    return (
        {p: a.tobytes() for p, a in prt._in_bounds.items()},
        {p: a.tobytes() for p, a in prt._in_refs.items()},
        {p: a.tobytes() for p, a in prt._out_bounds.items()},
        {p: a.tobytes() for p, a in prt._out_refs.items()},
        prt._ends.tobytes(),
        [_res_hex(r) for r in prt._reservations],
    )


def _res_hex(r):
    return (r.src, r.dst, r.coflow_id, r.start.hex(), r.end.hex(), r.setup.hex())


def _twin_tables(seed, steps=70, ports=6):
    """Two tables built by the identical reserve sequence (so their
    storage is bitwise equal) plus the accepted reservations in journal
    order."""
    rng = random.Random(seed)
    a = PortReservationTable()
    b = PortReservationTable()
    accepted = []
    for step in range(steps):
        src = rng.randrange(ports)
        dst = rng.randrange(ports)
        start = rng.uniform(0, 6)
        end = start + rng.uniform(0.02, 1.0)
        res = None
        for table in (a, b):
            try:
                res = table.reserve(src, dst, start, end, step, 0.01)
            except PortConflictError:
                res = None
        if res is not None:
            accepted.append(res)
    assert _bitwise_state(a) == _bitwise_state(b)
    return a, b, accepted


@needs_native
class TestRollbackKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.8, 1.0])
    def test_bitwise_differential(self, seed, fraction):
        a, b, _ = _twin_tables(seed)
        token = int(len(a._reservations) * fraction)
        undone_native = prt_mod._native.prt_rollback(a, token)
        undone_python = b._rollback_python(token)
        assert undone_native == undone_python
        assert _bitwise_state(a) == _bitwise_state(b)
        a.validate()

    def test_small_suffix_matches_per_item_path(self):
        """The Python twin switches strategy at 4 undone items; the kernel
        must be bitwise-identical on both sides of that threshold."""
        for undone in (1, 2, 4, 5, 9):
            a, b, _ = _twin_tables(17, steps=40)
            token = max(0, len(a._reservations) - undone)
            assert prt_mod._native.prt_rollback(a, token) == b._rollback_python(token)
            assert _bitwise_state(a) == _bitwise_state(b)

    def test_invalid_token_message_matches_python(self):
        a, b, _ = _twin_tables(5, steps=12)
        for token in (-1, len(a._reservations) + 3):
            with pytest.raises(ValueError) as native_exc:
                prt_mod._native.prt_rollback(a, token)
            with pytest.raises(ValueError) as python_exc:
                b._rollback_python(token)
            assert str(native_exc.value) == str(python_exc.value)
        # Neither raise mutated anything.
        assert _bitwise_state(a) == _bitwise_state(b)

    def test_noop_rollback_returns_zero(self):
        a, _, _ = _twin_tables(3, steps=10)
        before = _bitwise_state(a)
        assert prt_mod._native.prt_rollback(a, len(a._reservations)) == 0
        assert _bitwise_state(a) == before


@needs_native
class TestReplayKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bitwise_differential(self, seed):
        """Roll both twins back, replay the undone suffix: the kernel's
        one-call merge must reproduce the Python twin's staging exactly."""
        a, b, _ = _twin_tables(seed)
        token = len(a._reservations) * 2 // 3
        batch = list(a._reservations[token:])
        if len(batch) < 2:
            pytest.skip("degenerate trace: suffix too small to batch")
        a._rollback_python(token)
        b._rollback_python(token)
        assert prt_mod._native.prt_replay(a, batch, TIME_EPS) is True
        b._replay_python(batch)
        assert _bitwise_state(a) == _bitwise_state(b)
        a.validate()

    def test_interleaved_merge_not_just_tail(self):
        """Force the merge path: replayed intervals land *between*
        existing ones on the same port."""
        a = PortReservationTable()
        b = PortReservationTable()
        for table in (a, b):
            table.reserve(0, 1, 0.0, 1.0, 1, 0.1)
            table.reserve(0, 1, 4.0, 5.0, 2, 0.1)
        batch = [
            Reservation(start=1.5, end=2.0, src=0, dst=1, coflow_id=3, setup=0.05),
            Reservation(start=2.5, end=3.5, src=0, dst=1, coflow_id=4, setup=0.05),
        ]
        assert prt_mod._native.prt_replay(a, batch, TIME_EPS) is True
        b._replay_python(batch)
        assert _bitwise_state(a) == _bitwise_state(b)

    def test_conflict_declines_before_mutation(self):
        """A conflicting batch: the kernel returns False with the table
        untouched, and the dispatcher's fall-through raises the Python
        twin's byte-identical error."""
        a = PortReservationTable()
        a.reserve(0, 1, 1.0, 2.0, 1, 0.1)
        before = _bitwise_state(a)
        batch = [
            Reservation(start=2.5, end=3.0, src=0, dst=2, coflow_id=2, setup=0.05),
            Reservation(start=2.8, end=3.5, src=0, dst=3, coflow_id=3, setup=0.05),
        ]
        assert prt_mod._native.prt_replay(a, batch, TIME_EPS) is False
        assert _bitwise_state(a) == before
        with pytest.raises(PortConflictError) as twin_exc:
            a._replay_python(batch)
        assert _bitwise_state(a) == before
        with use_backend("native"):
            with pytest.raises(PortConflictError) as dispatch_exc:
                a.replay(batch)
        assert str(dispatch_exc.value) == str(twin_exc.value)
        assert _bitwise_state(a) == before

    def test_conflict_with_existing_reservation(self):
        a = PortReservationTable()
        a.reserve(0, 1, 1.0, 2.0, 1, 0.1)
        before = _bitwise_state(a)
        batch = [
            Reservation(start=1.5, end=2.5, src=0, dst=2, coflow_id=2, setup=0.05),
            Reservation(start=6.0, end=7.0, src=3, dst=4, coflow_id=3, setup=0.05),
        ]
        assert prt_mod._native.prt_replay(a, batch, TIME_EPS) is False
        assert _bitwise_state(a) == before
        with pytest.raises(PortConflictError):
            a._replay_python(batch)
        assert _bitwise_state(a) == before

    def test_foreign_objects_decline_without_mutation(self):
        a = PortReservationTable()
        a.reserve(0, 1, 0.0, 1.0, 1, 0.1)
        before = _bitwise_state(a)
        assert prt_mod._native.prt_replay(a, [object(), object()], TIME_EPS) is False
        assert _bitwise_state(a) == before

    def test_out_of_range_ports_fall_back_to_python(self):
        """Ports beyond int32: the kernel declines, the Python twin
        finishes the dispatch, and the result matches a pure-Python run."""
        big = 2**40
        batch = [
            Reservation(start=0.0, end=1.0, src=big, dst=0, coflow_id=1, setup=0.0),
            Reservation(start=2.0, end=3.0, src=big, dst=0, coflow_id=1, setup=0.0),
        ]
        a = PortReservationTable()
        before = _bitwise_state(a)
        assert prt_mod._native.prt_replay(a, batch, TIME_EPS) is False
        assert _bitwise_state(a) == before
        b = PortReservationTable()
        with use_backend("native"):
            a.replay(batch)
        with use_backend("python"):
            b.replay(batch)
        assert _bitwise_state(a) == _bitwise_state(b)
        assert len(a) == 2


@needs_native
class TestScheduleDemandPacked:
    """The fused packed-columns planner entry vs its unpacked twins."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_three_way_differential(self, seed):
        rng = random.Random(seed)
        demand = {
            (rng.randrange(8), rng.randrange(8)): rng.uniform(0.001, 3.0)
            for _ in range(rng.randrange(1, 18))
        }
        blockers = {
            (rng.randrange(8), rng.randrange(8)): rng.uniform(0.1, 1.0)
            for _ in range(rng.randrange(0, 5))
        }
        start = rng.uniform(0.0, 2.0)
        outcomes = []
        for backend, mapping in (
            ("native", PackedDemand(demand)),  # schedule_demand_packed
            ("native", dict(demand)),  # _pack_demand + schedule_demand
            ("python", dict(demand)),  # pure-Python loop
        ):
            with use_backend(backend):
                prt = PortReservationTable()
                if blockers:
                    SunflowScheduler().schedule_demand(prt, "blk", blockers)
                schedule = SunflowScheduler().schedule_demand(
                    prt, "cf", mapping, start_time=start
                )
            outcomes.append(
                ([_res_hex(r) for r in schedule.reservations], _bitwise_state(prt))
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_established_continuations(self, seed):
        rng = random.Random(seed)
        demand = {
            (rng.randrange(6), rng.randrange(6)): rng.uniform(0.01, 2.0)
            for _ in range(rng.randrange(2, 12))
        }
        established = {}
        for circuit in list(demand)[: rng.randrange(1, 4)]:
            anchor = rng.choice([None, rng.uniform(0.5, 6.0)])
            established[circuit] = (rng.uniform(0.0, 0.02), anchor)
        outcomes = []
        for backend, mapping in (
            ("native", PackedDemand(demand)),
            ("python", dict(demand)),
        ):
            with use_backend(backend):
                prt = PortReservationTable()
                schedule = SunflowScheduler().schedule_demand(
                    prt, "cf", mapping, start_time=0.25, established=established
                )
            outcomes.append(
                ([_res_hex(r) for r in schedule.reservations], _bitwise_state(prt))
            )
        assert outcomes[0] == outcomes[1]

    def test_in_place_value_patches_are_visible(self):
        """Service decrements write through ``PackedDemand.__setitem__``;
        the columns the kernel reads must track them."""
        base = {(0, 1): 2.0, (1, 2): 1.5, (2, 0): 0.75}
        packed = PackedDemand(base)
        packed[(1, 2)] = 0.4
        packed[(2, 0)] = 0.0  # served out: the kernel must drop it
        plain = dict(base)
        plain[(1, 2)] = 0.4
        plain[(2, 0)] = 0.0
        assert packed.packed_ok
        outcomes = []
        for backend, mapping in (("native", packed), ("python", plain)):
            with use_backend(backend):
                prt = PortReservationTable()
                schedule = SunflowScheduler().schedule_demand(prt, 9, mapping)
            outcomes.append(
                ([_res_hex(r) for r in schedule.reservations], _bitwise_state(prt))
            )
        assert outcomes[0] == outcomes[1]
        assert all(r[:2] != (2, 0) for r in outcomes[0][0])

    def test_key_mutation_unpacks_and_still_matches(self):
        """Adding a key flips ``packed_ok`` off; the planner must take
        the sorted-items path and stay bitwise-identical anyway."""
        packed = PackedDemand({(0, 1): 1.0})
        packed[(3, 2)] = 0.5
        assert not packed.packed_ok
        outcomes = []
        for backend in ("native", "python"):
            with use_backend(backend):
                prt = PortReservationTable()
                schedule = SunflowScheduler().schedule_demand(prt, 1, dict(packed))
            outcomes.append([_res_hex(r) for r in schedule.reservations])
        with use_backend("native"):
            prt = PortReservationTable()
            schedule = SunflowScheduler().schedule_demand(prt, 1, packed)
        assert [_res_hex(r) for r in schedule.reservations] == outcomes[0] == outcomes[1]

    def test_empty_after_filter_returns_no_plan(self):
        packed = PackedDemand({(0, 1): 0.0, (2, 3): TIME_EPS / 2})
        with use_backend("native"):
            prt = PortReservationTable()
            schedule = SunflowScheduler().schedule_demand(prt, 1, packed)
        assert schedule.reservations == []
        assert len(prt) == 0


@needs_native
class TestTransformContinuationEndToEnd:
    """The transform proof runs on every replan of a served Coflow; an
    end-to-end inter-Sunflow replay exercises accept, proof-failure, and
    recompute outcomes.  Records AND perf counters must be identical
    across backends — a transform that accepted where the Python twin
    recomputed would desynchronize ``plans_transformed`` even if the
    final schedule happened to agree."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_replay_backend_invariant_with_transforms(self, seed):
        from repro.perf import PerfCounters
        from repro.sim.circuit_sim import InterCoflowSimulator
        from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig

        config = GeneratorConfig(
            num_ports=14,
            num_coflows=30,
            max_width=6,
            mean_interarrival=0.8,
            seed=seed,
        )
        trace = FacebookLikeTraceGenerator(config).generate()
        results = {}
        for backend in ("python", "native"):
            with use_backend(backend):
                perf = PerfCounters()
                simulator = InterCoflowSimulator(
                    trace, bandwidth_bps=1e9, delta=0.01, perf=perf
                )
                report = simulator.run()
            results[backend] = (
                sorted(
                    (r.coflow_id, r.cct.hex(), r.completion_time.hex(), r.switching_count)
                    for r in report.records
                ),
                perf.snapshot()["counts"],
            )
        assert results["python"][0] == results["native"][0]
        assert results["python"][1] == results["native"][1]
        assert results["python"][1].get("plans_transformed", 0) > 0

    def test_never_mutates_on_any_outcome(self):
        """Whatever the kernel returns — heads, None, or a decline — the
        PRT buffers must be untouched afterwards."""
        import repro.sim.circuit_sim as sim_mod
        from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig

        config = GeneratorConfig(
            num_ports=10, num_coflows=12, max_width=4, mean_interarrival=0.6, seed=2
        )
        trace = FacebookLikeTraceGenerator(config).generate()
        native = prt_mod._native.transform_continuation
        seen = {"calls": 0}

        def checked(*args):
            prt = args[0]
            before = _bitwise_state(prt)
            result = native(*args)
            assert _bitwise_state(prt) == before
            seen["calls"] += 1
            return result

        original = prt_mod._native
        try:
            class _Proxy:
                def __getattr__(self, name):
                    if name == "transform_continuation":
                        return checked
                    return getattr(original, name)

            sim_mod.prt_mod._native = _Proxy()
            with use_backend("native"):
                simulator = sim_mod.InterCoflowSimulator(
                    trace, bandwidth_bps=1e9, delta=0.01
                )
                simulator.run()
        finally:
            sim_mod.prt_mod._native = original
        assert seen["calls"] > 0
