"""Backend selection and demand canonicalization (the kernel-layer contract)."""

import numpy as np
import pytest

from repro.kernels import (
    BACKEND_ENV,
    active_backend,
    as_demand_matrix,
    numpy_enabled,
    use_backend,
)
from repro.schedulers.base import AssignmentScheduler, canonical_demand, compact_demand


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert active_backend() == "numpy"
        assert numpy_enabled()

    def test_env_var_selects_python(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert active_backend() == "python"
        assert not numpy_enabled()

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fortran")
        with pytest.raises(ValueError, match="fortran"):
            active_backend()

    def test_use_backend_restores(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with use_backend("python"):
            assert active_backend() == "python"
        assert active_backend() == "numpy"

    def test_use_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with use_backend("fortran"):
                pass  # pragma: no cover

    def test_native_is_a_known_backend(self, monkeypatch):
        """``native`` swaps only the Sunflow planner; the scheduler/packet
        kernel layer must treat it exactly like ``numpy``."""
        monkeypatch.setenv(BACKEND_ENV, "native")
        assert active_backend() == "native"
        assert numpy_enabled()

    def test_backend_names_normalized(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  Native ")
        assert active_backend() == "native"

    def test_dispatch_follows_env_per_call(self, monkeypatch):
        """The backend is read per schedule call, not captured at import."""
        from repro.matching import stuffing

        matrix = [[5.0, 0.0], [0.0, 1.0]]
        with use_backend("numpy"):
            stuffed_numpy, _ = stuffing.quick_stuff(matrix)
        with use_backend("python"):
            stuffed_python, _ = stuffing.quick_stuff(matrix)
        assert stuffed_numpy == stuffed_python


class TestDemandCanonicalization:
    """Regression: ndarray and nested-list demand take one conversion, not many."""

    def test_nested_list_becomes_float64(self):
        a = as_demand_matrix([[1, 2], [3, 4]])
        assert a.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"]
        assert a.tolist() == [[1.0, 2.0], [3.0, 4.0]]

    def test_contiguous_float64_passes_through_without_copy(self):
        src = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = as_demand_matrix(src)
        assert out is src or out.base is src  # no data copy

    def test_other_dtypes_converted_once(self):
        src = np.array([[1, 2], [3, 4]], dtype=np.int32)
        out = as_demand_matrix(src)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_fortran_order_made_contiguous(self):
        src = np.asfortranarray(np.array([[1.0, 2.0], [3.0, 4.0]]))
        out = as_demand_matrix(src)
        assert out.flags["C_CONTIGUOUS"]
        assert out.tolist() == src.tolist()

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            as_demand_matrix([[1.0, 2.0]])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_demand_matrix([[-1.0]])

    def test_empty_is_zero_by_zero(self):
        out = as_demand_matrix([])
        assert out.shape == (0, 0)
        assert out.dtype == np.float64

    def test_canonical_demand_alias(self):
        out = canonical_demand([[1.0, 0.0], [0.0, 2.0]])
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64

    def test_compact_demand_is_float64_ndarray(self):
        matrix, src_labels, dst_labels = compact_demand({(3, 7): 1.5, (4, 8): 2.5})
        assert isinstance(matrix, np.ndarray)
        assert matrix.dtype == np.float64
        assert matrix.flags["C_CONTIGUOUS"]
        assert matrix[0, 0] == 1.5

    def test_demand_matrix_is_float64_ndarray(self):
        matrix = AssignmentScheduler.demand_matrix({(0, 1): 1.0}, 3)
        assert isinstance(matrix, np.ndarray)
        assert matrix.dtype == np.float64
        assert matrix.shape == (3, 3)

    def test_kernels_accept_both_shapes_identically(self):
        """Nested lists and ndarrays yield bitwise-identical kernel results."""
        from repro.kernels.matrix import quick_stuff

        nested = [[5.0, 0.25], [0.5, 1.0]]
        as_array = np.array(nested)
        stuffed_list, dummy_list = quick_stuff(nested)
        stuffed_arr, dummy_arr = quick_stuff(as_array)
        assert stuffed_list.tolist() == stuffed_arr.tolist()
        assert dummy_list.tolist() == dummy_arr.tolist()
