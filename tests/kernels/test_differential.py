"""Differential tests: numpy kernels vs the retained pure-Python references.

Two layers of evidence that the kernels are drop-in:

* primitive level (hypothesis) — random sparse / skewed / doubly
  stochastic matrices through each kernel and its reference twin:
  Hungarian assignments are identical *and* optimal, Hopcroft–Karp
  agrees on matchability and matchings, QuickStuff is bit-for-bit
  identical, BvN terms match and drain exactly, Sinkhorn agrees within
  ulp-level tolerance;
* scheduler level (seeded grid) — Solstice, TMS, Edmond, and BvN
  schedules computed under ``REPRO_KERNEL=numpy`` and
  ``REPRO_KERNEL=python`` for 200+ random demand matrices must have
  identical circuit sequences with durations within 1e-9 relative.
"""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import use_backend
from repro.kernels.assignment import min_cost_assignment as kernel_assignment
from repro.kernels.decomposition import birkhoff_von_neumann as kernel_bvn
from repro.kernels.matching import matching_from_matrix as kernel_matching
from repro.kernels.matrix import quick_stuff as kernel_quick_stuff
from repro.kernels.matrix import sinkhorn_scale as kernel_sinkhorn
from repro.matching.birkhoff_reference import (
    birkhoff_von_neumann as reference_bvn,
    reconstruct,
)
from repro.matching.hopcroft_karp_reference import (
    matching_from_matrix as reference_matching,
    maximum_bipartite_matching,
)
from repro.matching.hungarian_reference import (
    min_cost_assignment as reference_assignment,
)
from repro.matching.stuffing_reference import (
    quick_stuff as reference_quick_stuff,
    sinkhorn_scale as reference_sinkhorn,
)
from repro.schedulers import (
    BvnScheduler,
    EdmondScheduler,
    SolsticeScheduler,
    TmsScheduler,
)

# ----------------------------------------------------------------------
# Matrix strategies: sparse, skewed, and doubly stochastic
# ----------------------------------------------------------------------


@st.composite
def sparse_matrices(draw, max_n=7):
    """Mostly-zero non-negative matrices (dyadic values: exact floats)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.sampled_from([0.2, 0.4, 0.7]))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    return [
        [
            rng.randint(1, 512) / 64.0 if rng.random() < density else 0.0
            for _ in range(n)
        ]
        for _ in range(n)
    ]


@st.composite
def skewed_matrices(draw, max_n=6):
    """Heavy-tailed magnitudes spanning several orders of magnitude."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    return [
        [rng.random() * 10.0 ** rng.randint(-3, 3) for _ in range(n)]
        for _ in range(n)
    ]


@st.composite
def doubly_stochastic_matrices(draw, max_n=6):
    """Strictly positive matrices Sinkhorn-scaled to doubly stochastic."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    positive = [[rng.random() + 0.05 for _ in range(n)] for _ in range(n)]
    return reference_sinkhorn(positive, iterations=200)


# ----------------------------------------------------------------------
# Hungarian
# ----------------------------------------------------------------------


class TestHungarianDifferential:
    @given(skewed_matrices())
    @settings(max_examples=80, deadline=None)
    def test_assignments_identical(self, matrix):
        assert kernel_assignment(matrix) == reference_assignment(matrix)

    @given(sparse_matrices(max_n=5))
    @settings(max_examples=60, deadline=None)
    def test_assignments_identical_sparse(self, matrix):
        assert kernel_assignment(matrix) == reference_assignment(matrix)

    @given(skewed_matrices(max_n=4))
    @settings(max_examples=40, deadline=None)
    def test_kernel_is_optimal(self, matrix):
        """Brute-force check: the kernel's total cost is the minimum."""
        n = len(matrix)
        assignment = kernel_assignment(matrix)
        total = sum(matrix[i][j] for i, j in assignment.items())
        best = min(
            sum(matrix[i][perm[i]] for i in range(n))
            for perm in itertools.permutations(range(n))
        )
        assert total == pytest.approx(best, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# Hopcroft–Karp
# ----------------------------------------------------------------------


class TestMatchingDifferential:
    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_matchings_identical(self, matrix):
        for threshold in (0.0, 1.0, 4.0):
            assert kernel_matching(matrix, threshold=threshold) == reference_matching(
                matrix, threshold=threshold
            )

    @given(sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_perfect_iff_maximum_matching_is_full(self, matrix):
        """The kernel finds a perfect matching exactly when one exists."""
        n = len(matrix)
        adjacency = {
            i: [j for j in range(n) if matrix[i][j] > 0.0] for i in range(n)
        }
        maximum = maximum_bipartite_matching(adjacency)
        result = kernel_matching(matrix, threshold=0.0)
        if len(maximum) == n:
            assert result is not None and len(result) == n
        else:
            assert result is None


# ----------------------------------------------------------------------
# QuickStuff / Sinkhorn
# ----------------------------------------------------------------------


class TestStuffingDifferential:
    @given(sparse_matrices())
    @settings(max_examples=80, deadline=None)
    def test_quick_stuff_bitwise_identical(self, matrix):
        ref_stuffed, ref_dummy = reference_quick_stuff(matrix)
        ker_stuffed, ker_dummy = kernel_quick_stuff(matrix)
        assert ker_stuffed.tolist() == ref_stuffed
        assert ker_dummy.tolist() == ref_dummy

    @given(skewed_matrices())
    @settings(max_examples=60, deadline=None)
    def test_quick_stuff_bitwise_identical_skewed(self, matrix):
        ref_stuffed, _ = reference_quick_stuff(matrix)
        ker_stuffed, _ = kernel_quick_stuff(matrix)
        assert ker_stuffed.tolist() == ref_stuffed

    @given(sparse_matrices(max_n=5))
    @settings(max_examples=40, deadline=None)
    def test_sinkhorn_within_ulp_tolerance(self, matrix):
        reference = np.asarray(reference_sinkhorn(matrix, iterations=60))
        kernel = kernel_sinkhorn(matrix, iterations=60)
        np.testing.assert_allclose(kernel, reference, rtol=1e-9, atol=1e-12)
        # Zeros must be preserved exactly — support decides matchability.
        assert ((kernel == 0.0) == (reference == 0.0)).all()


# ----------------------------------------------------------------------
# Birkhoff–von-Neumann
# ----------------------------------------------------------------------


class TestBvnDifferential:
    @given(doubly_stochastic_matrices())
    @settings(max_examples=40, deadline=None)
    def test_terms_identical_and_drain_exact(self, matrix):
        ref_terms = reference_bvn(matrix)
        ker_terms = kernel_bvn(matrix)
        assert len(ker_terms) == len(ref_terms)
        for ours, theirs in zip(ker_terms, ref_terms):
            assert ours.permutation == theirs.permutation
            assert ours.weight == pytest.approx(theirs.weight, rel=1e-9, abs=1e-12)
        # Exact drain: the terms rebuild the matrix.
        n = len(matrix)
        rebuilt = reconstruct(ker_terms, n)
        np.testing.assert_allclose(rebuilt, matrix, rtol=1e-6, atol=1e-9)

    @given(sparse_matrices(max_n=5))
    @settings(max_examples=40, deadline=None)
    def test_terms_identical_after_stuffing(self, matrix):
        stuffed, _ = reference_quick_stuff(matrix)
        if sum(stuffed[0]) <= 0.0:
            return
        ref_terms = reference_bvn(stuffed)
        ker_terms = kernel_bvn(stuffed)
        assert [t.permutation for t in ker_terms] == [
            t.permutation for t in ref_terms
        ]
        assert [t.weight for t in ker_terms] == pytest.approx(
            [t.weight for t in ref_terms], rel=1e-9
        )


# ----------------------------------------------------------------------
# Scheduler level: 200+ random demand matrices, both backends
# ----------------------------------------------------------------------

_SCHEDULERS = {
    "solstice": SolsticeScheduler,
    "tms": TmsScheduler,
    "edmond": EdmondScheduler,
    "bvn": BvnScheduler,
}


def _random_demand(seed):
    """Random sparse demand over a random port subset (seconds scale)."""
    rng = random.Random(seed)
    ports = rng.randint(2, 9)
    density = rng.choice([0.25, 0.5, 0.9])
    demand = {}
    for src in range(ports):
        for dst in range(ports):
            if rng.random() < density:
                demand[(src, dst)] = rng.random() * 2.0 + 0.01
    if not demand:
        demand[(0, 1)] = 1.0
    return demand, ports


def _run(name, demand, ports, backend):
    with use_backend(backend):
        return _SCHEDULERS[name]().schedule(demand, ports)


@pytest.mark.parametrize("name", sorted(_SCHEDULERS))
@pytest.mark.parametrize("seed", range(52))
def test_schedules_equivalent_across_backends(name, seed):
    """4 schedulers × 52 seeds = 208 matrices; 0 mismatches allowed."""
    demand, ports = _random_demand(seed * 7919 + sum(map(ord, name)))
    kernel = _run(name, demand, ports, "numpy")
    reference = _run(name, demand, ports, "python")
    assert len(kernel.assignments) == len(reference.assignments)
    for ours, theirs in zip(kernel.assignments, reference.assignments):
        assert ours.circuits == theirs.circuits
        assert ours.duration == pytest.approx(
            theirs.duration, rel=1e-9, abs=1e-12
        )
    # Both cover the demand they were asked to schedule.
    assert kernel.covers(demand)


def test_solstice_covers_demand_exactly():
    """Kernel Solstice schedules cover every demand entry (hypothesis-free
    spot grid on top of the seeded equivalence sweep)."""
    for seed in range(12):
        demand, ports = _random_demand(seed + 31337)
        schedule = _run("solstice", demand, ports, "numpy")
        assert schedule.covers(demand)
