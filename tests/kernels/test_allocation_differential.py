"""Differential tests: the array-backed packet engine vs the reference.

The vectorized fluid packet simulator
(:class:`~repro.sim.packet_vector.VectorPacketSimulator` over the
kernels in :mod:`repro.kernels.allocation`) advertises *bitwise*
identity with the retained pure-Python
:class:`~repro.sim.packet_sim.ReferencePacketSimulator`.  Three layers
of evidence:

* allocator level — the same snapshot of active Coflows through
  ``allocate`` (dict form) and ``vector_allocate`` (``FlowArrays``
  form) yields bit-for-bit equal rates, flow by flow;
* engine level (hypothesis) — random traces replayed through both
  engines produce identical event sequences and identical CCT records,
  for Varys with and without backfill and for both Aalo disciplines;
* dispatch level — ``simulate_packet`` routes stock allocators to the
  vector engine under the numpy backend, and falls back to the
  reference for ``REPRO_KERNEL=python`` or subclassed allocators.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coflow import Coflow, CoflowTrace
from repro.kernels import use_backend
from repro.sim.aalo import AaloAllocator
from repro.sim.packet_sim import (
    PacketCoflowState,
    ReferencePacketSimulator,
    simulate_packet,
)
from repro.sim.packet_vector import (
    VectorPacketSimulator,
    _Slot,
    _build_table,
    vector_capable,
)
from repro.sim.varys import VarysAllocator
from repro.units import GBPS, MB

B = 1 * GBPS

#: Allocator configurations under differential test.  Factories, not
#: instances: every run gets fresh allocator state.
ALLOCATORS = {
    "varys": lambda: VarysAllocator(),
    "varys-nobackfill": lambda: VarysAllocator(backfill=False),
    "aalo-strict": lambda: AaloAllocator(),
    "aalo-weighted": lambda: AaloAllocator(discipline="weighted"),
    "aalo-4q": lambda: AaloAllocator(num_queues=4, initial_threshold_bytes=1 * MB),
}


# ----------------------------------------------------------------------
# Trace strategy: small random traces with exact (dyadic) sizes/arrivals
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_ports=10, max_coflows=8):
    """Random Coflow traces; dyadic sizes and arrivals are exact floats."""
    num_ports = draw(st.integers(min_value=2, max_value=max_ports))
    num_coflows = draw(st.integers(min_value=1, max_value=max_coflows))
    rng = random.Random(draw(st.integers(min_value=0, max_value=100_000)))
    coflows = []
    arrival = 0.0
    for cid in range(1, num_coflows + 1):
        arrival += rng.randint(0, 16) / 8.0
        width = rng.randint(1, min(5, num_ports))
        demand = {}
        for _ in range(width * rng.randint(1, 2)):
            src = rng.randrange(num_ports)
            dst = rng.randrange(num_ports)
            # 0.125..64 MB in dyadic steps: straddles the default Aalo
            # 10 MB first threshold so queue moves happen.
            demand[(src, dst)] = rng.randint(1, 512) / 8.0 * MB
        coflows.append(Coflow.from_demand(cid, demand, arrival_time=arrival))
    return CoflowTrace(num_ports=num_ports, coflows=coflows)


def assert_runs_identical(trace, make_allocator):
    reference = ReferencePacketSimulator(trace, make_allocator(), B)
    reference_report = reference.run()
    vector = VectorPacketSimulator(trace, make_allocator(), B)
    vector_report = vector.run()
    # Bitwise discipline: plain ==, no tolerances anywhere.
    assert vector.event_times == reference.event_times
    assert len(vector_report.records) == len(reference_report.records)
    for ours, theirs in zip(vector_report.records, reference_report.records):
        assert ours.coflow_id == theirs.coflow_id
        assert ours.completion_time == theirs.completion_time
        assert ours.arrival_time == theirs.arrival_time


# ----------------------------------------------------------------------
# Allocator level: bitwise-equal rates on a shared snapshot
# ----------------------------------------------------------------------


def snapshot(coflows, num_ports):
    """The same active set as dict states and as a ``FlowArrays`` table."""
    states = [
        PacketCoflowState(coflow=c, remaining=dict(c.processing_times(B)))
        for c in coflows
    ]
    table = _build_table([_Slot(c, B) for c in coflows], None, num_ports)
    return states, table


def assert_rates_bitwise(states, table, rates, num_ports):
    for k, cid in enumerate(table.coflow_ids):
        lo, hi = int(table.starts[k]), int(table.starts[k + 1])
        state = states[k]
        assert state.coflow_id == cid
        for j, circuit in zip(range(lo, hi), state.remaining):
            expected = rates.get((cid,) + circuit, 0.0)
            assert table.rate[j] == expected  # bitwise


@pytest.mark.parametrize("name", sorted(ALLOCATORS))
def test_allocator_rates_bitwise_equal(name):
    rng = random.Random(20)
    coflows = []
    for cid in range(1, 7):
        demand = {
            (rng.randrange(8), rng.randrange(8)): rng.randint(1, 256) / 8.0 * MB
            for _ in range(rng.randint(1, 6))
        }
        coflows.append(Coflow.from_demand(cid, demand))
    states, table = snapshot(coflows, num_ports=8)
    allocator = ALLOCATORS[name]()
    rates = allocator.allocate(states, 8, B)
    ALLOCATORS[name]().vector_allocate(table, 8, B)
    assert_rates_bitwise(states, table, rates, 8)


def test_aalo_rates_bitwise_equal_with_attained_service():
    """Sent-seconds drive D-CLAS queueing; both forms must agree on it."""
    rng = random.Random(21)
    coflows = [
        Coflow.from_demand(
            cid,
            {
                (rng.randrange(6), rng.randrange(6)): rng.randint(1, 512) / 8.0 * MB
                for _ in range(rng.randint(1, 5))
            },
        )
        for cid in range(1, 6)
    ]
    states, table = snapshot(coflows, num_ports=6)
    for k, state in enumerate(states):
        attained = k * 0.05
        state.sent_seconds = attained
        table.sent_seconds[k] = attained
    allocator = AaloAllocator()
    rates = allocator.allocate(states, 6, B)
    AaloAllocator().vector_allocate(table, 6, B)
    assert_rates_bitwise(states, table, rates, 6)


# ----------------------------------------------------------------------
# Engine level: identical event sequences and CCT records
# ----------------------------------------------------------------------


class TestEngineDifferential:
    @settings(max_examples=20, deadline=None)
    @given(trace=traces())
    @pytest.mark.parametrize("name", sorted(ALLOCATORS))
    def test_random_traces_identical(self, trace, name):
        assert_runs_identical(trace, ALLOCATORS[name])

    @pytest.mark.parametrize("name", sorted(ALLOCATORS))
    def test_wide_coflow_exercises_vector_paths(self, name):
        """A 10×10 shuffle (100 flows) crosses the kernels'
        ``SCREEN_MIN_FLOWS``/``RANK_MIN_FLOWS`` cutovers, so the screened
        and suffix-rank code paths run — not just the scalar smalls."""
        rng = random.Random(22)
        shuffle = {
            (src, dst): rng.randint(1, 128) / 8.0 * MB
            for src in range(10)
            for dst in range(10, 20)
        }
        coflows = [Coflow.from_demand(1, shuffle, arrival_time=0.0)]
        for cid in range(2, 8):
            demand = {
                (rng.randrange(20), rng.randrange(20)): rng.randint(1, 256) / 8.0 * MB
                for _ in range(rng.randint(1, 4))
            }
            coflows.append(
                Coflow.from_demand(cid, demand, arrival_time=rng.randint(0, 8) / 4.0)
            )
        trace = CoflowTrace(num_ports=20, coflows=coflows)
        assert_runs_identical(trace, ALLOCATORS[name])

    @pytest.mark.parametrize("name", sorted(ALLOCATORS))
    def test_forced_vector_paths_on_small_traces(self, name, monkeypatch):
        """Drop the cutovers to 1 so even tiny Coflows take the screened
        and suffix-rank paths, then re-run a random-trace differential."""
        from repro.kernels import allocation

        monkeypatch.setattr(allocation, "SCREEN_MIN_FLOWS", 1)
        monkeypatch.setattr(allocation, "RANK_MIN_FLOWS", 1)
        rng = random.Random(23)
        coflows = [
            Coflow.from_demand(
                cid,
                {
                    (rng.randrange(6), rng.randrange(6)): rng.randint(1, 512) / 8.0 * MB
                    for _ in range(rng.randint(1, 4))
                },
                arrival_time=rng.randint(0, 12) / 4.0,
            )
            for cid in range(1, 9)
        ]
        trace = CoflowTrace(num_ports=6, coflows=coflows)
        assert_runs_identical(trace, ALLOCATORS[name])


# ----------------------------------------------------------------------
# Dispatch level: backend switch and subclass fallback
# ----------------------------------------------------------------------


def tiny_trace():
    a = Coflow.from_demand(1, {(0, 1): 20 * MB, (1, 2): 5 * MB}, arrival_time=0.0)
    b = Coflow.from_demand(2, {(0, 1): 10 * MB}, arrival_time=0.1)
    return CoflowTrace(num_ports=4, coflows=[a, b])


class TweakedVarys(VarysAllocator):
    """A subclass (possibly overriding ``allocate``) must not be routed
    to the vector twin, which would bypass its overrides."""


class TestDispatch:
    def test_vector_capable_is_exact_type(self):
        assert vector_capable(VarysAllocator())
        assert vector_capable(AaloAllocator())
        assert not vector_capable(TweakedVarys())

    def test_numpy_backend_routes_to_vector_engine(self, monkeypatch):
        seen = {}
        original = VectorPacketSimulator.run

        def spying_run(self):
            seen["vector"] = True
            return original(self)

        monkeypatch.setattr(VectorPacketSimulator, "run", spying_run)
        with use_backend("numpy"):
            simulate_packet(tiny_trace(), VarysAllocator(), B)
        assert seen.get("vector")

    def test_python_backend_falls_back_to_reference(self, monkeypatch):
        def failing_run(self):  # pragma: no cover - failure mode only
            raise AssertionError("vector engine must not run under python backend")

        monkeypatch.setattr(VectorPacketSimulator, "run", failing_run)
        with use_backend("python"):
            report = simulate_packet(tiny_trace(), VarysAllocator(), B)
        assert len(report.records) == 2

    def test_subclassed_allocator_falls_back(self, monkeypatch):
        def failing_run(self):  # pragma: no cover - failure mode only
            raise AssertionError("vector engine must not run for subclasses")

        monkeypatch.setattr(VectorPacketSimulator, "run", failing_run)
        with use_backend("numpy"):
            report = simulate_packet(tiny_trace(), TweakedVarys(), B)
        assert len(report.records) == 2

    @pytest.mark.parametrize("name", sorted(ALLOCATORS))
    def test_backends_agree_through_simulate_packet(self, name):
        trace = tiny_trace()
        with use_backend("numpy"):
            kernel = simulate_packet(trace, ALLOCATORS[name](), B)
        with use_backend("python"):
            reference = simulate_packet(trace, ALLOCATORS[name](), B)
        assert [
            (r.coflow_id, r.completion_time) for r in kernel.records
        ] == [(r.coflow_id, r.completion_time) for r in reference.records]


def test_hybrid_overlay_rides_selected_backend():
    """The hybrid fabric's packet overlay goes through ``simulate_packet``
    and therefore the same dispatch; both backends agree end to end."""
    from repro.sim.hybrid import HybridConfig, simulate_inter_hybrid

    trace = tiny_trace()
    config = HybridConfig(size_threshold_bytes=15 * MB)
    with use_backend("numpy"):
        kernel = simulate_inter_hybrid(trace, config, B)
    with use_backend("python"):
        reference = simulate_inter_hybrid(trace, config, B)
    assert [
        (r.coflow_id, r.completion_time) for r in kernel.records
    ] == [(r.coflow_id, r.completion_time) for r in reference.records]
