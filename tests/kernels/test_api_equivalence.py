"""Figure 6/10 sweep cells must be backend-invariant.

The paper's intra- and inter-Coflow comparisons (Fig 6, Fig 10) replay
baseline schedulers over generated traces.  Any cell computed with the
numpy kernel layer must equal the same cell computed with the pure-Python
references: identical per-Coflow CCTs within 1e-9 relative.
"""

import pytest

from repro.api import NetworkSpec, SimulationSpec, simulate
from repro.kernels import use_backend
from repro.units import GBPS, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


@pytest.fixture(scope="module")
def tiny_trace():
    config = GeneratorConfig(
        num_ports=12, num_coflows=8, max_width=4, mean_interarrival=1.5, seed=3
    )
    return FacebookLikeTraceGenerator(config).generate()


def run_cell(trace, scheduler, backend, mode="intra"):
    spec = SimulationSpec(
        trace=trace,
        mode=mode,
        scheduler=scheduler,
        network=NetworkSpec(bandwidth_bps=BANDWIDTH, delta=DELTA),
    )
    with use_backend(backend):
        return simulate(spec)


@pytest.mark.parametrize("scheduler", ["solstice", "tms", "edmond"])
def test_sweep_cell_backend_invariant(tiny_trace, scheduler):
    kernel = run_cell(tiny_trace, scheduler, "numpy")
    reference = run_cell(tiny_trace, scheduler, "python")
    assert len(kernel.records) == len(reference.records)
    key = lambda record: record.coflow_id  # noqa: E731
    for ours, theirs in zip(
        sorted(kernel.records, key=key), sorted(reference.records, key=key)
    ):
        assert ours.coflow_id == theirs.coflow_id
        assert ours.cct == pytest.approx(theirs.cct, rel=1e-9)
        assert ours.completion_time == pytest.approx(theirs.completion_time, rel=1e-9)
        assert ours.switching_count == theirs.switching_count


@pytest.mark.parametrize("scheduler", ["varys", "aalo"])
def test_packet_cell_backend_invariant(tiny_trace, scheduler):
    """Fig 6's inter-mode Varys/Aalo cells under both packet engines.

    The packet-simulator kernels promise *bitwise* identity (not just
    1e-9-relative like the decomposition kernels), so the comparison is
    plain equality.
    """
    kernel = run_cell(tiny_trace, scheduler, "numpy", mode="inter")
    reference = run_cell(tiny_trace, scheduler, "python", mode="inter")
    assert len(kernel.records) == len(reference.records)
    key = lambda record: record.coflow_id  # noqa: E731
    for ours, theirs in zip(
        sorted(kernel.records, key=key), sorted(reference.records, key=key)
    ):
        assert ours.coflow_id == theirs.coflow_id
        assert ours.cct == theirs.cct
        assert ours.completion_time == theirs.completion_time
        assert ours.switching_count == theirs.switching_count
