"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.coflow import Coflow, CoflowTrace, Flow
from repro.units import GBPS, MB, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def figure1_coflow() -> Coflow:
    """The many-to-many Coflow of Figure 1 (5 senders, 2 receivers)."""
    demand = {
        (0, 5): 100 * MB,
        (1, 6): 40 * MB,
        (2, 5): 50 * MB,
        (2, 6): 80 * MB,
        (3, 6): 30 * MB,
        (4, 5): 20 * MB,
        (4, 6): 60 * MB,
    }
    return Coflow.from_demand(1, demand)


@pytest.fixture
def small_trace() -> CoflowTrace:
    """A deterministic 24-Coflow Facebook-like trace on 20 ports."""
    config = GeneratorConfig(
        num_ports=20, num_coflows=24, max_width=8, mean_interarrival=2.0, seed=7
    )
    return perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=7)


@pytest.fixture
def default_network() -> dict:
    """The paper's default network: B = 1 Gbps, δ = 10 ms."""
    return {"bandwidth_bps": 1 * GBPS, "delta": 10 * MS}


def random_demand(
    rng: random.Random,
    num_ports: int = 6,
    max_flows: int = 10,
    max_seconds: float = 2.0,
) -> dict:
    """A random sparse demand-time mapping for property tests."""
    demand = {}
    for _ in range(rng.randint(1, max_flows)):
        src = rng.randrange(num_ports)
        dst = rng.randrange(num_ports)
        demand[(src, dst)] = rng.uniform(1e-4, max_seconds)
    return demand


def make_coflow(demand_bytes: dict, coflow_id: int = 1, arrival: float = 0.0) -> Coflow:
    """Shorthand Coflow builder from a ``{(src, dst): bytes}`` mapping."""
    return Coflow.from_demand(coflow_id, demand_bytes, arrival_time=arrival)
