"""Differential fuzz: array-backed PRT vs the retained reference.

:class:`~repro.core.prt.PortReservationTable` keeps per-port
struct-of-arrays boundary tables and answers hot queries by bisecting
raw doubles; :class:`~repro.core.prt_reference.ReferencePortReservationTable`
is the straightforward object-list implementation it replaced.  The two
must be observably identical: same accepted/rejected reservations, same
conflict errors, same query answers, same journal/checkpoint/rollback
semantics.  These tests drive both through identical random
reserve / query / checkpoint / rollback / replay sequences and compare
every outcome exactly.
"""

import os
import random
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.prt as prt_mod
from repro.core.prt import PortConflictError, PortReservationTable
from repro.core.prt_reference import ReferencePortReservationTable

#: The extension module as imported (possibly ``None``); the churn fuzz
#: swaps ``prt_mod._native`` between this and ``None`` mid-run to model
#: a layout-version gate flipping the kernel off.
_REAL_NATIVE = prt_mod._native


def res_key(reservation):
    return (
        reservation.start,
        reservation.end,
        reservation.src,
        reservation.dst,
        reservation.coflow_id,
        reservation.setup,
    )


def assert_same_state(fast, ref, rng, num_ports, horizon):
    """Exhaustively compare the two tables' observable state."""
    assert len(fast) == len(ref)
    assert sorted(map(res_key, fast)) == sorted(map(res_key, ref))
    assert fast.makespan() == ref.makespan()
    assert fast.next_release_after(-1.0) == ref.next_release_after(-1.0)
    for _ in range(25):
        t = rng.uniform(-0.5, horizon)
        p = rng.randrange(num_ports)
        q = rng.randrange(num_ports)
        assert fast.next_release_after(t) == ref.next_release_after(t)
        assert fast.input_free_at(p, t) == ref.input_free_at(p, t)
        assert fast.output_free_at(q, t) == ref.output_free_at(q, t)
        assert fast.next_reserved_time(p, q, t) == ref.next_reserved_time(p, q, t)
        for fast_res, ref_res in (
            (fast.input_reservation_at(p, t), ref.input_reservation_at(p, t)),
            (fast.output_reservation_at(q, t), ref.output_reservation_at(q, t)),
        ):
            assert (fast_res is None) == (ref_res is None)
            if fast_res is not None:
                assert res_key(fast_res) == res_key(ref_res)
        assert [res_key(r) for r in fast.input_releases_after(p, t)] == [
            res_key(r) for r in ref.input_releases_after(p, t)
        ]
        assert [res_key(r) for r in fast.output_releases_after(q, t)] == [
            res_key(r) for r in ref.output_releases_after(q, t)
        ]
        assert [res_key(r) for r in fast.reservations_for_input(p)] == [
            res_key(r) for r in ref.reservations_for_input(p)
        ]
        assert [res_key(r) for r in fast.reservations_for_output(q)] == [
            res_key(r) for r in ref.reservations_for_output(q)
        ]
    fast.validate()
    ref.validate()


def try_reserve(fast, ref, src, dst, start, end, coflow_id, setup):
    """Apply one reserve to both tables; outcomes must agree exactly."""
    fast_res = fast_err = None
    try:
        fast_res = fast.reserve(src, dst, start, end, coflow_id, setup)
    except PortConflictError as exc:
        fast_err = exc
    ref_res = ref_err = None
    try:
        ref_res = ref.reserve(src, dst, start, end, coflow_id, setup)
    except PortConflictError as exc:
        ref_err = exc
    assert (fast_err is None) == (ref_err is None), (fast_err, ref_err)
    if fast_res is not None:
        assert res_key(fast_res) == res_key(ref_res)
    return fast_res


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_reserve_checkpoint_rollback_replay(self, seed):
        rng = random.Random(seed)
        num_ports = 8
        horizon = 10.0
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        # Stack of (fast_token, ref_token, journal snapshot) so rollbacks
        # and replays target corresponding states in both tables.
        tokens = []
        accepted = []

        for step in range(400):
            op = rng.random()
            if op < 0.70:
                src = rng.randrange(num_ports)
                dst = rng.randrange(num_ports)
                start = rng.uniform(0, horizon)
                length = rng.uniform(0.01, 1.5)
                setup = rng.uniform(0, min(0.2, length))
                res = try_reserve(
                    fast, ref, src, dst, start, start + length, step, setup
                )
                if res is not None:
                    accepted.append(res)
            elif op < 0.80:
                tokens.append((fast.checkpoint(), ref.checkpoint(), len(accepted)))
            elif op < 0.90 and tokens:
                take = rng.randrange(len(tokens))
                fast_token, ref_token, journal_len = tokens[take]
                del tokens[take:]
                assert fast.rollback(fast_token) == ref.rollback(ref_token)
                del accepted[journal_len:]
            elif accepted:
                # Re-play a random slice of previously accepted
                # reservations; after the rollbacks above some still fit
                # and some now conflict — behavior must match exactly.
                # Replay is atomic in both implementations: a conflicting
                # batch leaves the table untouched.
                sample = rng.sample(accepted, min(len(accepted), 4))
                fast_err = ref_err = None
                try:
                    fast.replay(sample)
                except PortConflictError as exc:
                    fast_err = exc
                try:
                    ref.replay(sample)
                except PortConflictError as exc:
                    ref_err = exc
                assert (fast_err is None) == (ref_err is None)
            if step % 50 == 49:
                assert_same_state(fast, ref, rng, num_ports, horizon)

        assert_same_state(fast, ref, rng, num_ports, horizon)

    @pytest.mark.parametrize("seed", [7, 11])
    def test_dense_same_port_contention(self, seed):
        """Hammer a tiny port space so nearly every attempt probes the
        overlap/tolerance edges of both implementations."""
        rng = random.Random(seed)
        num_ports = 2
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        for step in range(300):
            src = rng.randrange(num_ports)
            dst = rng.randrange(num_ports)
            start = rng.choice([rng.uniform(0, 3), round(rng.uniform(0, 3), 1)])
            length = rng.choice([0.1, 0.25, rng.uniform(0.01, 0.5)])
            try_reserve(fast, ref, src, dst, start, start + length, step, 0.01)
        assert_same_state(fast, ref, rng, num_ports, horizon=3.5)

    def test_conflict_errors_name_the_same_blocker(self):
        """The array table's lazily materialized error path must surface
        the same offending reservation the reference reports."""
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        try_reserve(fast, ref, 0, 1, 1.0, 2.0, 1, 0.1)
        with pytest.raises(PortConflictError) as fast_exc:
            fast.reserve(0, 2, 1.5, 2.5, 2, 0.1)
        with pytest.raises(PortConflictError) as ref_exc:
            ref.reserve(0, 2, 1.5, 2.5, 2, 0.1)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_rollback_overflow_ports_fall_back_to_python(self, monkeypatch):
        """Port indexes beyond the native kernel's int32 hashing range:
        the kernel refuses before mutating anything and the dispatcher
        finishes the rollback on the Python twin."""
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        big = 2**40
        try_reserve(fast, ref, big, 0, 0.0, 1.0, 1, 0.1)
        token_fast, token_ref = fast.checkpoint(), ref.checkpoint()
        for step in range(2, 8):
            try_reserve(fast, ref, big, 0, float(step), step + 0.5, step, 0.1)
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert fast.rollback(token_fast) == ref.rollback(token_ref)
        monkeypatch.delenv("REPRO_KERNEL")
        assert sorted(map(res_key, fast)) == sorted(map(res_key, ref))
        fast.validate()

    def test_rollback_restores_identical_state(self):
        rng = random.Random(3)
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        def random_reserve(step):
            start = rng.uniform(0, 5)
            end = start + rng.uniform(0.05, 1.0)
            try_reserve(
                fast, ref, rng.randrange(4), rng.randrange(4), start, end, step, 0.02
            )

        for step in range(40):
            random_reserve(step)
        token_fast, token_ref = fast.checkpoint(), ref.checkpoint()
        before = sorted(map(res_key, fast))
        for step in range(40, 70):
            random_reserve(step)
        assert fast.rollback(token_fast) == ref.rollback(token_ref)
        assert sorted(map(res_key, fast)) == before
        assert sorted(map(res_key, ref)) == before
        assert_same_state(fast, ref, rng, num_ports=4, horizon=6.0)


# ----------------------------------------------------------------------
# Replan-transaction fuzz: batched rollback/replay as whole transactions,
# interleaved with journal compaction and (when the extension is built)
# backend / layout-gate churn.  The native kernels promise bitwise
# identity with the Python twins, so mixing the two mid-run on the SAME
# table must be unobservable — that is exactly what the churn mode does.
# ----------------------------------------------------------------------

_PORT_S = st.integers(min_value=0, max_value=5)
_START_S = st.floats(
    min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False
)
_LEN_S = st.floats(
    min_value=0.01, max_value=1.2, allow_nan=False, allow_infinity=False
)

_TXN_OP = st.one_of(
    st.tuples(st.just("reserve"), _PORT_S, _PORT_S, _START_S, _LEN_S),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("rollback"), st.integers(min_value=0, max_value=7)),
    st.tuples(
        st.just("replay"),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=2, max_value=6),
    ),
    st.tuples(st.just("compact")),
    st.tuples(st.just("churn")),
)

_TXN_MODES = ["python"] + (
    ["native", "churn"] if prt_mod.native_transactions_available() else []
)

#: Layout churn cycle: kernel on, kernel off via env, kernel "stale"
#: (the layout-version gate nulls the module, env still asks for it).
_CHURN_STATES = (("native", True), ("python", True), ("native", False))


class TestTransactionFuzz:
    @pytest.mark.parametrize("mode", _TXN_MODES)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(_TXN_OP, min_size=15, max_size=90))
    def test_batched_transactions_with_compaction(self, mode, ops):
        saved_env = os.environ.get("REPRO_KERNEL")
        saved_warned = prt_mod._warned_native_missing
        prt_mod._warned_native_missing = True  # churn mutes the gate warning
        os.environ["REPRO_KERNEL"] = "python" if mode == "churn" else mode
        try:
            self._run(mode, ops)
        finally:
            prt_mod._native = _REAL_NATIVE
            prt_mod._warned_native_missing = saved_warned
            if saved_env is None:
                os.environ.pop("REPRO_KERNEL", None)
            else:
                os.environ["REPRO_KERNEL"] = saved_env

    @staticmethod
    def _run(mode, ops):
        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        tokens = []
        accepted = []
        churn = 0
        for step, op in enumerate(ops):
            kind = op[0]
            if kind == "reserve":
                _, src, dst, start, length = op
                res = try_reserve(
                    fast,
                    ref,
                    src,
                    dst,
                    start,
                    start + length,
                    step,
                    min(0.05, length / 2),
                )
                if res is not None:
                    accepted.append(res)
            elif kind == "checkpoint":
                tokens.append(
                    (fast.checkpoint(), ref.checkpoint(), len(accepted))
                )
            elif kind == "rollback":
                if tokens:
                    take = op[1] % len(tokens)
                    fast_token, ref_token, journal_len = tokens[take]
                    del tokens[take:]
                    assert fast.rollback(fast_token) == ref.rollback(ref_token)
                    del accepted[journal_len:]
            elif kind == "replay":
                if len(accepted) >= 2:
                    lo = op[1] % len(accepted)
                    batch = accepted[lo : lo + op[2]]
                    if len(batch) >= 2:
                        fast_err = ref_err = None
                        try:
                            fast.replay(batch)
                        except PortConflictError as exc:
                            fast_err = exc
                        try:
                            ref.replay(batch)
                        except PortConflictError as exc:
                            ref_err = exc
                        assert (fast_err is None) == (ref_err is None)
            elif kind == "compact":
                # Journal compaction: the incremental replanner clears a
                # semantically-empty table in place; checkpoints taken
                # before the compaction are dead with it.
                fast.clear()
                ref.clear()
                tokens.clear()
                accepted.clear()
            elif kind == "churn" and mode == "churn":
                env, kernel_on = _CHURN_STATES[churn % len(_CHURN_STATES)]
                churn += 1
                os.environ["REPRO_KERNEL"] = env
                prt_mod._native = _REAL_NATIVE if kernel_on else None
            if step % 30 == 29:
                rng = random.Random(step)
                assert_same_state(fast, ref, rng, num_ports=6, horizon=9.5)
        assert_same_state(
            fast, ref, random.Random(len(ops)), num_ports=6, horizon=9.5
        )


class TestTransactionFallback:
    def test_missing_kernel_falls_back_with_one_warning(self, monkeypatch):
        """``REPRO_KERNEL=native`` without the extension: rollback and
        batched replay run the Python twins, warning exactly once."""
        monkeypatch.setattr(prt_mod, "_native", None)
        monkeypatch.setattr(prt_mod, "_warned_native_missing", False)
        monkeypatch.setenv("REPRO_KERNEL", "native")
        assert not prt_mod.native_transactions_available()

        fast = PortReservationTable()
        ref = ReferencePortReservationTable()
        for step in range(6):
            try_reserve(fast, ref, step % 3, (step + 1) % 3, float(step), step + 0.9, step, 0.05)
        token_fast, token_ref = fast.checkpoint(), ref.checkpoint()
        batch = list(fast)[:3]

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fast.replay(batch[:0])  # empty: no dispatch, no warning
            fast_err = ref_err = None
            try:
                fast.replay(batch)
            except PortConflictError as exc:
                fast_err = exc
            try:
                ref.replay(batch)
            except PortConflictError as exc:
                ref_err = exc
            assert (fast_err is None) == (ref_err is None)
            assert fast.rollback(token_fast) == ref.rollback(token_ref)
        native_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(native_warnings) == 1
        assert "pure-Python PRT transaction paths" in str(
            native_warnings[0].message
        )
        assert sorted(map(res_key, fast)) == sorted(map(res_key, ref))

        # Once per process, not once per call.
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            fast.rollback(fast.checkpoint())
        assert not [w for w in again if issubclass(w.category, RuntimeWarning)]
