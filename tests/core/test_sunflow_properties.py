"""Property-based tests for Sunflow's theoretical guarantees.

These are the paper's Lemmas exercised over random Coflows, deltas and
orderings — the strongest correctness evidence in the suite:

* Lemma 1: ``CCT ≤ 2·T^c_L`` for any B, any δ, any Coflow, any ordering.
* Lemma 2: ``CCT ≤ 2(1+α)·T^p_L``.
* Port constraint and demand conservation always hold.
* The event-driven scheduler matches the literal Algorithm 1 transcription.
* Intra-Coflow switching count is exactly ``|C|`` (the minimum).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    alpha,
    circuit_lower_bound,
    packet_lower_bound,
)
from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.units import GBPS, MB

B = 1 * GBPS


@st.composite
def demand_maps(draw, max_ports=7, max_flows=14):
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=max_ports - 1))
        dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
        mb = draw(st.floats(min_value=0.05, max_value=300.0))
        demand[(src, dst)] = mb * MB
    return demand


@st.composite
def scheduling_cases(draw):
    demand = draw(demand_maps())
    delta = draw(st.sampled_from([0.0, 1e-5, 1e-3, 0.01, 0.1, 1.0]))
    order = draw(st.sampled_from(list(ReservationOrder)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return demand, delta, order, seed


class TestLemmaOne:
    @given(scheduling_cases())
    @settings(max_examples=150, deadline=None)
    def test_cct_within_two_times_circuit_lower_bound(self, case):
        demand, delta, order, seed = case
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=delta, order=order, rng=random.Random(seed))
        result = scheduler.schedule_coflow(coflow, B, start_time=0.0)
        lower = circuit_lower_bound(coflow, B, delta)
        assert result.makespan <= 2 * lower * (1 + 1e-9)
        assert result.makespan >= lower * (1 - 1e-9) or lower == 0


class TestLemmaTwo:
    @given(scheduling_cases())
    @settings(max_examples=100, deadline=None)
    def test_cct_within_lemma_two_packet_bound(self, case):
        demand, delta, order, seed = case
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=delta, order=order, rng=random.Random(seed))
        result = scheduler.schedule_coflow(coflow, B, start_time=0.0)
        bound = 2 * (1 + alpha(coflow, B, delta)) * packet_lower_bound(coflow, B)
        assert result.makespan <= bound * (1 + 1e-9)


class TestStructuralInvariants:
    @given(scheduling_cases())
    @settings(max_examples=120, deadline=None)
    def test_port_constraint_and_demand_conservation(self, case):
        demand, delta, order, seed = case
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=delta, order=order, rng=random.Random(seed))
        prt = PortReservationTable()
        result = scheduler.schedule_demand(prt, 1, coflow.processing_times(B))
        prt.validate()
        served = {}
        for r in result.reservations:
            served[(r.src, r.dst)] = served.get((r.src, r.dst), 0.0) + r.transmit_duration
        for circuit, p in coflow.processing_times(B).items():
            assert served.get(circuit, 0.0) == pytest.approx(p, rel=1e-6, abs=1e-9)

    @given(scheduling_cases())
    @settings(max_examples=120, deadline=None)
    def test_intra_switching_count_is_minimum(self, case):
        """With an empty PRT, every flow is set up exactly once (Figure 5's
        'Sunflow switching count is always optimal')."""
        demand, delta, order, seed = case
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=delta, order=order, rng=random.Random(seed))
        result = scheduler.schedule_coflow(coflow, B, start_time=0.0)
        assert len(result.reservations) == coflow.num_flows

    @given(scheduling_cases())
    @settings(max_examples=80, deadline=None)
    def test_no_reservation_before_start_time(self, case):
        demand, delta, order, seed = case
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=delta, order=order, rng=random.Random(seed))
        result = scheduler.schedule_coflow(coflow, B, start_time=3.0)
        assert all(r.start >= 3.0 - 1e-9 for r in result.reservations)


class TestEquivalenceWithReference:
    @given(
        demand_maps(max_ports=5, max_flows=8),
        st.sampled_from([0.0, 1e-3, 0.02, 0.3]),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=0.0, max_value=2.0),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            max_size=4,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_event_driven_matches_literal_algorithm(self, demand, delta, pre):
        """The optimized scheduler and the literal Algorithm 1 transcription
        produce identical reservations, including against pre-existing
        (higher-priority) reservations."""
        scheduler = SunflowScheduler(delta=delta)
        fast_prt, slow_prt = PortReservationTable(), PortReservationTable()
        for src, dst, start, length in pre:
            for prt in (fast_prt, slow_prt):
                try:
                    prt.reserve(
                        src, dst, start=start, end=start + length, coflow_id=9,
                        setup=min(delta, length),
                    )
                except Exception:
                    pass
        times = {k: v * 8 / B for k, v in demand.items()}
        fast = scheduler.schedule_demand(fast_prt, 1, times)
        slow = scheduler.schedule_demand_reference(slow_prt, 1, times)
        key = lambda rs: sorted((r.start, r.end, r.src, r.dst, r.setup) for r in rs)
        assert key(fast.reservations) == key(slow.reservations)


class TestInterCoflowProperties:
    @given(
        st.lists(demand_maps(max_ports=5, max_flows=6), min_size=2, max_size=4),
        st.sampled_from([1e-3, 0.01, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_first_coflow_never_hurt_by_followers(self, demands, delta):
        """Inter-Coflow non-blocking: the highest-priority Coflow's schedule
        is identical with or without lower-priority Coflows present."""
        scheduler = SunflowScheduler(delta=delta)
        coflows = [
            Coflow.from_demand(i + 1, demand) for i, demand in enumerate(demands)
        ]
        alone = scheduler.schedule_coflow(coflows[0], B, start_time=0.0)
        _, together = scheduler.schedule_coflows(coflows, B)
        assert together[1].makespan == pytest.approx(alone.makespan)

    @given(
        st.lists(demand_maps(max_ports=5, max_flows=6), min_size=2, max_size=4),
        st.sampled_from([1e-3, 0.01, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_demand_served_across_coflows(self, demands, delta):
        scheduler = SunflowScheduler(delta=delta)
        coflows = [
            Coflow.from_demand(i + 1, demand) for i, demand in enumerate(demands)
        ]
        prt, schedules = scheduler.schedule_coflows(coflows, B)
        prt.validate()
        for coflow in coflows:
            served = {}
            for r in schedules[coflow.coflow_id].reservations:
                served[(r.src, r.dst)] = (
                    served.get((r.src, r.dst), 0.0) + r.transmit_duration
                )
            for circuit, p in coflow.processing_times(B).items():
                assert served.get(circuit, 0.0) == pytest.approx(p, rel=1e-6, abs=1e-9)
