"""Tests for inter-Coflow priority policies."""

import pytest

from repro.core.coflow import Coflow
from repro.core.policies import (
    POLICIES,
    ClassThen,
    CoflowView,
    Fifo,
    NarrowestFirst,
    ShortestFirst,
    SmallestTotalFirst,
    views_from_coflows,
)
from repro.units import GBPS, MB


def view(cid, arrival=0.0, times=None, priority_class=0):
    return CoflowView(
        coflow_id=cid,
        arrival_time=arrival,
        remaining_times=times or {},
        priority_class=priority_class,
    )


class TestCoflowView:
    def test_bottleneck_is_busiest_port(self):
        v = view(1, times={(0, 1): 2.0, (0, 2): 3.0, (1, 2): 1.0})
        # Input 0 carries 5.0; output 2 carries 4.0.
        assert v.bottleneck == pytest.approx(5.0)

    def test_bottleneck_ignores_drained_flows(self):
        v = view(1, times={(0, 1): 0.0, (1, 2): 1.5})
        assert v.bottleneck == pytest.approx(1.5)

    def test_bottleneck_empty(self):
        assert view(1).bottleneck == 0.0

    def test_total_time(self):
        v = view(1, times={(0, 1): 2.0, (1, 2): 1.0, (2, 3): 0.0})
        assert v.total_time == pytest.approx(3.0)


class TestShortestFirst:
    def test_orders_by_bottleneck(self):
        big = view(1, times={(0, 1): 10.0})
        small = view(2, times={(0, 1): 1.0})
        assert [v.coflow_id for v in ShortestFirst().order([big, small])] == [2, 1]

    def test_ties_broken_by_arrival_then_id(self):
        a = view(1, arrival=5.0, times={(0, 1): 1.0})
        b = view(2, arrival=1.0, times={(2, 3): 1.0})
        c = view(3, arrival=1.0, times={(4, 5): 1.0})
        ordered = ShortestFirst().order([a, c, b])
        assert [v.coflow_id for v in ordered] == [2, 3, 1]

    def test_priority_class_dominates(self):
        urgent_big = view(1, times={(0, 1): 10.0}, priority_class=0)
        normal_small = view(2, times={(0, 1): 1.0}, priority_class=1)
        ordered = ShortestFirst().order([normal_small, urgent_big])
        assert [v.coflow_id for v in ordered] == [1, 2]


class TestOtherPolicies:
    def test_fifo(self):
        first = view(2, arrival=1.0, times={(0, 1): 100.0})
        second = view(1, arrival=2.0, times={(0, 1): 1.0})
        assert [v.coflow_id for v in Fifo().order([second, first])] == [2, 1]

    def test_smallest_total_first(self):
        wide_small = view(1, times={(0, 1): 1.0, (1, 2): 1.0})  # total 2
        narrow_big = view(2, times={(0, 1): 3.0})  # total 3
        ordered = SmallestTotalFirst().order([narrow_big, wide_small])
        assert [v.coflow_id for v in ordered] == [1, 2]

    def test_narrowest_first(self):
        wide = view(1, times={(0, 1): 0.1, (1, 2): 0.1, (2, 3): 0.1})
        narrow = view(2, times={(0, 1): 50.0})
        assert [v.coflow_id for v in NarrowestFirst().order([wide, narrow])] == [2, 1]

    def test_class_then_wraps_secondary_policy(self):
        policy = ClassThen(ShortestFirst())
        low_class_big = view(1, times={(0, 1): 10.0}, priority_class=0)
        high_class_small = view(2, times={(0, 1): 1.0}, priority_class=1)
        small_same_class = view(3, times={(0, 1): 2.0}, priority_class=0)
        ordered = policy.order([high_class_small, low_class_big, small_same_class])
        assert [v.coflow_id for v in ordered] == [3, 1, 2]
        assert policy.name == "class-then-shortest-first"


class TestViewsFromCoflows:
    def test_builds_processing_time_views(self):
        coflow = Coflow.from_demand(5, {(0, 1): 125 * MB}, arrival_time=3.0)
        views = views_from_coflows([coflow], 1 * GBPS, priority_classes={5: 2})
        assert len(views) == 1
        v = views[0]
        assert v.coflow_id == 5
        assert v.arrival_time == 3.0
        assert v.priority_class == 2
        assert v.remaining_times[(0, 1)] == pytest.approx(1.0)


class TestRegistry:
    def test_registry_names_match_instances(self):
        for name, policy in POLICIES.items():
            assert policy.name == name

    def test_registry_has_papers_policy(self):
        assert "shortest-first" in POLICIES

    def test_order_does_not_mutate_input(self):
        views = [view(1, times={(0, 1): 5.0}), view(2, times={(0, 1): 1.0})]
        snapshot = list(views)
        ShortestFirst().order(views)
        assert views == snapshot


class TestEarliestDeadlineFirst:
    def test_deadlined_coflows_sorted_by_deadline(self):
        from repro.core.policies import EarliestDeadlineFirst

        policy = EarliestDeadlineFirst({1: 10.0, 2: 5.0})
        a = view(1, times={(0, 1): 1.0})
        b = view(2, times={(2, 3): 1.0})
        assert [v.coflow_id for v in policy.order([a, b])] == [2, 1]

    def test_deadlined_beats_undeadlined(self):
        from repro.core.policies import EarliestDeadlineFirst

        policy = EarliestDeadlineFirst({2: 100.0})
        tiny_no_deadline = view(1, times={(0, 1): 0.001})
        deadlined = view(2, times={(2, 3): 50.0})
        assert [v.coflow_id for v in policy.order([tiny_no_deadline, deadlined])] == [2, 1]

    def test_undeadlined_fall_back_to_shortest_first(self):
        from repro.core.policies import EarliestDeadlineFirst

        policy = EarliestDeadlineFirst({})
        big = view(1, times={(0, 1): 10.0})
        small = view(2, times={(2, 3): 1.0})
        assert [v.coflow_id for v in policy.order([big, small])] == [2, 1]

    def test_priority_class_still_dominates(self):
        from repro.core.policies import EarliestDeadlineFirst

        policy = EarliestDeadlineFirst({1: 1.0})
        urgent_deadline = view(1, times={(0, 1): 1.0}, priority_class=1)
        plain_privileged = view(2, times={(2, 3): 1.0}, priority_class=0)
        assert [v.coflow_id for v in policy.order([urgent_deadline, plain_privileged])] == [2, 1]

    def test_end_to_end_deadline_scheduling(self):
        """An urgent deadlined Coflow overtakes a shorter one on the fabric."""
        from repro.core.coflow import Coflow, CoflowTrace
        from repro.core.policies import EarliestDeadlineFirst
        from repro.sim import simulate_inter_sunflow
        from repro.units import GBPS, MB, MS

        urgent = Coflow.from_demand(1, {(0, 1): 100 * MB})
        small = Coflow.from_demand(2, {(0, 2): 10 * MB})
        trace = CoflowTrace(num_ports=4, coflows=[urgent, small])
        report = simulate_inter_sunflow(
            trace, 1 * GBPS, 10 * MS, policy=EarliestDeadlineFirst({1: 1.0})
        ).by_id()
        assert report[1].cct == pytest.approx(0.8 + 10 * MS)
        assert report[1].completion_time <= 1.0  # met its deadline
        assert report[2].cct > report[1].cct  # waited behind the deadline
