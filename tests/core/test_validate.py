"""Tests for the public schedule validators."""

import pytest

from repro.core.coflow import Coflow
from repro.core.prt import Reservation
from repro.core.sunflow import CoflowSchedule, SunflowScheduler
from repro.core.validate import (
    ScheduleValidationError,
    check_coverage,
    check_lemma_one,
    check_non_preemption,
    check_port_constraint,
    validate_schedule,
)
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def reservation(src=0, dst=1, start=0.0, end=1.0, setup=0.01, cid=1):
    return Reservation(start=start, end=end, src=src, dst=dst, coflow_id=cid, setup=setup)


class TestPortConstraint:
    def test_clean_schedule_passes(self):
        assert check_port_constraint([
            reservation(0, 1, 0.0, 1.0),
            reservation(0, 2, 1.0, 2.0),
            reservation(2, 1, 1.0, 2.0),
        ]) == []

    def test_input_overlap_caught(self):
        violations = check_port_constraint([
            reservation(0, 1, 0.0, 1.0),
            reservation(0, 2, 0.5, 1.5),
        ])
        assert len(violations) == 1
        assert "input port 0" in violations[0]

    def test_output_overlap_caught(self):
        violations = check_port_constraint([
            reservation(0, 1, 0.0, 1.0),
            reservation(2, 1, 0.9, 1.5),
        ])
        assert "output port 1" in violations[0]


class TestCoverage:
    def make_schedule(self, *reservations):
        return CoflowSchedule(coflow_id=1, start_time=0.0, reservations=list(reservations))

    def test_exact_coverage_passes(self):
        schedule = self.make_schedule(reservation(0, 1, 0.0, 1.01, setup=0.01))
        assert check_coverage(schedule, {(0, 1): 1.0}) == []

    def test_undercoverage_caught(self):
        schedule = self.make_schedule(reservation(0, 1, 0.0, 0.51, setup=0.01))
        violations = check_coverage(schedule, {(0, 1): 1.0})
        assert len(violations) == 1
        assert "served" in violations[0]

    def test_split_reservations_sum(self):
        schedule = self.make_schedule(
            reservation(0, 1, 0.0, 0.51, setup=0.01),
            reservation(0, 1, 1.0, 1.51, setup=0.01),
        )
        assert check_coverage(schedule, {(0, 1): 1.0}) == []

    def test_zero_demand_ignored(self):
        schedule = self.make_schedule()
        assert check_coverage(schedule, {(0, 1): 0.0}) == []


class TestNonPreemption:
    def test_single_reservation_per_flow_passes(self):
        schedule = CoflowSchedule(1, 0.0, [reservation(0, 1)])
        assert check_non_preemption(schedule, {(0, 1): 0.5}) == []

    def test_split_flow_caught(self):
        schedule = CoflowSchedule(
            1, 0.0,
            [reservation(0, 1, 0.0, 0.5), reservation(0, 1, 1.0, 1.5)],
        )
        violations = check_non_preemption(schedule, {(0, 1): 0.5})
        assert "2 reservations" in violations[0]

    def test_missing_flow_caught(self):
        schedule = CoflowSchedule(1, 0.0, [])
        violations = check_non_preemption(schedule, {(0, 1): 0.5})
        assert "0 reservations" in violations[0]


class TestLemmaOne:
    def test_real_schedule_passes(self, figure1_coflow):
        schedule = SunflowScheduler(delta=DELTA).schedule_coflow(
            figure1_coflow, B, start_time=0.0
        )
        assert check_lemma_one(schedule, figure1_coflow, B, DELTA) == []

    def test_bloated_schedule_caught(self):
        coflow = Coflow.from_demand(1, {(0, 1): 10 * MB})
        slow = CoflowSchedule(
            1, 0.0, [reservation(0, 1, 0.0, 10.0, setup=0.01)]
        )
        violations = check_lemma_one(slow, coflow, B, DELTA)
        assert "Lemma 1" in violations[0]


class TestValidateSchedule:
    def test_sunflow_output_always_validates(self, figure1_coflow):
        schedule = SunflowScheduler(delta=DELTA).schedule_coflow(
            figure1_coflow, B, start_time=0.0
        )
        assert validate_schedule(schedule, figure1_coflow, B, DELTA) == []

    def test_raises_with_all_violations(self):
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB, (2, 3): 10 * MB})
        broken = CoflowSchedule(1, 0.0, [reservation(0, 1, 0.0, 0.2, setup=0.01)])
        with pytest.raises(ScheduleValidationError) as excinfo:
            validate_schedule(broken, coflow, B, DELTA)
        text = str(excinfo.value)
        assert "served" in text  # coverage violation
        assert "0 reservations" in text  # missing flow

    def test_collect_mode_returns_violations(self):
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB})
        broken = CoflowSchedule(1, 0.0, [])
        violations = validate_schedule(
            broken, coflow, B, DELTA, raise_on_error=False
        )
        assert violations

    def test_inter_coflow_schedules_skip_isolated_checks(self):
        """Gap-truncated (split) schedules are legal under interference."""
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB})
        split = CoflowSchedule(
            1, 0.0,
            [
                reservation(0, 1, 0.0, 0.51, setup=0.01),
                reservation(0, 1, 1.0, 1.51, setup=0.01),
            ],
        )
        assert validate_schedule(split, coflow, B, DELTA, isolated=False) == []
