"""Tests for the §6 quantized-scheduling approximation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable
from repro.core.sunflow import SunflowScheduler
from repro.units import GBPS, MB

B = 1 * GBPS
DELTA = 0.01


class TestConstruction:
    def test_quantum_validated(self):
        with pytest.raises(ValueError):
            SunflowScheduler(quantum=0.0)
        with pytest.raises(ValueError):
            SunflowScheduler(quantum=-1.0)

    def test_none_means_exact(self):
        scheduler = SunflowScheduler(delta=DELTA)
        assert scheduler.quantum is None


class TestRounding:
    def test_demand_rounded_up_to_grid(self):
        scheduler = SunflowScheduler(delta=DELTA, quantum=0.1)
        schedule = scheduler.schedule_demand(PortReservationTable(), 1, {(0, 1): 0.25})
        reservation = schedule.reservations[0]
        assert reservation.transmit_duration == pytest.approx(0.3)

    def test_exact_multiples_unchanged(self):
        scheduler = SunflowScheduler(delta=DELTA, quantum=0.1)
        schedule = scheduler.schedule_demand(PortReservationTable(), 1, {(0, 1): 0.3})
        assert schedule.reservations[0].transmit_duration == pytest.approx(0.3)

    def test_quantized_cct_never_shorter(self):
        demand = {(0, 1): 0.123, (0, 2): 0.456, (1, 2): 0.789}
        exact = SunflowScheduler(delta=DELTA).schedule_demand(
            PortReservationTable(), 1, dict(demand)
        )
        rounded = SunflowScheduler(delta=DELTA, quantum=0.1).schedule_demand(
            PortReservationTable(), 1, dict(demand)
        )
        assert rounded.makespan >= exact.makespan - 1e-9

    def test_overhead_bounded_by_one_quantum_per_flow(self):
        """Rounding adds at most one quantum per flow on the critical path,
        so CCT grows by at most quantum × (flows on the bottleneck port)."""
        demand = {(0, j): 0.123 for j in range(1, 6)}
        quantum = 0.05
        exact = SunflowScheduler(delta=DELTA).schedule_demand(
            PortReservationTable(), 1, dict(demand)
        )
        rounded = SunflowScheduler(delta=DELTA, quantum=quantum).schedule_demand(
            PortReservationTable(), 1, dict(demand)
        )
        assert rounded.makespan <= exact.makespan + quantum * len(demand) + 1e-9


class TestGuaranteesSurviveQuantization:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=0.5, max_value=200.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.sampled_from([0.01, 0.05, 0.2]),
    )
    @settings(max_examples=60, deadline=None)
    def test_lemma_one_on_rounded_demand(self, entries, quantum):
        """The quantized schedule is Sunflow on the rounded demand, so
        Lemma 1 holds against the rounded Coflow's bound."""
        demand = {}
        for src, dst, mb in entries:
            demand[(src, dst)] = mb * MB
        coflow = Coflow.from_demand(1, demand)
        scheduler = SunflowScheduler(delta=DELTA, quantum=quantum)
        schedule = scheduler.schedule_coflow(coflow, B, start_time=0.0)
        rounded_times = {
            circuit: scheduler._quantize(p)
            for circuit, p in coflow.processing_times(B).items()
        }
        rounded_bound = max(
            sum(p + DELTA for (s, d), p in rounded_times.items() if s == src)
            for src in {s for s, _ in rounded_times}
        )
        # Build the rounded Coflow's circuit bound on both port sides.
        from collections import defaultdict

        loads = defaultdict(float)
        for (src, dst), p in rounded_times.items():
            loads[("in", src)] += p + DELTA
            loads[("out", dst)] += p + DELTA
        bound = max(loads.values())
        assert schedule.makespan <= 2 * bound * (1 + 1e-9)
        # One reservation per flow still holds (intra non-preemption).
        assert len(schedule.reservations) == coflow.num_flows
