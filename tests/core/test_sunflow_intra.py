"""Unit tests for Sunflow intra-Coflow scheduling (Algorithm 1)."""

import pytest

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def schedule(coflow, delta=DELTA, order=ReservationOrder.ORDERED_PORT):
    scheduler = SunflowScheduler(delta=delta, order=order)
    return scheduler.schedule_coflow(coflow, bandwidth_bps=B, start_time=0.0)


class TestSingleFlow:
    def test_single_flow_pays_exactly_one_delta(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB})  # 1 s of data
        result = schedule(coflow)
        assert result.makespan == pytest.approx(1.0 + DELTA)
        assert len(result.reservations) == 1
        assert result.num_setups == 1

    def test_zero_delta(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB})
        result = schedule(coflow, delta=0.0)
        assert result.makespan == pytest.approx(1.0)

    def test_empty_demand_completes_immediately(self):
        scheduler = SunflowScheduler(delta=DELTA)
        result = scheduler.schedule_demand(PortReservationTable(), 1, {})
        assert result.makespan == 0.0
        assert result.reservations == []


class TestStructuredCoflows:
    def test_many_to_one_serializes_on_receiver(self):
        """In-cast: flows share the output port, so CCT = Σ (p + δ) = TcL."""
        demand = {(i, 9): 10 * MB for i in range(4)}
        coflow = Coflow.from_demand(1, demand)
        result = schedule(coflow)
        expected = circuit_lower_bound(coflow, B, DELTA)
        assert result.makespan == pytest.approx(expected)

    def test_one_to_many_serializes_on_sender(self):
        demand = {(3, j): 10 * MB for j in range(4)}
        coflow = Coflow.from_demand(1, demand)
        result = schedule(coflow)
        assert result.makespan == pytest.approx(circuit_lower_bound(coflow, B, DELTA))

    def test_one_to_one_is_optimal(self):
        coflow = Coflow.from_demand(1, {(2, 7): 55 * MB})
        result = schedule(coflow)
        assert result.makespan == pytest.approx(circuit_lower_bound(coflow, B, DELTA))

    def test_permutation_demand_is_fully_parallel(self):
        """A permutation matrix needs no port sharing: CCT = max(p) + δ."""
        demand = {(i, i): (10 + i) * MB for i in range(5)}
        coflow = Coflow.from_demand(1, demand)
        result = schedule(coflow)
        assert result.makespan == pytest.approx(14 * MB * 8 / B + DELTA)

    def test_figure1_coflow_within_factor_two(self, figure1_coflow):
        result = schedule(figure1_coflow)
        lower = circuit_lower_bound(figure1_coflow, B, DELTA)
        assert lower <= result.makespan <= 2 * lower


class TestNonPreemption:
    def test_one_setup_per_flow_in_isolation(self, figure1_coflow):
        """Intra-Coflow non-preemption: with an empty PRT each flow gets
        exactly one contiguous reservation (the Figure 5 optimum)."""
        result = schedule(figure1_coflow)
        assert len(result.reservations) == figure1_coflow.num_flows
        assert result.num_setups == figure1_coflow.num_flows

    def test_reservation_covers_setup_plus_processing(self, figure1_coflow):
        result = schedule(figure1_coflow)
        times = figure1_coflow.processing_times(B)
        for reservation in result.reservations:
            expected = times[(reservation.src, reservation.dst)] + DELTA
            assert reservation.duration == pytest.approx(expected)

    def test_demand_conservation(self, figure1_coflow):
        """Total reserved transmit time equals total demand time."""
        result = schedule(figure1_coflow)
        total_transmit = sum(r.transmit_duration for r in result.reservations)
        total_demand = sum(figure1_coflow.processing_times(B).values())
        assert total_transmit == pytest.approx(total_demand)


class TestInterleaving:
    def test_circuits_interleave_without_synchronized_boundaries(self):
        """§4.1: Sunflow circuits start/stop independently — some circuit
        must start while another is mid-transmission (not-all-stop only)."""
        demand = {
            (0, 5): 100 * MB,
            (1, 5): 40 * MB,
            (1, 6): 30 * MB,
            (2, 6): 80 * MB,
        }
        result = schedule(Coflow.from_demand(1, demand))
        starts = sorted(r.start for r in result.reservations)
        spans = [(r.start, r.end) for r in result.reservations]
        overlapping_start = any(
            any(s < start < e for (s, e) in spans if (s, e) != (start_r, end_r))
            for (start_r, end_r), start in zip(spans, starts)
        )
        assert overlapping_start

    def test_port_constraint_held(self, figure1_coflow):
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        scheduler.schedule_demand(prt, 1, figure1_coflow.processing_times(B))
        prt.validate()


class TestOrderings:
    @pytest.mark.parametrize("order", list(ReservationOrder))
    def test_all_orderings_satisfy_lemma_one(self, figure1_coflow, order):
        result = schedule(figure1_coflow, order=order)
        lower = circuit_lower_bound(figure1_coflow, B, DELTA)
        assert result.makespan <= 2 * lower + 1e-9

    @pytest.mark.parametrize("order", list(ReservationOrder))
    def test_all_orderings_cover_demand(self, figure1_coflow, order):
        result = schedule(figure1_coflow, order=order)
        served = {}
        for r in result.reservations:
            served[(r.src, r.dst)] = served.get((r.src, r.dst), 0.0) + r.transmit_duration
        for circuit, p in figure1_coflow.processing_times(B).items():
            assert served[circuit] == pytest.approx(p)

    def test_random_order_is_reproducible(self, figure1_coflow):
        import random

        first = SunflowScheduler(
            delta=DELTA, order=ReservationOrder.RANDOM, rng=random.Random(5)
        ).schedule_coflow(figure1_coflow, B, start_time=0.0)
        second = SunflowScheduler(
            delta=DELTA, order=ReservationOrder.RANDOM, rng=random.Random(5)
        ).schedule_coflow(figure1_coflow, B, start_time=0.0)
        assert [
            (r.start, r.end, r.src, r.dst) for r in first.reservations
        ] == [(r.start, r.end, r.src, r.dst) for r in second.reservations]


class TestValidation:
    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SunflowScheduler(delta=-1.0)

    def test_start_time_offsets_schedule(self, figure1_coflow):
        scheduler = SunflowScheduler(delta=DELTA)
        shifted = scheduler.schedule_coflow(figure1_coflow, B, start_time=5.0)
        base = scheduler.schedule_coflow(figure1_coflow, B, start_time=0.0)
        assert shifted.makespan == pytest.approx(base.makespan)
        assert min(r.start for r in shifted.reservations) == pytest.approx(5.0)
