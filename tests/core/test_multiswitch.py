"""Tests for the multi-plane Sunflow extension (future work of §6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import Coflow
from repro.core.multiswitch import MultiSwitchSunflow
from repro.core.sunflow import SunflowScheduler
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def plan(coflow, planes, delta=DELTA):
    return MultiSwitchSunflow(num_planes=planes, delta=delta).schedule_coflow(
        coflow, B, start_time=0.0
    )


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MultiSwitchSunflow(num_planes=0)
        with pytest.raises(ValueError):
            MultiSwitchSunflow(num_planes=2, delta=-1.0)

    def test_table_count_checked(self):
        scheduler = MultiSwitchSunflow(num_planes=3)
        with pytest.raises(ValueError, match="expected 3"):
            scheduler.schedule_demand([], 1, {(0, 1): 1.0})


class TestSinglePlaneEquivalence:
    def test_one_plane_matches_single_switch_sunflow(self, figure1_coflow):
        """k = 1 degenerates to the original algorithm exactly."""
        single = SunflowScheduler(delta=DELTA).schedule_coflow(
            figure1_coflow, B, start_time=0.0
        )
        multi = plan(figure1_coflow, planes=1)
        assert multi.makespan == pytest.approx(single.makespan)
        single_key = sorted(
            (r.start, r.end, r.src, r.dst) for r in single.reservations
        )
        multi_key = sorted(
            (p.reservation.start, p.reservation.end, p.reservation.src, p.reservation.dst)
            for p in multi.reservations
        )
        assert single_key == multi_key


class TestParallelism:
    def test_incast_splits_across_planes(self):
        """An in-cast serializes on one switch; with k planes the receiver
        has k transceivers, so CCT shrinks by ~k."""
        coflow = Coflow.from_demand(1, {(i, 9): 50 * MB for i in range(4)})
        one = plan(coflow, planes=1)
        two = plan(coflow, planes=2)
        four = plan(coflow, planes=4)
        assert two.makespan < one.makespan
        assert four.makespan < two.makespan
        assert four.makespan == pytest.approx(one.makespan / 4, rel=0.05)

    def test_reservations_actually_use_multiple_planes(self):
        coflow = Coflow.from_demand(1, {(i, 9): 50 * MB for i in range(4)})
        schedule = plan(coflow, planes=4)
        assert len(schedule.per_plane_counts()) == 4

    def test_permutation_gains_nothing(self):
        """Demand with no port contention cannot benefit from extra planes."""
        coflow = Coflow.from_demand(1, {(i, i + 4): 50 * MB for i in range(4)})
        one = plan(coflow, planes=1)
        four = plan(coflow, planes=4)
        assert four.makespan == pytest.approx(one.makespan)

    def test_more_planes_never_hurt(self, figure1_coflow):
        previous = plan(figure1_coflow, planes=1).makespan
        for planes in (2, 3, 4):
            current = plan(figure1_coflow, planes=planes).makespan
            assert current <= previous + 1e-9
            previous = current


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.floats(min_value=0.5, max_value=150.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_demand_conserved_and_planes_valid(self, entries, planes):
        demand = {}
        for src, dst, mb in entries:
            demand[(src, dst)] = mb * MB
        coflow = Coflow.from_demand(1, demand)
        scheduler = MultiSwitchSunflow(num_planes=planes, delta=DELTA)
        tables = scheduler.new_tables()
        schedule = scheduler.schedule_demand(
            tables, 1, coflow.processing_times(B)
        )
        for prt in tables:
            prt.validate()
        served = {}
        for item in schedule.reservations:
            r = item.reservation
            served[(r.src, r.dst)] = served.get((r.src, r.dst), 0.0) + r.transmit_duration
            assert 0 <= item.plane < planes
        for circuit, p in coflow.processing_times(B).items():
            assert served.get(circuit, 0.0) == pytest.approx(p, rel=1e-6, abs=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0.5, max_value=100.0),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_k_planes_beat_lemma_bound_scaled(self, entries):
        """CCT on k planes is never worse than the single-switch 2×TcL cap
        (and usually far better for contended demand)."""
        demand = {}
        for src, dst, mb in entries:
            demand[(src, dst)] = mb * MB
        coflow = Coflow.from_demand(1, demand)
        bound = 2 * circuit_lower_bound(coflow, B, DELTA)
        for planes in (2, 3):
            schedule = plan(coflow, planes=planes)
            assert schedule.makespan <= bound * (1 + 1e-9)


class TestInterCoflow:
    def test_priority_isolation_across_planes(self):
        scheduler = MultiSwitchSunflow(num_planes=2, delta=DELTA)
        high = Coflow.from_demand(1, {(0, 0): 50 * MB})
        low = Coflow.from_demand(2, {(0, 1): 50 * MB})
        alone = scheduler.schedule_coflow(high, B)
        _, schedules = scheduler.schedule_coflows([high, low], B)
        assert schedules[1].makespan == pytest.approx(alone.makespan)
        # With two planes, the low-priority coflow uses the second plane's
        # transceiver on port 0 and is not delayed at all.
        assert schedules[2].makespan == pytest.approx(alone.makespan)


class TestDeprecationShim:
    def test_constructor_warns_once_per_call_site(self):
        import warnings

        def construct():
            return MultiSwitchSunflow(num_planes=2)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            construct()
            construct()
        notices = [
            w
            for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "MultiSwitchSunflow" in str(w.message)
        ]
        assert len(notices) == 1
        assert "repro.api.simulate" in str(notices[0].message)

    def test_shim_delegates_to_multicore_scheduler(self):
        import warnings

        from repro.core.multicore import MultiCoreSunflowScheduler, uniform_cores
        from repro.units import BITS_PER_BYTE, processing_time

        coflow = Coflow.from_demand(
            1, {(0, 1): 40 * MB, (0, 2): 25 * MB, (3, 1): 10 * MB}
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = MultiSwitchSunflow(num_planes=2, delta=DELTA).schedule_coflow(
                coflow, B
            )
        modern = MultiCoreSunflowScheduler(
            uniform_cores(2, bandwidth_bps=float(BITS_PER_BYTE), delta=DELTA)
        )
        seconds = {c: processing_time(b, B) for c, b in coflow.demand().items()}
        expected = modern.schedule_demand(modern.new_tables(), 1, seconds)
        assert [
            (item.plane, item.reservation.start, item.reservation.end)
            for item in legacy.reservations
        ] == [
            (item.core, item.reservation.start, item.reservation.end)
            for item in expected.reservations
        ]
