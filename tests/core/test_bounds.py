"""Tests for the CCT lower bounds (Equations 1-4) and Lemma bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    alpha,
    circuit_lower_bound,
    flow_circuit_time,
    packet_lower_bound,
    port_loads,
    sunflow_circuit_bound,
    sunflow_packet_bound,
)
from repro.core.coflow import Coflow
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def coflow_of(demand):
    return Coflow.from_demand(1, demand)


class TestPortLoads:
    def test_loads_sum_rows_and_columns(self):
        coflow = coflow_of({(0, 5): 125 * MB, (0, 6): 125 * MB, (1, 5): 250 * MB})
        input_load, output_load = port_loads(coflow, B)
        assert input_load[0] == pytest.approx(2.0)
        assert input_load[1] == pytest.approx(2.0)
        assert output_load[5] == pytest.approx(3.0)
        assert output_load[6] == pytest.approx(1.0)


class TestPacketLowerBound:
    def test_single_flow(self):
        assert packet_lower_bound(coflow_of({(0, 1): 125 * MB}), B) == pytest.approx(1.0)

    def test_bottleneck_is_max_port(self):
        # Output port 5 receives 3 s of traffic; that's the bottleneck.
        coflow = coflow_of({(0, 5): 125 * MB, (1, 5): 250 * MB})
        assert packet_lower_bound(coflow, B) == pytest.approx(3.0)

    def test_empty_coflow(self):
        assert packet_lower_bound(Coflow(1, 0.0, []), B) == 0.0

    def test_scales_inversely_with_bandwidth(self):
        coflow = coflow_of({(0, 1): 125 * MB})
        assert packet_lower_bound(coflow, 10 * B) == pytest.approx(0.1)


class TestCircuitLowerBound:
    def test_adds_one_delta_per_flow(self):
        coflow = coflow_of({(0, 5): 125 * MB, (1, 5): 125 * MB})
        # Output 5: (1 + δ) + (1 + δ).
        assert circuit_lower_bound(coflow, B, DELTA) == pytest.approx(2.0 + 2 * DELTA)

    def test_flow_circuit_time_zero_demand(self):
        assert flow_circuit_time(0.0, B, DELTA) == 0.0

    def test_reduces_to_packet_bound_when_delta_zero(self):
        coflow = coflow_of({(0, 5): 100 * MB, (1, 6): 30 * MB, (1, 5): 70 * MB})
        assert circuit_lower_bound(coflow, B, 0.0) == pytest.approx(
            packet_lower_bound(coflow, B)
        )

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            circuit_lower_bound(coflow_of({(0, 1): MB}), B, -1.0)

    def test_circuit_bound_dominates_packet_bound(self):
        coflow = coflow_of({(0, 5): 100 * MB, (2, 6): 30 * MB, (2, 5): 70 * MB})
        assert circuit_lower_bound(coflow, B, DELTA) >= packet_lower_bound(coflow, B)

    def test_bottleneck_port_may_differ_from_packet_bound(self):
        # Output 5: 2 big flows (2 s + 2δ).  Input 0: 4 small flows
        # totalling 1.9 s of data but 4δ of setups -> with large δ the
        # circuit bottleneck moves to input 0.
        big_delta = 100 * MS
        demand = {
            (0, 1): 47.5 * MB,
            (0, 2): 47.5 * MB,
            (0, 3): 47.5 * MB,
            (0, 4): 47.5 * MB,
            (6, 5): 125 * MB,
            (7, 5): 125 * MB,
        }
        coflow = coflow_of(demand)
        # Packet bottleneck: output 5 at 2.0 s.
        assert packet_lower_bound(coflow, B) == pytest.approx(2.0)
        # Circuit bottleneck: input 0 at 1.52 + 0.4 = 1.92 < output 5 at 2.2.
        assert circuit_lower_bound(coflow, B, big_delta) == pytest.approx(2.2)


class TestAlphaAndLemmaBounds:
    def test_alpha_definition(self):
        coflow = coflow_of({(0, 1): 1 * MB, (1, 2): 10 * MB})
        # Smallest flow: 1 MB -> 8 ms at 1 Gbps; alpha = 10 ms / 8 ms.
        assert alpha(coflow, B, DELTA) == pytest.approx(1.25)

    def test_alpha_of_trace_floor_is_125_percent(self):
        """The paper's 1 MB floor at 1 Gbps, δ=10 ms gives α=1.25 and the
        4.5× CCT/TpL cap quoted in §5.1."""
        coflow = coflow_of({(0, 1): 1 * MB})
        a = alpha(coflow, B, DELTA)
        assert 2 * (1 + a) == pytest.approx(4.5)

    def test_alpha_empty_coflow(self):
        assert alpha(Coflow(1, 0.0, []), B, DELTA) == 0.0

    def test_lemma_bounds_are_consistent(self):
        coflow = coflow_of({(0, 5): 100 * MB, (1, 6): 40 * MB, (1, 5): 70 * MB})
        assert sunflow_circuit_bound(coflow, B, DELTA) == pytest.approx(
            2 * circuit_lower_bound(coflow, B, DELTA)
        )
        assert sunflow_packet_bound(coflow, B, DELTA) == pytest.approx(
            2 * (1 + alpha(coflow, B, DELTA)) * packet_lower_bound(coflow, B)
        )


@st.composite
def random_coflows(draw):
    num_flows = draw(st.integers(min_value=1, max_value=12))
    demand = {}
    for _ in range(num_flows):
        src = draw(st.integers(min_value=0, max_value=7))
        dst = draw(st.integers(min_value=0, max_value=7))
        size = draw(st.floats(min_value=0.1, max_value=500.0))
        demand[(src, dst)] = size * MB
    return Coflow.from_demand(1, demand)


class TestBoundProperties:
    @given(random_coflows(), st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=80, deadline=None)
    def test_circuit_bound_at_least_packet_bound(self, coflow, delta):
        assert circuit_lower_bound(coflow, B, delta) >= packet_lower_bound(coflow, B) - 1e-12

    @given(random_coflows(), st.floats(min_value=1e-4, max_value=0.5))
    @settings(max_examples=80, deadline=None)
    def test_circuit_bound_monotone_in_delta(self, coflow, delta):
        assert circuit_lower_bound(coflow, B, 2 * delta) >= circuit_lower_bound(
            coflow, B, delta
        )

    @given(random_coflows())
    @settings(max_examples=80, deadline=None)
    def test_equation_10_tcl_at_most_one_plus_alpha_tpl(self, coflow):
        """Appendix Equation (10): T^c_L <= (1 + α) T^p_L."""
        a = alpha(coflow, B, DELTA)
        assert circuit_lower_bound(coflow, B, DELTA) <= (1 + a) * packet_lower_bound(
            coflow, B
        ) * (1 + 1e-9)
