"""Tests for the starvation guard (§4.2)."""

import pytest

from repro.core.prt import PortReservationTable
from repro.core.starvation import (
    GUARD_COFLOW_ID,
    StarvationGuard,
    round_robin_assignments,
)


class TestRoundRobinAssignments:
    def test_each_assignment_is_perfect_matching(self):
        for assignment in round_robin_assignments(5):
            sources = [src for src, _ in assignment]
            destinations = [dst for _, dst in assignment]
            assert sorted(sources) == list(range(5))
            assert sorted(destinations) == list(range(5))

    def test_union_covers_all_circuits(self):
        n = 4
        covered = {
            circuit
            for assignment in round_robin_assignments(n)
            for circuit in assignment
        }
        assert covered == {(i, j) for i in range(n) for j in range(n)}

    def test_invalid_port_count(self):
        with pytest.raises(ValueError):
            round_robin_assignments(0)


class TestGuardGeometry:
    def make_guard(self, **overrides):
        params = dict(num_ports=3, period=1.0, tau=0.1, delta=0.01, origin=0.0)
        params.update(overrides)
        return StarvationGuard(**params)

    def test_tau_must_exceed_delta(self):
        with pytest.raises(ValueError):
            self.make_guard(tau=0.005)

    def test_positive_intervals_required(self):
        with pytest.raises(ValueError):
            self.make_guard(period=0.0)

    def test_window_positions(self):
        guard = self.make_guard()
        w0 = guard.window(0)
        assert w0.start == pytest.approx(1.0)
        assert w0.end == pytest.approx(1.1)
        assert w0.assignment_index == 0
        w4 = guard.window(4)
        assert w4.start == pytest.approx(1.0 + 4 * 1.1)
        assert w4.assignment_index == 1  # 4 mod 3

    def test_max_service_gap(self):
        guard = self.make_guard()
        assert guard.max_service_gap == pytest.approx(3 * 1.1)

    def test_windows_between(self):
        guard = self.make_guard()
        windows = list(guard.windows_between(0.0, 3.5))
        assert [w.assignment_index for w in windows] == [0, 1, 2]
        starts = [w.start for w in windows]
        assert starts == pytest.approx([1.0, 2.1, 3.2])

    def test_windows_between_partial_overlap(self):
        guard = self.make_guard()
        # Window 0 spans [1.0, 1.1); asking for [1.05, 1.2) should include it.
        windows = list(guard.windows_between(1.05, 1.2))
        assert len(windows) == 1
        assert windows[0].assignment_index == 0

    def test_windows_between_empty_range(self):
        guard = self.make_guard()
        assert list(guard.windows_between(2.0, 2.0)) == []

    def test_every_circuit_enabled_within_gap(self):
        """Starvation-freedom: every circuit appears in some window of any
        max_service_gap-long horizon."""
        guard = self.make_guard()
        horizon = guard.max_service_gap + guard.cycle
        enabled = set()
        for window in guard.windows_between(0.0, horizon):
            enabled.update(guard.assignments[window.assignment_index])
        assert enabled == {(i, j) for i in range(3) for j in range(3)}


class TestReserveWindows:
    def test_reserves_every_window_inside_range(self):
        guard = StarvationGuard(num_ports=3, period=1.0, tau=0.1, delta=0.01)
        prt = PortReservationTable()
        # Windows at [1.0, 1.1) and [2.1, 2.2) lie inside [0, 2.5).
        reserved = guard.reserve_windows(prt, 0.0, 2.5)
        assert [w.assignment_index for w in reserved] == [0, 1]
        assert len(prt) == 2 * 3  # two windows × N circuits each

    def test_reservation_contents(self):
        guard = StarvationGuard(num_ports=2, period=1.0, tau=0.1, delta=0.01)
        prt = PortReservationTable()
        windows = guard.reserve_windows(prt, 0.0, 1.5)
        assert len(windows) == 1
        reservations = list(prt)
        assert len(reservations) == 2  # N circuits in the assignment
        for reservation in reservations:
            assert reservation.coflow_id == GUARD_COFLOW_ID
            assert reservation.setup == pytest.approx(0.01)
            assert reservation.start == pytest.approx(1.0)
            assert reservation.end == pytest.approx(1.1)
        prt.validate()

    def test_scheduler_plans_around_guard_windows(self):
        """Sunflow reservations never intersect guard slices."""
        from repro.core.sunflow import SunflowScheduler

        guard = StarvationGuard(num_ports=2, period=0.2, tau=0.05, delta=0.01)
        prt = PortReservationTable()
        guard.reserve_windows(prt, 0.0, 10.0)
        scheduler = SunflowScheduler(delta=0.01)
        schedule = scheduler.schedule_demand(prt, 1, {(0, 1): 1.0})
        prt.validate()
        windows = list(guard.windows_between(0.0, 10.0))
        for reservation in schedule.reservations:
            for window in windows:
                overlap = min(reservation.end, window.end) - max(
                    reservation.start, window.start
                )
                assert overlap <= 1e-9
        served = sum(r.transmit_duration for r in schedule.reservations)
        assert served == pytest.approx(1.0)
