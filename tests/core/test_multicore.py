"""Tests for the K-core fabric layer (``repro.core.multicore`` + PRT groups)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    circuit_lower_bound,
    multicore_circuit_lower_bound,
    multicore_packet_lower_bound,
    packet_lower_bound,
)
from repro.core.coflow import Coflow
from repro.core.multicore import (
    CoreLoadTracker,
    MULTICORE_POLICIES,
    MultiCoreSunflowScheduler,
    SwitchCore,
    build_cores,
    resolve_multicore_policy,
    split_demand,
    uniform_cores,
)
from repro.core.prt import (
    CoreReservationTables,
    PortConflictError,
    PortReservationTable,
)
from repro.core.sunflow import SunflowScheduler
from repro.units import DEFAULT_BANDWIDTH, GBPS, MB, MS, processing_time

B = 1 * GBPS
DELTA = 10 * MS


# ----------------------------------------------------------------------
# Fabric model
# ----------------------------------------------------------------------
class TestFabricModel:
    def test_switch_core_validation(self):
        with pytest.raises(ValueError):
            SwitchCore(index=-1)
        with pytest.raises(ValueError):
            SwitchCore(index=0, bandwidth_bps=0)
        with pytest.raises(ValueError):
            SwitchCore(index=0, delta=-1.0)

    def test_uniform_and_heterogeneous_cores(self):
        cores = uniform_cores(3, bandwidth_bps=B, delta=DELTA)
        assert [c.index for c in cores] == [0, 1, 2]
        assert all(c.bandwidth_bps == B and c.delta == DELTA for c in cores)
        hetero = build_cores(
            2, bandwidth_bps=B, delta=DELTA, core_deltas=(0.01, 0.02)
        )
        assert [c.delta for c in hetero] == [0.01, 0.02]
        with pytest.raises(ValueError):
            build_cores(2, core_deltas=(0.01,))
        with pytest.raises(ValueError):
            uniform_cores(0)

    def test_policy_registry(self):
        assert set(MULTICORE_POLICIES) == {
            "ok-approx",
            "balanced-split",
            "first-fit",
        }
        assert resolve_multicore_policy(None, "inter").name == "ok-approx"
        assert resolve_multicore_policy(None, "intra").name == "first-fit"
        with pytest.raises(ValueError):
            resolve_multicore_policy("first-fit", "inter")
        with pytest.raises(ValueError):
            resolve_multicore_policy("bogus", "intra")


# ----------------------------------------------------------------------
# Grouped per-core reservation tables
# ----------------------------------------------------------------------
class TestCoreReservationTables:
    def test_group_checkpoint_rollback(self):
        group = CoreReservationTables.fresh(2)
        token = group.checkpoint()
        group[0].reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=DELTA)
        group[1].reserve(0, 1, start=0.0, end=2.0, coflow_id=1, setup=DELTA)
        assert group.num_reservations == 2
        assert group.makespan() == 2.0
        undone = group.rollback(token)
        assert undone == 2
        assert group.num_reservations == 0

    def test_group_replay_is_atomic(self):
        group = CoreReservationTables.fresh(2)
        blocker = group[1].reserve(
            0, 1, start=0.0, end=1.0, coflow_id=1, setup=DELTA
        )
        ok = PortReservationTable().reserve(
            0, 1, start=0.0, end=1.0, coflow_id=2, setup=DELTA
        )
        clash = PortReservationTable().reserve(
            0, 1, start=0.5, end=1.5, coflow_id=2, setup=DELTA
        )
        before = group.checkpoint()
        with pytest.raises(PortConflictError):
            group.replay([(0, ok), (1, clash)])
        # The conflicting batch must leave the whole group untouched.
        assert group.checkpoint() == before
        assert len(group[0]) == 0 and len(group[1]) == 1
        group.replay([(0, ok)])
        assert len(group[0]) == 1
        group.validate()
        assert blocker.end == 1.0

    def test_replay_rejects_bad_core(self):
        group = CoreReservationTables.fresh(1)
        stray = PortReservationTable().reserve(
            0, 1, start=0.0, end=1.0, coflow_id=1, setup=DELTA
        )
        with pytest.raises(ValueError):
            group.replay([(3, stray)])
        with pytest.raises(ValueError):
            group.rollback((0, 0))
        with pytest.raises(ValueError):
            CoreReservationTables([])


# ----------------------------------------------------------------------
# K-core lower bounds
# ----------------------------------------------------------------------
class TestMulticoreBounds:
    def test_k1_degenerates_to_single_core(self):
        coflow = Coflow.from_demand(1, {(0, 1): 40 * MB, (0, 2): 15 * MB})
        assert multicore_packet_lower_bound(coflow, [B]) == packet_lower_bound(
            coflow, B
        )
        assert multicore_circuit_lower_bound(
            coflow, [B], [DELTA]
        ) == circuit_lower_bound(coflow, B, DELTA)

    def test_uniform_k_divides_the_bound(self):
        coflow = Coflow.from_demand(1, {(0, 1): 40 * MB, (0, 2): 15 * MB})
        k = 4
        assert multicore_packet_lower_bound(coflow, [B] * k) == pytest.approx(
            packet_lower_bound(coflow, B) / k
        )
        assert multicore_circuit_lower_bound(
            coflow, [B] * k, [DELTA] * k
        ) == pytest.approx(circuit_lower_bound(coflow, B, DELTA) / k)

    def test_validation(self):
        coflow = Coflow.from_demand(1, {(0, 1): 1 * MB})
        with pytest.raises(ValueError):
            multicore_circuit_lower_bound(coflow, [B, B], [DELTA])
        with pytest.raises(ValueError):
            multicore_circuit_lower_bound(coflow, [], [])


# ----------------------------------------------------------------------
# Demand placement helpers
# ----------------------------------------------------------------------
class TestPlacementHelpers:
    def test_split_demand_is_identity_at_k1(self):
        demand = {(0, 1): 40 * MB, (2, 3): 1.7 * MB}
        shares = split_demand(demand, uniform_cores(1))
        assert shares == [demand]

    def test_split_demand_proportional(self):
        demand = {(0, 1): 12 * MB}
        cores = build_cores(2, core_bandwidths=(2 * GBPS, 1 * GBPS))
        shares = split_demand(demand, cores)
        assert shares[0][(0, 1)] == pytest.approx(8 * MB)
        assert shares[1][(0, 1)] == pytest.approx(4 * MB)
        assert sum(s[(0, 1)] for s in shares) == pytest.approx(12 * MB)

    def test_load_tracker_prefers_empty_core(self):
        cores = uniform_cores(2, bandwidth_bps=B, delta=DELTA)
        tracker = CoreLoadTracker(cores)
        demand = {(0, 1): 40 * MB}
        first = tracker.assign(demand)
        assert first == 0  # tie broken to the lowest index
        tracker.add(first, demand)
        assert tracker.assign(demand) == 1  # core 0 now loaded on port 0
        tracker.add(1, demand)
        tracker.remove(0, demand)
        assert tracker.assign(demand) == 0

    def test_load_tracker_score_is_bottleneck_port(self):
        cores = uniform_cores(1, bandwidth_bps=B, delta=DELTA)
        tracker = CoreLoadTracker(cores)
        demand = {(0, 1): 40 * MB, (0, 2): 15 * MB}
        # Port 0 (input) carries 55 MB — the bottleneck.
        expected = processing_time(55 * MB, B) + DELTA
        assert tracker.score(0, demand) == pytest.approx(expected)


# ----------------------------------------------------------------------
# The multi-core scheduler
# ----------------------------------------------------------------------
def _single_core_reference(coflow, delta=DELTA, bandwidth=B, start_time=0.0):
    scheduler = SunflowScheduler(delta=delta)
    prt = PortReservationTable()
    seconds = {c: processing_time(s, bandwidth) for c, s in coflow.demand().items()}
    return scheduler.schedule_demand(prt, coflow.coflow_id, seconds, start_time)


class TestMultiCoreScheduler:
    def test_k1_first_fit_is_bitwise_single_core(self):
        coflow = Coflow.from_demand(
            1, {(0, 1): 40 * MB, (0, 2): 25 * MB, (3, 1): 10 * MB, (2, 0): 5 * MB}
        )
        scheduler = MultiCoreSunflowScheduler(uniform_cores(1, B, DELTA))
        schedule = scheduler.schedule_demand(
            scheduler.new_tables(), 1, coflow.demand()
        )
        reference = _single_core_reference(coflow)
        assert [
            (i.reservation.start, i.reservation.end, i.reservation.src,
             i.reservation.dst, i.reservation.setup)
            for i in schedule.reservations
        ] == [
            (r.start, r.end, r.src, r.dst, r.setup)
            for r in reference.reservations
        ]
        assert schedule.completion_time == reference.completion_time

    def test_ok_approx_places_whole_coflow_on_one_core(self):
        scheduler = MultiCoreSunflowScheduler(uniform_cores(4, B, DELTA))
        coflow = Coflow.from_demand(7, {(0, 1): 40 * MB, (2, 3): 15 * MB})
        schedule = scheduler.schedule_coflow(coflow, policy="ok-approx")
        assert set(schedule.per_core_counts()) == {0}
        # Exact per-core reference: the chosen core runs plain Sunflow.
        reference = _single_core_reference(coflow)
        assert schedule.completion_time == reference.completion_time

    def test_balanced_split_shares_match_per_core_reference(self):
        cores = uniform_cores(2, B, DELTA)
        scheduler = MultiCoreSunflowScheduler(cores)
        coflow = Coflow.from_demand(9, {(0, 1): 40 * MB, (2, 3): 15 * MB})
        schedule = scheduler.schedule_coflow(coflow, policy="balanced-split")
        shares = split_demand(coflow.demand(), cores)
        for core in (0, 1):
            share_coflow = Coflow.from_demand(9, shares[core])
            reference = _single_core_reference(share_coflow)
            got = [
                (i.reservation.start, i.reservation.end)
                for i in schedule.reservations
                if i.core == core
            ]
            assert got == [(r.start, r.end) for r in reference.reservations]

    def test_first_fit_spreads_incast_across_cores(self):
        incast = {(s, 0): 8 * MB for s in range(1, 5)}
        k4 = MultiCoreSunflowScheduler(uniform_cores(4, B, DELTA))
        k1 = MultiCoreSunflowScheduler(uniform_cores(1, B, DELTA))
        tables = k4.new_tables()
        spread = k4.schedule_demand(tables, 1, incast)
        serial = k1.schedule_demand(k1.new_tables(), 1, incast)
        assert len(spread.per_core_counts()) == 4
        assert spread.completion_time < serial.completion_time
        tables.validate()

    def test_more_cores_never_hurt_first_fit(self):
        demand = {(0, 1): 20 * MB, (0, 2): 20 * MB, (3, 1): 5 * MB}
        previous = None
        for k in (1, 2, 4):
            scheduler = MultiCoreSunflowScheduler(uniform_cores(k, B, DELTA))
            schedule = scheduler.schedule_demand(
                scheduler.new_tables(), 1, dict(demand)
            )
            if previous is not None:
                assert schedule.completion_time <= previous + 1e-9
            previous = schedule.completion_time

    def test_table_count_checked(self):
        scheduler = MultiCoreSunflowScheduler(uniform_cores(2, B, DELTA))
        with pytest.raises(ValueError, match="expected 2"):
            scheduler.schedule_demand(CoreReservationTables.fresh(3), 1, {})

    @settings(deadline=None, max_examples=40)
    @given(
        k=st.integers(min_value=1, max_value=4),
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.1, max_value=80.0),
            ),
            min_size=1,
            max_size=10,
            unique_by=lambda e: (e[0], e[1]),
        ),
        policy=st.sampled_from(["first-fit", "ok-approx", "balanced-split"]),
    )
    def test_fuzz_policies_conserve_demand_and_respect_ports(
        self, k, entries, policy
    ):
        """Any policy, any K: schedules serve the demand exactly, respect
        per-core port constraints, and land within the per-core 2×TcL
        Lemma-1 envelope scaled to the placement."""
        demand = {(src, dst): mb * MB for src, dst, mb in entries}
        coflow = Coflow.from_demand(1, demand)
        scheduler = MultiCoreSunflowScheduler(uniform_cores(k, B, DELTA))
        tables = scheduler.new_tables()
        schedule = scheduler.schedule_coflow(
            coflow, policy=policy, tables=tables
        )
        tables.validate()
        # Demand conservation: per-circuit transmit seconds sum to the
        # circuit's processing time (every core has rate B here).
        served = {}
        for item in schedule.reservations:
            r = item.reservation
            served[(r.src, r.dst)] = (
                served.get((r.src, r.dst), 0.0) + (r.end - r.start - r.setup)
            )
        for circuit, size in demand.items():
            assert served[circuit] == pytest.approx(
                processing_time(size, B), abs=1e-6
            )
        # Lemma-1 envelope: for whole-coflow placements the single-core
        # bound applies; for splits, each core's share obeys it per core.
        if policy in ("first-fit", "ok-approx"):
            bound = 2 * circuit_lower_bound(coflow, B, DELTA)
            assert schedule.makespan <= bound * (1 + 1e-9)

    @settings(deadline=None, max_examples=25)
    @given(
        k=st.integers(min_value=2, max_value=4),
        sizes=st.lists(
            st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=6
        ),
    )
    def test_fuzz_ok_approx_assignment_matches_brute_force(self, k, sizes):
        """The least-loaded rule must pick the brute-force argmin core as
        skewed Coflows stream through one shared load tracker."""
        cores = uniform_cores(k, B, DELTA)
        tracker = CoreLoadTracker(cores)
        rng = random.Random(1234)
        for cid, mb in enumerate(sizes):
            # Skewed demand: everything hammers a small port set.
            demand = {
                (rng.randrange(2), 2 + rng.randrange(2)): mb * MB,
                (0, 2): 0.25 * mb * MB,
            }
            brute = min(
                range(k), key=lambda core: (tracker.score(core, demand), core)
            )
            chosen = tracker.assign(demand)
            assert tracker.score(chosen, demand) == pytest.approx(
                tracker.score(brute, demand)
            )
            tracker.add(chosen, demand)
