"""Unit tests for the Coflow traffic model."""

import pytest

from repro.core.coflow import Coflow, CoflowCategory, CoflowTrace, Flow
from repro.units import GBPS, MB


class TestFlow:
    def test_processing_time_is_equation_1(self):
        flow = Flow(src=0, dst=1, size_bytes=125 * MB)
        # 125 MB = 1e9 bits -> 1 second at 1 Gbps.
        assert flow.processing_time(1 * GBPS) == pytest.approx(1.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Flow(src=0, dst=1, size_bytes=0.0)
        with pytest.raises(ValueError):
            Flow(src=0, dst=1, size_bytes=-1.0)

    def test_rejects_negative_ports(self):
        with pytest.raises(ValueError):
            Flow(src=-1, dst=0, size_bytes=1.0)
        with pytest.raises(ValueError):
            Flow(src=0, dst=-2, size_bytes=1.0)

    def test_flow_is_immutable(self):
        flow = Flow(src=0, dst=1, size_bytes=1.0)
        with pytest.raises(AttributeError):
            flow.size_bytes = 2.0


class TestCoflowConstruction:
    def test_from_demand_drops_zero_entries(self):
        coflow = Coflow.from_demand(1, {(0, 1): 5.0, (0, 2): 0.0})
        assert coflow.num_flows == 1
        assert coflow.flows[0].dst == 1

    def test_duplicate_circuit_rejected(self):
        flows = [Flow(0, 1, 1.0), Flow(0, 1, 2.0)]
        with pytest.raises(ValueError, match="duplicate"):
            Coflow(1, 0.0, flows)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Coflow(1, -0.5, [])

    def test_demand_round_trip(self):
        demand = {(0, 1): 5.0, (2, 3): 7.0}
        coflow = Coflow.from_demand(9, demand)
        assert coflow.demand() == demand


class TestCoflowStructure:
    def test_category_one_to_one(self):
        assert Coflow.from_demand(1, {(0, 1): 1.0}).category is CoflowCategory.ONE_TO_ONE

    def test_category_one_to_many(self):
        coflow = Coflow.from_demand(1, {(0, 1): 1.0, (0, 2): 1.0})
        assert coflow.category is CoflowCategory.ONE_TO_MANY

    def test_category_many_to_one(self):
        coflow = Coflow.from_demand(1, {(0, 2): 1.0, (1, 2): 1.0})
        assert coflow.category is CoflowCategory.MANY_TO_ONE

    def test_category_many_to_many(self):
        coflow = Coflow.from_demand(1, {(0, 2): 1.0, (1, 3): 1.0})
        assert coflow.category is CoflowCategory.MANY_TO_MANY

    def test_loopback_port_counts_as_single_endpoint(self):
        # src port 0 and dst port 0 are different sides of the fabric.
        coflow = Coflow.from_demand(1, {(0, 0): 1.0})
        assert coflow.category is CoflowCategory.ONE_TO_ONE

    def test_senders_receivers_sorted_unique(self):
        coflow = Coflow.from_demand(1, {(3, 1): 1.0, (2, 1): 1.0, (3, 0): 1.0})
        assert coflow.senders == [2, 3]
        assert coflow.receivers == [0, 1]

    def test_total_bytes(self):
        coflow = Coflow.from_demand(1, {(0, 1): 3.0, (1, 2): 4.5})
        assert coflow.total_bytes == pytest.approx(7.5)

    def test_average_processing_time(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB, (1, 2): 250 * MB})
        # 1 s and 2 s at 1 Gbps -> average 1.5 s.
        assert coflow.average_processing_time(1 * GBPS) == pytest.approx(1.5)

    def test_average_processing_time_empty(self):
        assert Coflow(1, 0.0, []).average_processing_time(1 * GBPS) == 0.0

    def test_is_long_threshold(self, default_network):
        # p_avg = 0.4 s > 40 * 10 ms exactly at the boundary is NOT long.
        boundary = Coflow.from_demand(1, {(0, 1): 50 * MB})  # 0.4 s at 1 Gbps
        assert not boundary.is_long(**default_network)
        long_coflow = Coflow.from_demand(1, {(0, 1): 51 * MB})
        assert long_coflow.is_long(**default_network)


class TestCoflowTransforms:
    def test_scaled_multiplies_and_floors(self):
        coflow = Coflow.from_demand(1, {(0, 1): 10.0, (1, 2): 100.0})
        scaled = coflow.scaled(0.5, min_bytes=8.0)
        sizes = sorted(f.size_bytes for f in scaled.flows)
        assert sizes == [8.0, 50.0]

    def test_scaled_rejects_nonpositive_factor(self):
        coflow = Coflow.from_demand(1, {(0, 1): 10.0})
        with pytest.raises(ValueError):
            coflow.scaled(0.0)

    def test_with_arrival(self):
        coflow = Coflow.from_demand(1, {(0, 1): 10.0}, arrival_time=1.0)
        moved = coflow.with_arrival(9.0)
        assert moved.arrival_time == 9.0
        assert moved.demand() == coflow.demand()

    def test_merged_sums_overlapping_demand(self):
        a = Coflow.from_demand(1, {(0, 1): 10.0}, arrival_time=5.0)
        b = Coflow.from_demand(2, {(0, 1): 3.0, (1, 2): 4.0}, arrival_time=2.0)
        merged = Coflow.merged(99, [a, b])
        assert merged.demand() == {(0, 1): 13.0, (1, 2): 4.0}
        assert merged.arrival_time == 2.0  # earliest constituent

    def test_merged_empty_rejected(self):
        with pytest.raises(ValueError):
            Coflow.merged(1, [])


class TestCoflowTrace:
    def test_port_bounds_checked_on_add(self):
        trace = CoflowTrace(num_ports=4)
        with pytest.raises(ValueError, match="outside"):
            trace.add(Coflow.from_demand(1, {(0, 4): 1.0}))

    def test_port_bounds_checked_on_init(self):
        with pytest.raises(ValueError):
            CoflowTrace(num_ports=2, coflows=[Coflow.from_demand(1, {(3, 0): 1.0})])

    def test_sorted_by_arrival(self):
        trace = CoflowTrace(
            num_ports=4,
            coflows=[
                Coflow.from_demand(2, {(0, 1): 1.0}, arrival_time=5.0),
                Coflow.from_demand(1, {(0, 1): 1.0}, arrival_time=1.0),
            ],
        )
        ordered = trace.sorted_by_arrival()
        assert [c.coflow_id for c in ordered] == [1, 2]
        # Original untouched.
        assert [c.coflow_id for c in trace] == [2, 1]

    def test_span_and_totals(self):
        trace = CoflowTrace(
            num_ports=4,
            coflows=[
                Coflow.from_demand(1, {(0, 1): 2.0}, arrival_time=1.0),
                Coflow.from_demand(2, {(1, 2): 3.0}, arrival_time=4.0),
            ],
        )
        assert trace.span == 4.0
        assert trace.total_bytes == pytest.approx(5.0)
        assert len(trace) == 2
        assert trace[1].coflow_id == 2

    def test_empty_trace_span(self):
        assert CoflowTrace(num_ports=1).span == 0.0

    def test_map_sizes(self):
        trace = CoflowTrace(num_ports=4, coflows=[Coflow.from_demand(1, {(0, 1): 2.0})])
        doubled = trace.map_sizes(lambda f: f.size_bytes * 2)
        assert doubled[0].flows[0].size_bytes == 4.0
        assert trace[0].flows[0].size_bytes == 2.0
