"""Tests for the Port Reservation Table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prt import (
    TIME_EPS,
    PortConflictError,
    PortReservationTable,
    Reservation,
)


def make_prt():
    return PortReservationTable()


class TestReservation:
    def test_transmit_window(self):
        r = Reservation(start=1.0, end=3.0, src=0, dst=1, coflow_id=1, setup=0.5)
        assert r.duration == pytest.approx(2.0)
        assert r.transmit_start == pytest.approx(1.5)
        assert r.transmit_duration == pytest.approx(1.5)

    def test_transmitted_before(self):
        r = Reservation(start=1.0, end=3.0, src=0, dst=1, coflow_id=1, setup=0.5)
        assert r.transmitted_before(1.2) == 0.0  # still in setup
        assert r.transmitted_before(2.0) == pytest.approx(0.5)
        assert r.transmitted_before(10.0) == pytest.approx(1.5)  # capped at end

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Reservation(start=1.0, end=1.0, src=0, dst=1, coflow_id=1, setup=0.0)

    def test_setup_longer_than_reservation_rejected(self):
        with pytest.raises(ValueError):
            Reservation(start=0.0, end=1.0, src=0, dst=1, coflow_id=1, setup=2.0)


class TestReserve:
    def test_basic_reserve_and_query(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.1)
        assert not prt.input_free_at(0, 0.5)
        assert not prt.output_free_at(1, 0.5)
        assert prt.input_free_at(1, 0.5)
        assert prt.output_free_at(0, 0.5)

    def test_half_open_semantics(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        # Port is free exactly at the end instant and a new reservation may
        # start there.
        assert prt.input_free_at(0, 1.0)
        prt.reserve(0, 2, start=1.0, end=2.0, coflow_id=1, setup=0.0)
        prt.validate()

    def test_overlap_on_input_rejected(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        with pytest.raises(PortConflictError):
            prt.reserve(0, 2, start=0.5, end=1.5, coflow_id=1, setup=0.0)

    def test_overlap_on_output_rejected(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        with pytest.raises(PortConflictError):
            prt.reserve(2, 1, start=0.5, end=1.5, coflow_id=1, setup=0.0)

    def test_containing_overlap_rejected(self):
        prt = make_prt()
        prt.reserve(0, 1, start=1.0, end=2.0, coflow_id=1, setup=0.0)
        with pytest.raises(PortConflictError):
            prt.reserve(0, 1, start=0.0, end=3.0, coflow_id=1, setup=0.0)

    def test_disjoint_circuits_coexist(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        prt.reserve(1, 0, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        prt.validate()
        assert len(prt) == 2


class TestQueries:
    def test_next_reserved_time(self):
        prt = make_prt()
        prt.reserve(0, 1, start=5.0, end=6.0, coflow_id=1, setup=0.0)
        prt.reserve(2, 3, start=2.0, end=3.0, coflow_id=1, setup=0.0)
        # For circuit (0, 3): input 0 reserved at 5, output 3 at 2.
        assert prt.next_reserved_time(0, 3, 0.0) == pytest.approx(2.0)
        assert prt.next_reserved_time(0, 3, 2.5) == pytest.approx(5.0)

    def test_next_reserved_time_none(self):
        prt = make_prt()
        assert prt.next_reserved_time(0, 1, 0.0) == float("inf")

    def test_next_release_after(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        prt.reserve(2, 3, start=0.0, end=2.0, coflow_id=1, setup=0.0)
        assert prt.next_release_after(0.0) == pytest.approx(1.0)
        assert prt.next_release_after(1.0) == pytest.approx(2.0)
        assert prt.next_release_after(2.0) is None

    def test_makespan(self):
        prt = make_prt()
        assert prt.makespan() == 0.0
        prt.reserve(0, 1, start=0.0, end=3.5, coflow_id=1, setup=0.0)
        assert prt.makespan() == pytest.approx(3.5)

    def test_reservation_at_lookup(self):
        prt = make_prt()
        reservation = prt.reserve(0, 1, start=1.0, end=2.0, coflow_id=7, setup=0.0)
        assert prt.input_reservation_at(0, 1.5) is reservation
        assert prt.output_reservation_at(1, 1.5) is reservation
        assert prt.input_reservation_at(0, 0.5) is None
        assert prt.input_reservation_at(0, 2.5) is None

    def test_iteration_preserves_insertion_order(self):
        prt = make_prt()
        first = prt.reserve(0, 1, start=5.0, end=6.0, coflow_id=1, setup=0.0)
        second = prt.reserve(2, 3, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        assert list(prt) == [first, second]

    def test_next_reserved_time_epsilon_boundary(self):
        """A reservation starting within TIME_EPS *before* ``t`` still
        counts as the next reserved time: the sub-epsilon gap ahead of it
        must never be mistaken for usable port time."""
        prt = make_prt()
        prt.reserve(0, 1, start=1.0, end=2.0, coflow_id=1, setup=0.0)
        t = 1.0 + TIME_EPS / 2
        assert prt.next_reserved_time(0, 1, t) == pytest.approx(1.0, abs=TIME_EPS)
        # Strictly past the tolerance the reservation is behind us.
        assert prt.next_reserved_time(0, 1, 1.0 + 3 * TIME_EPS) == float("inf")

    def test_release_of_block(self):
        prt = make_prt()
        prt.reserve(0, 1, start=1.0, end=4.0, coflow_id=1, setup=0.0)
        prt.reserve(2, 3, start=1.0, end=2.0, coflow_id=1, setup=0.0)
        # Circuit (0, 3): both ports have a blocker starting at 1.0; the
        # output one releases first.
        end, on_input = prt.release_of_block(0, 3, 0.5, 1.0)
        assert end == pytest.approx(2.0)
        assert on_input is False
        # Circuit (0, 1): only the input blocker matters.
        end, on_input = prt.release_of_block(0, 5, 0.5, 1.0)
        assert end == pytest.approx(4.0)
        assert on_input is True
        # No blocker on either port.
        end, on_input = prt.release_of_block(7, 8, 0.5, 1.0)
        assert end == float("inf")


class TestCheckpointRollback:
    def test_rollback_undoes_suffix(self):
        prt = make_prt()
        kept = prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        token = prt.checkpoint()
        prt.reserve(0, 1, start=2.0, end=3.0, coflow_id=2, setup=0.0)
        prt.reserve(4, 5, start=0.0, end=9.0, coflow_id=2, setup=0.0)
        assert prt.rollback(token) == 2
        assert list(prt) == [kept]
        assert prt.makespan() == pytest.approx(1.0)
        assert prt.input_free_at(4, 5.0)
        prt.validate()

    def test_rollback_then_reserve_again(self):
        prt = make_prt()
        token = prt.checkpoint()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        prt.rollback(token)
        # The undone interval is free again.
        prt.reserve(0, 1, start=0.5, end=1.5, coflow_id=2, setup=0.0)
        prt.validate()

    def test_rollback_rejects_bad_token(self):
        prt = make_prt()
        with pytest.raises(ValueError):
            prt.rollback(5)
        with pytest.raises(ValueError):
            prt.rollback(-1)

    def test_replay_reinserts_cached_reservations(self):
        prt = make_prt()
        token = prt.checkpoint()
        made = [
            prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.1),
            prt.reserve(2, 3, start=0.5, end=2.0, coflow_id=1, setup=0.1),
        ]
        prt.rollback(token)
        prt.replay(made)
        assert list(prt) == made
        prt.validate()

    def test_replay_still_checks_conflicts(self):
        prt = make_prt()
        stale = Reservation(start=0.0, end=2.0, src=0, dst=1, coflow_id=1, setup=0.0)
        prt.reserve(0, 9, start=1.0, end=3.0, coflow_id=2, setup=0.0)
        with pytest.raises(PortConflictError):
            prt.replay([stale])

    def test_clear_empties_everything(self):
        prt = make_prt()
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=1, setup=0.0)
        prt.reserve(2, 3, start=0.0, end=2.0, coflow_id=1, setup=0.0)
        prt.clear()
        assert len(prt) == 0
        assert prt.makespan() == 0.0
        assert prt.next_release_after(0.0) is None
        assert prt.input_free_at(0, 0.5)
        # A cleared table accepts fresh reservations and a full rollback.
        token = prt.checkpoint()
        assert token == 0
        prt.reserve(0, 1, start=0.0, end=1.0, coflow_id=2, setup=0.0)
        prt.validate()


@st.composite
def reservation_requests(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    requests = []
    for _ in range(count):
        src = draw(st.integers(min_value=0, max_value=3))
        dst = draw(st.integers(min_value=0, max_value=3))
        start = draw(st.floats(min_value=0.0, max_value=10.0))
        length = draw(st.floats(min_value=0.01, max_value=3.0))
        requests.append((src, dst, start, start + length))
    return requests


class TestPrtProperties:
    @given(reservation_requests())
    @settings(max_examples=100, deadline=None)
    def test_accepted_reservations_never_overlap(self, requests):
        """Whatever subset of requests the PRT accepts, the port constraint
        holds; rejected requests raise PortConflictError and change nothing."""
        prt = make_prt()
        accepted = 0
        for src, dst, start, end in requests:
            before = len(prt)
            try:
                prt.reserve(src, dst, start=start, end=end, coflow_id=1, setup=0.0)
                accepted += 1
            except PortConflictError:
                assert len(prt) == before
        prt.validate()
        assert len(prt) == accepted
