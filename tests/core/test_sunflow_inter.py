"""Unit tests for Sunflow inter-Coflow scheduling (§4.2)."""

import pytest

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable
from repro.core.sunflow import SunflowScheduler
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def seconds(mb):
    return mb * MB * 8 / B


class TestPriorityIsolation:
    def test_high_priority_unaffected_by_low_priority(self):
        """The first-scheduled Coflow gets exactly its isolated schedule."""
        scheduler = SunflowScheduler(delta=DELTA)
        high = Coflow.from_demand(1, {(0, 0): 50 * MB, (1, 1): 30 * MB})
        low = Coflow.from_demand(2, {(0, 0): 100 * MB, (1, 0): 10 * MB})

        alone = scheduler.schedule_coflow(high, B, start_time=0.0)
        _, schedules = scheduler.schedule_coflows([high, low], B)
        assert schedules[1].makespan == pytest.approx(alone.makespan)

    def test_low_priority_fills_gaps(self):
        """A lower-priority Coflow on disjoint ports runs in parallel."""
        scheduler = SunflowScheduler(delta=DELTA)
        high = Coflow.from_demand(1, {(0, 0): 50 * MB})
        low = Coflow.from_demand(2, {(1, 1): 50 * MB})
        _, schedules = scheduler.schedule_coflows([high, low], B)
        assert schedules[2].makespan == pytest.approx(schedules[1].makespan)

    def test_low_priority_waits_on_shared_port(self):
        scheduler = SunflowScheduler(delta=DELTA)
        high = Coflow.from_demand(1, {(0, 0): 50 * MB})
        low = Coflow.from_demand(2, {(0, 1): 50 * MB})
        _, schedules = scheduler.schedule_coflows([high, low], B)
        # Low must wait for the full high reservation (δ + 0.4 s), then pay
        # its own setup.
        expected = (DELTA + seconds(50)) * 2
        assert schedules[2].completion_time == pytest.approx(expected)

    def test_shared_prt_has_no_conflicts(self):
        scheduler = SunflowScheduler(delta=DELTA)
        coflows = [
            Coflow.from_demand(1, {(0, 0): 20 * MB, (1, 1): 10 * MB}),
            Coflow.from_demand(2, {(0, 1): 15 * MB, (1, 0): 25 * MB}),
            Coflow.from_demand(3, {(0, 0): 5 * MB, (2, 2): 40 * MB}),
        ]
        prt, _ = scheduler.schedule_coflows(coflows, B)
        prt.validate()


class TestGapTruncation:
    def test_reservation_truncated_to_fit_gap(self):
        """Figure 2: C2 on a port shortly needed by C1 gets a shortened
        reservation and resumes later with a second setup."""
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        # Pre-existing (higher-priority) reservation on input 0 at [0.2, 0.5).
        prt.reserve(0, 9, start=0.2, end=0.5, coflow_id=1, setup=DELTA)
        demand = {(0, 1): seconds(50)}  # 0.4 s of data: doesn't fit in 0.2 s
        schedule = scheduler.schedule_demand(prt, 2, demand, start_time=0.0)
        assert len(schedule.reservations) == 2
        first, second = sorted(schedule.reservations, key=lambda r: r.start)
        assert first.end == pytest.approx(0.2)  # truncated at the C1 start
        assert second.start == pytest.approx(0.5)  # resumes after C1
        assert schedule.num_setups == 2  # the extra δ penalty
        # Data is conserved across the split.
        assert first.transmit_duration + second.transmit_duration == pytest.approx(
            seconds(50)
        )

    def test_gap_smaller_than_delta_skipped(self):
        """Algorithm 1 line 19: lm < δ means reserving transmits nothing."""
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        prt.reserve(0, 9, start=DELTA / 2, end=1.0, coflow_id=1, setup=DELTA / 2)
        schedule = scheduler.schedule_demand(prt, 2, {(0, 1): 0.1}, start_time=0.0)
        assert len(schedule.reservations) == 1
        assert schedule.reservations[0].start == pytest.approx(1.0)


class TestEstablishedCircuits:
    def test_established_circuit_skips_setup(self):
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        schedule = scheduler.schedule_demand(
            prt, 1, {(0, 1): 0.5}, start_time=2.0, established=frozenset({(0, 1)})
        )
        assert len(schedule.reservations) == 1
        reservation = schedule.reservations[0]
        assert reservation.setup == 0.0
        assert reservation.start == pytest.approx(2.0)
        assert schedule.makespan == pytest.approx(0.5)

    def test_established_only_applies_at_start_time(self):
        """A flow resuming later (after being blocked) still pays δ."""
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        prt.reserve(0, 9, start=2.0, end=3.0, coflow_id=7, setup=DELTA)
        schedule = scheduler.schedule_demand(
            prt, 1, {(0, 1): 0.5}, start_time=2.0, established=frozenset({(0, 1)})
        )
        # Input 0 busy at start -> circuit starts at 3.0 and must reconfigure.
        assert schedule.reservations[0].start == pytest.approx(3.0)
        assert schedule.reservations[0].setup == pytest.approx(DELTA)

    def test_established_is_per_circuit(self):
        scheduler = SunflowScheduler(delta=DELTA)
        prt = PortReservationTable()
        schedule = scheduler.schedule_demand(
            prt,
            1,
            {(0, 1): 0.5, (2, 3): 0.5},
            start_time=0.0,
            established=frozenset({(0, 1)}),
        )
        setups = {(r.src, r.dst): r.setup for r in schedule.reservations}
        assert setups[(0, 1)] == 0.0
        assert setups[(2, 3)] == pytest.approx(DELTA)


class TestLemmaUnderInterference:
    def test_factor_two_does_not_hold_under_interference_but_schedule_is_valid(self):
        """Lemma 1 is an intra-Coflow guarantee; under inter-Coflow blocking
        a low-priority Coflow can exceed 2×TcL, but the schedule must still
        serve all demand with valid port usage."""
        scheduler = SunflowScheduler(delta=DELTA)
        blocker = Coflow.from_demand(1, {(0, 0): 1000 * MB})
        victim = Coflow.from_demand(2, {(0, 0): 1 * MB})
        prt, schedules = scheduler.schedule_coflows([blocker, victim], B)
        prt.validate()
        lower = circuit_lower_bound(victim, B, DELTA)
        assert schedules[2].makespan > 2 * lower  # blocked far past its bound
        served = sum(r.transmit_duration for r in schedules[2].reservations)
        assert served == pytest.approx(seconds(1))
