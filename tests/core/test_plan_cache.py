"""Unit and equivalence tests for the gap-signature plan cache.

The cache may only ever return what a fresh Algorithm 1 run would have
produced bit-for-bit, so the observable contract is: identical schedules
and simulation records with the cache on or off, plus the counters that
prove it actually hit.
"""

import random

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.plan_cache import PlanCache, _advance_profile
from repro.core.prt import PortReservationTable, Reservation, TIME_EPS
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.sim.circuit_sim import InterCoflowSimulator
from repro.units import MB
from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

DELTA = 0.01


def plan_keys(schedule):
    return [
        (r.start, r.end, r.src, r.dst, r.setup) for r in schedule.reservations
    ]


class TestPlanCacheUnit:
    def test_exact_hit_replays_identical_plan(self):
        scheduler = SunflowScheduler(delta=DELTA)
        demand = {(0, 1): 0.2, (2, 3): 0.1}
        first = scheduler.schedule_demand(PortReservationTable(), 5, demand)
        second = scheduler.schedule_demand(PortReservationTable(), 5, demand)
        assert plan_keys(first) == plan_keys(second)
        counters = scheduler.plan_cache.counters
        assert counters["plan_cache_hits"] == 1
        # The first lookup is a pre-check skip (key never stored), not a
        # miss: the rate only counts recurring planning problems.
        assert counters["plan_cache_misses"] == 0
        assert counters["plan_cache_skips"] == 1
        assert counters["plan_cache_shifted_hits"] == 0

    def test_shifted_hit_from_earlier_origin(self):
        """A plan computed at an earlier origin that placed nothing before
        ``now`` is replayed when the port profiles re-truncated at ``now``
        match."""
        scheduler = SunflowScheduler(delta=DELTA)
        demand = {(0, 1): 0.2}

        def blocked_prt():
            prt = PortReservationTable()
            prt.reserve(0, 1, 0.0, 1.0, 99, DELTA)
            return prt

        first = scheduler.schedule_demand(blocked_prt(), 5, demand, start_time=0.0)
        assert first.first_start() >= 0.5
        second = scheduler.schedule_demand(blocked_prt(), 5, demand, start_time=0.5)
        assert plan_keys(first) == plan_keys(second)
        counters = scheduler.plan_cache.counters
        assert counters["plan_cache_hits"] == 1
        assert counters["plan_cache_shifted_hits"] == 1

    def test_occupancy_change_misses(self):
        scheduler = SunflowScheduler(delta=DELTA)
        demand = {(0, 1): 0.2}
        scheduler.schedule_demand(PortReservationTable(), 5, demand)
        prt = PortReservationTable()
        prt.reserve(0, 7, 0.05, 0.3, 99, DELTA)  # occupies input port 0
        scheduler.schedule_demand(prt, 5, demand)
        counters = scheduler.plan_cache.counters
        assert counters["plan_cache_hits"] == 0
        # First sight skips; the recurrence with changed occupancy is the
        # real miss (the key exists but no signature matches).
        assert counters["plan_cache_skips"] == 1
        assert counters["plan_cache_misses"] == 1

    def test_established_and_random_order_bypass(self):
        demand = {(0, 1): 0.2}
        scheduler = SunflowScheduler(delta=DELTA)
        scheduler.schedule_demand(
            PortReservationTable(), 5, demand, established={(0, 1): 0.002}
        )
        counters = scheduler.plan_cache.counters
        assert counters["plan_cache_hits"] + counters["plan_cache_misses"] == 0

        shuffled = SunflowScheduler(delta=DELTA, order=ReservationOrder.RANDOM)
        shuffled.schedule_demand(PortReservationTable(), 5, demand)
        assert shuffled.plan_cache.counters["plan_cache_bypasses"] == 1

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        scheduler = SunflowScheduler(delta=DELTA, plan_cache=cache)
        for cid in range(4):
            scheduler.schedule_demand(PortReservationTable(), cid, {(0, 1): 0.2})
        assert cache.counters["plan_cache_evictions"] == 2
        assert len(cache) == 2

    def test_stale_entry_invalidated_on_replay_conflict(self):
        """Defense in depth: if a cached plan somehow no longer fits, the
        replay's overlap check catches it and drops the entry instead of
        corrupting the PRT."""
        scheduler = SunflowScheduler(delta=DELTA)
        cache = scheduler.plan_cache
        demand = {(0, 1): 0.2}
        scheduler.schedule_demand(PortReservationTable(), 5, demand)
        # Corrupt the stored plan so it collides with existing occupancy
        # while its signature still matches an empty table.
        (bucket,) = cache._entries.values()
        bucket[0].reservations = (
            Reservation(start=0.0, end=0.5, src=0, dst=1, coflow_id=5, setup=DELTA),
        )
        prt = PortReservationTable()
        prt.reserve(7, 1, 0.1, 0.2, 99, DELTA)
        # Output port 1 is occupied on [0.1, 0.2) but the demand's profile
        # lookup happens against ports (0 in, 1 out) — the corrupt entry
        # (profile captured empty) cannot match, so force the exact-match
        # path by replaying against an empty table again.
        result = scheduler.schedule_demand(PortReservationTable(), 5, demand)
        assert cache.counters["plan_cache_hits"] == 1
        assert plan_keys(result)  # still produced a valid plan

    def test_advance_profile_matches_recompute(self):
        prt = PortReservationTable()
        prt.reserve(0, 1, 0.5, 1.0, 1, DELTA)
        prt.reserve(0, 2, 1.5, 2.0, 2, DELTA)
        stored = prt.input_profile(0, 0.0)
        for t in (0.0, 0.6, 1.2, 1.7, 2.5):
            assert _advance_profile(stored, t) == prt.input_profile(0, t)


class TestCacheEquivalence:
    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("seed", [3, 2016])
    def test_simulation_identical_with_and_without_cache(self, incremental, seed):
        config = GeneratorConfig(num_ports=40, num_coflows=60, max_width=10, seed=seed)
        trace = FacebookLikeTraceGenerator(config).generate()

        def run(cache_on):
            sim = InterCoflowSimulator(
                trace, incremental=incremental, rng=random.Random(4)
            )
            if not cache_on:
                sim.scheduler.plan_cache = None
            report = sim.run()
            return sorted(
                (r.coflow_id, r.completion_time, r.switching_count)
                for r in report.records
            ), sim

        with_cache, sim_on = run(cache_on=True)
        without_cache, _ = run(cache_on=False)
        assert with_cache == without_cache
        lookups = (
            sim_on.perf.count("plan_cache_hits")
            + sim_on.perf.count("plan_cache_misses")
            + sim_on.perf.count("plan_cache_skips")
        )
        assert lookups > 0

    def test_full_replan_path_gets_shifted_hits(self):
        """Queued (never-served) Coflows are replanned at every event by
        the full path; their planning problems recur shifted in time, so
        the cache must actually hit there.

        Six same-circuit Coflows arriving together serve strictly one at
        a time: at each completion the still-queued tail sees the same
        port occupancy it saw last event, just later — shifted hits."""
        coflows = [
            Coflow.from_demand(cid, {(0, 1): 10 * MB}, arrival_time=0.0)
            for cid in range(1, 7)
        ]
        trace = CoflowTrace(num_ports=2, coflows=coflows)
        sim = InterCoflowSimulator(trace, incremental=False)
        sim.run()
        assert sim.perf.count("plan_cache_hits") > 0
        assert sim.perf.count("plan_cache_shifted_hits") > 0


class TestRecurringConvoyScenario:
    """The bench scenario pinning the cache-aware replanner's hit rate.

    The incremental replanner now fetches from the plan cache *before*
    falling through to verbatim replay or a recompute, and its reuse
    paths populate the cache — so the convoy's recurring planning
    problems hit in both modes instead of being structurally shadowed on
    the incremental path.
    """

    def test_both_replan_modes_hit_the_cache(self):
        from repro.perf.replay_bench import run_plan_cache_scenario

        result = run_plan_cache_scenario()
        full = result["full_replan"]
        assert full["plan_cache_hit_rate"] > 0
        assert full["plan_cache_hits"] > 0
        incremental = result["incremental"]
        assert incremental["plan_cache_hits"] > 0
        assert incremental["plan_cache_hit_rate"] >= 0.80
        # Hits replace the verbatim replays that used to shadow them;
        # recurrences still never reach a recompute.
        assert (
            incremental["plan_cache_hits"] + incremental["plans_transformed"]
            > incremental["plans_computed"]
        )
