"""Grid expansion: ``SweepSpec`` → cells."""

import pytest

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.sweep import SweepSpec, derive_cell_seed

TRACE = TraceSpec(kind="facebook", num_ports=12, num_coflows=4, max_width=4, seed=3)


def base_spec(**kwargs):
    kwargs.setdefault("trace", TRACE)
    return SimulationSpec(**kwargs)


@pytest.fixture
def grid():
    return SweepSpec(
        name="demo",
        base=base_spec(),
        axes={
            "network.delta": [0.1, 0.01],
            "scheduler": ["sunflow", "solstice"],
        },
    )


def test_cartesian_cells_axis_major(grid):
    cells = grid.cells()
    assert grid.num_cells() == len(cells) == 4
    assert [cell.cell_id for cell in cells] == [
        "network.delta=0.1/scheduler=sunflow",
        "network.delta=0.1/scheduler=solstice",
        "network.delta=0.01/scheduler=sunflow",
        "network.delta=0.01/scheduler=solstice",
    ]
    assert [cell.index for cell in cells] == [0, 1, 2, 3]


def test_overrides_applied_to_nested_fields(grid):
    cell = grid.cells()[2]
    assert cell.spec.network.delta == 0.01
    assert cell.spec.scheduler == "sunflow"
    # Untouched base fields survive.
    assert cell.spec.trace == TRACE
    assert cell.spec.network.bandwidth_bps == NetworkSpec().bandwidth_bps


def test_no_axes_is_a_single_base_cell():
    cells = SweepSpec(name="one", base=base_spec()).cells()
    assert len(cells) == 1
    assert cells[0].cell_id == "base"


def test_empty_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        SweepSpec(name="bad", base=base_spec(), axes={"scheduler": []})


def test_unknown_override_path_poisons_only_that_cell():
    cells = SweepSpec(
        name="typo", base=base_spec(), axes={"network.dleta": [0.1]}
    ).cells()
    assert cells[0].spec is None
    assert "dleta" in cells[0].error


def test_invalid_axis_value_poisons_only_that_cell(grid):
    cells = SweepSpec(
        name="poison",
        base=base_spec(),
        axes={"scheduler": ["sunflow", "bogus"]},
    ).cells()
    ok, poisoned = cells
    assert ok.spec is not None and ok.error is None
    assert poisoned.spec is None
    assert "bogus" in poisoned.error


def test_derived_seeds_are_deterministic_and_distinct(grid):
    seeds = [cell.spec.seed for cell in grid.cells()]
    assert seeds == [cell.spec.seed for cell in grid.cells()]
    assert len(set(seeds)) == len(seeds)
    # The derivation is the content hash of the *unseeded* spec.
    unseeded = grid.cells()[0]
    expected = derive_cell_seed(base_spec(network=NetworkSpec(delta=0.1)))
    assert unseeded.spec.seed == expected


def test_explicit_base_seed_is_kept():
    cells = SweepSpec(
        name="seeded", base=base_spec(seed=99), axes={"network.delta": [0.1, 0.01]}
    ).cells()
    assert [cell.spec.seed for cell in cells] == [99, 99]


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def test_json_round_trip(grid, tmp_path):
    path = tmp_path / "grid.json"
    grid.write(path)
    loaded = SweepSpec.from_file(path)
    assert loaded == grid
    assert [c.cell_id for c in loaded.cells()] == [c.cell_id for c in grid.cells()]


def test_toml_grid_file(tmp_path):
    path = tmp_path / "grid.toml"
    path.write_text(
        """
name = "toml-demo"

[base]
mode = "intra"
scheduler = "sunflow"

[base.trace]
kind = "facebook"
num_ports = 12
num_coflows = 4
max_width = 4
seed = 3

[base.network]
bandwidth_bps = 1e9
delta = 0.01

[axes]
"network.delta" = [0.1, 0.01]
scheduler = ["sunflow", "solstice"]
""",
        encoding="utf-8",
    )
    loaded = SweepSpec.from_file(path)
    assert loaded.name == "toml-demo"
    assert loaded.base.trace == TRACE
    assert loaded.num_cells() == 4
    assert loaded.axes == (
        ("network.delta", (0.1, 0.01)),
        ("scheduler", ("sunflow", "solstice")),
    )
