"""Sweep execution: determinism, caching, isolation, timeouts."""

import json

import pytest

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.perf import PerfCounters
from repro.sweep import SweepRunner, SweepSpec, run_sweep

TRACE = TraceSpec(kind="facebook", num_ports=12, num_coflows=5, max_width=4, seed=3)


def make_grid(name="grid", mode="intra", schedulers=("sunflow", "solstice"), trace=TRACE):
    return SweepSpec(
        name=name,
        base=SimulationSpec(trace=trace, mode=mode, network=NetworkSpec()),
        axes={"network.delta": [0.01, 0.001], "scheduler": list(schedulers)},
    )


def cell_bytes(result):
    return [outcome.result_bytes() for outcome in result.outcomes]


def test_serial_run_completes_all_cells():
    result = run_sweep(make_grid())
    assert len(result) == 4
    assert not result.failures()
    assert all(outcome.status == "ok" for outcome in result.outcomes)
    assert all(len(outcome.report()) == 5 for outcome in result.outcomes)


def test_serial_and_parallel_results_byte_identical():
    serial = run_sweep(make_grid())
    parallel = run_sweep(make_grid(), workers=2)
    assert cell_bytes(serial) == cell_bytes(parallel)
    # Grid order is preserved regardless of completion order.
    assert [o.cell_id for o in serial.outcomes] == [o.cell_id for o in parallel.outcomes]


def test_find_locates_cells_by_axis_values():
    result = run_sweep(make_grid())
    outcome = result.find({"network.delta": 0.001, "scheduler": "solstice"})
    assert outcome.cell_id == "network.delta=0.001/scheduler=solstice"
    with pytest.raises(KeyError, match="2 cells match"):
        result.find({"scheduler": "sunflow"})
    with pytest.raises(KeyError, match="no cell matches"):
        result.find({"scheduler": "tms"})


def test_cache_serves_second_run(tmp_path):
    cache = tmp_path / "cache"
    perf = PerfCounters()
    cold = SweepRunner(make_grid(), cache_dir=cache, perf=perf).run()
    assert cold.cache_hits == 0
    assert perf.snapshot()["counts"]["sweep_cells_computed"] == 4

    perf = PerfCounters()
    warm = SweepRunner(make_grid(), cache_dir=cache, perf=perf).run()
    assert warm.cache_hits == 4
    counts = perf.snapshot()["counts"]
    assert counts["sweep_cache_hits"] == 4
    assert "sweep_cells_computed" not in counts
    assert cell_bytes(cold) == cell_bytes(warm)


def test_cache_keys_are_content_addressed(tmp_path):
    """Renaming the sweep or reordering axes reuses the same cached cells."""
    cache = tmp_path / "cache"
    run_sweep(make_grid(name="first"), cache_dir=cache)
    renamed = SweepSpec(
        name="second",
        base=SimulationSpec(trace=TRACE, mode="intra", network=NetworkSpec()),
        axes=[("scheduler", ("sunflow", "solstice")), ("network.delta", (0.01, 0.001))],
    )
    result = run_sweep(renamed, cache_dir=cache)
    assert result.cache_hits == 4


def test_changed_cells_recompute_unchanged_stay_cached(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(make_grid(), cache_dir=cache)
    wider = SweepSpec(
        name="grid",
        base=SimulationSpec(trace=TRACE, mode="intra", network=NetworkSpec()),
        axes={"network.delta": [0.01, 0.001, 0.0001], "scheduler": ["sunflow", "solstice"]},
    )
    result = run_sweep(wider, cache_dir=cache)
    assert len(result) == 6
    assert result.cache_hits == 4  # only the two new δ=0.0001 cells computed


def test_poisoned_cell_isolated_from_healthy_cells():
    result = run_sweep(make_grid(schedulers=("sunflow", "bogus")))
    statuses = {o.cell_id: o.status for o in result.outcomes}
    assert statuses["network.delta=0.01/scheduler=sunflow"] == "ok"
    assert statuses["network.delta=0.01/scheduler=bogus"] == "error"
    assert len(result.failures()) == 2
    for failure in result.failures():
        assert "bogus" in failure.result["error"]


def test_runtime_error_isolated_from_healthy_cells():
    # solstice has no inter-Coflow replay: the facade raises inside the
    # worker, which must surface as an error cell, not a dead sweep.
    result = run_sweep(make_grid(mode="inter"), workers=2)
    statuses = {o.cell_id: o.status for o in result.outcomes}
    assert statuses["network.delta=0.01/scheduler=sunflow"] == "ok"
    assert statuses["network.delta=0.01/scheduler=solstice"] == "error"
    assert "does not support" in result.outcome(
        "network.delta=0.01/scheduler=solstice"
    ).result["error"]


def test_timeout_records_timeout_status():
    heavy = TraceSpec(kind="facebook", num_ports=40, num_coflows=40, max_width=20, seed=3)
    grid = SweepSpec(
        name="slow",
        base=SimulationSpec(trace=heavy, mode="inter", network=NetworkSpec()),
        axes={"network.delta": [0.01]},
    )
    result = run_sweep(grid, timeout_s=1e-4)
    assert result.outcomes[0].status == "timeout"
    # Failed cells are never cached, so a later unbounded run recomputes.
    assert result.outcomes[0].result == {"status": "timeout", "timeout_s": 1e-4}


def test_failed_cells_not_cached(tmp_path):
    cache = tmp_path / "cache"
    grid = make_grid(mode="inter")  # solstice cells fail
    run_sweep(grid, cache_dir=cache)
    rerun = run_sweep(grid, cache_dir=cache)
    by_status = {o.cell_id: o for o in rerun.outcomes}
    assert by_status["network.delta=0.01/scheduler=sunflow"].from_cache
    assert not by_status["network.delta=0.01/scheduler=solstice"].from_cache


def test_progress_callback_reaches_completion():
    snapshots = []
    SweepRunner(make_grid(), progress=snapshots.append).run()
    assert snapshots[-1].done == snapshots[-1].total == 4
    assert snapshots[-1].failed == 0
    assert snapshots[-1].eta_s == 0.0


def test_write_outputs_json_and_csv(tmp_path):
    result = run_sweep(make_grid())
    json_path, csv_path = result.write(tmp_path / "out")
    payload = json.loads(json_path.read_text())
    assert payload["cells_total"] == 4
    assert payload["cells_failed"] == 0
    assert len(payload["cells"]) == 4
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0].startswith("index,cell_id,status")
    assert len(lines) == 5
