"""Tier-1 smoke test: a real multi-process sweep end to end.

Small enough for every test run (4 cells, 5 tiny Coflows each), but it
exercises the full stack — declarative trace, facade dispatch, worker
pool, per-cell payloads, aggregation — with an actual 2-worker pool.
"""

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.sweep import SweepSpec, run_sweep


def make_grid():
    return SweepSpec(
        name="smoke",
        base=SimulationSpec(
            trace=TraceSpec(
                kind="facebook", num_ports=10, num_coflows=5, max_width=3, seed=1
            ),
            mode="intra",
            network=NetworkSpec(),
        ),
        axes={"network.delta": [0.01, 0.001], "scheduler": ["sunflow", "solstice"]},
    )


def test_four_cell_sweep_with_two_workers():
    result = run_sweep(make_grid(), workers=2)
    assert len(result) == 4
    assert not result.failures()
    for outcome in result.outcomes:
        summary = outcome.summary()
        assert summary["coflows"] == 5
        assert summary["average_cct"] > 0
    # The parallel run reproduces the serial bytes exactly.
    serial = run_sweep(make_grid())
    assert [o.result_bytes() for o in serial.outcomes] == [
        o.result_bytes() for o in result.outcomes
    ]
