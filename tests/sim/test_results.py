"""Tests for result containers and statistics."""

import math

import pytest

from repro.core.coflow import Coflow, CoflowCategory
from repro.sim.results import (
    CoflowRecord,
    SimulationReport,
    make_record,
    mean,
    percentile,
    summarize,
)
from repro.units import GBPS, MB, MS


def record(cid=1, arrival=0.0, completion=2.0, circuit_lower=1.0, packet_lower=0.9,
           num_flows=4, switching=4, category=CoflowCategory.MANY_TO_MANY):
    return CoflowRecord(
        coflow_id=cid,
        arrival_time=arrival,
        completion_time=completion,
        num_flows=num_flows,
        total_bytes=100.0,
        category=category,
        circuit_lower=circuit_lower,
        packet_lower=packet_lower,
        switching_count=switching,
    )


class TestCoflowRecord:
    def test_cct(self):
        assert record(arrival=1.0, completion=3.5).cct == pytest.approx(2.5)

    def test_ratios(self):
        r = record(completion=2.0, circuit_lower=1.0, packet_lower=0.5)
        assert r.cct_over_circuit_lower == pytest.approx(2.0)
        assert r.cct_over_packet_lower == pytest.approx(4.0)

    def test_zero_bound_gives_inf(self):
        r = record(circuit_lower=0.0)
        assert math.isinf(r.cct_over_circuit_lower)

    def test_normalized_switching(self):
        assert record(num_flows=4, switching=8).normalized_switching == pytest.approx(2.0)


class TestSimulationReport:
    def make_report(self):
        report = SimulationReport("test", 1 * GBPS, 10 * MS)
        report.add(record(cid=1, completion=1.0))
        report.add(record(cid=2, completion=3.0))
        return report

    def test_average_cct(self):
        assert self.make_report().average_cct() == pytest.approx(2.0)

    def test_by_id(self):
        report = self.make_report()
        assert set(report.by_id()) == {1, 2}

    def test_metric_with_filter(self):
        report = self.make_report()
        values = report.metric(lambda r: r.cct, where=lambda r: r.cct > 2.0)
        assert values == [3.0]

    def test_filtered_subreport(self):
        report = self.make_report()
        sub = report.filtered(lambda r: r.coflow_id == 1)
        assert len(sub) == 1
        assert sub.scheduler == "test"


class TestStatistics:
    def test_percentile_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0, 20.0], 95) == pytest.approx(19.0)

    def test_percentile_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_matches_numpy(self):
        import numpy

        values = [3.1, 0.2, 9.9, 4.4, 7.3, 1.0, 2.2]
        for q in (5, 25, 50, 75, 95):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q))
            )

    def test_mean(self):
        assert mean([1.0, 2.0, 6.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            mean([])

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "median", "p95", "max"}
        assert summary["max"] == 3.0


class TestMakeRecord:
    def test_bounds_computed_from_coflow(self):
        coflow = Coflow.from_demand(7, {(0, 1): 125 * MB}, arrival_time=1.0)
        r = make_record(coflow, completion_time=3.0, bandwidth_bps=1 * GBPS,
                        delta=10 * MS, switching_count=1)
        assert r.coflow_id == 7
        assert r.cct == pytest.approx(2.0)
        assert r.packet_lower == pytest.approx(1.0)
        assert r.circuit_lower == pytest.approx(1.01)
        assert r.category is CoflowCategory.ONE_TO_ONE
