"""Tests for the Varys (SEBF + MADD) rate allocator."""

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.sim.packet_sim import PacketCoflowState, simulate_packet
from repro.sim.varys import VarysAllocator
from repro.units import GBPS, MB

B = 1 * GBPS


def seconds(mb):
    return mb * MB * 8 / B


def state_of(coflow):
    return PacketCoflowState(coflow=coflow, remaining=dict(coflow.processing_times(B)))


def trace_of(*coflows, num_ports=8):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestMadd:
    def test_flows_finish_together_without_backfill(self):
        """MADD's defining property: every flow of a Coflow gets exactly the
        rate that finishes it at the Coflow's bottleneck time Γ."""
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB, (0, 2): 50 * MB})
        allocator = VarysAllocator(backfill=False)
        rates = allocator.allocate([state_of(coflow)], 8, B)
        gamma = seconds(150)  # input port 0 carries both flows
        assert rates[(1, 0, 1)] == pytest.approx(seconds(100) / gamma)
        assert rates[(1, 0, 2)] == pytest.approx(seconds(50) / gamma)
        # Finish times coincide at Γ.
        assert seconds(100) / rates[(1, 0, 1)] == pytest.approx(gamma)
        assert seconds(50) / rates[(1, 0, 2)] == pytest.approx(gamma)

    def test_bottleneck_flow_gets_full_rate(self):
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB})
        rates = VarysAllocator(backfill=False).allocate([state_of(coflow)], 8, B)
        assert rates[(1, 0, 1)] == pytest.approx(1.0)

    def test_capacity_respected_across_coflows(self):
        a = Coflow.from_demand(1, {(0, 1): 10 * MB})
        b = Coflow.from_demand(2, {(0, 2): 100 * MB})
        rates = VarysAllocator(backfill=False).allocate(
            [state_of(a), state_of(b)], 8, B
        )
        # a is shorter -> full rate; b blocked on input 0 entirely.
        assert rates[(1, 0, 1)] == pytest.approx(1.0)
        assert (2, 0, 2) not in rates

    def test_backfill_uses_residual_bandwidth(self):
        """With backfill on, a second Coflow on disjoint output ports can
        exceed its MADD allocation."""
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB, (0, 2): 50 * MB})
        no_fill = VarysAllocator(backfill=False).allocate([state_of(coflow)], 8, B)
        with_fill = VarysAllocator(backfill=True).allocate([state_of(coflow)], 8, B)
        assert sum(with_fill.values()) >= sum(no_fill.values())


class TestSebfOrdering:
    def test_smaller_bottleneck_scheduled_first(self):
        small = Coflow.from_demand(1, {(0, 1): 10 * MB})
        big = Coflow.from_demand(2, {(0, 2): 100 * MB})
        report = simulate_packet(trace_of(small, big), VarysAllocator(), B).by_id()
        assert report[1].cct == pytest.approx(seconds(10))
        # Big waits for small, then runs at full rate.
        assert report[2].cct == pytest.approx(seconds(110))


class TestEndToEnd:
    def test_single_coflow_hits_packet_bound(self):
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB, (1, 1): 60 * MB})
        report = simulate_packet(trace_of(coflow), VarysAllocator(), B)
        record = report.records[0]
        assert record.cct == pytest.approx(record.packet_lower)

    def test_trace_replay_completes(self, small_trace):
        report = simulate_packet(small_trace, VarysAllocator(), B)
        assert len(report) == len(small_trace)
        for record in report.records:
            assert record.cct >= record.packet_lower * (1 - 1e-9)

    def test_varys_average_cct_beats_fifo_like_service(self, small_trace):
        """SEBF should beat a width-agnostic full-rate greedy on average CCT
        under contention (sanity check of the policy's value)."""
        from tests.sim.test_packet_sim import FullRateAllocator

        varys = simulate_packet(small_trace, VarysAllocator(), B)
        greedy = simulate_packet(small_trace, FullRateAllocator(), B)
        assert varys.average_cct() <= greedy.average_cct() * 1.5

    def test_residual_bandwidth_idles_between_events(self):
        """§5.4: when a backfilled subflow finishes early, its bandwidth
        idles until the next Coflow arrival/completion."""
        # Coflow 1: two flows from port 0 (Γ = 1.2 s at 1 Gbps).
        # Coflow 2 arrives later; until then nothing else can use the waste.
        a = Coflow.from_demand(1, {(0, 1): 100 * MB, (0, 2): 50 * MB})
        b = Coflow.from_demand(2, {(3, 1): 50 * MB}, arrival_time=0.1)
        report = simulate_packet(trace_of(a, b), VarysAllocator(), B).by_id()
        # Both complete; b's output port 1 contends with a's flow.
        assert report[1].cct >= seconds(150) - 1e-9
        assert report[2].cct >= seconds(50) - 1e-9
