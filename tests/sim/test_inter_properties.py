"""Property-based tests for the inter-Coflow simulators.

Random small traces through the full online pipeline: whatever the
arrival pattern, contention or policy, every Coflow completes, no record
violates its theoretical bound, and runs are deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.policies import Fifo, NarrowestFirst, ShortestFirst
from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    simulate_inter_sunflow,
    simulate_packet,
)
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS

#: Simulators admit coflows within TIME_EPS of the current instant, so a
#: bound comparison needs that much absolute slack on top of fp error.
SLACK = 2e-9


@st.composite
def traces(draw, max_coflows=6, max_ports=5, max_flows=5):
    num_coflows = draw(st.integers(min_value=1, max_value=max_coflows))
    coflows = []
    for cid in range(1, num_coflows + 1):
        num_flows = draw(st.integers(min_value=1, max_value=max_flows))
        demand = {}
        for _ in range(num_flows):
            src = draw(st.integers(min_value=0, max_value=max_ports - 1))
            dst = draw(st.integers(min_value=0, max_value=max_ports - 1))
            demand[(src, dst)] = draw(st.floats(min_value=1.0, max_value=100.0)) * MB
        arrival = draw(st.floats(min_value=0.0, max_value=5.0))
        coflows.append(Coflow.from_demand(cid, demand, arrival_time=arrival))
    return CoflowTrace(num_ports=max_ports, coflows=coflows)


class TestSunflowInterProperties:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_every_coflow_completes_above_its_bounds(self, trace):
        report = simulate_inter_sunflow(trace, B, DELTA)
        assert len(report) == len(trace)
        for record in report.records:
            assert record.completion_time >= record.arrival_time
            assert record.cct >= record.packet_lower * (1 - 1e-9) - SLACK

    @given(traces())
    @settings(max_examples=30, deadline=None)
    def test_runs_are_deterministic(self, trace):
        first = simulate_inter_sunflow(trace, B, DELTA).by_id()
        second = simulate_inter_sunflow(trace, B, DELTA).by_id()
        for cid in first:
            assert first[cid].cct == second[cid].cct

    @given(traces())
    @settings(max_examples=30, deadline=None)
    def test_policy_changes_never_lose_coflows(self, trace):
        for policy in (ShortestFirst(), Fifo(), NarrowestFirst()):
            report = simulate_inter_sunflow(trace, B, DELTA, policy=policy)
            assert len(report) == len(trace)

    @given(traces(max_coflows=4))
    @settings(max_examples=30, deadline=None)
    def test_sunflow_cct_dominates_packet_schedulers_bounds(self, trace):
        """Sanity triangle: every scheduler's CCT is at least TpL, and the
        circuit-switched CCT at least matches its circuit bound."""
        sunflow = simulate_inter_sunflow(trace, B, DELTA)
        varys = simulate_packet(trace, VarysAllocator(), B)
        for record in varys.records:
            assert record.cct >= record.packet_lower * (1 - 1e-9) - SLACK
        lone = len(trace) == 1
        for record in sunflow.records:
            if lone:
                assert record.cct >= record.circuit_lower * (1 - 1e-9) - SLACK


class TestPacketInterProperties:
    @given(traces())
    @settings(max_examples=40, deadline=None)
    def test_varys_completes_everything(self, trace):
        report = simulate_packet(trace, VarysAllocator(), B)
        assert len(report) == len(trace)
        for record in report.records:
            assert record.cct >= record.packet_lower * (1 - 1e-9) - SLACK

    @given(traces(max_coflows=4))
    @settings(max_examples=25, deadline=None)
    def test_aalo_completes_everything(self, trace):
        report = simulate_packet(trace, AaloAllocator(), B)
        assert len(report) == len(trace)

    @given(traces(max_coflows=3))
    @settings(max_examples=20, deadline=None)
    def test_single_active_coflow_is_bound_tight_under_varys(self, trace):
        """When arrivals never overlap with service, Varys achieves exactly
        TpL for every Coflow (MADD with the whole fabric)."""
        spread = CoflowTrace(
            num_ports=trace.num_ports,
            coflows=[
                coflow.with_arrival(1000.0 * index)
                for index, coflow in enumerate(trace)
            ],
        )
        report = simulate_packet(spread, VarysAllocator(), B)
        for record in report.records:
            assert record.cct == pytest.approx(record.packet_lower, rel=1e-6)
