"""Tests for the Aalo (D-CLAS) rate allocator."""

import math

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.sim.aalo import AaloAllocator
from repro.sim.packet_sim import PacketCoflowState, simulate_packet
from repro.units import GBPS, MB

B = 1 * GBPS


def seconds(mb):
    return mb * MB * 8 / B


def state_of(coflow, sent_seconds=0.0):
    state = PacketCoflowState(
        coflow=coflow, remaining=dict(coflow.processing_times(B))
    )
    state.sent_seconds = sent_seconds
    return state


def trace_of(*coflows, num_ports=8):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestQueueMachinery:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            AaloAllocator(initial_threshold_bytes=0)
        with pytest.raises(ValueError):
            AaloAllocator(multiplier=1.0)
        with pytest.raises(ValueError):
            AaloAllocator(discipline="bogus")

    def test_fresh_coflow_in_queue_zero(self):
        allocator = AaloAllocator()
        coflow = Coflow.from_demand(1, {(0, 1): 1 * MB})
        assert allocator.queue_of(state_of(coflow), B) == 0

    def test_demotion_after_threshold(self):
        allocator = AaloAllocator(initial_threshold_bytes=10 * MB)
        coflow = Coflow.from_demand(1, {(0, 1): 1000 * MB})
        past_first = state_of(coflow, sent_seconds=seconds(15))
        assert allocator.queue_of(past_first, B) == 1
        past_second = state_of(coflow, sent_seconds=seconds(150))
        assert allocator.queue_of(past_second, B) == 2

    def test_lowest_queue_is_terminal(self):
        allocator = AaloAllocator(num_queues=3)
        coflow = Coflow.from_demand(1, {(0, 1): 1 * MB})
        state = state_of(coflow, sent_seconds=seconds(10**9))
        assert allocator.queue_of(state, B) == 2

    def test_threshold_seconds_scaling(self):
        allocator = AaloAllocator(initial_threshold_bytes=10 * MB, multiplier=10)
        assert allocator.threshold_seconds(0, B) == pytest.approx(seconds(10))
        assert allocator.threshold_seconds(2, B) == pytest.approx(seconds(1000))


class TestAllocation:
    def test_equal_split_within_coflow(self):
        """Sizes unknown: a Coflow's flows from one port share it evenly."""
        allocator = AaloAllocator()
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB, (0, 2): 1 * MB})
        rates = allocator.allocate([state_of(coflow)], 8, B)
        assert rates[(1, 0, 1)] == pytest.approx(0.5)
        assert rates[(1, 0, 2)] == pytest.approx(0.5)

    def test_higher_queue_preempts_lower(self):
        allocator = AaloAllocator()
        fresh = Coflow.from_demand(1, {(0, 1): 100 * MB})
        old = Coflow.from_demand(2, {(0, 2): 100 * MB})
        rates = allocator.allocate(
            [state_of(fresh), state_of(old, sent_seconds=seconds(500))], 8, B
        )
        assert rates[(1, 0, 1)] == pytest.approx(1.0)
        assert (2, 0, 2) not in rates

    def test_fifo_within_queue(self):
        allocator = AaloAllocator()
        early = Coflow.from_demand(1, {(0, 1): 100 * MB}, arrival_time=0.0)
        late = Coflow.from_demand(2, {(0, 2): 100 * MB}, arrival_time=1.0)
        rates = allocator.allocate([state_of(late), state_of(early)], 8, B)
        assert rates[(1, 0, 1)] == pytest.approx(1.0)
        assert (2, 0, 2) not in rates

    def test_weighted_discipline_respects_capacity(self):
        allocator = AaloAllocator(discipline="weighted")
        coflows = [
            Coflow.from_demand(i, {(0, i): 100 * MB}, arrival_time=float(i))
            for i in range(1, 4)
        ]
        rates = allocator.allocate([state_of(c) for c in coflows], 8, B)
        assert sum(rates.values()) <= 1.0 + 1e-9
        # Work conservation: the full input port is used.
        assert sum(rates.values()) == pytest.approx(1.0)

    def test_work_conserving_on_disjoint_ports(self):
        allocator = AaloAllocator()
        a = Coflow.from_demand(1, {(0, 1): 10 * MB})
        b = Coflow.from_demand(2, {(2, 3): 10 * MB}, arrival_time=1.0)
        rates = allocator.allocate(
            [state_of(a), state_of(b, sent_seconds=seconds(50))], 8, B
        )
        assert rates[(1, 0, 1)] == pytest.approx(1.0)
        assert rates[(2, 2, 3)] == pytest.approx(1.0)


class TestQueueCrossingEvents:
    def test_crossing_time_computed(self):
        allocator = AaloAllocator(initial_threshold_bytes=10 * MB)
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB})
        state = state_of(coflow)
        rates = allocator.allocate([state], 8, B)
        crossing = allocator.extra_event_time([state], rates, now=0.0, bandwidth_bps=B)
        assert crossing == pytest.approx(seconds(10))

    def test_no_crossing_for_terminal_queue(self):
        allocator = AaloAllocator(num_queues=2, initial_threshold_bytes=1 * MB)
        coflow = Coflow.from_demand(1, {(0, 1): 100 * MB})
        state = state_of(coflow, sent_seconds=seconds(50))
        rates = allocator.allocate([state], 8, B)
        assert math.isinf(
            allocator.extra_event_time([state], rates, now=0.0, bandwidth_bps=B)
        )


class TestEndToEnd:
    def test_trace_replay_completes(self, small_trace):
        report = simulate_packet(small_trace, AaloAllocator(), B)
        assert len(report) == len(small_trace)

    def test_small_coflow_overtakes_demoted_big_one(self):
        """D-CLAS behaviour: the big Coflow is demoted once it crosses the
        first threshold, letting a later small Coflow finish promptly."""
        big = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        small = Coflow.from_demand(2, {(0, 2): 5 * MB}, arrival_time=1.0)
        report = simulate_packet(trace_of(big, small), AaloAllocator(), B).by_id()
        # The big one has sent >10 MB by t=1.0 (queue 1); small is queue 0.
        assert report[2].cct == pytest.approx(seconds(5))
        assert report[1].cct >= seconds(500)

    def test_aalo_hurts_large_coflows_versus_varys(self, small_trace):
        """§5.4: Aalo's size-blind equal split delays the longest subflow of
        big Coflows; Varys (clairvoyant) finishes them sooner on average."""
        from repro.sim.varys import VarysAllocator

        aalo = simulate_packet(small_trace, AaloAllocator(), B).by_id()
        varys = simulate_packet(small_trace, VarysAllocator(), B).by_id()
        big_ids = [
            c.coflow_id
            for c in small_trace
            if c.num_flows > 1 and c.total_bytes > 100 * MB
        ]
        assert big_ids, "fixture should contain large multi-flow coflows"
        aalo_avg = sum(aalo[i].cct for i in big_ids) / len(big_ids)
        varys_avg = sum(varys[i].cct for i in big_ids) / len(big_ids)
        assert varys_avg <= aalo_avg * 1.1
