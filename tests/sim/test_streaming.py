"""Differential suite: streaming replay is byte-identical to in-memory.

The streaming engine is the *same* simulator behind a different arrival
source and completion sink, so everything observable — completion
records, perf counters, even the final reservation journal — must match
the in-memory engine bit-for-bit.  These tests pin that on the committed
reference configuration (500 Coflows / 150 ports / seed 2016, the
``BENCH_trace_replay.json`` scale) and under hypothesis-generated
arrival chunkings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coflow import CoflowTrace
from repro.perf import PerfCounters
from repro.sim.circuit_sim import InterCoflowSimulator, simulate_inter_sunflow
from repro.sim.engine import run_replay_stream
from repro.sim.results import SimulationReport
from repro.sim.streaming import (
    StreamingReport,
    StreamingResult,
    simulate_inter_sunflow_stream,
)
from repro.workloads.stream import ArrivalStream, iter_chunks, stream_synthetic
from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

BANDWIDTH = 1e9
DELTA = 0.01


def reference_config(num_coflows=500, num_ports=150, max_width=None, seed=2016):
    return GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )


def run_in_memory(config):
    trace = FacebookLikeTraceGenerator(config).generate()
    perf = PerfCounters()
    simulator = InterCoflowSimulator(
        trace, bandwidth_bps=BANDWIDTH, delta=DELTA, perf=perf
    )
    report = simulator.run()
    return simulator, report, perf


def run_streaming(config, arrivals=None):
    """Drive the simulator through the streaming loop with a record sink."""
    if arrivals is None:
        arrivals = stream_synthetic(config)
    perf = PerfCounters()
    simulator = InterCoflowSimulator(
        CoflowTrace(num_ports=config.num_ports),
        bandwidth_bps=BANDWIDTH,
        delta=DELTA,
        perf=perf,
    )
    sink = SimulationReport("sunflow", bandwidth_bps=BANDWIDTH, delta=DELTA)
    simulator.begin_run(report=sink)
    run_replay_stream(simulator, arrivals)
    simulator.finish_run()
    return simulator, sink, perf


class TestReferenceByteIdentity:
    """The committed 500-coflow / 150-port reference replay."""

    @pytest.fixture(scope="class")
    def runs(self):
        config = reference_config()
        return run_in_memory(config), run_streaming(config)

    def test_records_identical(self, runs):
        (_, memory_report, _), (_, stream_sink, _) = runs
        assert stream_sink.records == memory_report.records

    def test_perf_counters_identical(self, runs):
        (_, _, memory_perf), (_, _, stream_perf) = runs
        assert stream_perf.snapshot()["counts"] == memory_perf.snapshot()["counts"]

    def test_final_prt_state_identical(self, runs):
        # Compaction runs off deterministic state both engines share, so
        # even the surviving reservation journal matches exactly.
        (memory_sim, _, _), (stream_sim, _, _) = runs
        assert list(stream_sim._prt) == list(memory_sim._prt)
        assert len(stream_sim._layers) == len(memory_sim._layers)


class TestArrivalSourceInvariance:
    """Same Coflows, any iterator shape -> same bytes out."""

    @pytest.fixture(scope="class")
    def baseline(self):
        config = reference_config(num_coflows=60, num_ports=24, max_width=8, seed=4)
        trace = FacebookLikeTraceGenerator(config).generate()
        return config, trace, simulate_inter_sunflow(trace, BANDWIDTH, DELTA)

    def test_list_source(self, baseline):
        config, trace, memory_report = baseline
        arrivals = ArrivalStream(trace.num_ports, list(trace.coflows), len(trace))
        _, sink, _ = run_streaming(config, arrivals=arrivals)
        assert sink.records == memory_report.records

    @settings(max_examples=15, deadline=None)
    @given(chunk_size=st.integers(min_value=1, max_value=61))
    def test_chunked_source(self, baseline, chunk_size):
        config, trace, memory_report = baseline
        chunked = (
            coflow
            for chunk in iter_chunks(iter(trace.coflows), chunk_size)
            for coflow in chunk
        )
        arrivals = ArrivalStream(trace.num_ports, chunked)
        _, sink, _ = run_streaming(config, arrivals=arrivals)
        assert sink.records == memory_report.records

    @settings(max_examples=10, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1))
    def test_ragged_chunking(self, baseline, sizes):
        """Chunk boundaries cycle through an arbitrary ragged pattern."""
        config, trace, memory_report = baseline

        def ragged():
            queue = list(trace.coflows)
            index = 0
            while queue:
                take = sizes[index % len(sizes)]
                index += 1
                chunk, queue = queue[:take], queue[take:]
                yield from chunk

        arrivals = ArrivalStream(trace.num_ports, ragged())
        _, sink, _ = run_streaming(config, arrivals=arrivals)
        assert sink.records == memory_report.records


class TestStreamingReport:
    """The bounded sink's aggregates match the unbounded records."""

    @pytest.fixture(scope="class")
    def pair(self):
        config = reference_config(num_coflows=200, num_ports=40, max_width=10, seed=9)
        trace = FacebookLikeTraceGenerator(config).generate()
        memory_report = simulate_inter_sunflow(trace, BANDWIDTH, DELTA)
        result = simulate_inter_sunflow_stream(
            stream_synthetic(config), bandwidth_bps=BANDWIDTH, delta=DELTA
        )
        return memory_report, result

    def test_returns_streaming_result(self, pair):
        _, result = pair
        assert isinstance(result, StreamingResult)
        assert isinstance(result.report, StreamingReport)
        assert result.events > 0

    def test_exact_aggregates(self, pair):
        memory_report, result = pair
        report = result.report
        records = memory_report.records
        assert report.count == len(records)
        assert report.cct_sum == sum(r.cct for r in records)
        assert report.average_cct() == memory_report.average_cct()
        assert report.min_cct == min(r.cct for r in records)
        assert report.max_cct == max(r.cct for r in records)
        assert report.switching_total == sum(r.switching_count for r in records)
        assert report.last_completion == max(r.completion_time for r in records)

    def test_category_counts(self, pair):
        memory_report, result = pair
        expected = {}
        for record in memory_report.records:
            key = record.category.value
            expected[key] = expected.get(key, 0) + 1
        assert result.report.category_counts == expected

    def test_percentiles_close_to_exact(self, pair):
        from repro.analysis.quantiles import ExactQuantiles, rank_error

        memory_report, result = pair
        oracle = ExactQuantiles()
        oracle.extend(memory_report.ccts())
        for p in (50, 95, 99):
            estimate = result.report.cct_percentile(p)
            assert rank_error(oracle, estimate, p / 100.0) <= 0.02

    def test_perf_includes_streaming_counters(self, pair):
        _, result = pair
        counts = result.perf.snapshot()["counts"]
        assert counts.get("events") == result.events
        assert "peak_rss_bytes" in counts
        # The counter froze at end-of-run; percentile queries since then
        # may have compressed further, so it is a lower bound.
        assert counts.get("sketch_merges", 0) <= result.report.digest.compressions


class TestCompactionActuallyRuns:
    def test_dead_layer_compaction_triggers(self):
        config = reference_config(num_coflows=200, num_ports=40, max_width=10, seed=9)
        simulator, _, perf = run_streaming(config)
        assert perf.count("prt_compactions") > 0
        # After the run everything completed, so compaction left the
        # journal bounded by the last active set, not the whole history.
        assert len(simulator._prt) < 200
