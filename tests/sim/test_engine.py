"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_within_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, "first")
        queue.push(1.0, "second")
        queue.push(1.0, "third")
        assert [queue.pop().payload for _ in range(3)] == ["first", "second", "third"]

    def test_now_tracks_last_pop(self):
        queue = EventQueue()
        assert queue.now == float("-inf")
        queue.push(5.0, "x")
        queue.pop()
        assert queue.now == 5.0

    def test_rejects_scheduling_in_the_past(self):
        queue = EventQueue()
        queue.push(5.0, "x")
        queue.pop()
        with pytest.raises(ValueError):
            queue.push(4.0, "too-late")

    def test_allows_scheduling_at_current_time(self):
        queue = EventQueue()
        queue.push(5.0, "x")
        queue.pop()
        queue.push(5.0, "now-is-fine")
        assert queue.pop().payload == "now-is-fine"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(2.5, "x")
        assert queue.peek_time() == 2.5
        assert len(queue) == 1

    def test_pop_simultaneous_batches_close_events(self):
        queue = EventQueue()
        queue.push(1.0, "a")
        queue.push(1.0 + 1e-12, "b")
        queue.push(2.0, "c")
        batch = queue.pop_simultaneous()
        assert [event.payload for event in batch] == ["a", "b"]
        assert queue.pop().payload == "c"

    def test_pop_simultaneous_empty(self):
        assert EventQueue().pop_simultaneous() == []

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, "x")
        assert queue and len(queue) == 1
