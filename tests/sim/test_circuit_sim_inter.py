"""Tests for the inter-Coflow circuit simulator (§5.4 trace replay)."""

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.policies import Fifo, ShortestFirst
from repro.core.starvation import StarvationGuard
from repro.sim import simulate_inter_sunflow
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def seconds(mb):
    return mb * MB * 8 / B


def trace_of(*coflows, num_ports=10):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestSingleCoflow:
    def test_lone_coflow_gets_isolated_cct(self):
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB}, arrival_time=3.0)
        report = simulate_inter_sunflow(trace_of(coflow), B, DELTA)
        assert report.records[0].cct == pytest.approx(seconds(50) + DELTA)

    def test_arrival_time_respected(self):
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB}, arrival_time=3.0)
        report = simulate_inter_sunflow(trace_of(coflow), B, DELTA)
        assert report.records[0].completion_time == pytest.approx(
            3.0 + seconds(50) + DELTA
        )


class TestDisjointCoflows:
    def test_disjoint_coflows_run_in_parallel(self):
        a = Coflow.from_demand(1, {(0, 1): 50 * MB}, arrival_time=0.0)
        b = Coflow.from_demand(2, {(2, 3): 50 * MB}, arrival_time=0.0)
        report = simulate_inter_sunflow(trace_of(a, b), B, DELTA)
        for record in report.records:
            assert record.cct == pytest.approx(seconds(50) + DELTA)


class TestContention:
    def test_shortest_first_prioritizes_small_coflow(self):
        big = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        small = Coflow.from_demand(2, {(0, 2): 10 * MB}, arrival_time=0.0)
        report = simulate_inter_sunflow(
            trace_of(big, small), B, DELTA, policy=ShortestFirst()
        ).by_id()
        # Small goes first (it shares input 0), big waits behind it.
        assert report[2].cct == pytest.approx(seconds(10) + DELTA)
        assert report[1].cct == pytest.approx(seconds(10) + seconds(500) + 2 * DELTA)

    def test_fifo_prioritizes_early_arrival(self):
        big = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        small = Coflow.from_demand(2, {(0, 2): 10 * MB}, arrival_time=0.001)
        report = simulate_inter_sunflow(
            trace_of(big, small), B, DELTA, policy=Fifo()
        ).by_id()
        assert report[1].cct == pytest.approx(seconds(500) + DELTA)
        assert report[2].cct > seconds(500)  # waited behind the big one

    def test_new_shorter_arrival_preempts_planned_service(self):
        """A shorter Coflow arriving mid-flight overtakes the rest of the
        long Coflow's demand (inter-Coflow preemption by replanning)."""
        long_coflow = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        short = Coflow.from_demand(2, {(0, 2): 10 * MB}, arrival_time=1.0)
        report = simulate_inter_sunflow(trace_of(long_coflow, short), B, DELTA).by_id()
        # The short one arrives at 1.0 and is served promptly (one δ to tear
        # down/set up, then 0.08 s of data, then a fresh δ when it begins).
        assert report[2].cct < 0.2
        # The long flow pays an extra setup to resume after the preemption.
        assert report[1].cct > seconds(500) + 2 * DELTA - 1e-9

    def test_established_circuit_not_charged_twice(self):
        """A completion event that doesn't steal ports must not make the
        survivor pay an extra δ: its circuit stays up across the replan."""
        a = Coflow.from_demand(1, {(0, 1): 100 * MB}, arrival_time=0.0)
        b = Coflow.from_demand(2, {(2, 3): 10 * MB}, arrival_time=0.0)
        report = simulate_inter_sunflow(trace_of(a, b), B, DELTA).by_id()
        # b completes at 0.09; a's circuit (0,1) survives the replan and
        # finishes with only its original δ.
        assert report[1].cct == pytest.approx(seconds(100) + DELTA)


class TestConservation:
    def test_all_coflows_complete(self, small_trace, default_network):
        report = simulate_inter_sunflow(small_trace, **default_network)
        assert len(report) == len(small_trace)

    def test_cct_at_least_packet_bound(self, small_trace, default_network):
        report = simulate_inter_sunflow(small_trace, **default_network)
        for record in report.records:
            assert record.cct >= record.packet_lower * (1 - 1e-9)

    def test_completion_after_arrival(self, small_trace, default_network):
        report = simulate_inter_sunflow(small_trace, **default_network)
        for record in report.records:
            assert record.completion_time > record.arrival_time


class TestPriorityClasses:
    def test_privileged_class_overrides_size(self):
        big_privileged = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        small_regular = Coflow.from_demand(2, {(0, 2): 10 * MB}, arrival_time=0.0)
        report = simulate_inter_sunflow(
            trace_of(big_privileged, small_regular),
            B,
            DELTA,
            priority_classes={1: 0, 2: 1},
        ).by_id()
        assert report[1].cct == pytest.approx(seconds(500) + DELTA)
        assert report[2].cct > seconds(500)


class TestStarvationGuard:
    def test_guard_bounds_waiting_despite_hostile_priorities(self):
        """With a permanently-blocked victim, the guard's τ slices still
        deliver service: the victim finishes within a few guard cycles
        instead of waiting for the entire blocker to drain."""
        blocker = Coflow.from_demand(1, {(0, 1): 2000 * MB}, arrival_time=0.0)
        victim = Coflow.from_demand(2, {(0, 2): 2 * MB}, arrival_time=0.0)
        guard = StarvationGuard(num_ports=4, period=0.5, tau=0.1, delta=DELTA)
        without = simulate_inter_sunflow(
            trace_of(blocker, victim, num_ports=4),
            B,
            DELTA,
            priority_classes={1: 0, 2: 1},
        ).by_id()
        with_guard = simulate_inter_sunflow(
            trace_of(blocker, victim, num_ports=4),
            B,
            DELTA,
            priority_classes={1: 0, 2: 1},
            guard=guard,
        ).by_id()
        assert without[2].cct > 10.0  # starved until the blocker finishes
        assert with_guard[2].cct < without[2].cct
        assert with_guard[2].cct <= 2 * guard.max_service_gap + 1.0

    def test_guard_costs_blocker_some_utilization(self):
        blocker = Coflow.from_demand(1, {(0, 1): 500 * MB}, arrival_time=0.0)
        guard = StarvationGuard(num_ports=4, period=0.5, tau=0.1, delta=DELTA)
        plain = simulate_inter_sunflow(
            trace_of(blocker, num_ports=4), B, DELTA
        ).by_id()
        guarded = simulate_inter_sunflow(
            trace_of(blocker, num_ports=4), B, DELTA, guard=guard
        ).by_id()
        assert guarded[1].cct >= plain[1].cct
