"""Differential tests for the K-core replay (``repro.sim.multicore_sim``).

The load-bearing guarantees:

* ``K = 1`` reproduces the single-switch replay **bitwise** — same
  records, same event times — for both the incremental and full-replan
  paths and for every placement policy;
* at any ``K``, the incremental and full-replan paths of the multi-core
  replay agree bitwise with each other (the single-switch invariant,
  lifted to the composed host).
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.multicore import uniform_cores
from repro.core.policies import Fifo
from repro.sim.circuit_sim import (
    InterCoflowSimulator,
    simulate_intra_sunflow,
)
from repro.sim.multicore_sim import (
    MultiCoreInterSimulator,
    simulate_inter_multicore,
    simulate_intra_multicore,
)
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def _random_trace(seed, num_ports=10, num_coflows=25):
    rng = random.Random(seed)
    coflows = []
    for cid in range(num_coflows):
        demand = {}
        for _ in range(rng.randint(1, 5)):
            circuit = (rng.randrange(num_ports), rng.randrange(num_ports))
            demand[circuit] = demand.get(circuit, 0.0) + rng.uniform(
                0.1 * MB, 60 * MB
            )
        coflows.append(
            Coflow.from_demand(cid, demand, arrival_time=rng.uniform(0.0, 1.5))
        )
    return CoflowTrace(num_ports, coflows)


TRACE = _random_trace(7)


class TestSingleCoreBitwise:
    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("policy", ["ok-approx", "balanced-split"])
    def test_k1_inter_matches_single_switch(self, incremental, policy):
        reference = InterCoflowSimulator(
            TRACE, bandwidth_bps=B, delta=DELTA, incremental=incremental
        )
        expected = reference.run()
        simulator = MultiCoreInterSimulator(
            TRACE,
            uniform_cores(1, B, DELTA),
            multicore_policy=policy,
            incremental=incremental,
        )
        got = simulator.run()
        assert simulator.event_times == reference.event_times
        assert got.records == expected.records

    def test_k1_inter_matches_with_priority_policy(self):
        expected = InterCoflowSimulator(
            TRACE, bandwidth_bps=B, delta=DELTA, policy=Fifo()
        ).run()
        got = simulate_inter_multicore(
            TRACE, uniform_cores(1, B, DELTA), policy=Fifo()
        )
        assert got.records == expected.records

    def test_k1_intra_matches_single_switch(self):
        expected = simulate_intra_sunflow(TRACE, B, DELTA)
        got = simulate_intra_multicore(TRACE, uniform_cores(1, B, DELTA))
        assert got.records == expected.records


class TestMultiCoreDifferential:
    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("policy", ["ok-approx", "balanced-split"])
    def test_incremental_equals_full_replan(self, k, policy):
        runs = []
        for incremental in (True, False):
            simulator = MultiCoreInterSimulator(
                TRACE,
                uniform_cores(k, B, DELTA),
                multicore_policy=policy,
                incremental=incremental,
            )
            report = simulator.run()
            runs.append((simulator.event_times, report.records))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    @pytest.mark.parametrize("policy", ["ok-approx", "balanced-split"])
    def test_more_cores_do_not_slow_the_mean_cct(self, policy):
        def mean_cct(report):
            return sum(
                r.completion_time - r.arrival_time for r in report.records
            ) / len(report.records)

        base = mean_cct(
            simulate_inter_multicore(
                TRACE, uniform_cores(1, B, DELTA), multicore_policy=policy
            )
        )
        wide = mean_cct(
            simulate_inter_multicore(
                TRACE, uniform_cores(4, B, DELTA), multicore_policy=policy
            )
        )
        assert wide <= base * (1 + 1e-9)

    def test_every_coflow_gets_exactly_one_merged_record(self):
        simulator = MultiCoreInterSimulator(
            TRACE, uniform_cores(3, B, DELTA), multicore_policy="balanced-split"
        )
        report = simulator.run()
        assert sorted(r.coflow_id for r in report.records) == sorted(
            c.coflow_id for c in TRACE
        )
        assert not simulator._pending

    def test_intra_policies_run_and_respect_k(self):
        for policy in ("first-fit", "ok-approx", "balanced-split"):
            report = simulate_intra_multicore(
                TRACE, uniform_cores(2, B, DELTA), multicore_policy=policy
            )
            assert len(report.records) == len(TRACE.coflows)

    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=4),
        policy=st.sampled_from(["ok-approx", "balanced-split"]),
    )
    def test_fuzz_incremental_equals_full(self, seed, k, policy):
        """Random traces, random K, skewed demand: the two replan paths of
        the K-core replay must stay bitwise identical."""
        trace = _random_trace(seed, num_ports=6, num_coflows=10)
        results = []
        for incremental in (True, False):
            simulator = MultiCoreInterSimulator(
                trace,
                uniform_cores(k, B, DELTA),
                multicore_policy=policy,
                incremental=incremental,
            )
            report = simulator.run()
            results.append((simulator.event_times, report.records))
        assert results[0] == results[1]


class TestSmokeCores:
    def test_smoke_at_ci_core_count(self):
        """CI matrix hook: REPRO_SMOKE_CORES selects the fabric width."""
        k = int(os.environ.get("REPRO_SMOKE_CORES", "1"))
        trace = _random_trace(3, num_ports=8, num_coflows=12)
        inter = simulate_inter_multicore(trace, uniform_cores(k, B, DELTA))
        intra = simulate_intra_multicore(trace, uniform_cores(k, B, DELTA))
        assert len(inter.records) == len(trace.coflows)
        assert len(intra.records) == len(trace.coflows)
        if k == 1:
            expected = InterCoflowSimulator(
                trace, bandwidth_bps=B, delta=DELTA
            ).run()
            assert inter.records == expected.records
