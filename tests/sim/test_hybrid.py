"""Tests for the hybrid circuit/packet extension (§6)."""

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.sim.hybrid import HybridConfig, simulate_intra_hybrid, split_coflow
from repro.sim import simulate_intra_sunflow
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def trace_of(*coflows, num_ports=10):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(size_threshold_bytes=-1)
        with pytest.raises(ValueError):
            HybridConfig(packet_bandwidth_fraction=0.0)
        with pytest.raises(ValueError):
            HybridConfig(packet_bandwidth_fraction=1.5)


class TestSplit:
    def test_split_by_threshold(self):
        coflow = Coflow.from_demand(1, {(0, 1): 5 * MB, (2, 3): 50 * MB})
        circuit, packet = split_coflow(coflow, HybridConfig(size_threshold_bytes=10 * MB))
        assert circuit.demand() == {(2, 3): 50 * MB}
        assert packet.demand() == {(0, 1): 5 * MB}

    def test_all_small(self):
        coflow = Coflow.from_demand(1, {(0, 1): 5 * MB})
        circuit, packet = split_coflow(coflow, HybridConfig(size_threshold_bytes=10 * MB))
        assert circuit is None
        assert packet.num_flows == 1

    def test_zero_threshold_disables_offload(self):
        coflow = Coflow.from_demand(1, {(0, 1): 5 * MB})
        circuit, packet = split_coflow(coflow, HybridConfig(size_threshold_bytes=0.0))
        assert packet is None
        assert circuit.num_flows == 1


class TestSimulation:
    def test_zero_threshold_equals_pure_sunflow(self, small_trace):
        pure = simulate_intra_sunflow(small_trace, B, DELTA)
        hybrid = simulate_intra_hybrid(
            small_trace, HybridConfig(size_threshold_bytes=0.0), B, DELTA
        )
        for a, b in zip(pure.records, hybrid.records):
            assert a.cct == pytest.approx(b.cct)
            assert a.switching_count == b.switching_count

    def test_small_flows_avoid_circuit_setup(self):
        """A tiny flow beside a big one: offloading it removes its δ from
        the circuit timeline."""
        coflow = Coflow.from_demand(1, {(0, 1): 1 * MB, (0, 2): 100 * MB})
        pure = simulate_intra_sunflow(trace_of(coflow), B, DELTA)
        hybrid = simulate_intra_hybrid(
            trace_of(coflow),
            HybridConfig(size_threshold_bytes=10 * MB, packet_bandwidth_fraction=0.1),
            B,
            DELTA,
        )
        # Pure circuit: input 0 serializes both flows with two setups.
        assert pure.records[0].cct == pytest.approx(0.808 + 2 * DELTA)
        # Hybrid: circuit carries only the big flow; the small one finishes
        # on the 100 Mbps packet path in parallel (0.08 s).
        assert hybrid.records[0].cct == pytest.approx(0.8 + DELTA)
        assert hybrid.records[0].switching_count == 1

    def test_packet_path_can_become_the_bottleneck(self):
        """With a very slow packet network, offloaded flows dominate CCT."""
        coflow = Coflow.from_demand(1, {(0, 1): 9 * MB, (2, 3): 100 * MB})
        hybrid = simulate_intra_hybrid(
            trace_of(coflow),
            HybridConfig(size_threshold_bytes=10 * MB, packet_bandwidth_fraction=0.01),
            B,
            DELTA,
        )
        # Packet path: 9 MB at 10 Mbps = 7.2 s > circuit path 0.81 s.
        assert hybrid.records[0].cct == pytest.approx(7.2)

    def test_all_coflows_recorded(self, small_trace):
        hybrid = simulate_intra_hybrid(small_trace, HybridConfig(), B, DELTA)
        assert len(hybrid) == len(small_trace)

    def test_offload_tradeoff_depends_on_delta(self, small_trace):
        """Offload pays only when the setup delay dominates the packet
        path's rate penalty: a flow helps iff ``p < δ·φ/(1-φ)``.  With the
        default fast switch (δ = 10 ms, φ = 0.1) that's < 0.14 MB — below
        the 1 MB size floor — so offload *hurts*; with a slow 100 ms switch
        and a beefier packet path it wins."""
        config = HybridConfig(size_threshold_bytes=10 * MB, packet_bandwidth_fraction=0.25)
        small_ids = [c.coflow_id for c in small_trace if c.total_bytes < 10 * MB]
        assert small_ids

        fast_pure = simulate_intra_sunflow(small_trace, B, DELTA).by_id()
        fast_hybrid = simulate_intra_hybrid(small_trace, config, B, DELTA).by_id()
        fast_gain = sum(fast_pure[i].cct - fast_hybrid[i].cct for i in small_ids)
        assert fast_gain < 0  # fast switch: keep everything optical

        slow_delta = 0.1
        slow_pure = simulate_intra_sunflow(small_trace, B, slow_delta).by_id()
        slow_hybrid = simulate_intra_hybrid(small_trace, config, B, slow_delta).by_id()
        slow_gain = sum(slow_pure[i].cct - slow_hybrid[i].cct for i in small_ids)
        assert slow_gain > 0  # slow switch: the packet path wins for mice


class TestSplitTrace:
    def test_partitions_by_size(self, small_trace):
        from repro.sim.hybrid import split_trace

        config = HybridConfig(size_threshold_bytes=10 * MB)
        circuit, packet = split_trace(small_trace, config)
        assert circuit.num_ports == small_trace.num_ports
        for coflow in circuit:
            assert all(f.size_bytes >= 10 * MB for f in coflow.flows)
        for coflow in packet:
            assert all(f.size_bytes < 10 * MB for f in coflow.flows)
        # Every original flow lands on exactly one side.
        total = sum(c.num_flows for c in circuit) + sum(c.num_flows for c in packet)
        assert total == sum(c.num_flows for c in small_trace)


class TestInterHybrid:
    def test_zero_threshold_equals_pure_inter_sunflow(self, small_trace):
        from repro.sim import simulate_inter_hybrid, simulate_inter_sunflow

        pure = simulate_inter_sunflow(small_trace, B, DELTA).by_id()
        hybrid = simulate_inter_hybrid(
            small_trace, HybridConfig(size_threshold_bytes=0.0), B, DELTA
        ).by_id()
        for cid in pure:
            assert hybrid[cid].cct == pytest.approx(pure[cid].cct)

    def test_huge_threshold_equals_pure_packet_overlay(self, small_trace):
        """Everything offloaded: the hybrid degenerates to Varys at the
        overlay's rate."""
        from repro.sim import VarysAllocator, simulate_inter_hybrid, simulate_packet

        config = HybridConfig(
            size_threshold_bytes=1e18, packet_bandwidth_fraction=0.5
        )
        hybrid = simulate_inter_hybrid(small_trace, config, B, DELTA).by_id()
        packet = simulate_packet(small_trace, VarysAllocator(), 0.5 * B).by_id()
        for cid in packet:
            # Splitting re-sorts flows, which permutes Varys' backfill
            # iteration order — identical policy, slightly different rates.
            assert hybrid[cid].cct == pytest.approx(packet[cid].cct, rel=0.01)

    def test_all_coflows_complete(self, small_trace):
        from repro.sim import simulate_inter_hybrid

        report = simulate_inter_hybrid(small_trace, HybridConfig(), B, DELTA)
        assert len(report) == len(small_trace)
        for record in report.records:
            assert record.completion_time >= record.arrival_time

    def test_mouse_coflows_dodge_circuit_queueing(self):
        """The overlay's purpose under load: tiny Coflows no longer wait
        behind a big circuit-bound transfer on a shared port."""
        from repro.sim import simulate_inter_hybrid, simulate_inter_sunflow

        big = Coflow.from_demand(1, {(0, 1): 1000 * MB}, arrival_time=0.0)
        mice = [
            Coflow.from_demand(i, {(0, i): 2 * MB}, arrival_time=0.0)
            for i in range(2, 6)
        ]
        trace = trace_of(big, *mice)
        pure = simulate_inter_sunflow(trace, B, DELTA).by_id()
        hybrid = simulate_inter_hybrid(
            trace, HybridConfig(size_threshold_bytes=10 * MB), B, DELTA
        ).by_id()
        # Pure circuit: mice are prioritized but still serialize δ-setups on
        # input port 0 ahead of the big transfer; on the overlay they run
        # concurrently with it.
        assert hybrid[1].cct < pure[1].cct  # big avoids mice setups
        for i in range(2, 6):
            assert hybrid[i].completion_time <= pure[i].completion_time + 1.0
