"""Differential fuzz: the unified event engine vs the retired loops.

Before this suite existed, :class:`~repro.sim.circuit_sim.InterCoflowSimulator`,
:class:`~repro.sim.packet_sim.PacketSimulator`, and
:class:`~repro.sim.packet_vector.VectorPacketSimulator` each carried a
private copy of the trace-replay event loop.  They now all drive
:func:`repro.sim.engine.run_replay`; the original loop bodies are kept
here, verbatim, as *legacy drivers* that operate on the same simulator
components (replanner, allocators, advance/record hooks).  Random traces
replayed through both must produce identical event sequences and CCT
records — any divergence in admission batching, event selection, or
completion ordering shows up as a mismatch.
"""

import math
import random
from typing import Dict, List, Optional

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.prt import PortReservationTable, TIME_EPS
from repro.kernels import numpy_enabled
from repro.sim.aalo import AaloAllocator
from repro.sim.circuit_sim import InterCoflowSimulator, _ActiveCoflow
from repro.sim.engine import IndexedEventQueue
from repro.sim.packet_sim import PacketCoflowState, PacketSimulator
from repro.sim.results import SimulationReport, make_record
from repro.sim.varys import VarysAllocator
from repro.units import GBPS, MB
from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

B = 1 * GBPS


def record_key(record):
    return (record.coflow_id, record.completion_time, record.switching_count)


def random_trace(seed: int, num_ports: int = 10, num_coflows: int = 25) -> CoflowTrace:
    config = GeneratorConfig(
        num_ports=num_ports, num_coflows=num_coflows, max_width=5, seed=seed
    )
    return FacebookLikeTraceGenerator(config).generate()


def dense_trace(seed: int) -> CoflowTrace:
    """Hand-rolled trace with simultaneous arrivals and port contention."""
    rng = random.Random(seed)
    coflows = []
    for cid in range(18):
        arrival = rng.choice([0.0, 0.0, 0.05, 0.05, 0.1, 0.2])
        width = rng.randint(1, 3)
        demand = {}
        for _ in range(width):
            circuit = (rng.randrange(4), rng.randrange(4))
            demand[circuit] = demand.get(circuit, 0.0) + rng.randint(1, 40) * MB
        coflows.append(Coflow.from_demand(cid, demand, arrival_time=arrival))
    return CoflowTrace(num_ports=4, coflows=coflows)


# ----------------------------------------------------------------------
# Legacy loop bodies, verbatim from the pre-unification simulators
# ----------------------------------------------------------------------
def legacy_circuit_run(sim: InterCoflowSimulator):
    """The old ``InterCoflowSimulator.run`` loop, instrumented to also
    return the event sequence."""
    report = SimulationReport("sunflow", sim.bandwidth_bps, sim.delta)
    arrivals = list(sim.trace)
    next_arrival_index = 0
    active: Dict[int, _ActiveCoflow] = {}
    now = 0.0
    perf = sim.perf
    sim._prt = PortReservationTable()
    sim._layers = []
    # State consumed by the host-era ``_record_completions``; harmless to
    # the legacy flow (completion selection below still scans schedules).
    sim._completions = IndexedEventQueue()
    sim._predicted = {}
    sim._report = report
    event_times: List[float] = []

    while active or next_arrival_index < len(arrivals):
        if not active:
            now = arrivals[next_arrival_index].arrival_time
        while (
            next_arrival_index < len(arrivals)
            and arrivals[next_arrival_index].arrival_time <= now + TIME_EPS
        ):
            coflow = arrivals[next_arrival_index]
            active[coflow.coflow_id] = _ActiveCoflow(
                coflow=coflow,
                remaining=dict(coflow.processing_times(sim.bandwidth_bps)),
            )
            next_arrival_index += 1

        perf.inc("events")
        schedules = sim._replan(active, now)
        next_arrival = (
            arrivals[next_arrival_index].arrival_time
            if next_arrival_index < len(arrivals)
            else float("inf")
        )
        next_completion = min(s.completion_time for s in schedules.values())
        event_time = min(next_arrival, next_completion)
        if sim.guard is not None:
            for window in sim.guard.windows_between(now, event_time):
                if window.end > now + TIME_EPS:
                    event_time = min(event_time, window.end)
                    break

        sim._advance(active, schedules, now, event_time)
        sim._record_completions(active, report, event_time)
        now = event_time
        event_times.append(event_time)
    return report, event_times


def legacy_packet_run(sim: PacketSimulator):
    """The old ``PacketSimulator.run`` loop."""
    report = SimulationReport(sim.allocator.name, sim.bandwidth_bps, delta=0.0)
    arrivals = list(sim.trace)
    next_arrival_index = 0
    active: Dict[int, PacketCoflowState] = {}
    now = 0.0
    event_times: List[float] = []

    while active or next_arrival_index < len(arrivals):
        if not active:
            now = arrivals[next_arrival_index].arrival_time
        while (
            next_arrival_index < len(arrivals)
            and arrivals[next_arrival_index].arrival_time <= now + TIME_EPS
        ):
            coflow = arrivals[next_arrival_index]
            active[coflow.coflow_id] = PacketCoflowState(
                coflow=coflow,
                remaining=dict(coflow.processing_times(sim.bandwidth_bps)),
            )
            next_arrival_index += 1

        states = list(active.values())
        rates = sim.allocator.allocate(states, sim.trace.num_ports, sim.bandwidth_bps)
        sim._check_capacity(rates)

        next_arrival = (
            arrivals[next_arrival_index].arrival_time
            if next_arrival_index < len(arrivals)
            else math.inf
        )
        event_time = min(
            next_arrival,
            sim._next_completion(states, rates, now),
            sim.allocator.extra_event_time(states, rates, now, sim.bandwidth_bps),
        )
        if math.isinf(event_time):
            raise RuntimeError(
                "no progress possible: allocator starved all active coflows "
                "and no arrivals remain"
            )

        sim._advance(states, rates, event_time - now)
        finished = [cid for cid, state in active.items() if state.done]
        for cid in finished:
            state = active.pop(cid)
            report.add(
                make_record(
                    state.coflow,
                    completion_time=event_time,
                    bandwidth_bps=sim.bandwidth_bps,
                    delta=0.0,
                    switching_count=0,
                )
            )
        now = event_time
        event_times.append(event_time)
    return report, event_times


def legacy_vector_run(sim):
    """The old ``VectorPacketSimulator.run`` loop."""
    from repro.kernels.allocation import advance, check_capacity, next_completion
    from repro.sim.packet_vector import _build_table, _Slot

    report = SimulationReport(sim.allocator.name, sim.bandwidth_bps, delta=0.0)
    allocator = sim.allocator
    bandwidth = sim.bandwidth_bps
    num_ports = sim.trace.num_ports
    reallocate = allocator.reallocate_on_flow_completion
    arrivals = list(sim.trace)
    total = len(arrivals)
    index = 0
    live: List[_Slot] = []
    table = None
    now = 0.0
    event_times: List[float] = []

    while live or index < total:
        if not live:
            now = arrivals[index].arrival_time
        admitted = False
        while index < total and arrivals[index].arrival_time <= now + TIME_EPS:
            live.append(_Slot(arrivals[index], bandwidth))
            index += 1
            admitted = True
        if admitted:
            table = _build_table(live, table, num_ports)

        order = allocator.vector_allocate(table, num_ports, bandwidth)
        check_capacity(table, order, num_ports)

        next_arrival = arrivals[index].arrival_time if index < total else math.inf
        event_time = min(
            next_arrival,
            next_completion(table, now, reallocate),
            allocator.vector_extra_event_time(table, now, bandwidth),
        )
        if math.isinf(event_time):
            raise RuntimeError(
                "no progress possible: allocator starved all active coflows "
                "and no arrivals remain"
            )
        event_time = float(event_time)

        advance(table, event_time - now)
        unfinished = table.unfinished
        if any(unfinished[slot.cidx] == 0 for slot in live):
            still = []
            for slot in live:
                if unfinished[slot.cidx] == 0:
                    report.add(
                        make_record(
                            slot.coflow,
                            completion_time=event_time,
                            bandwidth_bps=bandwidth,
                            delta=0.0,
                            switching_count=0,
                        )
                    )
                else:
                    still.append(slot)
            live = still
        now = event_time
        event_times.append(event_time)
    return report, event_times


# ----------------------------------------------------------------------
# Differential fuzz
# ----------------------------------------------------------------------
class TestCircuitEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 2016])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_random_traces(self, seed, incremental):
        trace = random_trace(seed)
        new = InterCoflowSimulator(trace, incremental=incremental)
        new_report = new.run()
        legacy = InterCoflowSimulator(trace, incremental=incremental)
        legacy_report, legacy_events = legacy_circuit_run(legacy)
        assert new.event_times == legacy_events
        assert sorted(map(record_key, new_report.records)) == sorted(
            map(record_key, legacy_report.records)
        )

    @pytest.mark.parametrize("seed", [1, 4])
    def test_with_starvation_guard(self, seed):
        """The guard-slice clip moved into the host's ``plan`` hook; the
        guard wake-ups must still land on identical instants."""
        from repro.core.starvation import StarvationGuard
        from repro.units import DEFAULT_DELTA

        trace = random_trace(seed, num_ports=6, num_coflows=12)
        guard = StarvationGuard(
            num_ports=6, period=0.5, tau=0.1, delta=DEFAULT_DELTA
        )
        new = InterCoflowSimulator(trace, guard=guard)
        new_report = new.run()
        legacy = InterCoflowSimulator(trace, guard=guard)
        legacy_report, legacy_events = legacy_circuit_run(legacy)
        assert new.event_times == legacy_events
        assert sorted(map(record_key, new_report.records)) == sorted(
            map(record_key, legacy_report.records)
        )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_dense_simultaneous_arrivals(self, seed):
        trace = dense_trace(seed)
        new = InterCoflowSimulator(trace)
        new_report = new.run()
        legacy = InterCoflowSimulator(trace)
        legacy_report, legacy_events = legacy_circuit_run(legacy)
        assert new.event_times == legacy_events
        assert sorted(map(record_key, new_report.records)) == sorted(
            map(record_key, legacy_report.records)
        )


class TestPacketEquivalence:
    @pytest.mark.parametrize("seed", [0, 5, 2016])
    @pytest.mark.parametrize(
        "make_allocator",
        [
            lambda: VarysAllocator(),
            lambda: VarysAllocator(backfill=False),
            lambda: AaloAllocator(),
        ],
        ids=["varys", "varys-nobackfill", "aalo"],
    )
    def test_random_traces(self, seed, make_allocator):
        trace = random_trace(seed, num_ports=8, num_coflows=20)
        new = PacketSimulator(trace, make_allocator(), bandwidth_bps=B)
        new_report = new.run()
        legacy = PacketSimulator(trace, make_allocator(), bandwidth_bps=B)
        legacy_report, legacy_events = legacy_packet_run(legacy)
        assert new.event_times == legacy_events
        assert sorted(map(record_key, new_report.records)) == sorted(
            map(record_key, legacy_report.records)
        )


@pytest.mark.skipif(not numpy_enabled(), reason="numpy backend disabled")
class TestVectorEquivalence:
    @pytest.mark.parametrize("seed", [0, 5, 2016])
    @pytest.mark.parametrize(
        "make_allocator",
        [lambda: VarysAllocator(), lambda: AaloAllocator()],
        ids=["varys", "aalo"],
    )
    def test_random_traces(self, seed, make_allocator):
        from repro.sim.packet_vector import VectorPacketSimulator

        trace = random_trace(seed, num_ports=8, num_coflows=20)
        new = VectorPacketSimulator(trace, make_allocator(), bandwidth_bps=B)
        new_report = new.run()
        legacy = VectorPacketSimulator(trace, make_allocator(), bandwidth_bps=B)
        legacy_report, legacy_events = legacy_vector_run(legacy)
        assert new.event_times == legacy_events
        assert sorted(map(record_key, new_report.records)) == sorted(
            map(record_key, legacy_report.records)
        )


class TestSingleEventLoop:
    def test_exactly_one_event_loop_in_sim_and_core(self):
        """The unification's structural guarantee: the only trace-replay
        ``while`` loop left in ``src/repro/sim/`` *and* ``src/repro/core/``
        is the engine's.  ``core/`` is scanned so the retired multiswitch
        private loop (now delegated through ``core/multicore.py``) cannot
        quietly come back."""
        import pathlib

        import repro.core as core_pkg
        import repro.sim as sim_pkg

        # The loop now lives in ``run_replay_stream`` (one-arrival
        # lookahead, O(active) memory); ``run_replay`` delegates to it.
        pattern = "while pending is not _END or host.has_active()"
        loop_files = []
        for pkg in (sim_pkg, core_pkg):
            pkg_dir = pathlib.Path(pkg.__file__).parent
            for path in sorted(pkg_dir.glob("*.py")):
                text = path.read_text()
                if pattern in text:
                    loop_files.append(path.name)
                # The retired private-loop idioms must not reappear.
                assert "while active or next_arrival_index" not in text, path.name
                assert "while live or index < total" not in text, path.name
        assert loop_files == ["engine.py"]
