"""Equivalence of the incremental and full inter-Coflow replanners.

The incremental replanner (prefix reuse over a persistent layered PRT)
must be an *optimization only*: for every trace, policy, consideration
order, and guard setting, its per-Coflow completion times and switching
counts must equal the full-replan path bit-for-bit.  These tests replay
randomized Facebook-like traces through both paths and compare records
exactly (no ``approx``), and fuzz the event-driven ``schedule_demand``
against the literal Algorithm 1 transcription on dense demands.
"""

import random

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.prt import PortReservationTable
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.perf import PerfCounters
from repro.sim.circuit_sim import InterCoflowSimulator
from repro.units import GBPS, MB, MS
from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

B = 1 * GBPS
DELTA = 10 * MS


def make_trace(num_coflows, seed, num_ports=60, max_width=12):
    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    return FacebookLikeTraceGenerator(config).generate()


def replay(trace, incremental, order=ReservationOrder.ORDERED_PORT, guard=None):
    perf = PerfCounters()
    simulator = InterCoflowSimulator(
        trace,
        incremental=incremental,
        perf=perf,
        order=order,
        guard=guard,
        rng=random.Random(4),
    )
    report = simulator.run()
    return report, perf


def record_keys(report):
    """Exact (not approximate) per-Coflow outcome, sorted by id."""
    return sorted(
        (r.coflow_id, r.completion_time, r.switching_count) for r in report.records
    )


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 42, 2016])
    def test_matches_full_replan(self, seed):
        """Byte-identical records on randomized traces."""
        trace = make_trace(80, seed)
        fast, _ = replay(trace, incremental=True)
        full, _ = replay(trace, incremental=False)
        assert record_keys(fast) == record_keys(full)

    @pytest.mark.parametrize("order", list(ReservationOrder))
    def test_matches_under_every_consideration_order(self, order):
        trace = make_trace(60, seed=13)
        fast, _ = replay(trace, incremental=True, order=order)
        full, _ = replay(trace, incremental=False, order=order)
        assert record_keys(fast) == record_keys(full)

    def test_matches_with_starvation_guard(self):
        """Guarded runs fall back to the full path; results stay identical
        whichever way the simulator is configured."""
        rng = random.Random(3)
        coflows = []
        for cid in range(1, 9):
            demand = {}
            for _ in range(rng.randrange(1, 4)):
                demand[(rng.randrange(6), rng.randrange(6))] = (
                    rng.uniform(1, 30) * MB
                )
            coflows.append(
                Coflow.from_demand(cid, demand, arrival_time=rng.uniform(0, 2))
            )
        trace = CoflowTrace(num_ports=6, coflows=coflows)
        guard = StarvationGuard(num_ports=6, period=0.5, tau=0.1, delta=DELTA)
        fast, _ = replay(trace, incremental=True, guard=guard)
        full, _ = replay(trace, incremental=False, guard=guard)
        assert record_keys(fast) == record_keys(full)

    def test_incremental_reuses_plans(self):
        """The counters prove the incremental path actually skips work on a
        trace known to keep/reuse plan layers (and the full path never
        does)."""
        config = GeneratorConfig(num_ports=150, num_coflows=250, seed=5)
        trace = FacebookLikeTraceGenerator(config).generate()
        fast, perf = replay(trace, incremental=True)
        full, full_perf = replay(trace, incremental=False)
        assert record_keys(fast) == record_keys(full)
        assert perf.count("replans_avoided") > 0
        assert perf.count("plans_kept") > 0
        # Served Coflows are carried forward by the continuation transform
        # instead of being recomputed every event.
        assert perf.count("plans_transformed") > 0
        assert perf.count("plans_computed") < full_perf.count("plans_computed")
        assert full_perf.count("replans_avoided") == 0
        assert full_perf.count("full_replans") == perf.count("incremental_replans")


class TestScheduleDemandDense:
    """Fuzz the event-driven scheduler against the literal Algorithm 1
    transcription on dense 150-port demands (the regime the per-port
    waiting queues were built for)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dense_matches_reference(self, seed):
        rng = random.Random(seed)
        num_ports = 150
        demand = {}
        while len(demand) < 400:
            circuit = (rng.randrange(num_ports), rng.randrange(num_ports))
            demand[circuit] = rng.uniform(0.01, 0.5)
        scheduler = SunflowScheduler(delta=DELTA)
        fast_prt, slow_prt = PortReservationTable(), PortReservationTable()
        fast = scheduler.schedule_demand(fast_prt, 1, demand)
        slow = scheduler.schedule_demand_reference(slow_prt, 1, demand)
        fast_keys = [(r.start, r.end, r.src, r.dst, r.setup) for r in fast.reservations]
        slow_keys = [(r.start, r.end, r.src, r.dst, r.setup) for r in slow.reservations]
        assert sorted(fast_keys) == sorted(slow_keys)

    def test_dense_matches_reference_with_contention(self):
        """Same check against a PRT pre-loaded by a higher-priority Coflow,
        so entries hit the covered / too-small-gap / truncation paths."""
        rng = random.Random(9)
        num_ports = 40
        scheduler = SunflowScheduler(delta=DELTA)
        high = {}
        while len(high) < 60:
            circuit = (rng.randrange(num_ports), rng.randrange(num_ports))
            high[circuit] = rng.uniform(0.05, 0.4)
        low = {}
        while len(low) < 120:
            circuit = (rng.randrange(num_ports), rng.randrange(num_ports))
            low[circuit] = rng.uniform(0.01, 0.3)
        fast_prt, slow_prt = PortReservationTable(), PortReservationTable()
        for prt in (fast_prt, slow_prt):
            scheduler.schedule_demand(prt, 1, high)
        fast = scheduler.schedule_demand(fast_prt, 2, low)
        slow = scheduler.schedule_demand_reference(slow_prt, 2, low)
        fast_keys = [(r.start, r.end, r.src, r.dst, r.setup) for r in fast.reservations]
        slow_keys = [(r.start, r.end, r.src, r.dst, r.setup) for r in slow.reservations]
        assert sorted(fast_keys) == sorted(slow_keys)


def test_replay_smoke_benchmark():
    """Fast end-to-end smoke of the benchmark entry point: a small replay
    through ``repro.perf.replay_bench`` finishes quickly and reports zero
    mismatches between the two replanner modes."""
    from repro.perf.replay_bench import run_trace_replay

    result = run_trace_replay(num_coflows=60, num_ports=60, max_width=10, seed=2016)
    assert result["bench"] == "trace_replay"
    assert result["coflows"] == 60
    assert result["events"] > 0
    assert result["wall_s"] > 0
    assert result["mismatches"] == 0
    # The top-level hit rate is named for the incremental path whose
    # structural shadowing it reports; the old unqualified key is gone.
    assert "incremental_plan_cache_hit_rate" in result
    assert "plan_cache_hit_rate" not in result
