"""Tests for the assignment-schedule executor (all-stop vs not-all-stop)."""

import pytest

from repro.schedulers.base import Assignment, AssignmentSchedule
from repro.sim.assignment_exec import SwitchModel, execute_assignments

DELTA = 0.01


def schedule_of(*assignments):
    return AssignmentSchedule(assignments=list(assignments))


class TestSingleAssignment:
    def test_single_circuit(self):
        schedule = schedule_of(Assignment(circuits=((0, 1),), duration=1.0))
        result = execute_assignments(schedule, {(0, 1): 1.0}, DELTA)
        assert result.completion_time == pytest.approx(1.0 + DELTA)
        assert result.switching_count == 1
        assert result.finished

    def test_demand_finishing_early_in_slot(self):
        schedule = schedule_of(Assignment(circuits=((0, 1),), duration=1.0))
        result = execute_assignments(schedule, {(0, 1): 0.4}, DELTA)
        assert result.completion_time == pytest.approx(0.4 + DELTA)

    def test_empty_demand(self):
        result = execute_assignments(schedule_of(), {}, DELTA)
        assert result.completion_time == 0.0
        assert result.switching_count == 0

    def test_uncovered_demand_reports_unfinished(self):
        schedule = schedule_of(Assignment(circuits=((0, 1),), duration=0.5))
        result = execute_assignments(schedule, {(0, 1): 1.0}, DELTA)
        assert not result.finished

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            execute_assignments(schedule_of(), {}, -0.1)


class TestReconfigurationAccounting:
    def two_assignment_schedule(self):
        return schedule_of(
            Assignment(circuits=((0, 1), (1, 0)), duration=1.0),
            Assignment(circuits=((0, 1), (1, 2)), duration=1.0),
        )

    def test_not_all_stop_persistent_circuit_transmits_through_reconfig(self):
        # Circuit (0,1) persists across both assignments; under not-all-stop
        # it also transmits during the second reconfiguration δ.
        demand = {(0, 1): 2.0 + DELTA, (1, 0): 1.0, (1, 2): 1.0}
        result = execute_assignments(
            self.two_assignment_schedule(), demand, DELTA, SwitchModel.NOT_ALL_STOP
        )
        # Timeline: δ + 1.0 (A1) + δ + 1.0 (A2); (0,1) transmits 2.0 + δ.
        assert result.finished
        assert result.finish_times[(0, 1)] == pytest.approx(2 * DELTA + 2.0)

    def test_all_stop_freezes_everything_during_reconfig(self):
        demand = {(0, 1): 2.0 + DELTA, (1, 0): 1.0, (1, 2): 1.0}
        result = execute_assignments(
            self.two_assignment_schedule(), demand, DELTA, SwitchModel.ALL_STOP
        )
        # (0,1) cannot use the second δ: only 2.0 of service by the end.
        assert not result.finished

    def test_switching_counts_only_new_circuits(self):
        result = execute_assignments(
            self.two_assignment_schedule(),
            {(0, 1): 0.1, (1, 0): 0.1, (1, 2): 0.1},
            DELTA,
        )
        # A1 establishes 2 circuits; A2 establishes only (1,2).
        assert result.switching_count == 3

    def test_identical_consecutive_assignments_skip_reconfig(self):
        schedule = schedule_of(
            Assignment(circuits=((0, 1),), duration=0.5),
            Assignment(circuits=((0, 1),), duration=0.5),
        )
        result = execute_assignments(schedule, {(0, 1): 1.0}, DELTA)
        assert result.completion_time == pytest.approx(1.0 + DELTA)
        assert result.switching_count == 1


class TestEarlyTermination:
    def test_stops_once_real_demand_drains(self):
        schedule = schedule_of(
            Assignment(circuits=((0, 1),), duration=1.0),
            Assignment(circuits=((5, 5),), duration=100.0),  # dummy-only work
        )
        result = execute_assignments(schedule, {(0, 1): 1.0}, DELTA)
        assert result.assignments_used == 1
        assert result.completion_time == pytest.approx(1.0 + DELTA)

    def test_completion_is_max_of_finish_times(self):
        schedule = schedule_of(
            Assignment(circuits=((0, 1), (1, 0)), duration=2.0),
        )
        result = execute_assignments(schedule, {(0, 1): 0.5, (1, 0): 1.5}, DELTA)
        assert result.completion_time == pytest.approx(1.5 + DELTA)
        assert result.finish_times[(0, 1)] == pytest.approx(0.5 + DELTA)


class TestDummyDemand:
    def test_dummy_circuits_waste_time_but_do_not_block_completion(self):
        """Circuits without real demand (stuffing artifacts) are held but
        serve nothing."""
        schedule = schedule_of(
            Assignment(circuits=((9, 9),), duration=1.0),  # dummy only
            Assignment(circuits=((0, 1),), duration=1.0),
        )
        result = execute_assignments(schedule, {(0, 1): 1.0}, DELTA)
        # Real flow waits for the dummy slot: δ + 1.0, then δ + 1.0.
        assert result.completion_time == pytest.approx(2 * DELTA + 2.0)
