"""Tests for the fluid packet-switch simulator."""

import math

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.sim.packet_sim import (
    PacketCoflowState,
    PacketSimulator,
    RateAllocator,
    simulate_packet,
)
from repro.units import GBPS, MB

B = 1 * GBPS


def seconds(mb):
    return mb * MB * 8 / B


def trace_of(*coflows, num_ports=8):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class FullRateAllocator(RateAllocator):
    """Gives every unfinished flow the full line rate, greedily per port.

    Reallocates on flow completions: otherwise a flow starved by the greedy
    pass would wait forever once its blocker finished (the fixed-rate
    regime between events never revisits it).
    """

    name = "full-rate"
    reallocate_on_flow_completion = True

    def allocate(self, states, num_ports, bandwidth_bps):
        rates = {}
        used_in, used_out = {}, {}
        for state in sorted(states, key=lambda s: s.coflow_id):
            for src, dst in state.unfinished_flows():
                available = min(
                    1.0 - used_in.get(src, 0.0), 1.0 - used_out.get(dst, 0.0)
                )
                if available <= 0:
                    continue
                rates[(state.coflow_id, src, dst)] = available
                used_in[src] = used_in.get(src, 0.0) + available
                used_out[dst] = used_out.get(dst, 0.0) + available
        return rates


class OverCommittingAllocator(RateAllocator):
    name = "broken"

    def allocate(self, states, num_ports, bandwidth_bps):
        rates = {}
        for state in states:
            for src, dst in state.unfinished_flows():
                rates[(state.coflow_id, src, dst)] = 1.0  # ignores contention
        return rates


class TestPacketCoflowState:
    def test_bottleneck_matches_packet_bound(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB, (0, 2): 125 * MB})
        state = PacketCoflowState(
            coflow=coflow, remaining=dict(coflow.processing_times(B))
        )
        assert state.bottleneck() == pytest.approx(2.0)

    def test_done_tracks_remaining(self):
        coflow = Coflow.from_demand(1, {(0, 1): 10 * MB})
        state = PacketCoflowState(coflow=coflow, remaining={(0, 1): 0.0})
        assert state.done
        assert state.unfinished_flows() == []

    def test_unfinished_counter_maintained_on_drain(self):
        """``done`` is O(1): the counter moves only on the drain that takes
        a flow below ``TIME_EPS``, exactly once per flow."""
        coflow = Coflow.from_demand(1, {(0, 1): 10 * MB, (2, 3): 10 * MB})
        state = PacketCoflowState(
            coflow=coflow, remaining=dict(coflow.processing_times(B))
        )
        first = state.remaining[(0, 1)]
        assert state.unfinished_count == 2
        state.drain((0, 1), first / 2)
        assert state.unfinished_count == 2  # partial service: no decrement
        state.drain((0, 1), first / 2)
        assert state.unfinished_count == 1  # crossed the threshold: one decrement
        state.drain((0, 1), 0.0)
        assert state.unfinished_count == 1  # already-finished flow: no double count
        assert not state.done
        state.drain((2, 3), state.remaining[(2, 3)])
        assert state.unfinished_count == 0
        assert state.done
        assert state.sent_seconds == pytest.approx(2 * first)


class TestSimulatorBasics:
    def test_single_flow_at_line_rate(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB})
        report = simulate_packet(trace_of(coflow), FullRateAllocator(), B)
        assert report.records[0].cct == pytest.approx(1.0)

    def test_cct_equals_packet_lower_bound_for_single_coflow(self):
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB, (1, 1): 30 * MB})
        report = simulate_packet(trace_of(coflow), FullRateAllocator(), B)
        record = report.records[0]
        assert record.cct == pytest.approx(record.packet_lower)

    def test_arrival_time_respected(self):
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB}, arrival_time=5.0)
        report = simulate_packet(trace_of(coflow), FullRateAllocator(), B)
        assert report.records[0].completion_time == pytest.approx(6.0)

    def test_sequential_arrivals_with_idle_gap(self):
        a = Coflow.from_demand(1, {(0, 1): 125 * MB}, arrival_time=0.0)
        b = Coflow.from_demand(2, {(0, 1): 125 * MB}, arrival_time=10.0)
        report = simulate_packet(trace_of(a, b), FullRateAllocator(), B).by_id()
        assert report[1].cct == pytest.approx(1.0)
        assert report[2].cct == pytest.approx(1.0)

    def test_all_coflows_complete(self, small_trace):
        report = simulate_packet(small_trace, FullRateAllocator(), B)
        assert len(report) == len(small_trace)

    def test_cct_never_below_packet_bound(self, small_trace):
        report = simulate_packet(small_trace, FullRateAllocator(), B)
        for record in report.records:
            assert record.cct >= record.packet_lower * (1 - 1e-9)


class TestCapacityEnforcement:
    def test_overcommitting_allocator_rejected(self):
        a = Coflow.from_demand(1, {(0, 1): 10 * MB})
        b = Coflow.from_demand(2, {(0, 2): 10 * MB})
        simulator = PacketSimulator(trace_of(a, b), OverCommittingAllocator(), B)
        with pytest.raises(ValueError, match="over capacity"):
            simulator.run()


class TestProgressGuarantee:
    def test_starving_allocator_raises_instead_of_hanging(self):
        class NoRates(RateAllocator):
            name = "none"

            def allocate(self, states, num_ports, bandwidth_bps):
                return {}

        coflow = Coflow.from_demand(1, {(0, 1): 10 * MB})
        simulator = PacketSimulator(trace_of(coflow), NoRates(), B)
        with pytest.raises(RuntimeError, match="no progress"):
            simulator.run()
