"""Tests for intra-Coflow circuit simulation (§5.3 mode)."""

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import simulate_intra_assignment, simulate_intra_sunflow
from repro.sim.assignment_exec import SwitchModel
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def trace_of(*coflows, num_ports=10):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


class TestSunflowIntra:
    def test_cct_ignores_arrival_times(self):
        """Intra mode serves Coflows back-to-back; CCT is the isolated
        makespan regardless of the trace's arrival spacing."""
        coflow = Coflow.from_demand(1, {(0, 1): 125 * MB}, arrival_time=42.0)
        report = simulate_intra_sunflow(trace_of(coflow), B, DELTA)
        assert report.records[0].cct == pytest.approx(1.0 + DELTA)

    def test_every_coflow_recorded(self, small_trace):
        report = simulate_intra_sunflow(small_trace, B, DELTA)
        assert len(report) == len(small_trace)
        assert {r.coflow_id for r in report.records} == {
            c.coflow_id for c in small_trace
        }

    def test_lemma_one_holds_across_trace(self, small_trace):
        report = simulate_intra_sunflow(small_trace, B, DELTA)
        for record in report.records:
            assert record.cct <= 2 * record.circuit_lower * (1 + 1e-9)
            assert record.cct >= record.circuit_lower * (1 - 1e-9)

    def test_switching_count_is_minimum(self, small_trace):
        report = simulate_intra_sunflow(small_trace, B, DELTA)
        for record in report.records:
            assert record.switching_count == record.num_flows

    def test_bounds_attached_to_records(self, small_trace):
        report = simulate_intra_sunflow(small_trace, B, DELTA)
        for record in report.records:
            assert record.circuit_lower > 0
            assert record.packet_lower > 0
            assert record.circuit_lower >= record.packet_lower


class TestAssignmentIntra:
    @pytest.mark.parametrize(
        "scheduler_cls", [SolsticeScheduler, TmsScheduler, EdmondScheduler]
    )
    def test_baselines_complete_all_coflows(self, small_trace, scheduler_cls):
        report = simulate_intra_assignment(small_trace, scheduler_cls(), B, DELTA)
        assert len(report) == len(small_trace)
        for record in report.records:
            assert record.cct > 0

    def test_baseline_cct_at_least_circuit_lower_bound(self, small_trace):
        report = simulate_intra_assignment(small_trace, SolsticeScheduler(), B, DELTA)
        for record in report.records:
            assert record.cct >= record.circuit_lower * (1 - 1e-9)

    def test_all_stop_never_beats_not_all_stop(self, small_trace):
        not_all_stop = simulate_intra_assignment(
            small_trace, SolsticeScheduler(), B, DELTA, model=SwitchModel.NOT_ALL_STOP
        )
        all_stop = simulate_intra_assignment(
            small_trace, SolsticeScheduler(), B, DELTA, model=SwitchModel.ALL_STOP
        )
        for na, al in zip(not_all_stop.records, all_stop.records):
            assert al.cct >= na.cct - 1e-9

    def test_solstice_switching_exceeds_minimum_for_dense_coflows(self):
        demand = {(i, j): (10 + i + j) * MB for i in range(4) for j in range(4)}
        coflow = Coflow.from_demand(1, demand)
        report = simulate_intra_assignment(trace_of(coflow), SolsticeScheduler(), B, DELTA)
        assert report.records[0].switching_count > coflow.num_flows

    def test_sunflow_beats_solstice_on_average(self, small_trace):
        """The headline intra-Coflow result at trace scale."""
        sunflow = simulate_intra_sunflow(small_trace, B, DELTA)
        solstice = simulate_intra_assignment(small_trace, SolsticeScheduler(), B, DELTA)
        sunflow_avg = sum(r.cct_over_circuit_lower for r in sunflow.records)
        solstice_avg = sum(r.cct_over_circuit_lower for r in solstice.records)
        assert sunflow_avg < solstice_avg


class TestOneFlowCategoriesOptimal:
    """§5.3.1: Sunflow achieves exactly TcL for O2O, O2M and M2O Coflows."""

    @pytest.mark.parametrize(
        "demand",
        [
            {(0, 1): 30 * MB},
            {(0, 1): 30 * MB, (0, 2): 50 * MB, (0, 3): 10 * MB},
            {(1, 0): 30 * MB, (2, 0): 50 * MB, (3, 0): 10 * MB},
        ],
        ids=["one-to-one", "one-to-many", "many-to-one"],
    )
    def test_single_port_coflows_hit_lower_bound(self, demand):
        coflow = Coflow.from_demand(1, demand)
        report = simulate_intra_sunflow(trace_of(coflow), B, DELTA)
        record = report.records[0]
        assert record.cct == pytest.approx(record.circuit_lower)
