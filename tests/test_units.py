"""Tests for unit constants and conversions."""

import pytest

from repro.units import (
    BITS_PER_BYTE,
    DEFAULT_BANDWIDTH,
    DEFAULT_DELTA,
    GBPS,
    MB,
    MS,
    US,
    processing_time,
    size_from_processing_time,
)


class TestConstants:
    def test_paper_defaults(self):
        assert DEFAULT_DELTA == pytest.approx(0.010)  # 10 ms 3D-MEMS
        assert DEFAULT_BANDWIDTH == 1e9  # 1 Gbps

    def test_scales(self):
        assert MB == 10**6
        assert GBPS == 10**9
        assert MS == 1e-3
        assert US == 1e-6
        assert BITS_PER_BYTE == 8


class TestProcessingTime:
    def test_equation_one(self):
        # 125 MB = 1e9 bits at 1 Gbps -> 1 s.
        assert processing_time(125 * MB, 1 * GBPS) == pytest.approx(1.0)

    def test_one_mb_at_one_gbps_is_eight_ms(self):
        """The paper's smallest flow: 1 MB -> 8 ms, hence α = 1.25."""
        assert processing_time(1 * MB, 1 * GBPS) == pytest.approx(0.008)

    def test_zero_size(self):
        assert processing_time(0.0, 1 * GBPS) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            processing_time(1.0, 0.0)
        with pytest.raises(ValueError):
            processing_time(-1.0, 1.0)

    def test_round_trip(self):
        seconds = processing_time(55 * MB, 10 * GBPS)
        assert size_from_processing_time(seconds, 10 * GBPS) == pytest.approx(55 * MB)

    def test_size_from_time_validation(self):
        with pytest.raises(ValueError):
            size_from_processing_time(1.0, 0.0)
        with pytest.raises(ValueError):
            size_from_processing_time(-1.0, 1.0)
