"""Tests for the centralized Sunflow controller."""

import pytest

from repro.core.coflow import Coflow
from repro.core.sunflow import SunflowScheduler
from repro.system.controller import IssueTick, SunflowController
from repro.system.messages import RegisterCoflow, TransferReport
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def controller(command_latency=0.0, **kwargs):
    return SunflowController(
        bandwidth_bps=B,
        scheduler=SunflowScheduler(delta=DELTA),
        command_latency=command_latency,
        **kwargs,
    )


def register(ctrl, demand, cid=1, arrival=0.0):
    coflow = Coflow.from_demand(cid, demand, arrival_time=arrival)
    return ctrl.handle_register(arrival, RegisterCoflow(coflow))


class TestPlanning:
    def test_registration_produces_issue_ticks(self):
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB})
        assert len(output.ticks) == 1
        issue_time, tick = output.ticks[0]
        assert issue_time == pytest.approx(0.0)
        assert tick.reservation.src == 0
        assert tick.reservation.setup == pytest.approx(DELTA)

    def test_command_latency_plans_ahead(self):
        """With a 5 ms command latency the first reservation cannot start
        before the command can reach the switch."""
        ctrl = controller(command_latency=0.005)
        output = register(ctrl, {(0, 1): 125 * MB})
        _, tick = output.ticks[0]
        assert tick.reservation.start >= 0.005 - 1e-12

    def test_tick_issues_command_once(self):
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB})
        _, tick = output.ticks[0]
        first = ctrl.handle_tick(0.0, tick)
        assert len(first.commands) == 1
        second = ctrl.handle_tick(0.0, tick)
        assert second.commands == []  # already issued

    def test_stale_plan_ticks_ignored(self):
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB}, cid=1)
        _, old_tick = output.ticks[0]
        # A second registration replans, bumping the version.
        register(ctrl, {(2, 3): 10 * MB}, cid=2)
        assert ctrl.handle_tick(0.0, old_tick).commands == []


class TestReports:
    def drain(self, ctrl, output, upto=float("inf")):
        """Issue every tick due before ``upto``; returns issued reservations."""
        issued = []
        for time, tick in output.ticks:
            if time <= upto:
                result = ctrl.handle_tick(time, tick)
                issued.extend(c.reservation for c in result.commands)
        return issued

    def test_completion_recorded_at_network_finish(self):
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB})
        [reservation] = self.drain(ctrl, output)
        report = TransferReport(
            reservation=reservation,
            transmitted_seconds=1.0,
            flow_finished=True,
            finish_time=reservation.end,
        )
        ctrl.handle_report(reservation.end, report)
        assert ctrl.finished
        assert len(ctrl.report) == 1
        assert ctrl.report.records[0].cct == pytest.approx(1.0 + DELTA)

    def test_shortfall_triggers_replan(self):
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB})
        [reservation] = self.drain(ctrl, output)
        # Only half the promised bytes moved (e.g. late signal).
        report = TransferReport(
            reservation=reservation,
            transmitted_seconds=0.5,
            flow_finished=False,
            finish_time=reservation.end,
        )
        replan = ctrl.handle_report(reservation.end, report)
        assert replan.ticks, "leftover demand must be rescheduled"
        [retry] = [tick.reservation for _, tick in replan.ticks]
        # Progress was made, so the retry covers exactly the 0.5 s leftover.
        assert retry.transmit_duration == pytest.approx(0.5)

    def test_zero_progress_shortfall_pads_the_retry(self):
        """A window that moved nothing (the glitch ate it all) is padded so
        the retry absorbs the same glitch — this is what breaks the
        late-signal livelock."""
        ctrl = controller()
        output = register(ctrl, {(0, 1): 125 * MB})
        [reservation] = self.drain(ctrl, output)
        report = TransferReport(
            reservation=reservation,
            transmitted_seconds=0.0,
            flow_finished=False,
            finish_time=reservation.end,
        )
        replan = ctrl.handle_report(reservation.end, report)
        [retry] = [tick.reservation for _, tick in replan.ticks]
        assert retry.transmit_duration == pytest.approx(1.0 + DELTA)

    def test_unknown_coflow_report_ignored(self):
        from repro.core.prt import Reservation

        ctrl = controller()
        stray = Reservation(start=0.0, end=1.0, src=0, dst=1, coflow_id=99, setup=0.01)
        report = TransferReport(
            reservation=stray, transmitted_seconds=1.0,
            flow_finished=True, finish_time=1.0,
        )
        output = ctrl.handle_report(1.0, report)
        assert output.commands == [] and output.ticks == []

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            controller(command_latency=-1.0)


class TestPriorities:
    def test_priority_classes_forwarded_to_plan(self):
        ctrl = controller(priority_classes={1: 1, 2: 0})
        register(ctrl, {(0, 1): 10 * MB}, cid=1)
        output = register(ctrl, {(0, 2): 500 * MB}, cid=2)
        # Coflow 2 is privileged: its reservation starts first despite SCF.
        reservations = {
            tick.reservation.coflow_id: tick.reservation for _, tick in output.ticks
        }
        assert reservations[2].start < reservations[1].start
