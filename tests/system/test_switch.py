"""Tests for the runtime optical-switch component."""

import pytest

from repro.core.prt import Reservation
from repro.system.messages import CircuitDown, CircuitLive, SetupCircuit
from repro.system.switch import OpticalSwitch, PortBusyError


def reservation(src=0, dst=1, start=0.0, end=1.0, setup=0.1, cid=1):
    return Reservation(start=start, end=end, src=src, dst=dst, coflow_id=cid, setup=setup)


class TestSetup:
    def test_emits_live_and_down_signals(self):
        switch = OpticalSwitch(4)
        events = switch.handle_setup(0.0, SetupCircuit(reservation()))
        assert len(events) == 2
        live, down = events
        assert isinstance(live.message, CircuitLive)
        assert live.time == pytest.approx(0.1)  # after the setup delay
        assert isinstance(down.message, CircuitDown)
        assert down.time == pytest.approx(1.0)

    def test_zero_setup_live_immediately(self):
        switch = OpticalSwitch(4)
        events = switch.handle_setup(0.0, SetupCircuit(reservation(setup=0.0)))
        assert events[0].time == pytest.approx(0.0)

    def test_ports_occupied_until_end(self):
        switch = OpticalSwitch(4)
        switch.handle_setup(0.0, SetupCircuit(reservation()))
        assert switch.input_busy_until(0) == pytest.approx(1.0)
        assert switch.output_busy_until(1) == pytest.approx(1.0)
        assert switch.input_busy_until(2) == 0.0

    def test_switching_count_tracks_setups(self):
        switch = OpticalSwitch(4)
        switch.handle_setup(0.0, SetupCircuit(reservation()))
        switch.handle_setup(0.0, SetupCircuit(reservation(src=2, dst=3)))
        switch.handle_setup(
            1.0, SetupCircuit(reservation(start=1.0, end=2.0, setup=0.0))
        )
        assert switch.switching_count == 2  # the zero-setup continuation is free


class TestPortConstraintEnforcement:
    def test_double_booked_input_rejected(self):
        switch = OpticalSwitch(4)
        switch.handle_setup(0.0, SetupCircuit(reservation(src=0, dst=1)))
        with pytest.raises(PortBusyError, match="input"):
            switch.handle_setup(
                0.5, SetupCircuit(reservation(src=0, dst=2, start=0.5, end=1.5))
            )

    def test_double_booked_output_rejected(self):
        switch = OpticalSwitch(4)
        switch.handle_setup(0.0, SetupCircuit(reservation(src=0, dst=1)))
        with pytest.raises(PortBusyError, match="output"):
            switch.handle_setup(
                0.5, SetupCircuit(reservation(src=2, dst=1, start=0.5, end=1.5))
            )

    def test_sequential_reuse_allowed(self):
        switch = OpticalSwitch(4)
        switch.handle_setup(0.0, SetupCircuit(reservation(end=1.0)))
        switch.handle_setup(
            1.0, SetupCircuit(reservation(src=0, dst=2, start=1.0, end=2.0))
        )

    def test_late_command_rejected(self):
        switch = OpticalSwitch(4)
        with pytest.raises(PortBusyError, match="late"):
            switch.handle_setup(0.5, SetupCircuit(reservation(start=0.0)))

    def test_port_range_validated(self):
        switch = OpticalSwitch(2)
        with pytest.raises(ValueError, match="outside"):
            switch.handle_setup(0.0, SetupCircuit(reservation(src=5)))

    def test_invalid_port_count(self):
        with pytest.raises(ValueError):
            OpticalSwitch(0)
