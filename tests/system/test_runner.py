"""End-to-end tests for the system-level runner, including
cross-validation against the flow-level simulator."""

import random

import pytest

from repro.core.coflow import Coflow, CoflowTrace
from repro.sim import simulate_inter_sunflow
from repro.system import LatencyConfig, simulate_system
from repro.units import GBPS, MB, MS

B = 1 * GBPS
DELTA = 10 * MS


def trace_of(*coflows, num_ports=8):
    return CoflowTrace(num_ports=num_ports, coflows=list(coflows))


def random_trace(seed, num_coflows=12, num_ports=6):
    rng = random.Random(seed)
    coflows = []
    for i in range(1, num_coflows + 1):
        demand = {}
        for _ in range(rng.randint(1, 5)):
            demand[(rng.randrange(num_ports), rng.randrange(num_ports))] = (
                rng.uniform(1, 80) * MB
            )
        coflows.append(Coflow.from_demand(i, demand, arrival_time=rng.uniform(0, 3)))
    return trace_of(*coflows, num_ports=num_ports)


class TestCrossValidation:
    def test_single_coflow_matches_flow_level_exactly(self, figure1_coflow):
        trace = trace_of(figure1_coflow.with_arrival(2.0), num_ports=8)
        system = simulate_system(trace, B, DELTA)
        flow = simulate_inter_sunflow(trace, B, DELTA)
        assert system.records[0].cct == pytest.approx(flow.records[0].cct)
        assert system.records[0].switching_count == flow.records[0].switching_count

    def test_disjoint_coflows_match_exactly(self):
        a = Coflow.from_demand(1, {(0, 1): 50 * MB}, arrival_time=0.0)
        b = Coflow.from_demand(2, {(2, 3): 80 * MB}, arrival_time=0.5)
        trace = trace_of(a, b)
        system = simulate_system(trace, B, DELTA).by_id()
        flow = simulate_inter_sunflow(trace, B, DELTA).by_id()
        for cid in (1, 2):
            assert system[cid].cct == pytest.approx(flow[cid].cct)

    def test_sequential_coflows_match_exactly(self):
        """Arrivals with idle gaps: no replan ever interrupts a reservation,
        so the component system and the flow-level model coincide."""
        coflows = [
            Coflow.from_demand(i, {(0, 1): 25 * MB}, arrival_time=5.0 * i)
            for i in range(1, 5)
        ]
        trace = trace_of(*coflows)
        system = simulate_system(trace, B, DELTA).by_id()
        flow = simulate_inter_sunflow(trace, B, DELTA).by_id()
        for cid in system:
            assert system[cid].cct == pytest.approx(flow[cid].cct)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_contended_traces_match_exactly(self, seed):
        """With zero control latencies the component system (controller +
        switch + agents + teardown-based preemption) reproduces the
        flow-level model's per-Coflow CCTs exactly — the strongest
        cross-validation in the suite."""
        trace = random_trace(seed)
        system = simulate_system(trace, B, DELTA).by_id()
        flow = simulate_inter_sunflow(trace, B, DELTA).by_id()
        assert set(system) == set(flow)
        for cid in system:
            assert system[cid].cct == pytest.approx(flow[cid].cct, abs=1e-6)


class TestLatencyEffects:
    def test_zero_latency_is_default(self):
        config = LatencyConfig()
        assert config.registration == config.command == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyConfig(report=-1.0)

    def test_registration_latency_delays_service(self):
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB})
        trace = trace_of(coflow)
        prompt = simulate_system(trace, B, DELTA)
        delayed = simulate_system(
            trace, B, DELTA, latency=LatencyConfig(registration=0.5)
        )
        assert delayed.records[0].cct == pytest.approx(
            prompt.records[0].cct + 0.5
        )

    def test_command_latency_costs_one_planning_horizon(self):
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB})
        trace = trace_of(coflow)
        prompt = simulate_system(trace, B, DELTA)
        delayed = simulate_system(trace, B, DELTA, latency=LatencyConfig(command=0.02))
        assert delayed.records[0].cct == pytest.approx(prompt.records[0].cct + 0.02)

    def test_signal_latency_causes_shortfall_and_recovery(self):
        """A late circuit-live signal loses window head; the controller
        replans the leftover, so the transfer still completes — just later."""
        coflow = Coflow.from_demand(1, {(0, 1): 50 * MB})
        trace = trace_of(coflow)
        prompt = simulate_system(trace, B, DELTA)
        glitched = simulate_system(
            trace, B, DELTA, latency=LatencyConfig(signal=0.005)
        )
        assert glitched.records[0].cct > prompt.records[0].cct
        assert len(glitched) == 1  # completed despite the glitch

    def test_latencies_never_speed_things_up(self):
        trace = random_trace(7)
        ideal = simulate_system(trace, B, DELTA)
        realistic = simulate_system(
            trace,
            B,
            DELTA,
            latency=LatencyConfig(
                registration=0.001, command=0.002, signal=0.0, report=0.001
            ),
        )
        assert realistic.average_cct() >= ideal.average_cct() - 1e-9


class TestRobustness:
    def test_all_coflows_complete_or_runner_raises(self):
        trace = random_trace(11, num_coflows=20)
        report = simulate_system(trace, B, DELTA)
        assert len(report) == 20

    def test_switching_counts_reported(self, figure1_coflow):
        trace = trace_of(figure1_coflow, num_ports=8)
        report = simulate_system(trace, B, DELTA)
        assert report.records[0].switching_count == figure1_coflow.num_flows
