"""Tests for the per-host sending agent (live/down two-phase protocol)."""

import pytest

from repro.core.coflow import Coflow
from repro.core.prt import Reservation
from repro.system.agent import HostAgent
from repro.system.messages import CircuitDown, CircuitLive
from repro.units import GBPS

B = 1 * GBPS


def reservation(src=0, dst=1, start=0.0, end=1.0, setup=0.1, cid=1):
    return Reservation(start=start, end=end, src=src, dst=dst, coflow_id=cid, setup=setup)


def run_window(agent, r, live_at=None, down_at=None, actual_end=None):
    """Drive one live→down cycle; returns the transfer report."""
    live_time = r.transmit_start if live_at is None else live_at
    end = r.end if actual_end is None else actual_end
    down_time = end if down_at is None else down_at
    assert agent.handle_circuit_live(live_time, CircuitLive(r)) == []
    events = agent.handle_circuit_down(down_time, CircuitDown(r, actual_end=end))
    assert len(events) == 1
    return events[0]


class TestRegistration:
    def test_learns_only_its_own_flows(self):
        agent = HostAgent(port=0)
        coflow = Coflow.from_demand(1, {(0, 1): 125 * 10**6, (2, 3): 125 * 10**6})
        agent.register(coflow, B)
        assert agent.remaining(1, 1) == pytest.approx(1.0)
        assert agent.remaining(1, 3) == 0.0

    def test_multiple_coflows_tracked_separately(self):
        agent = HostAgent(port=0)
        agent.register(Coflow.from_demand(1, {(0, 1): 125 * 10**6}), B)
        agent.register(Coflow.from_demand(2, {(0, 1): 250 * 10**6}), B)
        assert agent.remaining(1, 1) == pytest.approx(1.0)
        assert agent.remaining(2, 1) == pytest.approx(2.0)


class TestTransmission:
    def make_agent(self, seconds=1.0):
        agent = HostAgent(port=0)
        size = seconds * B / 8
        agent.register(Coflow.from_demand(1, {(0, 1): size}), B)
        return agent

    def test_full_window_drains_flow(self):
        agent = self.make_agent(seconds=0.9)
        event = run_window(agent, reservation(start=0.0, end=1.0, setup=0.1))
        report = event.message
        assert report.flow_finished
        assert report.transmitted_seconds == pytest.approx(0.9)
        assert report.finish_time == pytest.approx(1.0)
        assert agent.remaining(1, 1) == 0.0

    def test_partial_window_reports_progress(self):
        agent = self.make_agent(seconds=2.0)
        report = run_window(agent, reservation(start=0.0, end=1.0, setup=0.1)).message
        assert not report.flow_finished
        assert report.transmitted_seconds == pytest.approx(0.9)
        assert agent.remaining(1, 1) == pytest.approx(1.1)

    def test_early_finish_reports_early_finish_time(self):
        agent = self.make_agent(seconds=0.3)
        report = run_window(agent, reservation(start=0.0, end=1.0, setup=0.1)).message
        assert report.flow_finished
        assert report.finish_time == pytest.approx(0.4)

    def test_late_live_signal_shrinks_window(self):
        """REACToR signal latency: the head of the window is lost."""
        agent = self.make_agent(seconds=0.9)
        r = reservation(start=0.0, end=1.0, setup=0.1)
        report = run_window(agent, r, live_at=0.3).message
        assert not report.flow_finished
        assert report.transmitted_seconds == pytest.approx(0.7)

    def test_early_teardown_truncates_transfer(self):
        """Inter-Coflow preemption: the circuit dropped before the planned
        end; only the shortened window's bytes moved."""
        agent = self.make_agent(seconds=0.9)
        r = reservation(start=0.0, end=1.0, setup=0.1)
        report = run_window(agent, r, actual_end=0.5).message
        assert report.transmitted_seconds == pytest.approx(0.4)
        assert not report.flow_finished
        assert agent.remaining(1, 1) == pytest.approx(0.5)

    def test_down_before_live_cancels_silently(self):
        """A reservation aborted mid-setup produces no transfer report and
        its late live signal is discarded."""
        agent = self.make_agent(seconds=0.9)
        r = reservation(start=0.0, end=1.0, setup=0.1)
        assert agent.handle_circuit_down(0.05, CircuitDown(r, actual_end=0.05)) == []
        assert agent.handle_circuit_live(0.1, CircuitLive(r)) == []
        assert agent.remaining(1, 1) == pytest.approx(0.9)  # untouched

    def test_duplicate_down_ignored(self):
        agent = self.make_agent(seconds=0.9)
        r = reservation(start=0.0, end=1.0, setup=0.1)
        run_window(agent, r)
        assert agent.handle_circuit_down(1.0, CircuitDown(r, actual_end=1.0)) == []

    def test_wrong_port_rejected(self):
        agent = HostAgent(port=3)
        with pytest.raises(ValueError):
            agent.handle_circuit_live(0.0, CircuitLive(reservation(src=0)))
        with pytest.raises(ValueError):
            agent.handle_circuit_down(
                0.0, CircuitDown(reservation(src=0), actual_end=1.0)
            )

    def test_unknown_flow_transmits_nothing(self):
        agent = HostAgent(port=0)
        report = run_window(agent, reservation()).message
        assert report.transmitted_seconds == 0.0
