"""Tests for Hopcroft–Karp maximum bipartite matching."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hopcroft_karp import (
    matching_from_matrix,
    maximum_bipartite_matching,
    perfect_matching,
)


def brute_force_max_matching_size(adjacency):
    """Exponential reference: try all subsets of edges."""
    edges = [(u, v) for u, vs in adjacency.items() for v in vs]
    best = 0
    for size in range(len(edges), 0, -1):
        if size <= best:
            break
        for subset in itertools.combinations(edges, size):
            lefts = [u for u, _ in subset]
            rights = [v for _, v in subset]
            if len(set(lefts)) == size and len(set(rights)) == size:
                best = size
                break
    return best


class TestBasicCases:
    def test_empty_graph(self):
        assert maximum_bipartite_matching({}) == {}

    def test_single_edge(self):
        assert maximum_bipartite_matching({"a": ["x"]}) == {"a": "x"}

    def test_left_vertex_with_no_edges(self):
        matching = maximum_bipartite_matching({"a": ["x"], "b": []})
        assert matching == {"a": "x"}

    def test_contention_resolved_by_augmenting(self):
        # Both want x, but a can also take y: size-2 matching exists.
        matching = maximum_bipartite_matching({"a": ["x", "y"], "b": ["x"]})
        assert len(matching) == 2
        assert matching["b"] == "x"
        assert matching["a"] == "y"

    def test_long_augmenting_chain(self):
        adjacency = {
            1: ["a"],
            2: ["a", "b"],
            3: ["b", "c"],
            4: ["c", "d"],
        }
        matching = maximum_bipartite_matching(adjacency)
        assert len(matching) == 4

    def test_matching_is_consistent(self):
        adjacency = {i: [j for j in range(5)] for i in range(5)}
        matching = maximum_bipartite_matching(adjacency)
        assert len(matching) == 5
        assert len(set(matching.values())) == 5


class TestPerfectMatching:
    def test_perfect_exists(self):
        assert perfect_matching({0: [1], 1: [0]}) is not None

    def test_perfect_missing(self):
        # Two left vertices share a single right vertex.
        assert perfect_matching({0: [0], 1: [0]}) is None

    def test_hall_violation(self):
        # {0, 1, 2} map into {0, 1}: no perfect matching by Hall's theorem.
        adjacency = {0: [0, 1], 1: [0, 1], 2: [0, 1]}
        assert perfect_matching(adjacency) is None


class TestMatrixHelper:
    def test_threshold_filters_edges(self):
        matrix = [[5.0, 0.5], [0.5, 5.0]]
        matching = matching_from_matrix(matrix, threshold=1.0)
        assert matching == {0: 0, 1: 1}

    def test_no_perfect_matching_returns_none(self):
        matrix = [[1.0, 0.0], [1.0, 0.0]]
        assert matching_from_matrix(matrix) is None

    def test_identity_matrix(self):
        matrix = [[1.0 if i == j else 0.0 for j in range(4)] for i in range(4)]
        assert matching_from_matrix(matrix) == {i: i for i in range(4)}


@st.composite
def random_bipartite(draw):
    left = draw(st.integers(min_value=1, max_value=5))
    right = draw(st.integers(min_value=1, max_value=5))
    adjacency = {}
    for u in range(left):
        adjacency[u] = [
            v for v in range(right) if draw(st.booleans())
        ]
    return adjacency


class TestAgainstBruteForce:
    @given(random_bipartite())
    @settings(max_examples=120, deadline=None)
    def test_maximum_cardinality_matches_brute_force(self, adjacency):
        matching = maximum_bipartite_matching(adjacency)
        # Validity: edges exist, no vertex reused.
        for u, v in matching.items():
            assert v in adjacency[u]
        assert len(set(matching.values())) == len(matching)
        # Maximality: equals exhaustive optimum.
        assert len(matching) == brute_force_max_matching_size(adjacency)
