"""Tests for the Birkhoff–von-Neumann decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.birkhoff import birkhoff_von_neumann, reconstruct
from repro.matching.stuffing import quick_stuff, sinkhorn_scale


class TestBasicDecomposition:
    def test_permutation_matrix_is_one_term(self):
        matrix = [[0.0, 1.0], [1.0, 0.0]]
        terms = birkhoff_von_neumann(matrix)
        assert len(terms) == 1
        assert terms[0].weight == pytest.approx(1.0)
        assert terms[0].permutation == {0: 1, 1: 0}

    def test_uniform_matrix(self):
        matrix = [[0.5, 0.5], [0.5, 0.5]]
        terms = birkhoff_von_neumann(matrix)
        assert sum(term.weight for term in terms) == pytest.approx(1.0)
        assert len(terms) == 2

    def test_empty_matrix(self):
        assert birkhoff_von_neumann([]) == []

    def test_unequal_line_sums_rejected(self):
        with pytest.raises(ValueError, match="equal row/column sums"):
            birkhoff_von_neumann([[1.0, 0.0], [1.0, 1.0]])

    def test_max_terms_truncates(self):
        matrix = [[0.25, 0.75], [0.75, 0.25]]
        terms = birkhoff_von_neumann(matrix, max_terms=1)
        assert len(terms) == 1

    def test_term_count_bound(self):
        """At most (n-1)^2 + 1 terms (each step zeroes an entry)."""
        matrix = sinkhorn_scale([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]])
        terms = birkhoff_von_neumann(matrix)
        assert len(terms) <= (3 - 1) ** 2 + 1


class TestReconstruction:
    def test_reconstruct_exact(self):
        matrix = [[0.3, 0.7], [0.7, 0.3]]
        terms = birkhoff_von_neumann(matrix)
        rebuilt = reconstruct(terms, 2)
        for i in range(2):
            for j in range(2):
                assert rebuilt[i][j] == pytest.approx(matrix[i][j], abs=1e-9)


@st.composite
def stuffed_matrices(draw, max_n=4):
    """Random non-negative matrices made decomposable by QuickStuff."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    matrix = [
        [draw(st.floats(min_value=0.0, max_value=20.0)) for _ in range(n)]
        for _ in range(n)
    ]
    stuffed, _ = quick_stuff(matrix)
    return stuffed


class TestDecompositionProperties:
    @given(stuffed_matrices())
    @settings(max_examples=80, deadline=None)
    def test_terms_rebuild_the_matrix(self, matrix):
        total = sum(sum(row) for row in matrix)
        terms = birkhoff_von_neumann(matrix)
        rebuilt = reconstruct(terms, len(matrix))
        for i, row in enumerate(matrix):
            for j, value in enumerate(row):
                assert rebuilt[i][j] == pytest.approx(
                    value, rel=1e-6, abs=max(total, 1.0) * 1e-7
                )

    @given(stuffed_matrices())
    @settings(max_examples=80, deadline=None)
    def test_every_term_is_positive_weight_permutation(self, matrix):
        n = len(matrix)
        for term in birkhoff_von_neumann(matrix):
            assert term.weight > 0
            assert sorted(term.permutation.keys()) == list(range(n))
            assert sorted(term.permutation.values()) == list(range(n))

    @given(stuffed_matrices())
    @settings(max_examples=80, deadline=None)
    def test_weights_sum_to_line_sum(self, matrix):
        if not matrix:
            return
        line_sum = sum(matrix[0])
        terms = birkhoff_von_neumann(matrix)
        total_weight = sum(term.weight for term in terms)
        assert total_weight == pytest.approx(line_sum, rel=1e-6, abs=1e-7)
