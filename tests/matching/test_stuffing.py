"""Tests for Sinkhorn scaling and Solstice QuickStuff."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.stuffing import (
    has_equal_line_sums,
    is_doubly_stochastic,
    line_sums,
    quick_stuff,
    sinkhorn_scale,
)


@st.composite
def nonneg_matrices(draw, max_n=5):
    n = draw(st.integers(min_value=1, max_value=max_n))
    return [
        [draw(st.floats(min_value=0.0, max_value=100.0)) for _ in range(n)]
        for _ in range(n)
    ]


class TestLineSums:
    def test_simple(self):
        rows, cols = line_sums([[1.0, 2.0], [3.0, 4.0]])
        assert rows == [3.0, 7.0]
        assert cols == [4.0, 6.0]


class TestQuickStuff:
    def test_already_balanced_unchanged(self):
        matrix = [[1.0, 2.0], [2.0, 1.0]]
        stuffed, dummy = quick_stuff(matrix)
        assert stuffed == matrix
        assert all(value == 0.0 for row in dummy for value in row)

    def test_line_sums_equalized(self):
        matrix = [[5.0, 0.0], [0.0, 1.0]]
        stuffed, dummy = quick_stuff(matrix)
        rows, cols = line_sums(stuffed)
        assert rows == pytest.approx([5.0, 5.0])
        assert cols == pytest.approx([5.0, 5.0])

    def test_original_demand_preserved(self):
        matrix = [[5.0, 0.0], [0.0, 1.0]]
        stuffed, dummy = quick_stuff(matrix)
        for i in range(2):
            for j in range(2):
                assert stuffed[i][j] - dummy[i][j] == pytest.approx(matrix[i][j])
                assert dummy[i][j] >= 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            quick_stuff([[-1.0]])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            quick_stuff([[1.0, 2.0]])

    @given(nonneg_matrices())
    @settings(max_examples=100, deadline=None)
    def test_stuffed_has_equal_line_sums(self, matrix):
        stuffed, dummy = quick_stuff(matrix)
        assert has_equal_line_sums(stuffed, tolerance=1e-6)
        # Dummy is non-negative everywhere and preserves the original.
        for i, row in enumerate(matrix):
            for j, value in enumerate(row):
                assert dummy[i][j] >= -1e-9
                assert stuffed[i][j] == pytest.approx(value + dummy[i][j])


class TestSinkhorn:
    def test_positive_matrix_converges(self):
        matrix = [[1.0, 2.0], [3.0, 4.0]]
        scaled = sinkhorn_scale(matrix)
        assert is_doubly_stochastic(scaled, tolerance=1e-6)

    def test_zeros_preserved(self):
        matrix = [[1.0, 0.0], [0.0, 1.0]]
        scaled = sinkhorn_scale(matrix)
        assert scaled[0][1] == 0.0
        assert scaled[1][0] == 0.0
        assert is_doubly_stochastic(scaled, tolerance=1e-6)

    def test_permutation_matrix_fixed_point(self):
        matrix = [[0.0, 1.0], [1.0, 0.0]]
        scaled = sinkhorn_scale(matrix)
        assert scaled == [[0.0, 1.0], [1.0, 0.0]]

    @given(nonneg_matrices(max_n=4))
    @settings(max_examples=60, deadline=None)
    def test_scaling_never_creates_support(self, matrix):
        """Sinkhorn scales entries; zeros stay zero."""
        scaled = sinkhorn_scale(matrix, iterations=20)
        for original_row, scaled_row in zip(matrix, scaled):
            for original, value in zip(original_row, scaled_row):
                if original == 0.0:
                    assert value == 0.0
                assert value >= 0.0


class TestPredicates:
    def test_is_doubly_stochastic(self):
        assert is_doubly_stochastic([[0.5, 0.5], [0.5, 0.5]])
        assert not is_doubly_stochastic([[1.0, 0.5], [0.5, 0.5]])

    def test_has_equal_line_sums_relative_tolerance(self):
        big = [[1e9, 0.0], [0.0, 1e9]]
        assert has_equal_line_sums(big)
        assert has_equal_line_sums([])
