"""Tests for the Hungarian assignment algorithm."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import (
    max_weight_assignment,
    max_weight_matching,
    min_cost_assignment,
)


def brute_force_min_cost(cost):
    n = len(cost)
    best = float("inf")
    for permutation in itertools.permutations(range(n)):
        best = min(best, sum(cost[i][permutation[i]] for i in range(n)))
    return best


class TestMinCostAssignment:
    def test_empty(self):
        assert min_cost_assignment([]) == {}

    def test_one_by_one(self):
        assert min_cost_assignment([[7.0]]) == {0: 0}

    def test_classic_example(self):
        cost = [
            [4, 1, 3],
            [2, 0, 5],
            [3, 2, 2],
        ]
        assignment = min_cost_assignment(cost)
        total = sum(cost[i][j] for i, j in assignment.items())
        assert total == 5  # (0,1)+(1,0)+(2,2) = 1+2+2
        assert sorted(assignment.keys()) == [0, 1, 2]
        assert sorted(assignment.values()) == [0, 1, 2]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            min_cost_assignment([[1.0, 2.0]])

    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.floats(min_value=-50, max_value=50),
                    min_size=n,
                    max_size=n,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, cost):
        assignment = min_cost_assignment(cost)
        total = sum(cost[i][j] for i, j in assignment.items())
        assert total == pytest.approx(brute_force_min_cost(cost), abs=1e-6)


class TestMaxWeightAssignment:
    def test_prefers_heavy_diagonal(self):
        weight = [
            [10, 1],
            [1, 10],
        ]
        assert max_weight_assignment(weight) == {0: 0, 1: 1}

    def test_prefers_heavy_antidiagonal(self):
        weight = [
            [1, 10],
            [10, 1],
        ]
        assert max_weight_assignment(weight) == {0: 1, 1: 0}


class TestMaxWeightMatching:
    def test_zero_weight_pairs_dropped(self):
        weight = [
            [5.0, 0.0],
            [0.0, 0.0],
        ]
        matching = max_weight_matching(weight)
        assert matching == {0: 0}

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching([[-1.0]])

    def test_all_zero_matrix_gives_empty_matching(self):
        assert max_weight_matching([[0.0, 0.0], [0.0, 0.0]]) == {}

    @given(
        st.integers(min_value=1, max_value=4).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.floats(min_value=0, max_value=100),
                    min_size=n,
                    max_size=n,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matching_weight_is_optimal(self, weight):
        """Brute-force all permutations: the matching's total weight equals
        the best achievable."""
        n = len(weight)
        matching = max_weight_matching(weight)
        total = sum(weight[i][j] for i, j in matching.items())
        best = max(
            sum(weight[i][p[i]] for i in range(n))
            for p in itertools.permutations(range(n))
        )
        assert total == pytest.approx(best, abs=1e-6)
