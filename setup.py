"""Build script: the pure-Python package plus the optional native planner.

``repro._native`` (src/repro/_native.c) is the compiled twin of the
Sunflow scheduling loop, selected at runtime via ``REPRO_KERNEL=native``.
It is strictly optional: when no C compiler is available the build warns
and continues, and ``repro.core.sunflow`` transparently falls back to the
pure-Python loop — every test and benchmark still runs, just slower.

``-ffp-contract=off`` is required for correctness, not taste: the planner
promises reservations bit-identical to the Python loop, and fused
multiply-adds would change roundings.
"""

import sys
import warnings

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


if sys.platform == "win32":
    _NATIVE_CFLAGS = []
else:
    _NATIVE_CFLAGS = ["-O2", "-ffp-contract=off"]


class optional_build_ext(build_ext):
    """Build the native planner if possible; warn and skip otherwise."""

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # toolchain missing/broken: stay pure-Python
            warnings.warn(
                f"could not build optional extension {ext.name} ({exc!r}); "
                "the pure-Python planner will be used "
                "(REPRO_KERNEL=native will fall back with a warning)",
                RuntimeWarning,
            )


setup(
    ext_modules=[
        Extension(
            "repro._native",
            sources=["src/repro/_native.c"],
            extra_compile_args=_NATIVE_CFLAGS,
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
