/* Native planner kernel: the `SunflowScheduler.schedule_demand` hot loop.
 *
 * This module is the compiled twin of the event-driven scheduling loop in
 * `repro/core/sunflow.py` (`SunflowScheduler._plan_python`).  It operates
 * directly on the PortReservationTable's struct-of-arrays storage — the
 * per-port `array('d')` interleaved boundary arrays and `array('q')`
 * journal-ref arrays documented in `repro/core/prt.py` — through the
 * buffer protocol, so no port timeline is copied across the Python/C
 * boundary.  Raw boundary pointers are cached per port and invalidated
 * after this module's own inserts; that is sound because the scheduler
 * holds the GIL throughout and nothing else mutates the table during a
 * `schedule_demand` call.  Buffers are released *before* any
 * `array.insert` call (arrays refuse to resize while exporting a buffer).
 *
 * Bitwise contract: every float expression is kept verbatim from the
 * Python loop — same operand order, double precision throughout, and the
 * extension is compiled with `-ffp-contract=off` so no FMA contraction
 * can change a rounding.  The differential suites in
 * `tests/kernels/test_native_planner.py` fuzz this module against the
 * Python loop and require byte-identical reservations.
 *
 * Structural liberties that provably cannot change the output:
 *   - seed events are sorted + uniqued instead of `list(set(...))` +
 *     `heapify` (a sorted array is a valid min-heap, and the heap's pop
 *     order over distinct elements is its total order regardless of the
 *     internal arrangement);
 *   - the per-batch "taken"/"released" sets are epoch stamps on port
 *     slots instead of Python sets (membership-equivalent);
 *   - the multi-queue interleave scans queue heads for the minimum
 *     order index instead of keeping a heads heap (order indices are
 *     unique, so the selection sequence is identical).
 *
 * `LAYOUT_VERSION` must match `repro.core.prt.PRT_LAYOUT_VERSION`; the
 * dispatcher in `core/sunflow.py` refuses to use a stale build.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#include <math.h>
#include <stdint.h>
#include <string.h>

#define NATIVE_LAYOUT_VERSION 1

/* Interned attribute/method names, created once at module init. */
static PyObject *str__in_bounds, *str__in_refs, *str__out_bounds,
    *str__out_refs, *str__reservations, *str__ends, *str__ends_sorted,
    *str_insert, *str_append, *str_src, *str_dst, *str_start, *str_end,
    *str_coflow_id, *str_setup;
static PyObject *array_type;     /* array.array */
static PyObject *typecode_d, *typecode_q;
static PyObject *empty_tuple;

/* ------------------------------------------------------------------ */
/* Data structures                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t key;              /* input p -> 2p, output p -> 2p + 1 */
    int64_t port;
    int is_input;
    PyObject *port_obj;       /* PyLong(port), strong */
    PyObject *bounds;         /* array('d') or NULL when absent from the dict */
    PyObject *refs;           /* array('q') or NULL */
    PyObject *bounds_insert;  /* cached bound methods, lazy */
    PyObject *refs_insert;
    double *bdata;            /* cached raw boundary doubles */
    Py_ssize_t blen;          /* number of doubles */
    int bvalid;
    int64_t taken_epoch;      /* == ctx epoch: port taken this batch */
    int64_t rel_epoch;        /* == ctx epoch: already collected this batch */
    int32_t *q;               /* waiting entry indices, sorted ascending */
    Py_ssize_t qlen, qcap;
} Slot;

typedef struct {
    int64_t src, dst;
    double remaining;
    int has_est;
    double setup_left;
    double anchor;            /* NaN encodes "no anchor" */
    Py_ssize_t in_slot, out_slot;
    int32_t index;            /* == order_index (list position) */
} CEntry;

typedef struct {
    double t;
    int64_t src, dst;
} Event;

typedef struct {
    Slot *slot;
    int32_t *data;            /* detached queue (stolen from the slot) */
    Py_ssize_t len, pos;
    int active;
} DQueue;

/* Offsets of the Reservation __slots__, resolved once per call from the
 * class's member descriptors; when the class is not a plain slots
 * dataclass (offs_ok == 0) construction falls back to PyObject_SetAttr. */
typedef struct {
    Py_ssize_t start, end, src, dst, coflow_id, setup;
} ResOffsets;

typedef struct {
    PyObject *prt;            /* borrowed */
    PyObject *res_type;       /* borrowed */
    PyObject *coflow_id;      /* borrowed */
    PyObject *out_list;       /* borrowed */
    double start_time, delta, eps;
    int has_established;
    PyObject *in_bounds_map, *in_refs_map;    /* strong */
    PyObject *out_bounds_map, *out_refs_map;  /* strong */
    PyObject *journal;        /* list, strong */
    PyObject *ends;           /* array('d'), strong */
    PyObject *ends_append;    /* lazy, strong */
    PyObject *delta_obj;      /* PyFloat(delta), strong */
    int ends_dirty;
    Slot *slots;
    Py_ssize_t nslots;
    CEntry *entries;
    Py_ssize_t nentries;
    Event *heap;
    Py_ssize_t hlen, hcap;
    Py_ssize_t outstanding;
    int64_t epoch;
    DQueue *dqs;              /* per-batch detached queues */
    Py_ssize_t ndq;
    ResOffsets offs;
    int offs_ok;
} Ctx;

/* ------------------------------------------------------------------ */
/* Bisect twins (identical semantics to the bisect module)             */
/* ------------------------------------------------------------------ */

static inline Py_ssize_t
bisect_right_d(const double *a, Py_ssize_t n, double x)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (x < a[mid])
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

static inline Py_ssize_t
bisect_left_d(const double *a, Py_ssize_t n, double x)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (a[mid] < x)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* ------------------------------------------------------------------ */
/* Event heap: lexicographic (t, src, dst), matching tuple comparison  */
/* ------------------------------------------------------------------ */

static inline int
ev_lt(const Event *a, const Event *b)
{
    if (a->t != b->t)
        return a->t < b->t;
    if (a->src != b->src)
        return a->src < b->src;
    return a->dst < b->dst;
}

static int
ev_qsort_cmp(const void *pa, const void *pb)
{
    const Event *a = (const Event *)pa, *b = (const Event *)pb;
    if (a->t < b->t) return -1;
    if (a->t > b->t) return 1;
    if (a->src != b->src) return a->src < b->src ? -1 : 1;
    if (a->dst != b->dst) return a->dst < b->dst ? -1 : 1;
    return 0;
}

static int
heap_reserve(Ctx *c, Py_ssize_t need)
{
    if (need <= c->hcap)
        return 0;
    Py_ssize_t cap = c->hcap ? c->hcap : 16;
    while (cap < need)
        cap += cap;
    Event *h = (Event *)PyMem_Realloc(c->heap, (size_t)cap * sizeof(Event));
    if (h == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    c->heap = h;
    c->hcap = cap;
    return 0;
}

static int
heap_push(Ctx *c, Event ev)
{
    if (heap_reserve(c, c->hlen + 1) < 0)
        return -1;
    Event *h = c->heap;
    Py_ssize_t i = c->hlen++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (ev_lt(&ev, &h[parent])) {
            h[i] = h[parent];
            i = parent;
        }
        else
            break;
    }
    h[i] = ev;
    return 0;
}

static Event
heap_pop(Ctx *c)
{
    Event *h = c->heap;
    Event top = h[0];
    Event last = h[--c->hlen];
    Py_ssize_t n = c->hlen;
    if (n > 0) {
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t l = 2 * i + 1;
            if (l >= n)
                break;
            Py_ssize_t m = l;
            if (l + 1 < n && ev_lt(&h[l + 1], &h[l]))
                m = l + 1;
            if (ev_lt(&h[m], &last)) {
                h[i] = h[m];
                i = m;
            }
            else
                break;
        }
        h[i] = last;
    }
    return top;
}

/* ------------------------------------------------------------------ */
/* Slots                                                               */
/* ------------------------------------------------------------------ */

static Slot *
find_slot(Ctx *c, int64_t key)
{
    Py_ssize_t lo = 0, hi = c->nslots;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (c->slots[mid].key < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < c->nslots && c->slots[lo].key == key)
        return &c->slots[lo];
    return NULL;
}

/* Refresh the cached raw boundary pointer.  The buffer is released
 * immediately — the pointer stays valid until the array resizes, which
 * only this module's own inserts can cause (they clear `bvalid`). */
static int
slot_refresh(Slot *s)
{
    if (s->bounds == NULL) {
        s->bdata = NULL;
        s->blen = 0;
        s->bvalid = 1;
        return 0;
    }
    Py_buffer view;
    if (PyObject_GetBuffer(s->bounds, &view, PyBUF_SIMPLE) < 0)
        return -1;
    s->bdata = (double *)view.buf;
    s->blen = (Py_ssize_t)(view.len / (Py_ssize_t)sizeof(double));
    PyBuffer_Release(&view);
    s->bvalid = 1;
    return 0;
}

/* Sorted insert into a slot's waiting queue (== bisect.insort by
 * order_index; entry indices equal order indices). */
static int
q_insert(Slot *s, int32_t v)
{
    if (s->qlen == s->qcap) {
        Py_ssize_t cap = s->qcap ? s->qcap * 2 : 8;
        int32_t *q = (int32_t *)PyMem_Realloc(s->q, (size_t)cap * sizeof(int32_t));
        if (q == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        s->q = q;
        s->qcap = cap;
    }
    if (s->qlen == 0 || s->q[s->qlen - 1] < v) {
        s->q[s->qlen++] = v;
        return 0;
    }
    Py_ssize_t lo = 0, hi = s->qlen;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (s->q[mid] < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(s->q + lo + 1, s->q + lo, (size_t)(s->qlen - lo) * sizeof(int32_t));
    s->q[lo] = v;
    s->qlen++;
    return 0;
}

/* Merge an unexamined (sorted) detached-queue suffix back into the
 * slot's waiting queue (the `reattach` merge; both runs sorted and
 * disjoint, so a two-pointer merge reproduces the Timsort result). */
static int
q_reattach(Slot *s, const int32_t *data, Py_ssize_t n)
{
    if (n == 0)
        return 0;
    if (s->qlen == 0) {
        if (s->qcap < n) {
            int32_t *q = (int32_t *)PyMem_Realloc(s->q, (size_t)n * sizeof(int32_t));
            if (q == NULL) {
                PyErr_NoMemory();
                return -1;
            }
            s->q = q;
            s->qcap = n;
        }
        memcpy(s->q, data, (size_t)n * sizeof(int32_t));
        s->qlen = n;
        return 0;
    }
    Py_ssize_t total = s->qlen + n;
    int32_t *merged = (int32_t *)PyMem_Malloc((size_t)total * sizeof(int32_t));
    if (merged == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t i = 0, j = 0, k = 0;
    while (i < n && j < s->qlen)
        merged[k++] = data[i] < s->q[j] ? data[i++] : s->q[j++];
    while (i < n)
        merged[k++] = data[i++];
    while (j < s->qlen)
        merged[k++] = s->q[j++];
    PyMem_Free(s->q);
    s->q = merged;
    s->qlen = total;
    s->qcap = total;
    return 0;
}

/* Create the port's bounds/refs arrays and publish them in the PRT
 * dicts, mirroring the `ib is None` branch of the Python loop. */
static int
slot_create_arrays(Ctx *c, Slot *s)
{
    PyObject *bounds = PyObject_CallFunctionObjArgs(array_type, typecode_d, NULL);
    if (bounds == NULL)
        return -1;
    PyObject *refs = PyObject_CallFunctionObjArgs(array_type, typecode_q, NULL);
    if (refs == NULL) {
        Py_DECREF(bounds);
        return -1;
    }
    PyObject *bmap = s->is_input ? c->in_bounds_map : c->out_bounds_map;
    PyObject *rmap = s->is_input ? c->in_refs_map : c->out_refs_map;
    if (PyDict_SetItem(bmap, s->port_obj, bounds) < 0 ||
        PyDict_SetItem(rmap, s->port_obj, refs) < 0) {
        Py_DECREF(bounds);
        Py_DECREF(refs);
        return -1;
    }
    s->bounds = bounds;   /* keep the strong references */
    s->refs = refs;
    s->bdata = NULL;
    s->blen = 0;
    s->bvalid = 1;
    return 0;
}

/* bounds.insert(k, end); bounds.insert(k, t); refs.insert(k >> 1, idx) */
static int
slot_insert(Ctx *c, Slot *s, Py_ssize_t k, PyObject *t_obj, PyObject *end_obj,
            PyObject *idx_obj)
{
    if (s->bounds == NULL && slot_create_arrays(c, s) < 0)
        return -1;
    if (s->bounds_insert == NULL) {
        s->bounds_insert = PyObject_GetAttr(s->bounds, str_insert);
        if (s->bounds_insert == NULL)
            return -1;
    }
    if (s->refs_insert == NULL) {
        if (s->refs == NULL) {
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld has bounds but no refs array",
                         (long long)s->port);
            return -1;
        }
        s->refs_insert = PyObject_GetAttr(s->refs, str_insert);
        if (s->refs_insert == NULL)
            return -1;
    }
    PyObject *kobj = PyLong_FromSsize_t(k);
    if (kobj == NULL)
        return -1;
    PyObject *jobj = PyLong_FromSsize_t(k >> 1);
    if (jobj == NULL) {
        Py_DECREF(kobj);
        return -1;
    }
    int rv = -1;
    PyObject *argv[2];
    argv[0] = kobj;
    argv[1] = end_obj;
    PyObject *r = PyObject_Vectorcall(s->bounds_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    argv[1] = t_obj;
    r = PyObject_Vectorcall(s->bounds_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    argv[0] = jobj;
    argv[1] = idx_obj;
    r = PyObject_Vectorcall(s->refs_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    rv = 0;
done:
    Py_DECREF(kobj);
    Py_DECREF(jobj);
    s->bvalid = 0;   /* the insert may have reallocated the array */
    return rv;
}

/* ------------------------------------------------------------------ */
/* PRT query twins                                                     */
/* ------------------------------------------------------------------ */

/* `PortReservationTable.release_of_block`, on the cached buffers.  Only
 * the `on_input` half of the return value is used by the caller. */
static int
release_of_block_c(const Ctx *c, const Slot *si, const Slot *so, double t,
                   double t_next)
{
    double end = HUGE_VAL;
    int on_input = 1;
    double tol = t - c->eps;
    double start_tol = t_next + c->eps;
    if (si->blen) {
        Py_ssize_t i = bisect_left_d(si->bdata, si->blen, tol);
        if (i & 1)
            i++;
        if (i < si->blen && si->bdata[i] <= start_tol) {
            end = si->bdata[i + 1];
            on_input = 1;
        }
    }
    if (so->blen) {
        Py_ssize_t i = bisect_left_d(so->bdata, so->blen, tol);
        if (i & 1)
            i++;
        if (i < so->blen && so->bdata[i] <= start_tol) {
            double candidate = so->bdata[i + 1];
            if (candidate < end) {
                end = candidate;
                on_input = 0;
            }
        }
    }
    return on_input;
}

/* ------------------------------------------------------------------ */
/* Reservation construction + journal insert                           */
/* ------------------------------------------------------------------ */

static int
make_reservation(Ctx *c, Slot *si, Slot *so, Py_ssize_t ki, Py_ssize_t ko,
                 double t, double end, double setup)
{
    int rv = -1;
    PyObject *res = NULL, *t_obj = NULL, *end_obj = NULL, *setup_obj = NULL,
             *idx_obj = NULL, *r = NULL;
    PyTypeObject *tp = (PyTypeObject *)c->res_type;
    res = tp->tp_new(tp, empty_tuple, NULL);
    if (res == NULL)
        goto done;
    t_obj = PyFloat_FromDouble(t);
    if (t_obj == NULL)
        goto done;
    end_obj = PyFloat_FromDouble(end);
    if (end_obj == NULL)
        goto done;
    if (setup == c->delta) {
        setup_obj = c->delta_obj;
        Py_INCREF(setup_obj);
    }
    else {
        setup_obj = PyFloat_FromDouble(setup);
        if (setup_obj == NULL)
            goto done;
    }
    if (c->offs_ok) {
        /* Fresh slots are NULL after tp_new, so plain stores suffice. */
        char *base = (char *)res;
        Py_INCREF(t_obj);
        *(PyObject **)(base + c->offs.start) = t_obj;
        Py_INCREF(end_obj);
        *(PyObject **)(base + c->offs.end) = end_obj;
        Py_INCREF(si->port_obj);
        *(PyObject **)(base + c->offs.src) = si->port_obj;
        Py_INCREF(so->port_obj);
        *(PyObject **)(base + c->offs.dst) = so->port_obj;
        Py_INCREF(c->coflow_id);
        *(PyObject **)(base + c->offs.coflow_id) = c->coflow_id;
        Py_INCREF(setup_obj);
        *(PyObject **)(base + c->offs.setup) = setup_obj;
    }
    else if (PyObject_SetAttr(res, str_start, t_obj) < 0 ||
             PyObject_SetAttr(res, str_end, end_obj) < 0 ||
             PyObject_SetAttr(res, str_src, si->port_obj) < 0 ||
             PyObject_SetAttr(res, str_dst, so->port_obj) < 0 ||
             PyObject_SetAttr(res, str_coflow_id, c->coflow_id) < 0 ||
             PyObject_SetAttr(res, str_setup, setup_obj) < 0)
        goto done;
    idx_obj = PyLong_FromSsize_t(PyList_GET_SIZE(c->journal));
    if (idx_obj == NULL)
        goto done;
    if (slot_insert(c, si, ki, t_obj, end_obj, idx_obj) < 0)
        goto done;
    if (slot_insert(c, so, ko, t_obj, end_obj, idx_obj) < 0)
        goto done;
    if (c->ends_append == NULL) {
        c->ends_append = PyObject_GetAttr(c->ends, str_append);
        if (c->ends_append == NULL)
            goto done;
    }
    r = PyObject_Vectorcall(c->ends_append, &end_obj, 1, NULL);
    if (r == NULL)
        goto done;
    if (!c->ends_dirty) {
        if (PyObject_SetAttr(c->prt, str__ends_sorted, Py_None) < 0)
            goto done;
        c->ends_dirty = 1;
    }
    if (PyList_Append(c->journal, res) < 0)
        goto done;
    if (PyList_Append(c->out_list, res) < 0)
        goto done;
    rv = 0;
done:
    Py_XDECREF(res);
    Py_XDECREF(t_obj);
    Py_XDECREF(end_obj);
    Py_XDECREF(setup_obj);
    Py_XDECREF(idx_obj);
    Py_XDECREF(r);
    return rv;
}

/* ------------------------------------------------------------------ */
/* examine(): one entry attempt (the inlined `_make_reservation`)      */
/* ------------------------------------------------------------------ */

static int
examine(Ctx *c, CEntry *e, double t, int origin)
{
    Slot *si = &c->slots[e->in_slot];
    Slot *so = &c->slots[e->out_slot];
    if (!si->bvalid && slot_refresh(si) < 0)
        return -1;
    if (!so->bvalid && slot_refresh(so) < 0)
        return -1;
    double teps = t + c->eps;
    Py_ssize_t ki = 0, ko = 0;
    /* Covering probes: one bisect per port; odd parity means taken. */
    if (si->blen) {
        ki = bisect_right_d(si->bdata, si->blen, teps);
        if (ki & 1)
            return q_insert(si, e->index);
    }
    if (so->blen) {
        ko = bisect_right_d(so->bdata, so->blen, teps);
        if (ko & 1)
            return q_insert(so, e->index);
    }
    /* Both ports free: gap runs to the next reserved start on either. */
    double t_next = HUGE_VAL;
    if (ki < si->blen)
        t_next = si->bdata[ki];
    if (ko < so->blen && so->bdata[ko] < t_next)
        t_next = so->bdata[ko];
    double setup;
    double anchor = NAN;
    if (origin && e->has_est) {
        anchor = e->anchor;
        setup = e->setup_left < c->delta ? e->setup_left : c->delta;
    }
    else
        setup = c->delta;
    double max_length = t_next - t;
    if (max_length <= setup + c->eps) {
        int on_input = release_of_block_c(c, si, so, t, t_next);
        return q_insert(on_input ? si : so, e->index);
    }
    double desired_length = setup + e->remaining;
    double length, end;
    if (desired_length < max_length) {
        length = desired_length;
        end = t + length;
        if (!isnan(anchor) && fabs(end - anchor) <= c->eps)
            end = anchor;
    }
    else {
        length = max_length;
        end = t_next;
    }
    if (make_reservation(c, si, so, ki, ko, t, end, setup) < 0)
        return -1;
    si->taken_epoch = c->epoch;
    so->taken_epoch = c->epoch;
    Event ev = {end, e->src, e->dst};
    if (heap_push(c, ev) < 0)
        return -1;
    double left = desired_length - length;
    e->remaining = left;
    if (left <= c->eps) {
        c->outstanding--;
        return 0;
    }
    /* Truncated: wait out the entry's own input port. */
    return q_insert(si, e->index);
}

/* ------------------------------------------------------------------ */
/* Release-event seeding                                               */
/* ------------------------------------------------------------------ */

static int
seed_events(Ctx *c)
{
    Py_ssize_t journal_len = PyList_GET_SIZE(c->journal);
    for (Py_ssize_t sidx = 0; sidx < c->nslots; sidx++) {
        Slot *s = &c->slots[sidx];
        if (slot_refresh(s) < 0)
            return -1;
        if (s->blen == 0)
            continue;
        Py_ssize_t k = bisect_right_d(s->bdata, s->blen, c->start_time + c->eps) >> 1;
        Py_ssize_t nres = s->blen >> 1;
        if (k >= nres)
            continue;
        Py_ssize_t count = nres - k;
        Py_buffer view;
        if (PyObject_GetBuffer(s->refs, &view, PyBUF_SIMPLE) < 0)
            return -1;
        if ((Py_ssize_t)(view.len / (Py_ssize_t)sizeof(int64_t)) < nres) {
            PyBuffer_Release(&view);
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld: refs shorter than bounds",
                         (long long)s->port);
            return -1;
        }
        int64_t *refs = (int64_t *)PyMem_Malloc((size_t)count * sizeof(int64_t));
        if (refs == NULL) {
            PyBuffer_Release(&view);
            PyErr_NoMemory();
            return -1;
        }
        memcpy(refs, (int64_t *)view.buf + k, (size_t)count * sizeof(int64_t));
        PyBuffer_Release(&view);
        if (heap_reserve(c, c->hlen + count) < 0) {
            PyMem_Free(refs);
            return -1;
        }
        for (Py_ssize_t i = 0; i < count; i++) {
            int64_t ref = refs[i];
            if (ref < 0 || ref >= journal_len) {
                PyMem_Free(refs);
                PyErr_Format(PyExc_RuntimeError,
                             "PRT port %lld: journal ref %lld out of range",
                             (long long)s->port, (long long)ref);
                return -1;
            }
            PyObject *item = PyList_GET_ITEM(c->journal, ref);
            PyObject *peer_obj =
                PyObject_GetAttr(item, s->is_input ? str_dst : str_src);
            if (peer_obj == NULL) {
                PyMem_Free(refs);
                return -1;
            }
            long long peer = PyLong_AsLongLong(peer_obj);
            Py_DECREF(peer_obj);
            if (peer == -1 && PyErr_Occurred()) {
                PyMem_Free(refs);
                return -1;
            }
            Event ev;
            ev.t = s->bdata[2 * (k + i) + 1];
            if (s->is_input) {
                ev.src = s->port;
                ev.dst = peer;
            }
            else {
                ev.src = peer;
                ev.dst = s->port;
            }
            c->heap[c->hlen++] = ev;
        }
        PyMem_Free(refs);
    }
    /* `list(set(seeded))` + heapify, deterministically: sort by
     * (t, src, dst) and drop exact duplicates (a circuit touching both a
     * used input and a used output seeds the same triple twice).  A
     * sorted array is a valid min-heap, and over distinct elements the
     * pop order is the total order either way. */
    if (c->hlen > 1) {
        qsort(c->heap, (size_t)c->hlen, sizeof(Event), ev_qsort_cmp);
        Py_ssize_t w = 1;
        for (Py_ssize_t i = 1; i < c->hlen; i++) {
            Event *prev = &c->heap[w - 1], *cur = &c->heap[i];
            if (cur->t == prev->t && cur->src == prev->src &&
                cur->dst == prev->dst)
                continue;
            c->heap[w++] = *cur;
        }
        c->hlen = w;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Batch queue collection                                              */
/* ------------------------------------------------------------------ */

static void
collect_key(Ctx *c, int64_t key)
{
    Slot *s = find_slot(c, key);
    if (s == NULL || s->rel_epoch == c->epoch)
        return;
    s->rel_epoch = c->epoch;
    if (s->qlen == 0)
        return;
    DQueue *d = &c->dqs[c->ndq++];
    d->slot = s;
    d->data = s->q;
    d->len = s->qlen;
    d->pos = 0;
    d->active = 1;
    s->q = NULL;        /* steal: the slot starts a fresh queue */
    s->qlen = 0;
    s->qcap = 0;
}

/* ------------------------------------------------------------------ */
/* Context setup / teardown                                            */
/* ------------------------------------------------------------------ */

static void
ctx_free(Ctx *c)
{
    if (c->slots != NULL) {
        for (Py_ssize_t i = 0; i < c->nslots; i++) {
            Slot *s = &c->slots[i];
            Py_XDECREF(s->port_obj);
            Py_XDECREF(s->bounds);
            Py_XDECREF(s->refs);
            Py_XDECREF(s->bounds_insert);
            Py_XDECREF(s->refs_insert);
            PyMem_Free(s->q);
        }
        PyMem_Free(c->slots);
    }
    if (c->dqs != NULL) {
        for (Py_ssize_t i = 0; i < c->ndq; i++)
            PyMem_Free(c->dqs[i].data);
        PyMem_Free(c->dqs);
    }
    PyMem_Free(c->entries);
    PyMem_Free(c->heap);
    Py_XDECREF(c->in_bounds_map);
    Py_XDECREF(c->in_refs_map);
    Py_XDECREF(c->out_bounds_map);
    Py_XDECREF(c->out_refs_map);
    Py_XDECREF(c->journal);
    Py_XDECREF(c->ends);
    Py_XDECREF(c->ends_append);
    Py_XDECREF(c->delta_obj);
}

/* Resolve one __slots__ member offset; -1 (without an exception) when the
 * attribute is not a plain object-slot member descriptor. */
static Py_ssize_t
member_offset(PyTypeObject *tp, PyObject *name)
{
    Py_ssize_t off = -1;
    PyObject *descr = PyObject_GetAttr((PyObject *)tp, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
        if (def != NULL && def->type == T_OBJECT_EX && def->flags == 0)
            off = def->offset;
    }
    Py_DECREF(descr);
    return off;
}

static void
resolve_offsets(Ctx *c)
{
    PyTypeObject *tp = (PyTypeObject *)c->res_type;
    c->offs.start = member_offset(tp, str_start);
    c->offs.end = member_offset(tp, str_end);
    c->offs.src = member_offset(tp, str_src);
    c->offs.dst = member_offset(tp, str_dst);
    c->offs.coflow_id = member_offset(tp, str_coflow_id);
    c->offs.setup = member_offset(tp, str_setup);
    c->offs_ok = c->offs.start >= 0 && c->offs.end >= 0 && c->offs.src >= 0 &&
                 c->offs.dst >= 0 && c->offs.coflow_id >= 0 &&
                 c->offs.setup >= 0;
}

static int
int64_key_cmp(const void *pa, const void *pb)
{
    int64_t a = *(const int64_t *)pa, b = *(const int64_t *)pb;
    return a < b ? -1 : (a > b ? 1 : 0);
}

static int
ctx_init(Ctx *c, PyObject *prt, PyObject *res_type, PyObject *coflow_id,
         double start_time, double delta, double eps, int has_established,
         PyObject *entries_list, PyObject *out_list)
{
    c->prt = prt;
    c->res_type = res_type;
    c->coflow_id = coflow_id;
    c->out_list = out_list;
    c->start_time = start_time;
    c->delta = delta;
    c->eps = eps;
    c->has_established = has_established;
    c->epoch = 1;

    c->in_bounds_map = PyObject_GetAttr(prt, str__in_bounds);
    c->in_refs_map = PyObject_GetAttr(prt, str__in_refs);
    c->out_bounds_map = PyObject_GetAttr(prt, str__out_bounds);
    c->out_refs_map = PyObject_GetAttr(prt, str__out_refs);
    c->journal = PyObject_GetAttr(prt, str__reservations);
    c->ends = PyObject_GetAttr(prt, str__ends);
    if (c->in_bounds_map == NULL || c->in_refs_map == NULL ||
        c->out_bounds_map == NULL || c->out_refs_map == NULL ||
        c->journal == NULL || c->ends == NULL)
        return -1;
    if (!PyDict_Check(c->in_bounds_map) || !PyDict_Check(c->in_refs_map) ||
        !PyDict_Check(c->out_bounds_map) || !PyDict_Check(c->out_refs_map) ||
        !PyList_Check(c->journal)) {
        PyErr_SetString(PyExc_TypeError,
                        "PRT storage layout does not match the native kernel");
        return -1;
    }
    c->delta_obj = PyFloat_FromDouble(delta);
    if (c->delta_obj == NULL)
        return -1;
    resolve_offsets(c);

    Py_ssize_t n = PyList_GET_SIZE(entries_list);
    c->nentries = n;
    c->outstanding = n;
    if (n > INT32_MAX) {
        PyErr_SetString(PyExc_OverflowError, "too many demand entries");
        return -1;
    }
    c->entries = (CEntry *)PyMem_Calloc((size_t)n, sizeof(CEntry));
    if (c->entries == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    int64_t *keys = (int64_t *)PyMem_Malloc((size_t)(2 * n) * sizeof(int64_t));
    if (keys == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(entries_list, i);
        if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 6) {
            PyMem_Free(keys);
            PyErr_SetString(PyExc_TypeError,
                            "entries must be (src, dst, remaining, has_est, "
                            "setup_left, anchor) tuples");
            return -1;
        }
        CEntry *e = &c->entries[i];
        e->src = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 0));
        e->dst = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
        e->remaining = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 2));
        e->has_est = PyObject_IsTrue(PyTuple_GET_ITEM(item, 3));
        e->setup_left = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 4));
        e->anchor = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 5));
        e->index = (int32_t)i;
        if (PyErr_Occurred() || e->has_est < 0) {
            PyMem_Free(keys);
            return -1;
        }
        keys[2 * i] = e->src * 2;
        keys[2 * i + 1] = e->dst * 2 + 1;
    }
    qsort(keys, (size_t)(2 * n), sizeof(int64_t), int64_key_cmp);
    Py_ssize_t nslots = 0;
    for (Py_ssize_t i = 0; i < 2 * n; i++)
        if (i == 0 || keys[i] != keys[i - 1])
            keys[nslots++] = keys[i];
    c->slots = (Slot *)PyMem_Calloc((size_t)nslots, sizeof(Slot));
    if (c->slots == NULL) {
        PyMem_Free(keys);
        PyErr_NoMemory();
        return -1;
    }
    c->nslots = nslots;
    for (Py_ssize_t i = 0; i < nslots; i++) {
        Slot *s = &c->slots[i];
        int64_t key = keys[i];
        s->key = key;
        s->is_input = (key & 1) == 0;
        s->port = s->is_input ? key / 2 : (key - 1) / 2;
        s->port_obj = PyLong_FromLongLong((long long)s->port);
        if (s->port_obj == NULL) {
            PyMem_Free(keys);
            return -1;
        }
        PyObject *bmap = s->is_input ? c->in_bounds_map : c->out_bounds_map;
        PyObject *rmap = s->is_input ? c->in_refs_map : c->out_refs_map;
        PyObject *bounds = PyDict_GetItemWithError(bmap, s->port_obj);
        if (bounds == NULL && PyErr_Occurred()) {
            PyMem_Free(keys);
            return -1;
        }
        PyObject *refs = PyDict_GetItemWithError(rmap, s->port_obj);
        if (refs == NULL && PyErr_Occurred()) {
            PyMem_Free(keys);
            return -1;
        }
        if ((bounds == NULL) != (refs == NULL)) {
            PyMem_Free(keys);
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld: bounds/refs tables out of sync",
                         (long long)s->port);
            return -1;
        }
        Py_XINCREF(bounds);
        Py_XINCREF(refs);
        s->bounds = bounds;
        s->refs = refs;
    }
    PyMem_Free(keys);
    for (Py_ssize_t i = 0; i < n; i++) {
        CEntry *e = &c->entries[i];
        e->in_slot = find_slot(c, e->src * 2) - c->slots;
        e->out_slot = find_slot(c, e->dst * 2 + 1) - c->slots;
    }
    c->dqs = (DQueue *)PyMem_Calloc((size_t)nslots, sizeof(DQueue));
    if (c->dqs == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* The scheduling loop                                                 */
/* ------------------------------------------------------------------ */

static int
run_schedule(Ctx *c)
{
    if (seed_events(c) < 0)
        return -1;

    /* First pass: every entry, in consideration order, at the origin. */
    int origin = c->has_established;
    for (Py_ssize_t i = 0; i < c->nentries; i++) {
        CEntry *e = &c->entries[i];
        Slot *si = &c->slots[e->in_slot];
        if (si->taken_epoch == c->epoch) {
            if (q_insert(si, e->index) < 0)
                return -1;
            continue;
        }
        Slot *so = &c->slots[e->out_slot];
        if (so->taken_epoch == c->epoch) {
            if (q_insert(so, e->index) < 0)
                return -1;
            continue;
        }
        if (examine(c, e, c->start_time, origin) < 0)
            return -1;
    }

    while (c->outstanding > 0) {
        if (c->hlen == 0) {
            PyErr_Format(PyExc_RuntimeError,
                         "coflow %S: demand left but no future release",
                         c->coflow_id);
            return -1;
        }
        Event ev = heap_pop(c);
        double t = ev.t;
        double horizon = t + c->eps;
        origin = c->has_established && fabs(t - c->start_time) <= c->eps;
        c->epoch++;   /* fresh taken/released sets for this batch */
        c->ndq = 0;
        collect_key(c, ev.src * 2);
        collect_key(c, ev.dst * 2 + 1);
        if (c->hlen && c->heap[0].t <= horizon) {
            /* Several circuits release within tolerance: wake the whole
             * batch of freed port queues. */
            while (c->hlen && c->heap[0].t <= horizon) {
                Event e2 = heap_pop(c);
                collect_key(c, e2.src * 2);
                collect_key(c, e2.dst * 2 + 1);
            }
        }
        if (c->ndq == 0)
            continue;
        if (c->ndq == 1) {
            /* One port queue woke up: examine in order until the port is
             * taken again; the untouched suffix goes back wholesale. */
            DQueue *d = &c->dqs[0];
            Slot *qs = d->slot;
            while (d->pos < d->len && qs->taken_epoch != c->epoch) {
                int32_t ei = d->data[d->pos++];
                CEntry *e = &c->entries[ei];
                Py_ssize_t other = qs->is_input ? e->out_slot : e->in_slot;
                if (c->slots[other].taken_epoch == c->epoch) {
                    if (q_insert(&c->slots[other], ei) < 0)
                        return -1;
                }
                else if (examine(c, e, t, origin) < 0)
                    return -1;
            }
            if (d->pos < d->len &&
                q_reattach(qs, d->data + d->pos, d->len - d->pos) < 0)
                return -1;
        }
        else {
            /* Several ports released within tolerance: interleave their
             * queues in global consideration order (order indices are
             * unique, so scanning for the minimum head reproduces the
             * heads-heap selection sequence). */
            for (;;) {
                Py_ssize_t best = -1;
                int32_t best_head = 0;
                for (Py_ssize_t j = 0; j < c->ndq; j++) {
                    DQueue *d = &c->dqs[j];
                    if (!d->active)
                        continue;
                    int32_t head = d->data[d->pos];
                    if (best < 0 || head < best_head) {
                        best = j;
                        best_head = head;
                    }
                }
                if (best < 0)
                    break;
                DQueue *d = &c->dqs[best];
                Slot *qs = d->slot;
                if (qs->taken_epoch == c->epoch) {
                    /* Port re-taken this batch: the rest of this queue is
                     * provably blocked; park it wholesale. */
                    if (q_reattach(qs, d->data + d->pos, d->len - d->pos) < 0)
                        return -1;
                    d->active = 0;
                    continue;
                }
                int32_t ei = d->data[d->pos++];
                if (d->pos >= d->len)
                    d->active = 0;
                CEntry *e = &c->entries[ei];
                Py_ssize_t other = qs->is_input ? e->out_slot : e->in_slot;
                if (c->slots[other].taken_epoch == c->epoch) {
                    if (q_insert(&c->slots[other], ei) < 0)
                        return -1;
                }
                else if (examine(c, e, t, origin) < 0)
                    return -1;
            }
        }
        for (Py_ssize_t j = 0; j < c->ndq; j++) {
            PyMem_Free(c->dqs[j].data);
            c->dqs[j].data = NULL;
        }
        c->ndq = 0;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Entry point                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
native_schedule_demand(PyObject *self, PyObject *args)
{
    PyObject *prt, *res_type, *coflow_id, *entries_list, *out_list;
    double start_time, delta, eps;
    int has_established;
    if (!PyArg_ParseTuple(args, "OOOdddpO!O!:schedule_demand", &prt, &res_type,
                          &coflow_id, &start_time, &delta, &eps,
                          &has_established, &PyList_Type, &entries_list,
                          &PyList_Type, &out_list))
        return NULL;
    if (!PyType_Check(res_type)) {
        PyErr_SetString(PyExc_TypeError, "res_type must be a class");
        return NULL;
    }
    Ctx c;
    memset(&c, 0, sizeof(Ctx));
    int rv = ctx_init(&c, prt, res_type, coflow_id, start_time, delta, eps,
                      has_established, entries_list, out_list);
    if (rv == 0)
        rv = run_schedule(&c);
    ctx_free(&c);
    if (rv < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef native_methods[] = {
    {"schedule_demand", native_schedule_demand, METH_VARARGS,
     "schedule_demand(prt, reservation_cls, coflow_id, start_time, delta, "
     "eps, has_established, entries, out_reservations)\n\n"
     "Compiled twin of SunflowScheduler's event-driven scheduling loop.\n"
     "Mutates the PRT and appends the planned Reservation objects to\n"
     "out_reservations, bit-identically to the pure-Python loop."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native",
    "Compiled Sunflow planner kernel (see repro/core/sunflow.py).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
#define INTERN(var, s)                                                        \
    do {                                                                      \
        var = PyUnicode_InternFromString(s);                                  \
        if (var == NULL)                                                      \
            return NULL;                                                      \
    } while (0)
    INTERN(str__in_bounds, "_in_bounds");
    INTERN(str__in_refs, "_in_refs");
    INTERN(str__out_bounds, "_out_bounds");
    INTERN(str__out_refs, "_out_refs");
    INTERN(str__reservations, "_reservations");
    INTERN(str__ends, "_ends");
    INTERN(str__ends_sorted, "_ends_sorted");
    INTERN(str_insert, "insert");
    INTERN(str_append, "append");
    INTERN(str_src, "src");
    INTERN(str_dst, "dst");
    INTERN(str_start, "start");
    INTERN(str_end, "end");
    INTERN(str_coflow_id, "coflow_id");
    INTERN(str_setup, "setup");
#undef INTERN
    typecode_d = PyUnicode_InternFromString("d");
    typecode_q = PyUnicode_InternFromString("q");
    if (typecode_d == NULL || typecode_q == NULL)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (empty_tuple == NULL)
        return NULL;
    PyObject *array_mod = PyImport_ImportModule("array");
    if (array_mod == NULL)
        return NULL;
    array_type = PyObject_GetAttrString(array_mod, "array");
    Py_DECREF(array_mod);
    if (array_type == NULL)
        return NULL;
    PyObject *mod = PyModule_Create(&native_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "LAYOUT_VERSION", NATIVE_LAYOUT_VERSION) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
