/* Native planner kernel: the `SunflowScheduler.schedule_demand` hot loop.
 *
 * This module is the compiled twin of the event-driven scheduling loop in
 * `repro/core/sunflow.py` (`SunflowScheduler._plan_python`).  It operates
 * directly on the PortReservationTable's struct-of-arrays storage — the
 * per-port `array('d')` interleaved boundary arrays and `array('q')`
 * journal-ref arrays documented in `repro/core/prt.py` — through the
 * buffer protocol, so no port timeline is copied across the Python/C
 * boundary.  Raw boundary pointers are cached per port and invalidated
 * after this module's own inserts; that is sound because the scheduler
 * holds the GIL throughout and nothing else mutates the table during a
 * `schedule_demand` call.  Buffers are released *before* any
 * `array.insert` call (arrays refuse to resize while exporting a buffer).
 *
 * Bitwise contract: every float expression is kept verbatim from the
 * Python loop — same operand order, double precision throughout, and the
 * extension is compiled with `-ffp-contract=off` so no FMA contraction
 * can change a rounding.  The differential suites in
 * `tests/kernels/test_native_planner.py` fuzz this module against the
 * Python loop and require byte-identical reservations.
 *
 * Structural liberties that provably cannot change the output:
 *   - seed events are sorted + uniqued instead of `list(set(...))` +
 *     `heapify` (a sorted array is a valid min-heap, and the heap's pop
 *     order over distinct elements is its total order regardless of the
 *     internal arrangement);
 *   - the per-batch "taken"/"released" sets are epoch stamps on port
 *     slots instead of Python sets (membership-equivalent);
 *   - the multi-queue interleave scans queue heads for the minimum
 *     order index instead of keeping a heads heap (order indices are
 *     unique, so the selection sequence is identical).
 *
 * `LAYOUT_VERSION` must match `repro.core.prt.PRT_LAYOUT_VERSION`; the
 * dispatcher in `core/sunflow.py` refuses to use a stale build.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#include <math.h>
#include <stdint.h>
#include <string.h>

#define NATIVE_LAYOUT_VERSION 1

/* Interned attribute/method names, created once at module init. */
static PyObject *str__in_bounds, *str__in_refs, *str__out_bounds,
    *str__out_refs, *str__reservations, *str__ends, *str__ends_sorted,
    *str_insert, *str_append, *str_frombytes, *str_src, *str_dst, *str_start,
    *str_end, *str_coflow_id, *str_setup;
static PyObject *array_type;     /* array.array */
static PyObject *typecode_d, *typecode_q;
static PyObject *empty_tuple;

/* ------------------------------------------------------------------ */
/* Data structures                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t key;              /* input p -> 2p, output p -> 2p + 1 */
    int64_t port;
    int is_input;
    PyObject *port_obj;       /* PyLong(port), strong */
    PyObject *bounds;         /* array('d') or NULL when absent from the dict */
    PyObject *refs;           /* array('q') or NULL */
    PyObject *bounds_insert;  /* cached bound methods, lazy */
    PyObject *refs_insert;
    double *bdata;            /* cached raw boundary doubles */
    Py_ssize_t blen;          /* number of doubles */
    int bvalid;
    int64_t taken_epoch;      /* == ctx epoch: port taken this batch */
    int64_t rel_epoch;        /* == ctx epoch: already collected this batch */
    int32_t *q;               /* waiting entry indices, sorted ascending */
    Py_ssize_t qlen, qcap;
} Slot;

typedef struct {
    int64_t src, dst;
    double remaining;
    int has_est;
    double setup_left;
    double anchor;            /* NaN encodes "no anchor" */
    Py_ssize_t in_slot, out_slot;
    int32_t index;            /* == order_index (list position) */
} CEntry;

typedef struct {
    double t;
    int64_t src, dst;
} Event;

typedef struct {
    Slot *slot;
    int32_t *data;            /* detached queue (stolen from the slot) */
    Py_ssize_t len, pos;
    int active;
} DQueue;

/* Offsets of the Reservation __slots__, resolved once per call from the
 * class's member descriptors; when the class is not a plain slots
 * dataclass (offs_ok == 0) construction falls back to PyObject_SetAttr. */
typedef struct {
    Py_ssize_t start, end, src, dst, coflow_id, setup;
} ResOffsets;

typedef struct {
    PyObject *prt;            /* borrowed */
    PyObject *res_type;       /* borrowed */
    PyObject *coflow_id;      /* borrowed */
    PyObject *out_list;       /* borrowed */
    double start_time, delta, eps;
    int has_established;
    PyObject *in_bounds_map, *in_refs_map;    /* strong */
    PyObject *out_bounds_map, *out_refs_map;  /* strong */
    PyObject *journal;        /* list, strong */
    PyObject *ends;           /* array('d'), strong */
    PyObject *ends_append;    /* lazy, strong */
    PyObject *delta_obj;      /* PyFloat(delta), strong */
    int ends_dirty;
    Slot *slots;
    Py_ssize_t nslots;
    CEntry *entries;
    Py_ssize_t nentries;
    Event *heap;
    Py_ssize_t hlen, hcap;
    Py_ssize_t outstanding;
    int64_t epoch;
    DQueue *dqs;              /* per-batch detached queues */
    Py_ssize_t ndq;
    ResOffsets offs;
    int offs_ok;
} Ctx;

/* ------------------------------------------------------------------ */
/* Bisect twins (identical semantics to the bisect module)             */
/* ------------------------------------------------------------------ */

static inline Py_ssize_t
bisect_right_d(const double *a, Py_ssize_t n, double x)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (x < a[mid])
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

static inline Py_ssize_t
bisect_left_d(const double *a, Py_ssize_t n, double x)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (a[mid] < x)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* ------------------------------------------------------------------ */
/* Event heap: lexicographic (t, src, dst), matching tuple comparison  */
/* ------------------------------------------------------------------ */

static inline int
ev_lt(const Event *a, const Event *b)
{
    if (a->t != b->t)
        return a->t < b->t;
    if (a->src != b->src)
        return a->src < b->src;
    return a->dst < b->dst;
}

static int
ev_qsort_cmp(const void *pa, const void *pb)
{
    const Event *a = (const Event *)pa, *b = (const Event *)pb;
    if (a->t < b->t) return -1;
    if (a->t > b->t) return 1;
    if (a->src != b->src) return a->src < b->src ? -1 : 1;
    if (a->dst != b->dst) return a->dst < b->dst ? -1 : 1;
    return 0;
}

static int
heap_reserve(Ctx *c, Py_ssize_t need)
{
    if (need <= c->hcap)
        return 0;
    Py_ssize_t cap = c->hcap ? c->hcap : 16;
    while (cap < need)
        cap += cap;
    Event *h = (Event *)PyMem_Realloc(c->heap, (size_t)cap * sizeof(Event));
    if (h == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    c->heap = h;
    c->hcap = cap;
    return 0;
}

static int
heap_push(Ctx *c, Event ev)
{
    if (heap_reserve(c, c->hlen + 1) < 0)
        return -1;
    Event *h = c->heap;
    Py_ssize_t i = c->hlen++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (ev_lt(&ev, &h[parent])) {
            h[i] = h[parent];
            i = parent;
        }
        else
            break;
    }
    h[i] = ev;
    return 0;
}

static Event
heap_pop(Ctx *c)
{
    Event *h = c->heap;
    Event top = h[0];
    Event last = h[--c->hlen];
    Py_ssize_t n = c->hlen;
    if (n > 0) {
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t l = 2 * i + 1;
            if (l >= n)
                break;
            Py_ssize_t m = l;
            if (l + 1 < n && ev_lt(&h[l + 1], &h[l]))
                m = l + 1;
            if (ev_lt(&h[m], &last)) {
                h[i] = h[m];
                i = m;
            }
            else
                break;
        }
        h[i] = last;
    }
    return top;
}

/* ------------------------------------------------------------------ */
/* Slots                                                               */
/* ------------------------------------------------------------------ */

static Slot *
find_slot(Ctx *c, int64_t key)
{
    Py_ssize_t lo = 0, hi = c->nslots;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (c->slots[mid].key < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < c->nslots && c->slots[lo].key == key)
        return &c->slots[lo];
    return NULL;
}

/* Refresh the cached raw boundary pointer.  The buffer is released
 * immediately — the pointer stays valid until the array resizes, which
 * only this module's own inserts can cause (they clear `bvalid`). */
static int
slot_refresh(Slot *s)
{
    if (s->bounds == NULL) {
        s->bdata = NULL;
        s->blen = 0;
        s->bvalid = 1;
        return 0;
    }
    Py_buffer view;
    if (PyObject_GetBuffer(s->bounds, &view, PyBUF_SIMPLE) < 0)
        return -1;
    s->bdata = (double *)view.buf;
    s->blen = (Py_ssize_t)(view.len / (Py_ssize_t)sizeof(double));
    PyBuffer_Release(&view);
    s->bvalid = 1;
    return 0;
}

/* Sorted insert into a slot's waiting queue (== bisect.insort by
 * order_index; entry indices equal order indices). */
static int
q_insert(Slot *s, int32_t v)
{
    if (s->qlen == s->qcap) {
        Py_ssize_t cap = s->qcap ? s->qcap * 2 : 8;
        int32_t *q = (int32_t *)PyMem_Realloc(s->q, (size_t)cap * sizeof(int32_t));
        if (q == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        s->q = q;
        s->qcap = cap;
    }
    if (s->qlen == 0 || s->q[s->qlen - 1] < v) {
        s->q[s->qlen++] = v;
        return 0;
    }
    Py_ssize_t lo = 0, hi = s->qlen;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (s->q[mid] < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(s->q + lo + 1, s->q + lo, (size_t)(s->qlen - lo) * sizeof(int32_t));
    s->q[lo] = v;
    s->qlen++;
    return 0;
}

/* Merge an unexamined (sorted) detached-queue suffix back into the
 * slot's waiting queue (the `reattach` merge; both runs sorted and
 * disjoint, so a two-pointer merge reproduces the Timsort result). */
static int
q_reattach(Slot *s, const int32_t *data, Py_ssize_t n)
{
    if (n == 0)
        return 0;
    if (s->qlen == 0) {
        if (s->qcap < n) {
            int32_t *q = (int32_t *)PyMem_Realloc(s->q, (size_t)n * sizeof(int32_t));
            if (q == NULL) {
                PyErr_NoMemory();
                return -1;
            }
            s->q = q;
            s->qcap = n;
        }
        memcpy(s->q, data, (size_t)n * sizeof(int32_t));
        s->qlen = n;
        return 0;
    }
    Py_ssize_t total = s->qlen + n;
    int32_t *merged = (int32_t *)PyMem_Malloc((size_t)total * sizeof(int32_t));
    if (merged == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t i = 0, j = 0, k = 0;
    while (i < n && j < s->qlen)
        merged[k++] = data[i] < s->q[j] ? data[i++] : s->q[j++];
    while (i < n)
        merged[k++] = data[i++];
    while (j < s->qlen)
        merged[k++] = s->q[j++];
    PyMem_Free(s->q);
    s->q = merged;
    s->qlen = total;
    s->qcap = total;
    return 0;
}

/* Create the port's bounds/refs arrays and publish them in the PRT
 * dicts, mirroring the `ib is None` branch of the Python loop. */
static int
slot_create_arrays(Ctx *c, Slot *s)
{
    PyObject *bounds = PyObject_CallFunctionObjArgs(array_type, typecode_d, NULL);
    if (bounds == NULL)
        return -1;
    PyObject *refs = PyObject_CallFunctionObjArgs(array_type, typecode_q, NULL);
    if (refs == NULL) {
        Py_DECREF(bounds);
        return -1;
    }
    PyObject *bmap = s->is_input ? c->in_bounds_map : c->out_bounds_map;
    PyObject *rmap = s->is_input ? c->in_refs_map : c->out_refs_map;
    if (PyDict_SetItem(bmap, s->port_obj, bounds) < 0 ||
        PyDict_SetItem(rmap, s->port_obj, refs) < 0) {
        Py_DECREF(bounds);
        Py_DECREF(refs);
        return -1;
    }
    s->bounds = bounds;   /* keep the strong references */
    s->refs = refs;
    s->bdata = NULL;
    s->blen = 0;
    s->bvalid = 1;
    return 0;
}

/* bounds.insert(k, end); bounds.insert(k, t); refs.insert(k >> 1, idx) */
static int
slot_insert(Ctx *c, Slot *s, Py_ssize_t k, PyObject *t_obj, PyObject *end_obj,
            PyObject *idx_obj)
{
    if (s->bounds == NULL && slot_create_arrays(c, s) < 0)
        return -1;
    if (s->bounds_insert == NULL) {
        s->bounds_insert = PyObject_GetAttr(s->bounds, str_insert);
        if (s->bounds_insert == NULL)
            return -1;
    }
    if (s->refs_insert == NULL) {
        if (s->refs == NULL) {
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld has bounds but no refs array",
                         (long long)s->port);
            return -1;
        }
        s->refs_insert = PyObject_GetAttr(s->refs, str_insert);
        if (s->refs_insert == NULL)
            return -1;
    }
    PyObject *kobj = PyLong_FromSsize_t(k);
    if (kobj == NULL)
        return -1;
    PyObject *jobj = PyLong_FromSsize_t(k >> 1);
    if (jobj == NULL) {
        Py_DECREF(kobj);
        return -1;
    }
    int rv = -1;
    PyObject *argv[2];
    argv[0] = kobj;
    argv[1] = end_obj;
    PyObject *r = PyObject_Vectorcall(s->bounds_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    argv[1] = t_obj;
    r = PyObject_Vectorcall(s->bounds_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    argv[0] = jobj;
    argv[1] = idx_obj;
    r = PyObject_Vectorcall(s->refs_insert, argv, 2, NULL);
    if (r == NULL)
        goto done;
    Py_DECREF(r);
    rv = 0;
done:
    Py_DECREF(kobj);
    Py_DECREF(jobj);
    s->bvalid = 0;   /* the insert may have reallocated the array */
    return rv;
}

/* ------------------------------------------------------------------ */
/* PRT query twins                                                     */
/* ------------------------------------------------------------------ */

/* `PortReservationTable.release_of_block`, on the cached buffers.  Only
 * the `on_input` half of the return value is used by the caller. */
static int
release_of_block_c(const Ctx *c, const Slot *si, const Slot *so, double t,
                   double t_next)
{
    double end = HUGE_VAL;
    int on_input = 1;
    double tol = t - c->eps;
    double start_tol = t_next + c->eps;
    if (si->blen) {
        Py_ssize_t i = bisect_left_d(si->bdata, si->blen, tol);
        if (i & 1)
            i++;
        if (i < si->blen && si->bdata[i] <= start_tol) {
            end = si->bdata[i + 1];
            on_input = 1;
        }
    }
    if (so->blen) {
        Py_ssize_t i = bisect_left_d(so->bdata, so->blen, tol);
        if (i & 1)
            i++;
        if (i < so->blen && so->bdata[i] <= start_tol) {
            double candidate = so->bdata[i + 1];
            if (candidate < end) {
                end = candidate;
                on_input = 0;
            }
        }
    }
    return on_input;
}

/* ------------------------------------------------------------------ */
/* Reservation construction + journal insert                           */
/* ------------------------------------------------------------------ */

static int
make_reservation(Ctx *c, Slot *si, Slot *so, Py_ssize_t ki, Py_ssize_t ko,
                 double t, double end, double setup)
{
    int rv = -1;
    PyObject *res = NULL, *t_obj = NULL, *end_obj = NULL, *setup_obj = NULL,
             *idx_obj = NULL, *r = NULL;
    PyTypeObject *tp = (PyTypeObject *)c->res_type;
    res = tp->tp_new(tp, empty_tuple, NULL);
    if (res == NULL)
        goto done;
    t_obj = PyFloat_FromDouble(t);
    if (t_obj == NULL)
        goto done;
    end_obj = PyFloat_FromDouble(end);
    if (end_obj == NULL)
        goto done;
    if (setup == c->delta) {
        setup_obj = c->delta_obj;
        Py_INCREF(setup_obj);
    }
    else {
        setup_obj = PyFloat_FromDouble(setup);
        if (setup_obj == NULL)
            goto done;
    }
    if (c->offs_ok) {
        /* Fresh slots are NULL after tp_new, so plain stores suffice. */
        char *base = (char *)res;
        Py_INCREF(t_obj);
        *(PyObject **)(base + c->offs.start) = t_obj;
        Py_INCREF(end_obj);
        *(PyObject **)(base + c->offs.end) = end_obj;
        Py_INCREF(si->port_obj);
        *(PyObject **)(base + c->offs.src) = si->port_obj;
        Py_INCREF(so->port_obj);
        *(PyObject **)(base + c->offs.dst) = so->port_obj;
        Py_INCREF(c->coflow_id);
        *(PyObject **)(base + c->offs.coflow_id) = c->coflow_id;
        Py_INCREF(setup_obj);
        *(PyObject **)(base + c->offs.setup) = setup_obj;
    }
    else if (PyObject_SetAttr(res, str_start, t_obj) < 0 ||
             PyObject_SetAttr(res, str_end, end_obj) < 0 ||
             PyObject_SetAttr(res, str_src, si->port_obj) < 0 ||
             PyObject_SetAttr(res, str_dst, so->port_obj) < 0 ||
             PyObject_SetAttr(res, str_coflow_id, c->coflow_id) < 0 ||
             PyObject_SetAttr(res, str_setup, setup_obj) < 0)
        goto done;
    idx_obj = PyLong_FromSsize_t(PyList_GET_SIZE(c->journal));
    if (idx_obj == NULL)
        goto done;
    if (slot_insert(c, si, ki, t_obj, end_obj, idx_obj) < 0)
        goto done;
    if (slot_insert(c, so, ko, t_obj, end_obj, idx_obj) < 0)
        goto done;
    if (c->ends_append == NULL) {
        c->ends_append = PyObject_GetAttr(c->ends, str_append);
        if (c->ends_append == NULL)
            goto done;
    }
    r = PyObject_Vectorcall(c->ends_append, &end_obj, 1, NULL);
    if (r == NULL)
        goto done;
    if (!c->ends_dirty) {
        if (PyObject_SetAttr(c->prt, str__ends_sorted, Py_None) < 0)
            goto done;
        c->ends_dirty = 1;
    }
    if (PyList_Append(c->journal, res) < 0)
        goto done;
    if (PyList_Append(c->out_list, res) < 0)
        goto done;
    rv = 0;
done:
    Py_XDECREF(res);
    Py_XDECREF(t_obj);
    Py_XDECREF(end_obj);
    Py_XDECREF(setup_obj);
    Py_XDECREF(idx_obj);
    Py_XDECREF(r);
    return rv;
}

/* ------------------------------------------------------------------ */
/* examine(): one entry attempt (the inlined `_make_reservation`)      */
/* ------------------------------------------------------------------ */

static int
examine(Ctx *c, CEntry *e, double t, int origin)
{
    Slot *si = &c->slots[e->in_slot];
    Slot *so = &c->slots[e->out_slot];
    if (!si->bvalid && slot_refresh(si) < 0)
        return -1;
    if (!so->bvalid && slot_refresh(so) < 0)
        return -1;
    double teps = t + c->eps;
    Py_ssize_t ki = 0, ko = 0;
    /* Covering probes: one bisect per port; odd parity means taken. */
    if (si->blen) {
        ki = bisect_right_d(si->bdata, si->blen, teps);
        if (ki & 1)
            return q_insert(si, e->index);
    }
    if (so->blen) {
        ko = bisect_right_d(so->bdata, so->blen, teps);
        if (ko & 1)
            return q_insert(so, e->index);
    }
    /* Both ports free: gap runs to the next reserved start on either. */
    double t_next = HUGE_VAL;
    if (ki < si->blen)
        t_next = si->bdata[ki];
    if (ko < so->blen && so->bdata[ko] < t_next)
        t_next = so->bdata[ko];
    double setup;
    double anchor = NAN;
    if (origin && e->has_est) {
        anchor = e->anchor;
        setup = e->setup_left < c->delta ? e->setup_left : c->delta;
    }
    else
        setup = c->delta;
    double max_length = t_next - t;
    if (max_length <= setup + c->eps) {
        int on_input = release_of_block_c(c, si, so, t, t_next);
        return q_insert(on_input ? si : so, e->index);
    }
    double desired_length = setup + e->remaining;
    double length, end;
    if (desired_length < max_length) {
        length = desired_length;
        end = t + length;
        if (!isnan(anchor) && fabs(end - anchor) <= c->eps)
            end = anchor;
    }
    else {
        length = max_length;
        end = t_next;
    }
    if (make_reservation(c, si, so, ki, ko, t, end, setup) < 0)
        return -1;
    si->taken_epoch = c->epoch;
    so->taken_epoch = c->epoch;
    Event ev = {end, e->src, e->dst};
    if (heap_push(c, ev) < 0)
        return -1;
    double left = desired_length - length;
    e->remaining = left;
    if (left <= c->eps) {
        c->outstanding--;
        return 0;
    }
    /* Truncated: wait out the entry's own input port. */
    return q_insert(si, e->index);
}

/* ------------------------------------------------------------------ */
/* Release-event seeding                                               */
/* ------------------------------------------------------------------ */

static int
seed_events(Ctx *c)
{
    Py_ssize_t journal_len = PyList_GET_SIZE(c->journal);
    for (Py_ssize_t sidx = 0; sidx < c->nslots; sidx++) {
        Slot *s = &c->slots[sidx];
        if (slot_refresh(s) < 0)
            return -1;
        if (s->blen == 0)
            continue;
        Py_ssize_t k = bisect_right_d(s->bdata, s->blen, c->start_time + c->eps) >> 1;
        Py_ssize_t nres = s->blen >> 1;
        if (k >= nres)
            continue;
        Py_ssize_t count = nres - k;
        Py_buffer view;
        if (PyObject_GetBuffer(s->refs, &view, PyBUF_SIMPLE) < 0)
            return -1;
        if ((Py_ssize_t)(view.len / (Py_ssize_t)sizeof(int64_t)) < nres) {
            PyBuffer_Release(&view);
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld: refs shorter than bounds",
                         (long long)s->port);
            return -1;
        }
        int64_t *refs = (int64_t *)PyMem_Malloc((size_t)count * sizeof(int64_t));
        if (refs == NULL) {
            PyBuffer_Release(&view);
            PyErr_NoMemory();
            return -1;
        }
        memcpy(refs, (int64_t *)view.buf + k, (size_t)count * sizeof(int64_t));
        PyBuffer_Release(&view);
        if (heap_reserve(c, c->hlen + count) < 0) {
            PyMem_Free(refs);
            return -1;
        }
        for (Py_ssize_t i = 0; i < count; i++) {
            int64_t ref = refs[i];
            if (ref < 0 || ref >= journal_len) {
                PyMem_Free(refs);
                PyErr_Format(PyExc_RuntimeError,
                             "PRT port %lld: journal ref %lld out of range",
                             (long long)s->port, (long long)ref);
                return -1;
            }
            PyObject *item = PyList_GET_ITEM(c->journal, ref);
            PyObject *peer_obj =
                PyObject_GetAttr(item, s->is_input ? str_dst : str_src);
            if (peer_obj == NULL) {
                PyMem_Free(refs);
                return -1;
            }
            long long peer = PyLong_AsLongLong(peer_obj);
            Py_DECREF(peer_obj);
            if (peer == -1 && PyErr_Occurred()) {
                PyMem_Free(refs);
                return -1;
            }
            Event ev;
            ev.t = s->bdata[2 * (k + i) + 1];
            if (s->is_input) {
                ev.src = s->port;
                ev.dst = peer;
            }
            else {
                ev.src = peer;
                ev.dst = s->port;
            }
            c->heap[c->hlen++] = ev;
        }
        PyMem_Free(refs);
    }
    /* `list(set(seeded))` + heapify, deterministically: sort by
     * (t, src, dst) and drop exact duplicates (a circuit touching both a
     * used input and a used output seeds the same triple twice).  A
     * sorted array is a valid min-heap, and over distinct elements the
     * pop order is the total order either way. */
    if (c->hlen > 1) {
        qsort(c->heap, (size_t)c->hlen, sizeof(Event), ev_qsort_cmp);
        Py_ssize_t w = 1;
        for (Py_ssize_t i = 1; i < c->hlen; i++) {
            Event *prev = &c->heap[w - 1], *cur = &c->heap[i];
            if (cur->t == prev->t && cur->src == prev->src &&
                cur->dst == prev->dst)
                continue;
            c->heap[w++] = *cur;
        }
        c->hlen = w;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Batch queue collection                                              */
/* ------------------------------------------------------------------ */

static void
collect_key(Ctx *c, int64_t key)
{
    Slot *s = find_slot(c, key);
    if (s == NULL || s->rel_epoch == c->epoch)
        return;
    s->rel_epoch = c->epoch;
    if (s->qlen == 0)
        return;
    DQueue *d = &c->dqs[c->ndq++];
    d->slot = s;
    d->data = s->q;
    d->len = s->qlen;
    d->pos = 0;
    d->active = 1;
    s->q = NULL;        /* steal: the slot starts a fresh queue */
    s->qlen = 0;
    s->qcap = 0;
}

/* ------------------------------------------------------------------ */
/* Context setup / teardown                                            */
/* ------------------------------------------------------------------ */

static void
ctx_free(Ctx *c)
{
    if (c->slots != NULL) {
        for (Py_ssize_t i = 0; i < c->nslots; i++) {
            Slot *s = &c->slots[i];
            Py_XDECREF(s->port_obj);
            Py_XDECREF(s->bounds);
            Py_XDECREF(s->refs);
            Py_XDECREF(s->bounds_insert);
            Py_XDECREF(s->refs_insert);
            PyMem_Free(s->q);
        }
        PyMem_Free(c->slots);
    }
    if (c->dqs != NULL) {
        for (Py_ssize_t i = 0; i < c->ndq; i++)
            PyMem_Free(c->dqs[i].data);
        PyMem_Free(c->dqs);
    }
    PyMem_Free(c->entries);
    PyMem_Free(c->heap);
    Py_XDECREF(c->in_bounds_map);
    Py_XDECREF(c->in_refs_map);
    Py_XDECREF(c->out_bounds_map);
    Py_XDECREF(c->out_refs_map);
    Py_XDECREF(c->journal);
    Py_XDECREF(c->ends);
    Py_XDECREF(c->ends_append);
    Py_XDECREF(c->delta_obj);
}

/* Resolve one __slots__ member offset; -1 (without an exception) when the
 * attribute is not a plain object-slot member descriptor. */
static Py_ssize_t
member_offset(PyTypeObject *tp, PyObject *name)
{
    Py_ssize_t off = -1;
    PyObject *descr = PyObject_GetAttr((PyObject *)tp, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *def = ((PyMemberDescrObject *)descr)->d_member;
        if (def != NULL && def->type == T_OBJECT_EX && def->flags == 0)
            off = def->offset;
    }
    Py_DECREF(descr);
    return off;
}

static void
resolve_offsets(Ctx *c)
{
    PyTypeObject *tp = (PyTypeObject *)c->res_type;
    c->offs.start = member_offset(tp, str_start);
    c->offs.end = member_offset(tp, str_end);
    c->offs.src = member_offset(tp, str_src);
    c->offs.dst = member_offset(tp, str_dst);
    c->offs.coflow_id = member_offset(tp, str_coflow_id);
    c->offs.setup = member_offset(tp, str_setup);
    c->offs_ok = c->offs.start >= 0 && c->offs.end >= 0 && c->offs.src >= 0 &&
                 c->offs.dst >= 0 && c->offs.coflow_id >= 0 &&
                 c->offs.setup >= 0;
}

static int
int64_key_cmp(const void *pa, const void *pb)
{
    int64_t a = *(const int64_t *)pa, b = *(const int64_t *)pb;
    return a < b ? -1 : (a > b ? 1 : 0);
}

/* Fetch and type-check the PRT storage attributes plus per-call
 * constants; shared by the tuple-list and packed-columns entry points. */
static int
ctx_attach(Ctx *c, PyObject *prt, PyObject *res_type, PyObject *coflow_id,
           double start_time, double delta, double eps, int has_established,
           PyObject *out_list)
{
    c->prt = prt;
    c->res_type = res_type;
    c->coflow_id = coflow_id;
    c->out_list = out_list;
    c->start_time = start_time;
    c->delta = delta;
    c->eps = eps;
    c->has_established = has_established;
    c->epoch = 1;

    c->in_bounds_map = PyObject_GetAttr(prt, str__in_bounds);
    c->in_refs_map = PyObject_GetAttr(prt, str__in_refs);
    c->out_bounds_map = PyObject_GetAttr(prt, str__out_bounds);
    c->out_refs_map = PyObject_GetAttr(prt, str__out_refs);
    c->journal = PyObject_GetAttr(prt, str__reservations);
    c->ends = PyObject_GetAttr(prt, str__ends);
    if (c->in_bounds_map == NULL || c->in_refs_map == NULL ||
        c->out_bounds_map == NULL || c->out_refs_map == NULL ||
        c->journal == NULL || c->ends == NULL)
        return -1;
    if (!PyDict_Check(c->in_bounds_map) || !PyDict_Check(c->in_refs_map) ||
        !PyDict_Check(c->out_bounds_map) || !PyDict_Check(c->out_refs_map) ||
        !PyList_Check(c->journal)) {
        PyErr_SetString(PyExc_TypeError,
                        "PRT storage layout does not match the native kernel");
        return -1;
    }
    c->delta_obj = PyFloat_FromDouble(delta);
    if (c->delta_obj == NULL)
        return -1;
    resolve_offsets(c);
    return 0;
}

/* Build the sorted slot table (and per-entry slot indices) from the
 * already-populated c->entries array. */
static int
ctx_build_slots(Ctx *c)
{
    Py_ssize_t n = c->nentries;
    int64_t *keys = (int64_t *)PyMem_Malloc((size_t)(2 * n) * sizeof(int64_t));
    if (keys == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        keys[2 * i] = c->entries[i].src * 2;
        keys[2 * i + 1] = c->entries[i].dst * 2 + 1;
    }
    qsort(keys, (size_t)(2 * n), sizeof(int64_t), int64_key_cmp);
    Py_ssize_t nslots = 0;
    for (Py_ssize_t i = 0; i < 2 * n; i++)
        if (i == 0 || keys[i] != keys[i - 1])
            keys[nslots++] = keys[i];
    c->slots = (Slot *)PyMem_Calloc((size_t)nslots, sizeof(Slot));
    if (c->slots == NULL) {
        PyMem_Free(keys);
        PyErr_NoMemory();
        return -1;
    }
    c->nslots = nslots;
    for (Py_ssize_t i = 0; i < nslots; i++) {
        Slot *s = &c->slots[i];
        int64_t key = keys[i];
        s->key = key;
        s->is_input = (key & 1) == 0;
        s->port = s->is_input ? key / 2 : (key - 1) / 2;
        s->port_obj = PyLong_FromLongLong((long long)s->port);
        if (s->port_obj == NULL) {
            PyMem_Free(keys);
            return -1;
        }
        PyObject *bmap = s->is_input ? c->in_bounds_map : c->out_bounds_map;
        PyObject *rmap = s->is_input ? c->in_refs_map : c->out_refs_map;
        PyObject *bounds = PyDict_GetItemWithError(bmap, s->port_obj);
        if (bounds == NULL && PyErr_Occurred()) {
            PyMem_Free(keys);
            return -1;
        }
        PyObject *refs = PyDict_GetItemWithError(rmap, s->port_obj);
        if (refs == NULL && PyErr_Occurred()) {
            PyMem_Free(keys);
            return -1;
        }
        if ((bounds == NULL) != (refs == NULL)) {
            PyMem_Free(keys);
            PyErr_Format(PyExc_RuntimeError,
                         "PRT port %lld: bounds/refs tables out of sync",
                         (long long)s->port);
            return -1;
        }
        Py_XINCREF(bounds);
        Py_XINCREF(refs);
        s->bounds = bounds;
        s->refs = refs;
    }
    PyMem_Free(keys);
    for (Py_ssize_t i = 0; i < n; i++) {
        CEntry *e = &c->entries[i];
        e->in_slot = find_slot(c, e->src * 2) - c->slots;
        e->out_slot = find_slot(c, e->dst * 2 + 1) - c->slots;
    }
    c->dqs = (DQueue *)PyMem_Calloc((size_t)nslots, sizeof(DQueue));
    if (c->dqs == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    return 0;
}

static int
ctx_init(Ctx *c, PyObject *prt, PyObject *res_type, PyObject *coflow_id,
         double start_time, double delta, double eps, int has_established,
         PyObject *entries_list, PyObject *out_list)
{
    if (ctx_attach(c, prt, res_type, coflow_id, start_time, delta, eps,
                   has_established, out_list) < 0)
        return -1;
    Py_ssize_t n = PyList_GET_SIZE(entries_list);
    c->nentries = n;
    c->outstanding = n;
    if (n > INT32_MAX) {
        PyErr_SetString(PyExc_OverflowError, "too many demand entries");
        return -1;
    }
    c->entries = (CEntry *)PyMem_Calloc((size_t)n, sizeof(CEntry));
    if (c->entries == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(entries_list, i);
        if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 6) {
            PyErr_SetString(PyExc_TypeError,
                            "entries must be (src, dst, remaining, has_est, "
                            "setup_left, anchor) tuples");
            return -1;
        }
        CEntry *e = &c->entries[i];
        e->src = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 0));
        e->dst = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
        e->remaining = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 2));
        e->has_est = PyObject_IsTrue(PyTuple_GET_ITEM(item, 3));
        e->setup_left = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 4));
        e->anchor = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 5));
        e->index = (int32_t)i;
        if (PyErr_Occurred() || e->has_est < 0)
            return -1;
    }
    return ctx_build_slots(c);
}

/* ------------------------------------------------------------------ */
/* The scheduling loop                                                 */
/* ------------------------------------------------------------------ */

static int
run_schedule(Ctx *c)
{
    if (seed_events(c) < 0)
        return -1;

    /* First pass: every entry, in consideration order, at the origin. */
    int origin = c->has_established;
    for (Py_ssize_t i = 0; i < c->nentries; i++) {
        CEntry *e = &c->entries[i];
        Slot *si = &c->slots[e->in_slot];
        if (si->taken_epoch == c->epoch) {
            if (q_insert(si, e->index) < 0)
                return -1;
            continue;
        }
        Slot *so = &c->slots[e->out_slot];
        if (so->taken_epoch == c->epoch) {
            if (q_insert(so, e->index) < 0)
                return -1;
            continue;
        }
        if (examine(c, e, c->start_time, origin) < 0)
            return -1;
    }

    while (c->outstanding > 0) {
        if (c->hlen == 0) {
            PyErr_Format(PyExc_RuntimeError,
                         "coflow %S: demand left but no future release",
                         c->coflow_id);
            return -1;
        }
        Event ev = heap_pop(c);
        double t = ev.t;
        double horizon = t + c->eps;
        origin = c->has_established && fabs(t - c->start_time) <= c->eps;
        c->epoch++;   /* fresh taken/released sets for this batch */
        c->ndq = 0;
        collect_key(c, ev.src * 2);
        collect_key(c, ev.dst * 2 + 1);
        if (c->hlen && c->heap[0].t <= horizon) {
            /* Several circuits release within tolerance: wake the whole
             * batch of freed port queues. */
            while (c->hlen && c->heap[0].t <= horizon) {
                Event e2 = heap_pop(c);
                collect_key(c, e2.src * 2);
                collect_key(c, e2.dst * 2 + 1);
            }
        }
        if (c->ndq == 0)
            continue;
        if (c->ndq == 1) {
            /* One port queue woke up: examine in order until the port is
             * taken again; the untouched suffix goes back wholesale. */
            DQueue *d = &c->dqs[0];
            Slot *qs = d->slot;
            while (d->pos < d->len && qs->taken_epoch != c->epoch) {
                int32_t ei = d->data[d->pos++];
                CEntry *e = &c->entries[ei];
                Py_ssize_t other = qs->is_input ? e->out_slot : e->in_slot;
                if (c->slots[other].taken_epoch == c->epoch) {
                    if (q_insert(&c->slots[other], ei) < 0)
                        return -1;
                }
                else if (examine(c, e, t, origin) < 0)
                    return -1;
            }
            if (d->pos < d->len &&
                q_reattach(qs, d->data + d->pos, d->len - d->pos) < 0)
                return -1;
        }
        else {
            /* Several ports released within tolerance: interleave their
             * queues in global consideration order (order indices are
             * unique, so scanning for the minimum head reproduces the
             * heads-heap selection sequence). */
            for (;;) {
                Py_ssize_t best = -1;
                int32_t best_head = 0;
                for (Py_ssize_t j = 0; j < c->ndq; j++) {
                    DQueue *d = &c->dqs[j];
                    if (!d->active)
                        continue;
                    int32_t head = d->data[d->pos];
                    if (best < 0 || head < best_head) {
                        best = j;
                        best_head = head;
                    }
                }
                if (best < 0)
                    break;
                DQueue *d = &c->dqs[best];
                Slot *qs = d->slot;
                if (qs->taken_epoch == c->epoch) {
                    /* Port re-taken this batch: the rest of this queue is
                     * provably blocked; park it wholesale. */
                    if (q_reattach(qs, d->data + d->pos, d->len - d->pos) < 0)
                        return -1;
                    d->active = 0;
                    continue;
                }
                int32_t ei = d->data[d->pos++];
                if (d->pos >= d->len)
                    d->active = 0;
                CEntry *e = &c->entries[ei];
                Py_ssize_t other = qs->is_input ? e->out_slot : e->in_slot;
                if (c->slots[other].taken_epoch == c->epoch) {
                    if (q_insert(&c->slots[other], ei) < 0)
                        return -1;
                }
                else if (examine(c, e, t, origin) < 0)
                    return -1;
            }
        }
        for (Py_ssize_t j = 0; j < c->ndq; j++) {
            PyMem_Free(c->dqs[j].data);
            c->dqs[j].data = NULL;
        }
        c->ndq = 0;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Replan-transaction kernels: rollback / replay / transform           */
/*                                                                     */
/* These operate on the same struct-of-arrays storage as the planner   */
/* above but are called from `repro.core.prt` (rollback/replay) and    */
/* `repro.sim.circuit_sim` (transform_continuation).  Contract:        */
/*   - rollback raises on failure (the dispatcher has no fallback;     */
/*     removal involves no float math, so it is trivially bitwise);    */
/*   - replay returns True on success and False to decline — a decline */
/*     (conflict, foreign types, corrupt table) happens strictly       */
/*     before any mutation, so the pure-Python twin can re-run the     */
/*     transaction and raise the byte-identical error;                 */
/*   - transform_continuation returns the rebuilt head reservations,   */
/*     None when a proof obligation fails, or False to decline to the  */
/*     Python twin; it never mutates the table.                        */
/* ------------------------------------------------------------------ */

/* Highest port index the transaction kernels pack into int64 keys
 * ((src << 32) | dst); anything larger declines to Python. */
#define NATIVE_MAX_PORT ((int64_t)INT32_MAX)

typedef struct {
    PyObject *in_bounds, *in_refs, *out_bounds, *out_refs; /* dicts, strong */
    PyObject *journal;                                     /* list, strong */
    PyObject *ends;                                        /* array('d'), strong */
} PrtRefs;

static void
prt_refs_clear(PrtRefs *p)
{
    Py_XDECREF(p->in_bounds);
    Py_XDECREF(p->in_refs);
    Py_XDECREF(p->out_bounds);
    Py_XDECREF(p->out_refs);
    Py_XDECREF(p->journal);
    Py_XDECREF(p->ends);
    memset(p, 0, sizeof(PrtRefs));
}

static int
prt_refs_init(PrtRefs *p, PyObject *prt)
{
    memset(p, 0, sizeof(PrtRefs));
    p->in_bounds = PyObject_GetAttr(prt, str__in_bounds);
    p->in_refs = PyObject_GetAttr(prt, str__in_refs);
    p->out_bounds = PyObject_GetAttr(prt, str__out_bounds);
    p->out_refs = PyObject_GetAttr(prt, str__out_refs);
    p->journal = PyObject_GetAttr(prt, str__reservations);
    p->ends = PyObject_GetAttr(prt, str__ends);
    if (p->in_bounds == NULL || p->in_refs == NULL || p->out_bounds == NULL ||
        p->out_refs == NULL || p->journal == NULL || p->ends == NULL)
        goto fail;
    if (!PyDict_Check(p->in_bounds) || !PyDict_Check(p->in_refs) ||
        !PyDict_Check(p->out_bounds) || !PyDict_Check(p->out_refs) ||
        !PyList_Check(p->journal)) {
        PyErr_SetString(PyExc_TypeError,
                        "PRT storage layout does not match the native kernel");
        goto fail;
    }
    return 0;
fail:
    prt_refs_clear(p);
    return -1;
}

/* Field access on Reservation objects: through the resolved __slots__
 * offsets when the object is exactly the expected type, attribute
 * lookup otherwise.  Returns a strong reference. */
typedef struct {
    PyTypeObject *tp;
    ResOffsets offs;
    int offs_ok;
} ResReader;

static void
res_reader_init(ResReader *r, PyTypeObject *tp)
{
    r->tp = tp;
    r->offs.start = member_offset(tp, str_start);
    r->offs.end = member_offset(tp, str_end);
    r->offs.src = member_offset(tp, str_src);
    r->offs.dst = member_offset(tp, str_dst);
    r->offs.coflow_id = member_offset(tp, str_coflow_id);
    r->offs.setup = member_offset(tp, str_setup);
    r->offs_ok = r->offs.start >= 0 && r->offs.end >= 0 && r->offs.src >= 0 &&
                 r->offs.dst >= 0 && r->offs.coflow_id >= 0 &&
                 r->offs.setup >= 0;
}

static PyObject *
res_field(const ResReader *r, PyObject *item, Py_ssize_t off, PyObject *name)
{
    if (r->offs_ok && Py_TYPE(item) == r->tp) {
        PyObject *v = *(PyObject **)((char *)item + off);
        if (v != NULL) {
            Py_INCREF(v);
            return v;
        }
    }
    return PyObject_GetAttr(item, name);
}

/* Read the numeric fields of one reservation; NULL out-pointers skip
 * their field. */
static int
res_read(const ResReader *r, PyObject *item, double *start, double *end,
         int64_t *src, int64_t *dst)
{
    PyObject *v;
    if (start != NULL) {
        v = res_field(r, item, r->offs.start, str_start);
        if (v == NULL)
            return -1;
        *start = PyFloat_AsDouble(v);
        Py_DECREF(v);
        if (*start == -1.0 && PyErr_Occurred())
            return -1;
    }
    if (end != NULL) {
        v = res_field(r, item, r->offs.end, str_end);
        if (v == NULL)
            return -1;
        *end = PyFloat_AsDouble(v);
        Py_DECREF(v);
        if (*end == -1.0 && PyErr_Occurred())
            return -1;
    }
    if (src != NULL) {
        v = res_field(r, item, r->offs.src, str_src);
        if (v == NULL)
            return -1;
        *src = (int64_t)PyLong_AsLongLong(v);
        Py_DECREF(v);
        if (*src == -1 && PyErr_Occurred())
            return -1;
    }
    if (dst != NULL) {
        v = res_field(r, item, r->offs.dst, str_dst);
        if (v == NULL)
            return -1;
        *dst = (int64_t)PyLong_AsLongLong(v);
        Py_DECREF(v);
        if (*dst == -1 && PyErr_Occurred())
            return -1;
    }
    return 0;
}

/* Open-addressing set of non-negative int64 keys (circuits packed as
 * (src << 32) | dst).  Capacity is fixed at init — `expect` must bound
 * the number of adds — so inserts never rehash. */
typedef struct {
    int64_t *keys;
    size_t mask;
} ISet;

static int
iset_init(ISet *s, size_t expect)
{
    size_t cap = 16;
    while (cap < 2 * expect)
        cap <<= 1;
    s->keys = (int64_t *)PyMem_Malloc(cap * sizeof(int64_t));
    if (s->keys == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (size_t i = 0; i < cap; i++)
        s->keys[i] = -1;
    s->mask = cap - 1;
    return 0;
}

static inline size_t
iset_slot(const ISet *s, int64_t key)
{
    size_t i = (size_t)(((uint64_t)key * UINT64_C(0x9E3779B97F4A7C15)) >> 32) &
               s->mask;
    while (s->keys[i] != -1 && s->keys[i] != key)
        i = (i + 1) & s->mask;
    return i;
}

static inline int
iset_has(const ISet *s, int64_t key)
{
    return s->keys[iset_slot(s, key)] == key;
}

static inline void
iset_add(ISet *s, int64_t key)
{
    s->keys[iset_slot(s, key)] = key;
}

static void
iset_free(ISet *s)
{
    PyMem_Free(s->keys);
    s->keys = NULL;
}

/* array.array(typecode, <raw bytes>) — the constructor routes bytes
 * through frombytes(), so values land bitwise. */
static PyObject *
array_from_bytes(PyObject *typecode, const void *data, Py_ssize_t nbytes)
{
    PyObject *bytes = PyBytes_FromStringAndSize((const char *)data, nbytes);
    if (bytes == NULL)
        return NULL;
    PyObject *arr =
        PyObject_CallFunctionObjArgs(array_type, typecode, bytes, NULL);
    Py_DECREF(bytes);
    return arr;
}

/* arr[:] = array(typecode, <raw bytes>) */
static int
assign_array(PyObject *arr, PyObject *typecode, const void *data,
             Py_ssize_t nbytes)
{
    PyObject *na = array_from_bytes(typecode, data, nbytes);
    if (na == NULL)
        return -1;
    int rv = PySequence_SetSlice(arr, 0, PY_SSIZE_T_MAX, na);
    Py_DECREF(na);
    return rv;
}

/* arr.frombytes(<raw bytes>) — bitwise twin of a run of appends. */
static int
extend_array_bytes(PyObject *arr, const void *data, Py_ssize_t nbytes)
{
    PyObject *bytes = PyBytes_FromStringAndSize((const char *)data, nbytes);
    if (bytes == NULL)
        return -1;
    PyObject *r = PyObject_CallMethodObjArgs(arr, str_frombytes, bytes, NULL);
    Py_DECREF(bytes);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* PortReservationTable._strip_port: drop the `count` entries with
 * journal ref >= token — one tail slice-delete in the common case, one
 * rebuilding filter pass otherwise. */
static int
strip_port_c(PyObject *bounds, PyObject *refs, int64_t token, Py_ssize_t count)
{
    Py_buffer rview;
    if (PyObject_GetBuffer(refs, &rview, PyBUF_SIMPLE) < 0)
        return -1;
    const int64_t *rdata = (const int64_t *)rview.buf;
    Py_ssize_t n = (Py_ssize_t)(rview.len / (Py_ssize_t)sizeof(int64_t));
    Py_ssize_t j = n;
    while (j > 0 && rdata[j - 1] >= token)
        j--;
    if (n - j == count) {
        /* The undone entries form a contiguous tail. */
        PyBuffer_Release(&rview);
        if (PySequence_DelSlice(refs, j, PY_SSIZE_T_MAX) < 0)
            return -1;
        return PySequence_DelSlice(bounds, 2 * j, PY_SSIZE_T_MAX);
    }
    Py_buffer bview;
    if (PyObject_GetBuffer(bounds, &bview, PyBUF_SIMPLE) < 0) {
        PyBuffer_Release(&rview);
        return -1;
    }
    const double *bdata = (const double *)bview.buf;
    Py_ssize_t blen = (Py_ssize_t)(bview.len / (Py_ssize_t)sizeof(double));
    if (blen < 2 * n) {
        PyBuffer_Release(&bview);
        PyBuffer_Release(&rview);
        PyErr_SetString(PyExc_RuntimeError,
                        "PRT port: bounds shorter than refs during rollback");
        return -1;
    }
    /* Sized for the full table, not n - count: a corrupt count must not
     * overflow the rebuild. */
    size_t alloc = (size_t)(n > 0 ? n : 1);
    int64_t *nr = (int64_t *)PyMem_Malloc(alloc * sizeof(int64_t));
    double *nb = (double *)PyMem_Malloc(alloc * 2 * sizeof(double));
    if (nr == NULL || nb == NULL) {
        PyMem_Free(nr);
        PyMem_Free(nb);
        PyBuffer_Release(&bview);
        PyBuffer_Release(&rview);
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t w = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (rdata[i] < token) {
            nr[w] = rdata[i];
            nb[2 * w] = bdata[2 * i];
            nb[2 * w + 1] = bdata[2 * i + 1];
            w++;
        }
    }
    PyBuffer_Release(&bview);
    PyBuffer_Release(&rview);
    int rv = assign_array(bounds, typecode_d, nb,
                          (Py_ssize_t)(2 * w) * (Py_ssize_t)sizeof(double));
    if (rv == 0)
        rv = assign_array(refs, typecode_q, nr,
                          (Py_ssize_t)w * (Py_ssize_t)sizeof(int64_t));
    PyMem_Free(nr);
    PyMem_Free(nb);
    return rv;
}

static PyObject *
native_prt_rollback(PyObject *self, PyObject *args)
{
    PyObject *prt;
    Py_ssize_t token;
    if (!PyArg_ParseTuple(args, "On:prt_rollback", &prt, &token))
        return NULL;
    PrtRefs p;
    if (prt_refs_init(&p, prt) < 0)
        return NULL;
    PyObject *result = NULL;
    int64_t *keys = NULL;
    Py_ssize_t n = PyList_GET_SIZE(p.journal);
    if (token < 0 || token > n) {
        PyErr_Format(PyExc_ValueError,
                     "invalid checkpoint token %zd for table of %zd", token,
                     n);
        goto done;
    }
    Py_ssize_t undone = n - token;
    if (undone == 0) {
        result = PyLong_FromLong(0);
        goto done;
    }
    ResReader rd;
    res_reader_init(&rd, Py_TYPE(PyList_GET_ITEM(p.journal, token)));
    keys = (int64_t *)PyMem_Malloc((size_t)(2 * undone) * sizeof(int64_t));
    if (keys == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t i = 0; i < undone; i++) {
        int64_t src, dst;
        if (res_read(&rd, PyList_GET_ITEM(p.journal, token + i), NULL, NULL,
                     &src, &dst) < 0)
            goto done;
        if (src < 0 || src > NATIVE_MAX_PORT || dst < 0 ||
            dst > NATIVE_MAX_PORT) {
            PyErr_Format(PyExc_OverflowError,
                         "port index out of native kernel range during "
                         "rollback (src=%lld, dst=%lld)",
                         (long long)src, (long long)dst);
            goto done;
        }
        keys[2 * i] = src * 2;
        keys[2 * i + 1] = dst * 2 + 1;
    }
    qsort(keys, (size_t)(2 * undone), sizeof(int64_t), int64_key_cmp);
    Py_ssize_t i = 0;
    while (i < 2 * undone) {
        Py_ssize_t runlen = 1;
        while (i + runlen < 2 * undone && keys[i + runlen] == keys[i])
            runlen++;
        int64_t key = keys[i];
        int is_input = (key & 1) == 0;
        int64_t port = is_input ? key / 2 : (key - 1) / 2;
        PyObject *port_obj = PyLong_FromLongLong((long long)port);
        if (port_obj == NULL)
            goto done;
        PyObject *bmap = is_input ? p.in_bounds : p.out_bounds;
        PyObject *rmap = is_input ? p.in_refs : p.out_refs;
        PyObject *bounds = PyDict_GetItemWithError(bmap, port_obj);
        if (bounds == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, port_obj);
            Py_DECREF(port_obj);
            goto done;
        }
        PyObject *refs = PyDict_GetItemWithError(rmap, port_obj);
        if (refs == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, port_obj);
            Py_DECREF(port_obj);
            goto done;
        }
        Py_INCREF(bounds);
        Py_INCREF(refs);
        Py_DECREF(port_obj);
        int rv = strip_port_c(bounds, refs, (int64_t)token, runlen);
        Py_DECREF(bounds);
        Py_DECREF(refs);
        if (rv < 0)
            goto done;
        i += runlen;
    }
    if (PyList_SetSlice(p.journal, token, PY_SSIZE_T_MAX, NULL) < 0)
        goto done;
    if (PySequence_DelSlice(p.ends, token, PY_SSIZE_T_MAX) < 0)
        goto done;
    if (PyObject_SetAttr(prt, str__ends_sorted, Py_None) < 0)
        goto done;
    result = PyLong_FromSsize_t(undone);
done:
    PyMem_Free(keys);
    prt_refs_clear(&p);
    return result;
}

/* One port-side record of one replayed reservation; sorting by
 * (key, start, end, ref) groups ports and reproduces the per-port
 * `items.sort()` of the Python twin (refs are unique, so the order is
 * total). */
typedef struct {
    int64_t key;
    double start, end;
    int64_t ref;
} RRec;

static int
rrec_cmp(const void *pa, const void *pb)
{
    const RRec *a = (const RRec *)pa, *b = (const RRec *)pb;
    if (a->key != b->key)
        return a->key < b->key ? -1 : 1;
    if (a->start < b->start)
        return -1;
    if (a->start > b->start)
        return 1;
    if (a->end < b->end)
        return -1;
    if (a->end > b->end)
        return 1;
    if (a->ref != b->ref)
        return a->ref < b->ref ? -1 : 1;
    return 0;
}

/* One staged per-port merge result, applied only after every port
 * validated. */
typedef struct {
    PyObject *port_obj;       /* strong */
    PyObject *bounds, *refs;  /* strong or NULL (op == 0) */
    int is_input;
    int op;                   /* 0 create, 1 append, 2 assign */
    double *bdata;            /* 2 * pairs staged boundaries */
    int64_t *rdata;           /* pairs staged refs */
    Py_ssize_t pairs;
} StagePort;

/* Validate + stage one port's run of replayed records.  Returns 1 when
 * staged, 0 to decline to the Python twin (conflict or anything
 * unexpected — nothing has been mutated), -1 on hard (OOM-class)
 * errors. */
static int
stage_run(PrtRefs *p, const RRec *recs, Py_ssize_t count, StagePort *st,
          double eps)
{
    int64_t key = recs[0].key;
    st->is_input = (key & 1) == 0;
    int64_t port = st->is_input ? key / 2 : (key - 1) / 2;
    st->port_obj = PyLong_FromLongLong((long long)port);
    if (st->port_obj == NULL)
        return -1;
    PyObject *bmap = st->is_input ? p->in_bounds : p->out_bounds;
    PyObject *rmap = st->is_input ? p->in_refs : p->out_refs;
    PyObject *bounds = PyDict_GetItemWithError(bmap, st->port_obj);
    if (bounds == NULL && PyErr_Occurred()) {
        PyErr_Clear();
        return 0;
    }
    PyObject *refs = NULL;
    if (bounds != NULL) {
        refs = PyDict_GetItemWithError(rmap, st->port_obj);
        if (refs == NULL) {
            PyErr_Clear();
            return 0;  /* bounds without refs: the twin raises KeyError */
        }
    }
    Py_XINCREF(bounds);
    Py_XINCREF(refs);
    st->bounds = bounds;
    st->refs = refs;

    Py_buffer bview;
    const double *bdata = NULL;
    Py_ssize_t blen = 0;
    int have_bview = 0;
    if (bounds != NULL) {
        if (PyObject_GetBuffer(bounds, &bview, PyBUF_SIMPLE) < 0) {
            PyErr_Clear();
            return 0;
        }
        have_bview = 1;
        bdata = (const double *)bview.buf;
        blen = (Py_ssize_t)(bview.len / (Py_ssize_t)sizeof(double));
    }

    if (blen == 0 || bdata[blen - 1] <= recs[0].start + eps) {
        /* Pure tail append: only the new items check against each
         * other. */
        if (have_bview)
            PyBuffer_Release(&bview);
        st->bdata = (double *)PyMem_Malloc((size_t)(2 * count) * sizeof(double));
        st->rdata = (int64_t *)PyMem_Malloc((size_t)count * sizeof(int64_t));
        if (st->bdata == NULL || st->rdata == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        double prev_end = -HUGE_VAL;
        for (Py_ssize_t k = 0; k < count; k++) {
            if (prev_end > recs[k].start + eps)
                return 0;  /* conflict: the twin raises it */
            st->bdata[2 * k] = recs[k].start;
            st->bdata[2 * k + 1] = recs[k].end;
            st->rdata[k] = recs[k].ref;
            prev_end = recs[k].end;
        }
        st->pairs = count;
        st->op = bounds == NULL ? 0 : 1;
        return 1;
    }

    /* Merge with the existing timeline. */
    Py_buffer rview;
    if (PyObject_GetBuffer(refs, &rview, PyBUF_SIMPLE) < 0) {
        PyErr_Clear();
        PyBuffer_Release(&bview);
        return 0;
    }
    const int64_t *rdata = (const int64_t *)rview.buf;
    Py_ssize_t n_exist = (Py_ssize_t)(rview.len / (Py_ssize_t)sizeof(int64_t));
    if (blen != 2 * n_exist) {
        PyBuffer_Release(&rview);
        PyBuffer_Release(&bview);
        return 0;
    }
    Py_ssize_t total = n_exist + count;
    st->bdata = (double *)PyMem_Malloc((size_t)(2 * total) * sizeof(double));
    st->rdata = (int64_t *)PyMem_Malloc((size_t)total * sizeof(int64_t));
    if (st->bdata == NULL || st->rdata == NULL) {
        PyBuffer_Release(&rview);
        PyBuffer_Release(&bview);
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t i = 0, k = 0, w = 0;
    double prev_end = -HUGE_VAL;
    int conflict = 0;
    while (i < n_exist || k < count) {
        double start, end;
        int64_t ref;
        /* Ties go to the new item, matching `_insert`'s bisect_left
         * placement of equal starts. */
        if (k < count && (i >= n_exist || recs[k].start <= bdata[2 * i])) {
            start = recs[k].start;
            end = recs[k].end;
            ref = recs[k].ref;
            k++;
        }
        else {
            start = bdata[2 * i];
            end = bdata[2 * i + 1];
            ref = rdata[i];
            i++;
        }
        if (prev_end > start + eps) {
            conflict = 1;
            break;
        }
        st->bdata[2 * w] = start;
        st->bdata[2 * w + 1] = end;
        st->rdata[w] = ref;
        prev_end = end;
        w++;
    }
    PyBuffer_Release(&rview);
    PyBuffer_Release(&bview);
    if (conflict)
        return 0;
    st->pairs = total;
    st->op = 2;
    return 1;
}

static PyObject *
native_prt_replay(PyObject *self, PyObject *args)
{
    PyObject *prt, *reservations;
    double eps;
    if (!PyArg_ParseTuple(args, "OOd:prt_replay", &prt, &reservations, &eps))
        return NULL;
    PrtRefs p;
    if (prt_refs_init(&p, prt) < 0)
        return NULL;
    PyObject *result = NULL;
    PyObject *seq = NULL;
    RRec *recs = NULL;
    double *ends_d = NULL;
    StagePort *stages = NULL;
    Py_ssize_t nstages = 0;

    seq = PySequence_Fast(reservations, "reservations must be a sequence");
    if (seq == NULL) {
        PyErr_Clear();
        result = Py_False;
        Py_INCREF(result);
        goto done;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    if (n == 0) {
        result = Py_True;
        Py_INCREF(result);
        goto done;
    }
    PyObject **items = PySequence_Fast_ITEMS(seq);
    Py_ssize_t base = PyList_GET_SIZE(p.journal);

    recs = (RRec *)PyMem_Malloc((size_t)(2 * n) * sizeof(RRec));
    ends_d = (double *)PyMem_Malloc((size_t)n * sizeof(double));
    if (recs == NULL || ends_d == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    ResReader rd;
    res_reader_init(&rd, Py_TYPE(items[0]));
    for (Py_ssize_t i = 0; i < n; i++) {
        double start, end;
        int64_t src, dst;
        if (res_read(&rd, items[i], &start, &end, &src, &dst) < 0) {
            PyErr_Clear();
            result = Py_False;
            Py_INCREF(result);
            goto done;
        }
        if (src < 0 || src > NATIVE_MAX_PORT || dst < 0 ||
            dst > NATIVE_MAX_PORT) {
            result = Py_False;
            Py_INCREF(result);
            goto done;
        }
        recs[2 * i].key = src * 2;
        recs[2 * i + 1].key = dst * 2 + 1;
        recs[2 * i].start = recs[2 * i + 1].start = start;
        recs[2 * i].end = recs[2 * i + 1].end = end;
        recs[2 * i].ref = recs[2 * i + 1].ref = base + i;
        ends_d[i] = end;
    }
    qsort(recs, (size_t)(2 * n), sizeof(RRec), rrec_cmp);

    stages = (StagePort *)PyMem_Calloc((size_t)(2 * n), sizeof(StagePort));
    if (stages == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    Py_ssize_t a = 0;
    while (a < 2 * n) {
        Py_ssize_t runlen = 1;
        while (a + runlen < 2 * n && recs[a + runlen].key == recs[a].key)
            runlen++;
        int rv = stage_run(&p, recs + a, runlen, &stages[nstages], eps);
        nstages++;
        if (rv < 0)
            goto done;
        if (rv == 0) {
            result = Py_False;
            Py_INCREF(result);
            goto done;
        }
        a += runlen;
    }

    /* Apply.  Nothing above mutated the table; failures from here on are
     * OOM-class and raise. */
    for (Py_ssize_t s = 0; s < nstages; s++) {
        StagePort *st = &stages[s];
        Py_ssize_t bbytes = (Py_ssize_t)(2 * st->pairs) * (Py_ssize_t)sizeof(double);
        Py_ssize_t rbytes = (Py_ssize_t)st->pairs * (Py_ssize_t)sizeof(int64_t);
        if (st->op == 0) {
            PyObject *nb = array_from_bytes(typecode_d, st->bdata, bbytes);
            if (nb == NULL)
                goto done;
            PyObject *nr = array_from_bytes(typecode_q, st->rdata, rbytes);
            if (nr == NULL) {
                Py_DECREF(nb);
                goto done;
            }
            PyObject *bmap = st->is_input ? p.in_bounds : p.out_bounds;
            PyObject *rmap = st->is_input ? p.in_refs : p.out_refs;
            int rv = PyDict_SetItem(bmap, st->port_obj, nb);
            if (rv == 0)
                rv = PyDict_SetItem(rmap, st->port_obj, nr);
            Py_DECREF(nb);
            Py_DECREF(nr);
            if (rv < 0)
                goto done;
        }
        else if (st->op == 1) {
            if (extend_array_bytes(st->bounds, st->bdata, bbytes) < 0 ||
                extend_array_bytes(st->refs, st->rdata, rbytes) < 0)
                goto done;
        }
        else {
            if (assign_array(st->bounds, typecode_d, st->bdata, bbytes) < 0 ||
                assign_array(st->refs, typecode_q, st->rdata, rbytes) < 0)
                goto done;
        }
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        if (PyList_Append(p.journal, items[i]) < 0)
            goto done;
    }
    if (extend_array_bytes(p.ends, ends_d,
                           (Py_ssize_t)n * (Py_ssize_t)sizeof(double)) < 0)
        goto done;
    if (PyObject_SetAttr(prt, str__ends_sorted, Py_None) < 0)
        goto done;
    result = Py_True;
    Py_INCREF(result);
done:
    if (stages != NULL) {
        for (Py_ssize_t s = 0; s < nstages; s++) {
            Py_XDECREF(stages[s].port_obj);
            Py_XDECREF(stages[s].bounds);
            Py_XDECREF(stages[s].refs);
            PyMem_Free(stages[s].bdata);
            PyMem_Free(stages[s].rdata);
        }
        PyMem_Free(stages);
    }
    PyMem_Free(recs);
    PyMem_Free(ends_d);
    Py_XDECREF(seq);
    prt_refs_clear(&p);
    return result;
}

/* Construct one Reservation (start/end/src/dst objects are reused, not
 * re-created, so the result is identity-equivalent to the Python twin's
 * `Reservation(start=now, end=old.end, ...)`). */
static PyObject *
build_reservation(const ResReader *rd, PyObject *res_type, PyObject *start_obj,
                  PyObject *end_obj, PyObject *src_obj, PyObject *dst_obj,
                  PyObject *cid, PyObject *setup_obj)
{
    PyTypeObject *tp = (PyTypeObject *)res_type;
    PyObject *res = tp->tp_new(tp, empty_tuple, NULL);
    if (res == NULL)
        return NULL;
    if (rd->offs_ok && Py_TYPE(res) == rd->tp) {
        char *basep = (char *)res;
        Py_INCREF(start_obj);
        *(PyObject **)(basep + rd->offs.start) = start_obj;
        Py_INCREF(end_obj);
        *(PyObject **)(basep + rd->offs.end) = end_obj;
        Py_INCREF(src_obj);
        *(PyObject **)(basep + rd->offs.src) = src_obj;
        Py_INCREF(dst_obj);
        *(PyObject **)(basep + rd->offs.dst) = dst_obj;
        Py_INCREF(cid);
        *(PyObject **)(basep + rd->offs.coflow_id) = cid;
        Py_INCREF(setup_obj);
        *(PyObject **)(basep + rd->offs.setup) = setup_obj;
    }
    else if (PyObject_SetAttr(res, str_start, start_obj) < 0 ||
             PyObject_SetAttr(res, str_end, end_obj) < 0 ||
             PyObject_SetAttr(res, str_src, src_obj) < 0 ||
             PyObject_SetAttr(res, str_dst, dst_obj) < 0 ||
             PyObject_SetAttr(res, str_coflow_id, cid) < 0 ||
             PyObject_SetAttr(res, str_setup, setup_obj) < 0) {
        Py_DECREF(res);
        return NULL;
    }
    return res;
}

/* `PortReservationTable.input_reservation_at` (is_input) /
 * `output_reservation_at`, reduced to "does the covering reservation
 * count for the blocked-at-now proof".  Returns 1 (counts), 0 (no
 * covering reservation, or its coflow is not in above_ids), or -1 to
 * decline the whole transform (errors are cleared — nothing has been
 * mutated). */
static int
covering_check(PrtRefs *p, const ResReader *rd, int is_input, int64_t port,
               double t_eps, PyObject *above_ids)
{
    PyObject *port_obj = PyLong_FromLongLong((long long)port);
    if (port_obj == NULL) {
        PyErr_Clear();
        return -1;
    }
    PyObject *bmap = is_input ? p->in_bounds : p->out_bounds;
    PyObject *rmap = is_input ? p->in_refs : p->out_refs;
    PyObject *bounds = PyDict_GetItemWithError(bmap, port_obj);
    if (bounds == NULL) {
        Py_DECREF(port_obj);
        if (PyErr_Occurred()) {
            PyErr_Clear();
            return -1;
        }
        return 0;
    }
    Py_buffer bview;
    if (PyObject_GetBuffer(bounds, &bview, PyBUF_SIMPLE) < 0) {
        PyErr_Clear();
        Py_DECREF(port_obj);
        return -1;
    }
    Py_ssize_t blen = (Py_ssize_t)(bview.len / (Py_ssize_t)sizeof(double));
    Py_ssize_t idx =
        blen ? bisect_right_d((const double *)bview.buf, blen, t_eps) : 0;
    PyBuffer_Release(&bview);
    if (blen == 0 || (idx & 1) == 0) {
        Py_DECREF(port_obj);
        return 0;
    }
    PyObject *refs = PyDict_GetItemWithError(rmap, port_obj);
    Py_DECREF(port_obj);
    if (refs == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_buffer rview;
    if (PyObject_GetBuffer(refs, &rview, PyBUF_SIMPLE) < 0) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t ri = idx >> 1;
    Py_ssize_t rlen = (Py_ssize_t)(rview.len / (Py_ssize_t)sizeof(int64_t));
    int64_t ref = -1;
    if (ri < rlen)
        ref = ((const int64_t *)rview.buf)[ri];
    PyBuffer_Release(&rview);
    if (ref < 0 || ref >= PyList_GET_SIZE(p->journal))
        return -1;
    if (above_ids == Py_None)
        return 1;
    PyObject *cf = res_field(rd, PyList_GET_ITEM(p->journal, ref),
                             rd->offs.coflow_id, str_coflow_id);
    if (cf == NULL) {
        PyErr_Clear();
        return -1;
    }
    int in = PySequence_Contains(above_ids, cf);
    Py_DECREF(cf);
    if (in < 0) {
        PyErr_Clear();
        return -1;
    }
    return in ? 1 : 0;
}

static PyObject *
native_transform_continuation(PyObject *self, PyObject *args)
{
    PyObject *prt, *res_type, *cid, *res_seq_obj, *established, *remaining,
        *banked, *above_ids;
    double now, delta, eps;
    Py_ssize_t cutoff;
    if (!PyArg_ParseTuple(args, "OOOdddOnOOOO:transform_continuation", &prt,
                          &res_type, &cid, &now, &delta, &eps, &res_seq_obj,
                          &cutoff, &established, &remaining, &banked,
                          &above_ids))
        return NULL;
    if (!PyType_Check(res_type) || !PyDict_Check(established) ||
        !PyDict_Check(remaining))
        Py_RETURN_FALSE;
    int banked_empty = PyAnySet_Check(banked) && PySet_GET_SIZE(banked) == 0;

    PrtRefs p;
    if (prt_refs_init(&p, prt) < 0) {
        PyErr_Clear();
        Py_RETURN_FALSE;
    }
    PyObject *seq = PySequence_Fast(res_seq_obj, "reservations must be a sequence");
    if (seq == NULL) {
        PyErr_Clear();
        prt_refs_clear(&p);
        Py_RETURN_FALSE;
    }
    Py_ssize_t nres = PySequence_Fast_GET_SIZE(seq);
    if (cutoff < 0)
        cutoff = 0;
    if (cutoff > nres)
        cutoff = nres;

    ResReader rd;
    res_reader_init(&rd, (PyTypeObject *)res_type);

    int fail = 0, decline = 0, error = 0;
    PyObject *result = NULL;
    PyObject *heads = NULL, *now_obj = NULL, *delta_obj = NULL;
    int64_t *head_src = NULL, *head_dst = NULL;
    Py_ssize_t nheads = 0;
    ISet pending;
    pending.keys = NULL;

    heads = PyList_New(0);
    now_obj = PyFloat_FromDouble(now);
    delta_obj = PyFloat_FromDouble(delta);
    size_t head_alloc = (size_t)(cutoff > 0 ? cutoff : 1);
    head_src = (int64_t *)PyMem_Malloc(head_alloc * sizeof(int64_t));
    head_dst = (int64_t *)PyMem_Malloc(head_alloc * sizeof(int64_t));
    if (heads == NULL || now_obj == NULL || delta_obj == NULL ||
        head_src == NULL || head_dst == NULL) {
        if (!PyErr_Occurred())
            PyErr_NoMemory();
        error = 1;
        goto done;
    }
    if (iset_init(&pending, (size_t)(nres - cutoff) + 1) < 0) {
        error = 1;
        goto done;
    }

    /* Established heads: every reservation covering `now` must be an
     * anchored established circuit whose recomputed continuation lands
     * on its end exactly. */
    for (Py_ssize_t i = 0; i < cutoff && !fail && !decline; i++) {
        PyObject *old = PySequence_Fast_GET_ITEM(seq, i);
        PyObject *end_obj = res_field(&rd, old, rd.offs.end, str_end);
        if (end_obj == NULL) {
            PyErr_Clear();
            decline = 1;
            break;
        }
        if (!PyFloat_CheckExact(end_obj)) {
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        double end_d = PyFloat_AS_DOUBLE(end_obj);
        if (now >= end_d - eps) {
            Py_DECREF(end_obj);
            continue;  /* fully in the past: constrains nothing ahead */
        }
        PyObject *src_obj = res_field(&rd, old, rd.offs.src, str_src);
        PyObject *dst_obj =
            src_obj ? res_field(&rd, old, rd.offs.dst, str_dst) : NULL;
        if (src_obj == NULL || dst_obj == NULL) {
            PyErr_Clear();
            Py_XDECREF(src_obj);
            Py_XDECREF(end_obj);
            decline = 1;
            break;
        }
        int64_t src = PyLong_CheckExact(src_obj)
                          ? (int64_t)PyLong_AsLongLong(src_obj)
                          : -1;
        int64_t dst = PyLong_CheckExact(dst_obj)
                          ? (int64_t)PyLong_AsLongLong(dst_obj)
                          : -1;
        if (PyErr_Occurred() || src < 0 || src > NATIVE_MAX_PORT || dst < 0 ||
            dst > NATIVE_MAX_PORT) {
            PyErr_Clear();
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        int dup = 0;
        for (Py_ssize_t j = 0; j < nheads; j++) {
            if (head_src[j] == src) {
                dup = 1;
                break;
            }
        }
        PyObject *key = PyTuple_Pack(2, src_obj, dst_obj);
        if (key == NULL) {
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            error = 1;
            break;
        }
        PyObject *est = PyDict_GetItemWithError(established, key);
        if (est == NULL && PyErr_Occurred()) {
            PyErr_Clear();
            Py_DECREF(key);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        if (est == NULL || dup) {
            Py_DECREF(key);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            fail = 1;
            break;
        }
        Py_INCREF(est);
        if (!PyTuple_Check(est) || PyTuple_GET_SIZE(est) != 2 ||
            !PyFloat_CheckExact(PyTuple_GET_ITEM(est, 0))) {
            Py_DECREF(est);
            Py_DECREF(key);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        PyObject *est0_obj = PyTuple_GET_ITEM(est, 0);
        PyObject *est1_obj = PyTuple_GET_ITEM(est, 1);
        /* est[1] != old.end — the anchor must be the float equal to the
         * old end (None or a foreign type can never compare equal). */
        int anchor_ok = PyFloat_CheckExact(est1_obj) &&
                        PyFloat_AS_DOUBLE(est1_obj) == end_d;
        if (!anchor_ok && est1_obj != Py_None &&
            !PyFloat_CheckExact(est1_obj)) {
            Py_DECREF(est);
            Py_DECREF(key);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        double rem = 0.0;
        PyObject *remv = PyDict_GetItemWithError(remaining, key);
        Py_DECREF(key);
        if (remv == NULL && PyErr_Occurred()) {
            PyErr_Clear();
            Py_DECREF(est);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            decline = 1;
            break;
        }
        if (remv != NULL) {
            rem = PyFloat_AsDouble(remv);
            if (rem == -1.0 && PyErr_Occurred()) {
                PyErr_Clear();
                Py_DECREF(est);
                Py_DECREF(src_obj);
                Py_DECREF(dst_obj);
                Py_DECREF(end_obj);
                decline = 1;
                break;
            }
        }
        double est0 = PyFloat_AS_DOUBLE(est0_obj);
        double setup = est0 < delta ? est0 : delta;  /* min(delta, est[0]) */
        if (!anchor_ok || rem <= eps ||
            fabs(now + (setup + rem) - end_d) > eps) {
            Py_DECREF(est);
            Py_DECREF(src_obj);
            Py_DECREF(dst_obj);
            Py_DECREF(end_obj);
            fail = 1;
            break;
        }
        PyObject *setup_obj = est0 < delta ? est0_obj : delta_obj;
        PyObject *head = build_reservation(&rd, res_type, now_obj, end_obj,
                                           src_obj, dst_obj, cid, setup_obj);
        Py_DECREF(est);
        Py_DECREF(src_obj);
        Py_DECREF(dst_obj);
        Py_DECREF(end_obj);
        if (head == NULL) {
            error = 1;
            break;
        }
        int rv = PyList_Append(heads, head);
        Py_DECREF(head);
        if (rv < 0) {
            error = 1;
            break;
        }
        head_src[nheads] = src;
        head_dst[nheads] = dst;
        nheads++;
    }
    if (!fail && !decline && !error && nheads != PyDict_Size(established))
        fail = 1;

    /* Future reservations: every one must be provably blocked at `now`
     * (by one of this Coflow's own preceding heads, or by a covering
     * reservation of a layer above). */
    for (Py_ssize_t i = cutoff; i < nres && !fail && !decline && !error; i++) {
        PyObject *fut = PySequence_Fast_GET_ITEM(seq, i);
        int64_t src, dst;
        if (res_read(&rd, fut, NULL, NULL, &src, &dst) < 0) {
            PyErr_Clear();
            decline = 1;
            break;
        }
        if (src < 0 || src > NATIVE_MAX_PORT || dst < 0 ||
            dst > NATIVE_MAX_PORT) {
            decline = 1;
            break;
        }
        int64_t ckey = (src << 32) | dst;
        if (iset_has(&pending, ckey))
            continue;
        int have_hd = 0;
        int64_t hd = -1;
        for (Py_ssize_t j = 0; j < nheads; j++) {
            if (head_src[j] == src) {
                have_hd = 1;
                hd = head_dst[j];
                break;
            }
        }
        if (have_hd && hd == dst) {
            fail = 1;  /* overflow of an established circuit */
            break;
        }
        if (!banked_empty) {
            PyObject *key = Py_BuildValue("(LL)", (long long)src,
                                          (long long)dst);
            if (key == NULL) {
                error = 1;
                break;
            }
            int in = PySequence_Contains(banked, key);
            Py_DECREF(key);
            if (in < 0) {
                PyErr_Clear();
                decline = 1;
                break;
            }
            if (in) {
                fail = 1;  /* re-banked since the plan was computed */
                break;
            }
        }
        if (have_hd && hd < dst) {
            iset_add(&pending, ckey);
            continue;
        }
        int have_hs = 0;
        int64_t hs = -1;
        for (Py_ssize_t j = 0; j < nheads; j++) {
            if (head_dst[j] == dst) {
                have_hs = 1;
                hs = head_src[j];
                break;
            }
        }
        if (have_hs && hs < src) {
            iset_add(&pending, ckey);
            continue;
        }
        int covered = covering_check(&p, &rd, 1, src, now + eps, above_ids);
        if (covered == 0)
            covered = covering_check(&p, &rd, 0, dst, now + eps, above_ids);
        if (covered < 0) {
            decline = 1;
            break;
        }
        if (covered == 0) {
            fail = 1;  /* free on both ports: the recompute could diverge */
            break;
        }
        iset_add(&pending, ckey);
    }

    /* The demand the plan serves must cover exactly the circuits with
     * remaining demand. */
    if (!fail && !decline && !error) {
        Py_ssize_t pos = 0;
        PyObject *k, *v;
        while (PyDict_Next(remaining, &pos, &k, &v)) {
            double rem = PyFloat_AsDouble(v);
            if (rem == -1.0 && PyErr_Occurred()) {
                PyErr_Clear();
                decline = 1;
                break;
            }
            if (rem <= eps)
                continue;
            if (!PyTuple_Check(k) || PyTuple_GET_SIZE(k) != 2 ||
                !PyLong_CheckExact(PyTuple_GET_ITEM(k, 0)) ||
                !PyLong_CheckExact(PyTuple_GET_ITEM(k, 1))) {
                decline = 1;
                break;
            }
            int64_t cs = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(k, 0));
            int64_t cd = (int64_t)PyLong_AsLongLong(PyTuple_GET_ITEM(k, 1));
            if (PyErr_Occurred() || cs < 0 || cs > NATIVE_MAX_PORT || cd < 0 ||
                cd > NATIVE_MAX_PORT) {
                PyErr_Clear();
                decline = 1;
                break;
            }
            if (iset_has(&pending, (cs << 32) | cd))
                continue;
            int served = 0;
            for (Py_ssize_t j = 0; j < nheads; j++) {
                if (head_src[j] == cs) {
                    served = head_dst[j] == cd;
                    break;
                }
            }
            if (!served) {
                fail = 1;
                break;
            }
        }
    }

done:
    if (error)
        result = NULL;
    else if (decline) {
        result = Py_False;
        Py_INCREF(result);
    }
    else if (fail) {
        result = Py_None;
        Py_INCREF(result);
    }
    else {
        result = heads;
        heads = NULL;  /* transfer */
    }
    Py_XDECREF(heads);
    Py_XDECREF(now_obj);
    Py_XDECREF(delta_obj);
    PyMem_Free(head_src);
    PyMem_Free(head_dst);
    iset_free(&pending);
    Py_DECREF(seq);
    prt_refs_clear(&p);
    return result;
}

/* ------------------------------------------------------------------ */
/* Entry point                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
native_schedule_demand(PyObject *self, PyObject *args)
{
    PyObject *prt, *res_type, *coflow_id, *entries_list, *out_list;
    double start_time, delta, eps;
    int has_established;
    if (!PyArg_ParseTuple(args, "OOOdddpO!O!:schedule_demand", &prt, &res_type,
                          &coflow_id, &start_time, &delta, &eps,
                          &has_established, &PyList_Type, &entries_list,
                          &PyList_Type, &out_list))
        return NULL;
    if (!PyType_Check(res_type)) {
        PyErr_SetString(PyExc_TypeError, "res_type must be a class");
        return NULL;
    }
    Ctx c;
    memset(&c, 0, sizeof(Ctx));
    int rv = ctx_init(&c, prt, res_type, coflow_id, start_time, delta, eps,
                      has_established, entries_list, out_list);
    if (rv == 0)
        rv = run_schedule(&c);
    ctx_free(&c);
    if (rv < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Fused `_pack_demand` + scheduling loop: consumes a PackedDemand's
 * pre-sorted columns directly, so the per-plan sort and tuple packing
 * disappear from the Python side.  The columns are sorted by (src, dst)
 * — exactly `sorted(demand_times.items())` — so filtering them in order
 * reproduces the packed-entry list verbatim. */
static PyObject *
native_schedule_demand_packed(PyObject *self, PyObject *args)
{
    PyObject *prt, *res_type, *coflow_id, *srcs, *dsts, *vals, *established,
        *out_list;
    double start_time, delta, eps;
    if (!PyArg_ParseTuple(args, "OOOdddOOOOO!:schedule_demand_packed", &prt,
                          &res_type, &coflow_id, &start_time, &delta, &eps,
                          &srcs, &dsts, &vals, &established, &PyList_Type,
                          &out_list))
        return NULL;
    if (!PyType_Check(res_type)) {
        PyErr_SetString(PyExc_TypeError, "res_type must be a class");
        return NULL;
    }
    int has_est = established != Py_None;
    if (has_est && !PyDict_Check(established)) {
        PyErr_SetString(PyExc_TypeError,
                        "established must be a dict or None");
        return NULL;
    }
    Py_buffer sv, dv, vv;
    if (PyObject_GetBuffer(srcs, &sv, PyBUF_SIMPLE) < 0)
        return NULL;
    if (PyObject_GetBuffer(dsts, &dv, PyBUF_SIMPLE) < 0) {
        PyBuffer_Release(&sv);
        return NULL;
    }
    if (PyObject_GetBuffer(vals, &vv, PyBUF_SIMPLE) < 0) {
        PyBuffer_Release(&dv);
        PyBuffer_Release(&sv);
        return NULL;
    }
    Py_ssize_t n_all = (Py_ssize_t)(sv.len / (Py_ssize_t)sizeof(int64_t));
    if ((Py_ssize_t)(dv.len / (Py_ssize_t)sizeof(int64_t)) != n_all ||
        (Py_ssize_t)(vv.len / (Py_ssize_t)sizeof(double)) != n_all) {
        PyBuffer_Release(&vv);
        PyBuffer_Release(&dv);
        PyBuffer_Release(&sv);
        PyErr_SetString(PyExc_TypeError,
                        "packed demand columns disagree in length");
        return NULL;
    }
    CEntry *entries = (CEntry *)PyMem_Calloc(
        (size_t)(n_all > 0 ? n_all : 1), sizeof(CEntry));
    if (entries == NULL) {
        PyBuffer_Release(&vv);
        PyBuffer_Release(&dv);
        PyBuffer_Release(&sv);
        PyErr_NoMemory();
        return NULL;
    }
    const int64_t *src_col = (const int64_t *)sv.buf;
    const int64_t *dst_col = (const int64_t *)dv.buf;
    const double *val_col = (const double *)vv.buf;
    Py_ssize_t kept = 0;
    for (Py_ssize_t i = 0; i < n_all; i++) {
        if (val_col[i] > eps) {
            CEntry *e = &entries[kept];
            e->src = src_col[i];
            e->dst = dst_col[i];
            e->remaining = val_col[i];
            e->has_est = 0;
            e->setup_left = 0.0;
            e->anchor = NAN;
            e->index = (int32_t)kept;
            kept++;
        }
    }
    PyBuffer_Release(&vv);
    PyBuffer_Release(&dv);
    PyBuffer_Release(&sv);
    if (kept > INT32_MAX) {
        PyMem_Free(entries);
        PyErr_SetString(PyExc_OverflowError, "too many demand entries");
        return NULL;
    }
    if (kept == 0) {
        /* Mirrors the Python `if not entries: return schedule` — the
         * table is untouched and nothing is planned. */
        PyMem_Free(entries);
        return PyLong_FromLong(0);
    }
    if (has_est) {
        for (Py_ssize_t i = 0; i < kept; i++) {
            CEntry *e = &entries[i];
            PyObject *key = Py_BuildValue("(LL)", (long long)e->src,
                                          (long long)e->dst);
            if (key == NULL) {
                PyMem_Free(entries);
                return NULL;
            }
            PyObject *est = PyDict_GetItemWithError(established, key);
            Py_DECREF(key);
            if (est == NULL) {
                if (PyErr_Occurred()) {
                    PyMem_Free(entries);
                    return NULL;
                }
                continue;
            }
            if (!PyTuple_Check(est) || PyTuple_GET_SIZE(est) != 2) {
                PyMem_Free(entries);
                PyErr_SetString(PyExc_TypeError,
                                "established values must be "
                                "(setup_left, anchor) pairs");
                return NULL;
            }
            e->has_est = 1;
            e->setup_left = PyFloat_AsDouble(PyTuple_GET_ITEM(est, 0));
            if (e->setup_left == -1.0 && PyErr_Occurred()) {
                PyMem_Free(entries);
                return NULL;
            }
            PyObject *anchor = PyTuple_GET_ITEM(est, 1);
            if (anchor == Py_None)
                e->anchor = NAN;
            else {
                e->anchor = PyFloat_AsDouble(anchor);
                if (e->anchor == -1.0 && PyErr_Occurred()) {
                    PyMem_Free(entries);
                    return NULL;
                }
            }
        }
    }
    Ctx c;
    memset(&c, 0, sizeof(Ctx));
    c.entries = entries;
    c.nentries = kept;
    c.outstanding = kept;
    int rv = ctx_attach(&c, prt, res_type, coflow_id, start_time, delta, eps,
                        has_est, out_list);
    if (rv == 0)
        rv = ctx_build_slots(&c);
    if (rv == 0)
        rv = run_schedule(&c);
    ctx_free(&c);  /* frees `entries` too */
    if (rv < 0)
        return NULL;
    return PyLong_FromSsize_t(kept);
}

static PyMethodDef native_methods[] = {
    {"schedule_demand", native_schedule_demand, METH_VARARGS,
     "schedule_demand(prt, reservation_cls, coflow_id, start_time, delta, "
     "eps, has_established, entries, out_reservations)\n\n"
     "Compiled twin of SunflowScheduler's event-driven scheduling loop.\n"
     "Mutates the PRT and appends the planned Reservation objects to\n"
     "out_reservations, bit-identically to the pure-Python loop."},
    {"schedule_demand_packed", native_schedule_demand_packed, METH_VARARGS,
     "schedule_demand_packed(prt, reservation_cls, coflow_id, start_time, "
     "delta, eps, srcs, dsts, vals, established_or_None, out_reservations)"
     "\n\n"
     "schedule_demand fused with _pack_demand: consumes a PackedDemand's\n"
     "sorted (srcs, dsts, vals) columns directly.  Returns the number of\n"
     "entries with demand above eps (0 means nothing was planned)."},
    {"prt_rollback", native_prt_rollback, METH_VARARGS,
     "prt_rollback(prt, token)\n\n"
     "Batched PortReservationTable.rollback: truncates the journal and\n"
     "ends column to `token` and strips every touched port timeline in\n"
     "one pass.  Returns the number of reservations undone."},
    {"prt_replay", native_prt_replay, METH_VARARGS,
     "prt_replay(prt, reservations, eps)\n\n"
     "Batched PortReservationTable.replay: validates and merges the\n"
     "batch into each port timeline in one call.  Returns True on\n"
     "success; returns False (table untouched) on conflict or any\n"
     "unexpected input so the Python twin can re-run and raise the\n"
     "byte-identical error."},
    {"transform_continuation", native_transform_continuation, METH_VARARGS,
     "transform_continuation(prt, reservation_cls, coflow_id, now, delta, "
     "eps, reservations, cutoff, established, remaining, banked, above_ids)"
     "\n\n"
     "The incremental replanner's continuation-transform proof on the\n"
     "PRT's array buffers.  Returns the rebuilt head reservations on\n"
     "success, None when a proof obligation fails (caller recomputes),\n"
     "or False to decline to the pure-Python twin.  Never mutates the\n"
     "table."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native",
    "Compiled Sunflow planner kernel (see repro/core/sunflow.py).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
#define INTERN(var, s)                                                        \
    do {                                                                      \
        var = PyUnicode_InternFromString(s);                                  \
        if (var == NULL)                                                      \
            return NULL;                                                      \
    } while (0)
    INTERN(str__in_bounds, "_in_bounds");
    INTERN(str__in_refs, "_in_refs");
    INTERN(str__out_bounds, "_out_bounds");
    INTERN(str__out_refs, "_out_refs");
    INTERN(str__reservations, "_reservations");
    INTERN(str__ends, "_ends");
    INTERN(str__ends_sorted, "_ends_sorted");
    INTERN(str_insert, "insert");
    INTERN(str_append, "append");
    INTERN(str_frombytes, "frombytes");
    INTERN(str_src, "src");
    INTERN(str_dst, "dst");
    INTERN(str_start, "start");
    INTERN(str_end, "end");
    INTERN(str_coflow_id, "coflow_id");
    INTERN(str_setup, "setup");
#undef INTERN
    typecode_d = PyUnicode_InternFromString("d");
    typecode_q = PyUnicode_InternFromString("q");
    if (typecode_d == NULL || typecode_q == NULL)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (empty_tuple == NULL)
        return NULL;
    PyObject *array_mod = PyImport_ImportModule("array");
    if (array_mod == NULL)
        return NULL;
    array_type = PyObject_GetAttrString(array_mod, "array");
    Py_DECREF(array_mod);
    if (array_type == NULL)
        return NULL;
    PyObject *mod = PyModule_Create(&native_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "LAYOUT_VERSION", NATIVE_LAYOUT_VERSION) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
