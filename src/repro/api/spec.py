"""Declarative simulation specifications for the :mod:`repro.api` facade.

A :class:`SimulationSpec` names *what* to simulate — workload, mode,
scheduler, network parameters, policy knobs, seed — without running
anything, in one canonical vocabulary shared by every backend:

* ``bandwidth_bps`` is the link rate ``B`` (bits per second),
* ``delta`` is the reconfiguration delay ``δ`` (seconds),
* ``mode`` is ``"intra"`` (back-to-back service, §5.3) or ``"inter"``
  (trace replay with arrivals, §5.4),
* ``scheduler`` selects the backend (Sunflow, the assignment baselines,
  the packet-switched allocators, the hybrid fabric, or the system-level
  deployment stack).

Specs are frozen, hashable, and round-trip through plain-JSON payloads
(:func:`spec_to_payload` / :func:`spec_from_payload`) so the sweep engine
can ship them across process boundaries and content-hash them for its
result cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.multicore import MULTICORE_POLICIES, SwitchCore, build_cores
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import ReservationOrder
from repro.sim.assignment_exec import SwitchModel
from repro.sim.hybrid import HybridConfig
from repro.system.runner import LatencyConfig
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA, MB

#: Payload-format version, folded into sweep cache keys so stale cache
#: entries from an older layout are never served.
PAYLOAD_VERSION = 1

MODES = ("intra", "inter")
SCHEDULERS = (
    "sunflow",
    "solstice",
    "tms",
    "edmond",
    "varys",
    "aalo",
    "sunflow-hybrid",
    "system",
)

TRACE_KINDS = ("facebook", "random-coflow", "file", "stream")


@dataclass(frozen=True)
class NetworkSpec:
    """The fabric: link rate ``B``, reconfiguration delay ``δ``, and the
    number of parallel switch cores ``K``.

    Attributes:
        bandwidth_bps: per-port line rate in bits per second.
        delta: circuit reconfiguration delay in seconds (ignored by the
            pure packet-switched backends, which have no circuits).
        num_cores: parallel switch cores per port pair (K-core OCS).  The
            default ``1`` is the paper's single-switch fabric and keeps
            every legacy payload byte-identical.
        core_deltas: optional per-core ``δ`` overrides (length
            ``num_cores``); every core uses ``delta`` when omitted.
        core_bandwidths: optional per-core line-rate overrides (length
            ``num_cores``); every core uses ``bandwidth_bps`` when
            omitted.
    """

    bandwidth_bps: float = DEFAULT_BANDWIDTH
    delta: float = DEFAULT_DELTA
    num_cores: int = 1
    core_deltas: Optional[Tuple[float, ...]] = None
    core_bandwidths: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_bps!r}")
        if self.delta < 0:
            raise ValueError(f"delta must be non-negative, got {self.delta!r}")
        if self.num_cores < 1:
            raise ValueError(f"core count must be positive, got {self.num_cores!r}")
        for name in ("core_deltas", "core_bandwidths"):
            values = getattr(self, name)
            if values is None:
                continue
            values = tuple(float(v) for v in values)
            object.__setattr__(self, name, values)
            if len(values) != self.num_cores:
                raise ValueError(
                    f"{name} has {len(values)} entries for "
                    f"{self.num_cores} cores"
                )
        # Element validation (positivity) happens in build_cores at use
        # time; validate eagerly so bad specs fail at construction.
        self.cores()

    def cores(self) -> Tuple[SwitchCore, ...]:
        """The fabric as :class:`~repro.core.multicore.SwitchCore` objects."""
        return build_cores(
            self.num_cores,
            bandwidth_bps=self.bandwidth_bps,
            delta=self.delta,
            core_bandwidths=self.core_bandwidths,
            core_deltas=self.core_deltas,
        )


@dataclass(frozen=True)
class TraceSpec:
    """Declarative workload source — reproducible from parameters alone.

    Four kinds:

    * ``"facebook"`` — the synthetic Facebook-like generator used by the
      evaluation (optionally with the paper's ±5 % size perturbation),
    * ``"random-coflow"`` — a single dense random Coflow of ``num_flows``
      subflows (the §6 scheduler-latency workload),
    * ``"file"`` — a coflow-benchmark format trace file at ``path``,
    * ``"stream"`` — a binary ``SFTR`` stream trace at ``path`` (see
      :mod:`repro.workloads.stream`); made for million-coflow replays but
      loadable in-memory too.

    Unlike an in-memory :class:`~repro.core.coflow.CoflowTrace`, a
    ``TraceSpec`` is pure data: sweep workers regenerate the trace from it
    deterministically, and its fields participate in cache keys.
    """

    kind: str = "facebook"
    # facebook-generator knobs (mirror GeneratorConfig defaults where the
    # benchmark harness overrides them).
    num_ports: int = 150
    num_coflows: int = 526
    max_width: Optional[int] = None
    mean_interarrival: float = 6.8
    seed: int = 2016
    #: ±fraction uniform size noise (0 disables; the evaluation uses 0.05).
    perturb: float = 0.0
    # random-coflow knobs.
    num_flows: int = 100
    min_flow_bytes: float = 1 * MB
    max_flow_bytes: float = 100 * MB
    # file knob.
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}; expected {TRACE_KINDS}")
        if self.kind in ("file", "stream") and not self.path:
            raise ValueError(f"trace kind {self.kind!r} needs a path")
        if not 0 <= self.perturb < 1:
            raise ValueError(f"perturb must be in [0, 1), got {self.perturb!r}")

    def load(self) -> CoflowTrace:
        """Materialize the trace this spec describes (deterministic)."""
        if self.kind == "stream":
            from repro.workloads import read_stream_trace

            return read_stream_trace(self.path)
        if self.kind == "file":
            from repro.workloads import parse_trace

            return parse_trace(self.path)
        if self.kind == "random-coflow":
            rng = random.Random(self.seed)
            demand: Dict[Tuple[int, int], float] = {}
            while len(demand) < self.num_flows:
                circuit = (
                    rng.randrange(self.num_ports),
                    rng.randrange(self.num_ports),
                )
                demand[circuit] = rng.uniform(self.min_flow_bytes, self.max_flow_bytes)
            coflow = Coflow.from_demand(1, demand)
            return CoflowTrace(self.num_ports, [coflow])
        from repro.workloads import (
            FacebookLikeTraceGenerator,
            GeneratorConfig,
            perturb_sizes,
        )

        config = GeneratorConfig(
            num_ports=self.num_ports,
            num_coflows=self.num_coflows,
            mean_interarrival=self.mean_interarrival,
            max_width=self.max_width,
            seed=self.seed,
        )
        trace = FacebookLikeTraceGenerator(config).generate()
        if self.perturb:
            trace = perturb_sizes(trace, fraction=self.perturb, seed=self.seed)
        return trace

    def open_stream(self):
        """The trace as a lazy :class:`~repro.workloads.stream.ArrivalStream`.

        The streaming counterpart of :meth:`load`: nothing is
        materialized — file-backed kinds decode records as the replay
        consumes them, and the generator kinds stream draws.  Coflow for
        Coflow the stream is bit-identical to :meth:`load` (the
        differential suites pin this), so ``stream=True`` runs simulate
        exactly the trace their in-memory twins do.
        """
        from repro.workloads.stream import (
            ArrivalStream,
            open_any_trace,
            open_stream_trace,
        )

        if self.kind == "stream":
            return open_stream_trace(self.path)
        if self.kind == "file":
            return open_any_trace(self.path)
        if self.kind == "random-coflow":
            trace = self.load()  # a single Coflow; nothing to stream
            return ArrivalStream(trace.num_ports, trace.coflows, len(trace))
        from repro.workloads import (
            FacebookLikeTraceGenerator,
            GeneratorConfig,
            perturb_sizes_iter,
        )

        config = GeneratorConfig(
            num_ports=self.num_ports,
            num_coflows=self.num_coflows,
            mean_interarrival=self.mean_interarrival,
            max_width=self.max_width,
            seed=self.seed,
        )
        coflows = FacebookLikeTraceGenerator(config).iter_coflows()
        if self.perturb:
            coflows = perturb_sizes_iter(
                coflows, fraction=self.perturb, seed=self.seed
            )
        return ArrivalStream(self.num_ports, coflows, self.num_coflows)


@dataclass(frozen=True)
class GuardSpec:
    """Declarative starvation guard: the ``(T + τ)`` interval geometry.

    The fabric size and ``δ`` come from the simulation's trace and network
    at build time, so a guard spec stays reusable across sweep cells.
    """

    period: float
    tau: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or self.tau <= 0:
            raise ValueError(
                f"T and tau must be positive, got T={self.period}, tau={self.tau}"
            )

    def build(self, num_ports: int, delta: float) -> StarvationGuard:
        return StarvationGuard(
            num_ports=num_ports,
            period=self.period,
            tau=self.tau,
            delta=delta,
            origin=self.origin,
        )


def _normalize_enum(value, enum_cls, label: str) -> str:
    if isinstance(value, enum_cls):
        return value.value
    try:
        return enum_cls(value).value
    except ValueError:
        raise ValueError(
            f"unknown {label} {value!r}; expected one of "
            f"{[member.value for member in enum_cls]}"
        ) from None


@dataclass(frozen=True)
class SimulationSpec:
    """One complete simulation scenario for :func:`repro.api.simulate`.

    Attributes:
        trace: the workload — either a declarative :class:`TraceSpec`
            (required for process-parallel sweeps and caching) or an
            in-memory :class:`~repro.core.coflow.CoflowTrace`.
        mode: ``"intra"`` or ``"inter"``.
        scheduler: one of :data:`SCHEDULERS`.
        network: link rate and reconfiguration delay.
        policy: inter-Coflow priority policy name from
            :data:`repro.core.policies.POLICIES` (None = backend default,
            shortest-first).
        order: intra-Coflow reservation consideration order
            (:class:`~repro.core.sunflow.ReservationOrder` or its value).
        switch_model: which circuits stop during reconfiguration, for the
            assignment baselines.
        guard: optional starvation guard geometry (Sunflow inter only).
        hybrid: hybrid-fabric parameters (``sunflow-hybrid`` only;
            defaults to :class:`~repro.sim.hybrid.HybridConfig`).
        latency: control-plane delays (``system`` scheduler only).
        priority_classes: operator classes as ``((coflow_id, class), …)``;
            mappings are accepted and normalized.
        seed: seeds the scheduler's RNG (``order="random"``); None keeps
            the legacy default (unseeded = deterministic orders only).
        multicore_policy: coflow-to-core placement policy for K-core
            fabrics, one of :data:`repro.core.multicore.MULTICORE_POLICIES`
            (None = per-mode default).  Requires ``scheduler="sunflow"``;
            setting it (or ``network.num_cores > 1``) routes the run
            through the multi-core simulators.
        stream: run the bounded-memory streaming replay instead of the
            in-memory pipeline (``mode="inter"``, ``scheduler="sunflow"``,
            single-core only).  The simulation is bit-identical; only the
            result container changes — :func:`repro.api.simulate` returns
            a :class:`~repro.sim.streaming.StreamingResult` whose report
            holds running aggregates and a CCT quantile sketch rather
            than per-Coflow records.
    """

    trace: Union[TraceSpec, CoflowTrace]
    mode: str = "intra"
    scheduler: str = "sunflow"
    network: NetworkSpec = field(default_factory=NetworkSpec)
    policy: Optional[str] = None
    order: Union[str, ReservationOrder] = ReservationOrder.ORDERED_PORT.value
    switch_model: Union[str, SwitchModel] = SwitchModel.NOT_ALL_STOP.value
    guard: Optional[GuardSpec] = None
    hybrid: Optional[HybridConfig] = None
    latency: Optional[LatencyConfig] = None
    priority_classes: Optional[Tuple[Tuple[int, int], ...]] = None
    seed: Optional[int] = None
    multicore_policy: Optional[str] = None
    stream: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULERS}"
            )
        if (
            self.multicore_policy is not None
            and self.multicore_policy not in MULTICORE_POLICIES
        ):
            raise ValueError(
                f"unknown multicore policy {self.multicore_policy!r}; "
                f"expected one of {sorted(MULTICORE_POLICIES)}"
            )
        if self.stream:
            if self.mode != "inter" or self.scheduler != "sunflow":
                raise ValueError(
                    "stream=True requires mode='inter' and scheduler='sunflow' "
                    f"(got mode={self.mode!r}, scheduler={self.scheduler!r})"
                )
            if self.network.num_cores != 1 or self.multicore_policy is not None:
                raise ValueError(
                    "stream=True has no K-core backend; set network.num_cores=1 "
                    "and multicore_policy=None"
                )
        object.__setattr__(
            self, "order", _normalize_enum(self.order, ReservationOrder, "order")
        )
        object.__setattr__(
            self,
            "switch_model",
            _normalize_enum(self.switch_model, SwitchModel, "switch model"),
        )
        if isinstance(self.priority_classes, Mapping):
            object.__setattr__(
                self,
                "priority_classes",
                tuple(sorted(self.priority_classes.items())),
            )
        elif self.priority_classes is not None:
            object.__setattr__(
                self,
                "priority_classes",
                tuple(sorted((int(k), int(v)) for k, v in self.priority_classes)),
            )

    # ------------------------------------------------------------------
    def resolve_trace(self) -> CoflowTrace:
        """The in-memory trace (loading/generating a declarative spec)."""
        if isinstance(self.trace, TraceSpec):
            return self.trace.load()
        return self.trace

    def priority_mapping(self) -> Optional[Dict[int, int]]:
        if self.priority_classes is None:
            return None
        return dict(self.priority_classes)


# ----------------------------------------------------------------------
# Payload (plain-JSON) serialization
# ----------------------------------------------------------------------
def _trace_to_payload(trace: Union[TraceSpec, CoflowTrace]) -> dict:
    if isinstance(trace, TraceSpec):
        payload = {f.name: getattr(trace, f.name) for f in fields(trace)}
        payload["__trace__"] = "spec"
        return payload
    return {
        "__trace__": "inline",
        "num_ports": trace.num_ports,
        "coflows": [
            {
                "id": coflow.coflow_id,
                "arrival": coflow.arrival_time,
                # Sorted so equal traces encode (and hash) identically
                # regardless of flow insertion order.
                "flows": sorted([f.src, f.dst, f.size_bytes] for f in coflow.flows),
            }
            for coflow in trace
        ],
    }


def _trace_from_payload(payload: dict) -> Union[TraceSpec, CoflowTrace]:
    payload = dict(payload)
    kind = payload.pop("__trace__")
    if kind == "spec":
        return TraceSpec(**payload)
    coflows = [
        Coflow.from_demand(
            entry["id"],
            {(src, dst): size for src, dst, size in entry["flows"]},
            arrival_time=entry["arrival"],
        )
        for entry in payload["coflows"]
    ]
    return CoflowTrace(payload["num_ports"], coflows)


def spec_to_payload(spec: SimulationSpec) -> dict:
    """A plain-JSON dict capturing the spec exactly (for hashing/IPC).

    Multi-core fields are emitted only when they deviate from the
    single-core defaults, so every single-core spec serializes
    byte-identically to the pre-K-core payload layout (sweep caches keyed
    on payload hashes stay valid).
    """
    network = {
        "bandwidth_bps": spec.network.bandwidth_bps,
        "delta": spec.network.delta,
    }
    if spec.network.num_cores != 1:
        network["num_cores"] = spec.network.num_cores
    if spec.network.core_deltas is not None:
        network["core_deltas"] = list(spec.network.core_deltas)
    if spec.network.core_bandwidths is not None:
        network["core_bandwidths"] = list(spec.network.core_bandwidths)
    payload = {
        "version": PAYLOAD_VERSION,
        "trace": _trace_to_payload(spec.trace),
        "mode": spec.mode,
        "scheduler": spec.scheduler,
        "network": network,
        "policy": spec.policy,
        "order": spec.order,
        "switch_model": spec.switch_model,
        "guard": (
            None
            if spec.guard is None
            else {
                "period": spec.guard.period,
                "tau": spec.guard.tau,
                "origin": spec.guard.origin,
            }
        ),
        "hybrid": (
            None
            if spec.hybrid is None
            else {
                "size_threshold_bytes": spec.hybrid.size_threshold_bytes,
                "packet_bandwidth_fraction": spec.hybrid.packet_bandwidth_fraction,
            }
        ),
        "latency": (
            None
            if spec.latency is None
            else {
                "registration": spec.latency.registration,
                "command": spec.latency.command,
                "signal": spec.latency.signal,
                "report": spec.latency.report,
            }
        ),
        "priority_classes": (
            None
            if spec.priority_classes is None
            else [list(pair) for pair in spec.priority_classes]
        ),
        "seed": spec.seed,
    }
    if spec.multicore_policy is not None:
        payload["multicore_policy"] = spec.multicore_policy
    # Emitted only when set, like the multi-core fields, so legacy
    # payloads (and their sweep-cache hashes) stay byte-identical.
    if spec.stream:
        payload["stream"] = True
    return payload


def spec_from_payload(payload: Mapping) -> SimulationSpec:
    """Inverse of :func:`spec_to_payload`."""
    version = payload.get("version", PAYLOAD_VERSION)
    if version != PAYLOAD_VERSION:
        raise ValueError(f"unsupported spec payload version {version!r}")
    guard = payload.get("guard")
    hybrid = payload.get("hybrid")
    latency = payload.get("latency")
    classes = payload.get("priority_classes")
    return SimulationSpec(
        trace=_trace_from_payload(payload["trace"]),
        mode=payload.get("mode", "intra"),
        scheduler=payload.get("scheduler", "sunflow"),
        network=NetworkSpec(**payload.get("network", {})),
        policy=payload.get("policy"),
        order=payload.get("order", ReservationOrder.ORDERED_PORT.value),
        switch_model=payload.get("switch_model", SwitchModel.NOT_ALL_STOP.value),
        guard=None if guard is None else GuardSpec(**guard),
        hybrid=None if hybrid is None else HybridConfig(**hybrid),
        latency=None if latency is None else LatencyConfig(**latency),
        priority_classes=(
            None if classes is None else tuple((int(k), int(v)) for k, v in classes)
        ),
        seed=payload.get("seed"),
        multicore_policy=payload.get("multicore_policy"),
        stream=payload.get("stream", False),
    )


def override_spec(spec: SimulationSpec, path: str, value) -> SimulationSpec:
    """Return ``spec`` with the dotted ``path`` replaced by ``value``.

    Paths address spec fields (``"scheduler"``, ``"seed"``) and nested
    frozen-dataclass fields (``"network.delta"``, ``"trace.seed"``,
    ``"guard.tau"``, ``"hybrid.packet_bandwidth_fraction"``).  Overriding
    into a nested spec that is ``None`` (e.g. ``guard.tau`` without a base
    guard) is an error — the base spec must carry the structure.
    """
    head, _, rest = path.partition(".")
    valid = {f.name for f in fields(spec)}
    if head not in valid:
        raise ValueError(f"unknown spec field {head!r} in override {path!r}")
    if not rest:
        return replace(spec, **{head: value})
    nested = getattr(spec, head)
    if nested is None:
        raise ValueError(
            f"cannot override {path!r}: base spec has no {head!r} section"
        )
    nested_fields = {f.name for f in fields(nested)}
    if rest not in nested_fields:
        raise ValueError(f"unknown field {rest!r} of {head!r} in override {path!r}")
    return replace(spec, **{head: replace(nested, **{rest: value})})
