"""Unified simulation facade (``repro.api``).

The one-call surface over the repository's seven historical entry points:
build a frozen :class:`SimulationSpec` and hand it to :func:`simulate`.
Specs are declarative and JSON-serializable, which is what lets the
:mod:`repro.sweep` engine fan grids of them across worker processes and
content-hash them for its result cache.

    from repro.api import NetworkSpec, SimulationSpec, TraceSpec, simulate

    spec = SimulationSpec(
        trace=TraceSpec(num_coflows=200, max_width=40, seed=2016, perturb=0.05),
        mode="inter",
        scheduler="sunflow",
        network=NetworkSpec(bandwidth_bps=1e9, delta=0.01),
    )
    report = simulate(spec)

The legacy ``simulate_*`` functions keep working unchanged (now with
:class:`DeprecationWarning` shims on their historical keyword spellings —
see :mod:`repro.compat`).
"""

from repro.api.facade import simulate
from repro.api.spec import (
    MODES,
    PAYLOAD_VERSION,
    SCHEDULERS,
    GuardSpec,
    NetworkSpec,
    SimulationSpec,
    TraceSpec,
    override_spec,
    spec_from_payload,
    spec_to_payload,
)
from repro.compat import LEGACY_KEYWORD_ALIASES, canonical_kwargs

__all__ = [
    "simulate",
    "MODES",
    "SCHEDULERS",
    "PAYLOAD_VERSION",
    "GuardSpec",
    "NetworkSpec",
    "SimulationSpec",
    "TraceSpec",
    "override_spec",
    "spec_from_payload",
    "spec_to_payload",
    "LEGACY_KEYWORD_ALIASES",
    "canonical_kwargs",
]
