"""The unified simulation entry point: ``repro.api.simulate(spec)``.

One signature for every evaluation backend.  The (mode, scheduler) pair
selects among the seven historical entry points:

========  ================  ============================================
mode      scheduler         legacy entry point
========  ================  ============================================
intra     sunflow           ``simulate_intra_sunflow``
intra     solstice/tms/     ``simulate_intra_assignment``
          edmond
intra     sunflow-hybrid    ``simulate_intra_hybrid``
inter     sunflow           ``simulate_inter_sunflow``
inter     varys/aalo        ``simulate_packet``
inter     sunflow-hybrid    ``simulate_inter_hybrid``
inter     system            ``simulate_system``
========  ================  ============================================

The legacy functions remain importable and behave exactly as before;
``simulate`` is a dispatcher over them, so results are identical by
construction (asserted per backend by ``tests/api/test_facade.py``).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.api.spec import SimulationSpec
from repro.core.policies import POLICIES, Policy
from repro.core.sunflow import ReservationOrder
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim.assignment_exec import SwitchModel
from repro.sim.circuit_sim import (
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
)
from repro.sim.hybrid import HybridConfig, simulate_inter_hybrid, simulate_intra_hybrid
from repro.sim.multicore_sim import simulate_inter_multicore, simulate_intra_multicore
from repro.sim.packet_sim import simulate_packet
from repro.sim.results import SimulationReport
from repro.sim.aalo import AaloAllocator
from repro.sim.varys import VarysAllocator
from repro.system.runner import simulate_system

_ASSIGNMENT_SCHEDULERS = {
    "solstice": SolsticeScheduler,
    "tms": TmsScheduler,
    "edmond": EdmondScheduler,
}
_PACKET_ALLOCATORS = {
    "varys": VarysAllocator,
    "aalo": AaloAllocator,
}


def _resolve_policy(spec: SimulationSpec) -> Optional[Policy]:
    if spec.policy is None:
        return None
    try:
        return POLICIES[spec.policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {spec.policy!r}; expected one of {sorted(POLICIES)}"
        ) from None


def _unsupported(spec: SimulationSpec) -> ValueError:
    return ValueError(
        f"scheduler {spec.scheduler!r} does not support mode {spec.mode!r}"
    )


def simulate(spec: SimulationSpec) -> SimulationReport:
    """Run the scenario a :class:`~repro.api.spec.SimulationSpec` describes.

    Returns the same :class:`~repro.sim.results.SimulationReport` the
    matching legacy entry point would, for any of the eight backends —
    except ``stream=True`` runs, which return a
    :class:`~repro.sim.streaming.StreamingResult` (bounded-memory
    aggregates instead of per-Coflow records; the simulation itself is
    bit-identical).

    Raises:
        ValueError: for (mode, scheduler) pairs with no backend — e.g. the
            assignment baselines have no inter-Coflow replay, and the
            packet allocators and system stack have no intra mode.
    """
    if spec.stream:
        # Dispatched before resolve_trace(): materializing the trace is
        # exactly what the streaming path exists to avoid.
        return _simulate_stream(spec)
    trace = spec.resolve_trace()
    bandwidth = spec.network.bandwidth_bps
    delta = spec.network.delta
    order = ReservationOrder(spec.order)
    rng = random.Random(spec.seed) if spec.seed is not None else None

    multicore = spec.network.num_cores > 1 or spec.multicore_policy is not None
    if multicore and spec.scheduler != "sunflow":
        raise ValueError(
            f"scheduler {spec.scheduler!r} has no K-core backend; "
            "multi-core fabrics require scheduler='sunflow'"
        )

    if spec.scheduler == "sunflow":
        if multicore:
            if spec.guard is not None:
                raise ValueError(
                    "starvation guards are single-switch-only; remove the "
                    "guard or set network.num_cores=1"
                )
            cores = spec.network.cores()
            if spec.mode == "intra":
                return simulate_intra_multicore(
                    trace,
                    cores,
                    multicore_policy=spec.multicore_policy,
                    order=order,
                    rng=rng,
                )
            return simulate_inter_multicore(
                trace,
                cores,
                multicore_policy=spec.multicore_policy,
                policy=_resolve_policy(spec),
                order=order,
                priority_classes=spec.priority_mapping(),
                rng=rng,
            )
        if spec.mode == "intra":
            return simulate_intra_sunflow(
                trace, bandwidth, delta, order=order, rng=rng
            )
        guard = (
            spec.guard.build(trace.num_ports, delta)
            if spec.guard is not None
            else None
        )
        return simulate_inter_sunflow(
            trace,
            bandwidth,
            delta,
            policy=_resolve_policy(spec),
            order=order,
            guard=guard,
            priority_classes=spec.priority_mapping(),
            rng=rng,
        )

    if spec.scheduler in _ASSIGNMENT_SCHEDULERS:
        if spec.mode != "intra":
            raise _unsupported(spec)
        scheduler = _ASSIGNMENT_SCHEDULERS[spec.scheduler]()
        return simulate_intra_assignment(
            trace,
            scheduler,
            bandwidth,
            delta,
            model=SwitchModel(spec.switch_model),
        )

    if spec.scheduler in _PACKET_ALLOCATORS:
        if spec.mode != "inter":
            raise _unsupported(spec)
        allocator = _PACKET_ALLOCATORS[spec.scheduler]()
        return simulate_packet(trace, allocator, bandwidth)

    if spec.scheduler == "sunflow-hybrid":
        config = spec.hybrid if spec.hybrid is not None else HybridConfig()
        if spec.mode == "intra":
            return simulate_intra_hybrid(trace, config, bandwidth, delta, order=order)
        return simulate_inter_hybrid(trace, config, bandwidth, delta)

    if spec.scheduler == "system":
        if spec.mode != "inter":
            raise _unsupported(spec)
        return simulate_system(
            trace,
            bandwidth,
            delta,
            latency=spec.latency,
            policy=_resolve_policy(spec),
            priority_classes=spec.priority_mapping(),
        )

    raise AssertionError(f"unhandled scheduler {spec.scheduler!r}")  # pragma: no cover


def _simulate_stream(spec: SimulationSpec):
    """The ``stream=True`` path: lazy arrivals, bounded-memory report.

    Spec validation already pinned mode/scheduler/single-core; here we
    only build the arrival stream (without materializing declarative
    traces) and hand off to
    :func:`repro.sim.streaming.simulate_inter_sunflow_stream`.
    """
    from repro.api.spec import TraceSpec
    from repro.sim.streaming import simulate_inter_sunflow_stream
    from repro.workloads.stream import ArrivalStream

    if isinstance(spec.trace, TraceSpec):
        arrivals = spec.trace.open_stream()
    else:
        ordered = spec.trace.sorted_by_arrival()
        arrivals = ArrivalStream(ordered.num_ports, ordered.coflows, len(ordered))
    guard = (
        spec.guard.build(arrivals.num_ports, spec.network.delta)
        if spec.guard is not None
        else None
    )
    return simulate_inter_sunflow_stream(
        arrivals,
        bandwidth_bps=spec.network.bandwidth_bps,
        delta=spec.network.delta,
        policy=_resolve_policy(spec),
        order=ReservationOrder(spec.order),
        guard=guard,
        priority_classes=spec.priority_mapping(),
        rng=random.Random(spec.seed) if spec.seed is not None else None,
    )
