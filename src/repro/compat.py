"""Keyword-compatibility shims for the legacy ``simulate_*`` entry points.

The seven historical entry points grew up in different modules and, with
them, different keyword spellings for the same physical quantities (the
reconfiguration delay has been called ``delta`` and ``reconf_delay``; the
link rate ``bandwidth_bps``, ``bandwidth`` and ``rate_bps``).  The
:mod:`repro.api` facade fixes one canonical spelling per quantity; this
module keeps the old spellings alive on the legacy functions behind a
:class:`DeprecationWarning` so existing call sites keep working while new
code migrates.

Each warning fires **once per call site** (caller file and line), not
once per call: a legacy invocation inside a sweep loop flags itself on
the first iteration and then stays quiet instead of flooding stderr,
while distinct call sites each still get their own notice.  The keyword
rewrite itself runs on every call regardless.

Deliberately dependency-free (only the :mod:`functools`, :mod:`sys` and
:mod:`warnings` stdlib modules) so any simulator module can import it
without creating a cycle with ``repro.api``.
"""

from __future__ import annotations

import functools
import sys
import warnings
from typing import Callable, Set, Tuple, TypeVar

F = TypeVar("F", bound=Callable)

#: Deprecated keyword -> canonical keyword, shared by every legacy entry
#: point.  ``repro.api`` accepts only the canonical spellings.
LEGACY_KEYWORD_ALIASES = {
    "reconf_delay": "delta",
    "reconfiguration_delay": "delta",
    "bandwidth": "bandwidth_bps",
    "rate_bps": "bandwidth_bps",
}

#: Call sites already warned, as ``(caller file, caller line, function,
#: alias)``.  Module-level on purpose: the once-per-site memory spans
#: every shimmed entry point for the life of the process.
_warned_sites: Set[Tuple[str, int, str, str]] = set()


def canonical_kwargs(**aliases: str) -> Callable[[F], F]:
    """Decorator mapping deprecated keyword spellings onto canonical ones.

    ``canonical_kwargs(reconf_delay="delta")`` lets callers keep writing
    ``fn(reconf_delay=0.01)``: the call is rewritten to ``fn(delta=0.01)``
    and a :class:`DeprecationWarning` names the replacement.  Passing both
    the alias and its canonical spelling is a :class:`TypeError` (the call
    is ambiguous).

    The warning is emitted once per call site — identified by the
    caller's file and line — so a deprecated spelling inside a loop or a
    sweep harness produces one notice, not thousands.  Only the warning
    is deduplicated; the alias-to-canonical rewrite (and the ambiguity
    check) runs on every call.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for alias, canonical in aliases.items():
                if alias not in kwargs:
                    continue
                if canonical in kwargs:
                    raise TypeError(
                        f"{fn.__name__}() got deprecated keyword {alias!r} "
                        f"alongside its canonical spelling {canonical!r}"
                    )
                caller = sys._getframe(1)
                site = (
                    caller.f_code.co_filename,
                    caller.f_lineno,
                    fn.__name__,
                    alias,
                )
                if site not in _warned_sites:
                    _warned_sites.add(site)
                    warnings.warn(
                        f"keyword {alias!r} of {fn.__name__}() is deprecated; "
                        f"use {canonical!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                kwargs[canonical] = kwargs.pop(alias)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def legacy_entry_point(fn: F) -> F:
    """The standard shim applied to every legacy ``simulate_*`` function."""
    return canonical_kwargs(**LEGACY_KEYWORD_ALIASES)(fn)


def deprecated_entry_point(replacement: str) -> Callable[[F], F]:
    """Decorator marking a whole callable as superseded.

    Unlike :func:`canonical_kwargs` (which deprecates individual keyword
    spellings), this flags the callable itself: calling it emits a
    :class:`DeprecationWarning` naming ``replacement``, once per call
    site, then runs the original unchanged.  Used to retire standalone
    scheduler entry points behind ``repro.api.simulate``.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            caller = sys._getframe(1)
            site = (
                caller.f_code.co_filename,
                caller.f_lineno,
                fn.__qualname__,
                "__deprecated__",
            )
            if site not in _warned_sites:
                _warned_sites.add(site)
                warnings.warn(
                    f"{fn.__qualname__}() is deprecated; {replacement}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
