"""Units and physical constants used throughout the library.

The paper quotes flow sizes in megabytes, link rates in gigabits per second
and reconfiguration delays in milliseconds.  Internally this library uses a
single consistent system:

* data sizes in **bytes** (floats are fine; the trace rounds to megabytes),
* bandwidth in **bits per second**,
* time in **seconds**.

``processing_time`` implements Equation (1) of the paper, ``p = d / B``,
with the byte/bit conversion made explicit so call sites cannot get it
wrong.
"""

from __future__ import annotations

#: One megabyte, in bytes (decimal, as used by the Facebook trace).
MB = 10**6

#: One gigabyte, in bytes.
GB = 10**9

#: One gigabit per second, in bits per second.
GBPS = 10**9

#: One megabit per second, in bits per second.
MBPS = 10**6

#: One millisecond, in seconds.
MS = 1e-3

#: One microsecond, in seconds.
US = 1e-6

#: Default circuit reconfiguration delay: 10 ms, typical of a 3D-MEMS
#: optical switch (paper §5.1).
DEFAULT_DELTA = 10 * MS

#: Default link bandwidth: 1 Gbps, the original setting of the trace.
DEFAULT_BANDWIDTH = 1 * GBPS

#: Number of bits in a byte, spelled out for readability at call sites.
BITS_PER_BYTE = 8


def processing_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Return the time in seconds to transmit ``size_bytes`` at ``bandwidth_bps``.

    This is Equation (1) of the paper: ``p_ij = d_ij / B``, where demand is
    measured in bits and bandwidth in bits per second.

    Raises:
        ValueError: if the bandwidth is not strictly positive or the size is
            negative.
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes!r}")
    return (size_bytes * BITS_PER_BYTE) / bandwidth_bps


def size_from_processing_time(seconds: float, bandwidth_bps: float) -> float:
    """Inverse of :func:`processing_time`: bytes transferable in ``seconds``."""
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds!r}")
    return seconds * bandwidth_bps / BITS_PER_BYTE
