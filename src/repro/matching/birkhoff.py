"""Birkhoff–von-Neumann decomposition — backend dispatcher.

The decomposition lives twice in the tree:

* :mod:`repro.matching.birkhoff_reference` — the original pure-Python
  implementation (and home of :class:`BvnTerm`/:func:`reconstruct`),
  kept verbatim as the behavioural contract;
* :mod:`repro.kernels.decomposition` — the vectorized twin that threads
  one incremental support matcher through the whole drain, returning
  the same terms (see its docstring for the equivalence argument).

Dispatch follows the ``REPRO_KERNEL`` environment variable per call.
"""

from __future__ import annotations

from typing import List

from repro.kernels import decomposition as _kernel
from repro.kernels import numpy_enabled
from repro.matching import birkhoff_reference as _reference
from repro.matching.birkhoff_reference import BvnTerm, reconstruct

__all__ = ["BvnTerm", "birkhoff_von_neumann", "reconstruct"]


def birkhoff_von_neumann(matrix, max_terms: int = 0) -> List[BvnTerm]:
    """Decompose a matrix with equal line sums into weighted permutations."""
    if numpy_enabled():
        return _kernel.birkhoff_von_neumann(matrix, max_terms=max_terms)
    return _reference.birkhoff_von_neumann(matrix, max_terms=max_terms)
