"""Hungarian algorithm (Jonker–Volgenant style) — backend dispatcher.

The algorithm lives twice in the tree:

* :mod:`repro.matching.hungarian_reference` — the original pure-Python
  implementation, kept verbatim as the behavioural contract;
* :mod:`repro.kernels.assignment` — the vectorized numpy twin, built to
  return identical assignments (see its docstring for the equivalence
  argument).

This module picks one per call based on the ``REPRO_KERNEL`` environment
variable (``numpy`` by default, ``python`` for the fallback) so every
consumer — the Edmond baseline scheduler most importantly — honours the
runtime backend selection.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.kernels import assignment as _kernel
from repro.kernels import numpy_enabled
from repro.matching import hungarian_reference as _reference


def min_cost_assignment(cost: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Minimum-cost perfect assignment ``{row: column}`` of a square matrix."""
    if numpy_enabled():
        return _kernel.min_cost_assignment(cost)
    return _reference.min_cost_assignment(cost)


def max_weight_assignment(weight: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Maximum-weight perfect assignment (costs negated)."""
    if numpy_enabled():
        return _kernel.max_weight_assignment(weight)
    return _reference.max_weight_assignment(weight)


def max_weight_matching(weight: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Maximum-weight matching: the perfect assignment minus zero-weight pairs."""
    if numpy_enabled():
        return _kernel.max_weight_matching(weight)
    return _reference.max_weight_matching(weight)
