"""Demand-matrix stuffing: making a matrix decomposable (paper §3.1.1).

Both TMS and Solstice pre-process the requested demand matrix before
decomposing it into circuit assignments:

* **Sinkhorn scaling** (TMS): iteratively normalize rows and columns so the
  matrix becomes (approximately) doubly stochastic — the input the
  Birkhoff–von-Neumann theorem requires.  Entries may be *scaled*, which is
  why TMS can serve the original demand poorly.
* **QuickStuff** (Solstice): *add dummy demand* so that every row and
  column sums to the same total.  The original entries are preserved;
  only the dummy bytes are wasted.  A doubly-“stochastic” (equal line sums)
  non-negative matrix always admits a perfect matching on its positive
  entries, which BigSlice exploits.

Matrices here are dense ``n × n`` nested lists or numpy arrays; helpers
return plain nested lists so callers can mutate freely.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def _as_matrix(matrix: Sequence[Sequence[float]]) -> List[List[float]]:
    n = len(matrix)
    out = [list(map(float, row)) for row in matrix]
    for row in out:
        if len(row) != n:
            raise ValueError("demand matrix must be square")
        for value in row:
            if value < 0:
                raise ValueError("demand must be non-negative")
    return out


def line_sums(matrix: Sequence[Sequence[float]]) -> Tuple[List[float], List[float]]:
    """Row sums and column sums of a square matrix."""
    n = len(matrix)
    rows = [sum(matrix[i][j] for j in range(n)) for i in range(n)]
    cols = [sum(matrix[i][j] for i in range(n)) for j in range(n)]
    return rows, cols


def sinkhorn_scale(
    matrix: Sequence[Sequence[float]],
    iterations: int = 100,
    tolerance: float = 1e-9,
) -> List[List[float]]:
    """Sinkhorn–Knopp scaling toward a doubly stochastic matrix.

    Rows and columns are alternately normalized to sum to 1.  Zeros are
    preserved; a row or column that is entirely zero keeps summing to zero
    (the matrix then cannot become doubly stochastic — BvN callers guard by
    stuffing first).

    Returns the scaled matrix after convergence or ``iterations`` passes.
    """
    work = _as_matrix(matrix)
    n = len(work)
    # Pre-normalize by the largest entry so typical inputs are O(1)
    # (pure scaling — the doubly stochastic limit is unchanged), and skip
    # normalizing lines whose sums are too small to invert safely:
    # inverting a denormal sum overflows to inf and poisons the matrix
    # with NaNs.
    peak = max((value for row in work for value in row), default=0.0)
    if peak > 0:
        work = [[value / peak for value in row] for row in work]
    safe = 1e-300
    for _ in range(iterations):
        rows, _ = line_sums(work)
        for i in range(n):
            if rows[i] > safe:
                scale = 1.0 / rows[i]
                work[i] = [value * scale for value in work[i]]
        _, cols = line_sums(work)
        for j in range(n):
            if cols[j] > safe:
                scale = 1.0 / cols[j]
                for i in range(n):
                    work[i][j] *= scale
        rows, cols = line_sums(work)
        drift = max(
            [abs(r - 1.0) for r in rows if r > 0]
            + [abs(c - 1.0) for c in cols if c > 0]
            + [0.0]
        )
        if drift <= tolerance:
            break
    return work


def quick_stuff(matrix: Sequence[Sequence[float]]) -> Tuple[List[List[float]], List[List[float]]]:
    """Solstice's QuickStuff: pad with dummy demand to equal line sums.

    Every row and column of the result sums to ``max(line sums)`` of the
    input.  Padding is greedy: walk the cells and pour the smaller of the
    row/column deficits into each, which terminates because total row
    deficit equals total column deficit.

    Returns:
        ``(stuffed, dummy)`` — the padded matrix and the dummy-only part
        (``stuffed - original``), so executors can avoid counting dummy
        bytes as real service.
    """
    work = _as_matrix(matrix)
    n = len(work)
    rows, cols = line_sums(work)
    target = max(rows + cols) if n else 0.0
    row_deficit = [target - r for r in rows]
    col_deficit = [target - c for c in cols]
    dummy = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if row_deficit[i] <= 0:
                break
            pour = min(row_deficit[i], col_deficit[j])
            if pour > 0:
                work[i][j] += pour
                dummy[i][j] += pour
                row_deficit[i] -= pour
                col_deficit[j] -= pour
    return work, dummy


def is_doubly_stochastic(
    matrix: Sequence[Sequence[float]], tolerance: float = 1e-6
) -> bool:
    """True if every row and column sums to 1 within ``tolerance``."""
    rows, cols = line_sums(matrix)
    return all(abs(r - 1.0) <= tolerance for r in rows) and all(
        abs(c - 1.0) <= tolerance for c in cols
    )


def has_equal_line_sums(
    matrix: Sequence[Sequence[float]], tolerance: float = 1e-6
) -> bool:
    """True if all row sums and column sums are equal within ``tolerance``."""
    rows, cols = line_sums(matrix)
    sums = rows + cols
    if not sums:
        return True
    reference = sums[0]
    scale = max(abs(reference), 1.0)
    return all(abs(s - reference) <= tolerance * scale for s in sums)
