"""Bipartite matching and matrix-decomposition substrates.

Everything the circuit-scheduling baselines (Solstice, TMS, Edmond) need,
implemented from scratch: Hopcroft–Karp maximum matching, the Hungarian
assignment algorithm, Sinkhorn/QuickStuff matrix stuffing, and the
Birkhoff–von-Neumann decomposition.
"""

from repro.matching.birkhoff import BvnTerm, birkhoff_von_neumann, reconstruct
from repro.matching.hopcroft_karp import (
    matching_from_matrix,
    maximum_bipartite_matching,
    perfect_matching,
)
from repro.matching.hungarian import (
    max_weight_assignment,
    max_weight_matching,
    min_cost_assignment,
)
from repro.matching.stuffing import (
    has_equal_line_sums,
    is_doubly_stochastic,
    line_sums,
    quick_stuff,
    sinkhorn_scale,
)

__all__ = [
    "BvnTerm",
    "birkhoff_von_neumann",
    "reconstruct",
    "matching_from_matrix",
    "maximum_bipartite_matching",
    "perfect_matching",
    "max_weight_assignment",
    "max_weight_matching",
    "min_cost_assignment",
    "has_equal_line_sums",
    "is_doubly_stochastic",
    "line_sums",
    "quick_stuff",
    "sinkhorn_scale",
]
