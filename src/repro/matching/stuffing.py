"""Demand-matrix stuffing (Sinkhorn, QuickStuff) — backend dispatcher.

Two implementations back this module:

* :mod:`repro.matching.stuffing_reference` — the original pure-Python
  implementation, kept verbatim as the behavioural contract;
* :mod:`repro.kernels.matrix` — the vectorized twin (``quick_stuff`` is
  bit-for-bit identical; ``sinkhorn_scale`` may differ from the
  reference by an ulp through numpy's pairwise summation, which the TMS
  duration tolerance absorbs — see the kernel docstring).

Dispatch follows the ``REPRO_KERNEL`` environment variable per call.
For API stability the public functions keep the reference's plain
nested-list return types regardless of backend; the scheduler pipeline
talks to :mod:`repro.kernels` directly and stays in ndarray land.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.kernels import matrix as _kernel
from repro.kernels import numpy_enabled
from repro.matching import stuffing_reference as _reference
from repro.matching.stuffing_reference import is_doubly_stochastic

__all__ = [
    "has_equal_line_sums",
    "is_doubly_stochastic",
    "line_sums",
    "quick_stuff",
    "sinkhorn_scale",
]


def line_sums(matrix: Sequence[Sequence[float]]) -> Tuple[List[float], List[float]]:
    """Row sums and column sums of a square matrix."""
    if numpy_enabled():
        return _kernel.line_sums(matrix)
    return _reference.line_sums(matrix)


def has_equal_line_sums(
    matrix: Sequence[Sequence[float]], tolerance: float = 1e-6
) -> bool:
    """True if all row and column sums agree within relative ``tolerance``."""
    if numpy_enabled():
        return _kernel.has_equal_line_sums(matrix, tolerance=tolerance)
    return _reference.has_equal_line_sums(matrix, tolerance=tolerance)


def quick_stuff(
    matrix: Sequence[Sequence[float]],
) -> Tuple[List[List[float]], List[List[float]]]:
    """Solstice's QuickStuff; returns ``(stuffed, dummy)`` nested lists."""
    if numpy_enabled():
        stuffed, dummy = _kernel.quick_stuff(matrix)
        return stuffed.tolist(), dummy.tolist()
    return _reference.quick_stuff(matrix)


def sinkhorn_scale(
    matrix: Sequence[Sequence[float]],
    iterations: int = 100,
    tolerance: float = 1e-9,
) -> List[List[float]]:
    """Sinkhorn–Knopp scaling toward a doubly stochastic matrix."""
    if numpy_enabled():
        return _kernel.sinkhorn_scale(
            matrix, iterations=iterations, tolerance=tolerance
        ).tolist()
    return _reference.sinkhorn_scale(matrix, iterations=iterations, tolerance=tolerance)
