"""Hungarian algorithm for the assignment problem (O(n³), JV potentials).

Substrate for the Edmond baseline scheduler: prior OCS designs (Helios,
c-Through) compute a *maximum-weight matching* of input ports to output
ports over the demand matrix and hold it for a fixed slot.  On a bipartite
demand matrix the maximum-weight matching is the classic assignment
problem, solved here with the shortest-augmenting-path Hungarian method.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_INF = float("inf")


def min_cost_assignment(cost: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Minimum-cost perfect assignment of rows to columns.

    Args:
        cost: square matrix; ``cost[i][j]`` is the cost of pairing row ``i``
            with column ``j``.

    Returns:
        ``{row: column}`` achieving minimum total cost.

    Raises:
        ValueError: if the matrix is empty or not square.
    """
    n = len(cost)
    if n == 0:
        return {}
    for row in cost:
        if len(row) != n:
            raise ValueError("cost matrix must be square")

    # 1-indexed potentials/bookkeeping per the classic formulation.
    u: List[float] = [0.0] * (n + 1)
    v: List[float] = [0.0] * (n + 1)
    assignment: List[int] = [0] * (n + 1)  # column -> row
    way: List[int] = [0] * (n + 1)

    for i in range(1, n + 1):
        assignment[0] = i
        j0 = 0
        min_value = [_INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = assignment[j0]
            delta = _INF
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                current = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if current < min_value[j]:
                    min_value[j] = current
                    way[j] = j0
                if min_value[j] < delta:
                    delta = min_value[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[assignment[j]] += delta
                    v[j] -= delta
                else:
                    min_value[j] -= delta
            j0 = j1
            if assignment[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            assignment[j0] = assignment[j1]
            j0 = j1
    return {assignment[j] - 1: j - 1 for j in range(1, n + 1)}


def max_weight_assignment(weight: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Maximum-weight perfect assignment (negated costs).

    The returned assignment is perfect (covers every row); pairs with zero
    weight carry no demand and can be filtered by the caller.
    """
    negated = [[-value for value in row] for row in weight]
    return min_cost_assignment(negated)


def max_weight_matching(weight: Sequence[Sequence[float]]) -> Dict[int, int]:
    """Maximum-weight matching: perfect assignment minus zero-weight pairs.

    Because weights are non-negative, completing any matching to a perfect
    assignment with zero-weight edges never reduces total weight — so the
    optimal matching is the optimal assignment restricted to positive
    entries.
    """
    for row in weight:
        for value in row:
            if value < 0:
                raise ValueError("demand weights must be non-negative")
    perfect = max_weight_assignment(weight)
    return {i: j for i, j in perfect.items() if weight[i][j] > 0}
