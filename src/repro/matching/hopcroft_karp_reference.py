"""Hopcroft–Karp maximum bipartite matching.

Substrate for the circuit-scheduling baselines: Solstice's BigSlice step
needs perfect matchings over thresholded demand matrices, and the BvN
decomposition (TMS) needs perfect matchings over the positive support of a
doubly stochastic matrix.

The implementation is the classic O(E·√V) algorithm: repeated BFS layering
from free left vertices followed by DFS augmentation along shortest
alternating paths.  Vertices are arbitrary hashables on the left and right;
the graph is an adjacency mapping ``{left: iterable(right)}``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional

_INF = float("inf")


def maximum_bipartite_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Return a maximum matching as a ``{left: right}`` mapping.

    Args:
        adjacency: for each left vertex, the right vertices it may match.
            Left vertices with empty adjacency are allowed (never matched).

    Returns:
        A maximum-cardinality matching; each left vertex appears at most
        once as a key and each right vertex at most once as a value.
    """
    # Freeze adjacency to lists for repeated traversal.
    adj: Dict[Hashable, List[Hashable]] = {u: list(vs) for u, vs in adjacency.items()}
    match_left: Dict[Hashable, Hashable] = {}
    match_right: Dict[Hashable, Hashable] = {}
    distance: Dict[Hashable, float] = {}

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if an augmenting
        path exists."""
        queue: deque = deque()
        for u in adj:
            if u not in match_left:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                partner = match_right.get(v)
                if partner is None:
                    found = True
                elif distance[partner] == _INF:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return found

    def dfs(u: Hashable) -> bool:
        """Try to augment from left vertex ``u`` along the BFS layering."""
        for v in adj[u]:
            partner = match_right.get(v)
            if partner is None or (
                distance.get(partner) == distance[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INF
        return False

    while bfs():
        for u in list(adj):
            if u not in match_left:
                dfs(u)
    return match_left


def perfect_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Optional[Dict[Hashable, Hashable]]:
    """A matching covering *every* left vertex, or None if none exists."""
    matching = maximum_bipartite_matching(adjacency)
    if len(matching) == len(adjacency):
        return matching
    return None


def matching_from_matrix(
    matrix, threshold: float = 0.0
) -> Optional[Dict[int, int]]:
    """Perfect matching of rows to columns where ``matrix[i][j] > threshold``.

    Convenience wrapper used by the schedulers: rows/columns are switch
    ports, an edge exists where the (possibly thresholded) demand is
    positive.  ``matrix`` is any 2-D indexable (nested lists or a numpy
    array).  Returns None when no perfect matching exists.
    """
    n = len(matrix)
    adjacency = {
        i: [j for j in range(n) if matrix[i][j] > threshold] for i in range(n)
    }
    return perfect_matching(adjacency)
