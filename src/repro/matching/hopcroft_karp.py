"""Hopcroft–Karp maximum bipartite matching — backend dispatcher.

Two implementations back this module:

* :mod:`repro.matching.hopcroft_karp_reference` — the original
  pure-Python algorithm over hashable-vertex adjacency mappings;
* :mod:`repro.kernels.matching` — the ndarray-support twin used by the
  vectorized scheduler pipeline, proven to return the same matchings
  (see its docstring).

The adjacency-mapping entry points (:func:`maximum_bipartite_matching`,
:func:`perfect_matching`) take arbitrary hashable vertices, a shape the
kernels do not model, so they always run the reference.  The
matrix-support entry point dispatches on the ``REPRO_KERNEL`` backend.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.kernels import matching as _kernel
from repro.kernels import numpy_enabled
from repro.matching import hopcroft_karp_reference as _reference


def maximum_bipartite_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Dict[Hashable, Hashable]:
    """Maximum matching ``{left: right}`` over an adjacency mapping."""
    return _reference.maximum_bipartite_matching(adjacency)


def perfect_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Optional[Dict[Hashable, Hashable]]:
    """A perfect matching covering every left vertex, or ``None``."""
    return _reference.perfect_matching(adjacency)


def matching_from_matrix(
    matrix, threshold: float = 0.0
) -> Optional[Dict[int, int]]:
    """Perfect matching of rows to columns where ``matrix[i][j] > threshold``."""
    if numpy_enabled():
        return _kernel.matching_from_matrix(matrix, threshold=threshold)
    return _reference.matching_from_matrix(matrix, threshold=threshold)
