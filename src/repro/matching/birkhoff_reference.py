"""Birkhoff–von-Neumann decomposition.

The Birkhoff theorem: every doubly stochastic matrix is a convex
combination of permutation matrices.  The constructive decomposition —
repeatedly extract a perfect matching over the positive support, weight it
by the minimum matched entry, subtract, repeat — terminates in at most
``(n-1)² + 1`` terms because each step zeroes at least one entry.

This is the engine of the TMS baseline scheduler and, with weights
interpreted as slot durations, of the classic Time Slot Assignment
literature the paper contrasts Sunflow against.  It also solves the
``δ = 0`` intra-Coflow problem optimally (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.matching.hopcroft_karp_reference import matching_from_matrix
from repro.matching.stuffing_reference import has_equal_line_sums, line_sums

#: Entries below this fraction of the matrix scale are treated as zero.
_ZERO_TOLERANCE = 1e-12


@dataclass(frozen=True)
class BvnTerm:
    """One term of the decomposition: ``weight × permutation``.

    ``permutation`` maps row (input port) to column (output port).
    """

    weight: float
    permutation: Dict[int, int]


def birkhoff_von_neumann(
    matrix: Sequence[Sequence[float]],
    max_terms: int = 0,
) -> List[BvnTerm]:
    """Decompose a matrix with equal line sums into weighted permutations.

    Args:
        matrix: square non-negative matrix whose row sums all equal its
            column sums (doubly stochastic after normalization).  Callers
            with arbitrary demand should stuff first
            (:func:`repro.matching.stuffing.quick_stuff` or Sinkhorn).
        max_terms: optional cap on the number of terms (0 = no cap); used
            by schedulers that truncate long decompositions.

    Returns:
        Terms whose weighted permutations sum back to ``matrix`` (exactly,
        up to floating-point error) when not truncated.

    Raises:
        ValueError: if line sums are unequal, or no perfect matching exists
            over the positive entries (cannot happen for equal line sums by
            the Birkhoff–König argument, but guards numerical corner cases).
    """
    n = len(matrix)
    if n == 0:
        return []
    if not has_equal_line_sums(matrix, tolerance=1e-5):
        raise ValueError(
            "BvN requires equal row/column sums; stuff the matrix first"
        )
    work = [list(map(float, row)) for row in matrix]
    rows, _ = line_sums(work)
    scale = max(max(rows), 1e-30)
    zero = scale * _ZERO_TOLERANCE

    terms: List[BvnTerm] = []
    remaining = rows[0]
    while remaining > zero:
        matching = matching_from_matrix(work, threshold=zero)
        if matching is None:
            if remaining <= scale * 1e-6:
                # Floating-point crumbs left by the caller's subtractions;
                # the matrix is drained for all practical purposes.
                break
            raise ValueError(
                "no perfect matching over positive entries; "
                "matrix is not decomposable (check stuffing/tolerances)"
            )
        weight = min(work[i][j] for i, j in matching.items())
        terms.append(BvnTerm(weight=weight, permutation=dict(matching)))
        for i, j in matching.items():
            work[i][j] -= weight
            if work[i][j] < zero:
                work[i][j] = 0.0
        remaining -= weight
        if max_terms and len(terms) >= max_terms:
            break
    return terms


def reconstruct(terms: Sequence[BvnTerm], n: int) -> List[List[float]]:
    """Sum ``weight × permutation`` back into an ``n × n`` matrix."""
    matrix = [[0.0] * n for _ in range(n)]
    for term in terms:
        for i, j in term.permutation.items():
            matrix[i][j] += term.weight
    return matrix
