"""Sunflow reproduction: optical circuit scheduling for Coflows (CoNEXT 2016).

Public API re-exported at package level; see README.md for a tour.
"""

from repro import units
from repro.core import (
    Coflow,
    CoflowCategory,
    CoflowSchedule,
    CoflowTrace,
    Flow,
    PortReservationTable,
    ReservationOrder,
    ShortestFirst,
    StarvationGuard,
    SunflowScheduler,
    circuit_lower_bound,
    packet_lower_bound,
)

from repro import api, sweep

__version__ = "1.0.0"

__all__ = [
    "units",
    "api",
    "sweep",
    "Coflow",
    "CoflowCategory",
    "CoflowSchedule",
    "CoflowTrace",
    "Flow",
    "PortReservationTable",
    "ReservationOrder",
    "ShortestFirst",
    "StarvationGuard",
    "SunflowScheduler",
    "circuit_lower_bound",
    "packet_lower_bound",
]
