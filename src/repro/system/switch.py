"""Optical circuit switch component (paper §2.1, §6).

Executes :class:`~repro.system.messages.SetupCircuit` and
:class:`~repro.system.messages.TeardownCircuit` commands under the
not-all-stop model: a setup occupies the circuit's two ports immediately,
the circuit becomes live after the reservation's setup time, and the ports
free at the reservation's end — or at a teardown's release instant, the
inter-Coflow preemption path.  The switch *enforces* the port constraint
at runtime — a command that would double-book a port raises — so the
system simulation independently validates every schedule the controller
produces (rather than trusting the PRT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.prt import Reservation, TIME_EPS
from repro.system.messages import (
    CircuitDown,
    CircuitLive,
    SetupCircuit,
    TeardownCircuit,
)


class PortBusyError(RuntimeError):
    """A setup command arrived for a port that is still occupied."""


@dataclass
class _PortState:
    """Occupancy of one switch port."""

    busy_until: float = 0.0
    reservation: Optional[Reservation] = None


@dataclass
class SwitchEvent:
    """An output of the switch: deliver ``message`` at ``time``."""

    time: float
    message: object


class OpticalSwitch:
    """Runtime model of the N-port optical circuit switch.

    The switch is stateless about traffic — it only tracks port occupancy
    and emits the REACToR synchronization signals (:class:`CircuitLive`
    when a setup completes, :class:`CircuitDown` when the circuit drops).
    """

    def __init__(self, num_ports: int) -> None:
        if num_ports <= 0:
            raise ValueError(f"port count must be positive, got {num_ports!r}")
        self.num_ports = num_ports
        self._inputs: Dict[int, _PortState] = {}
        self._outputs: Dict[int, _PortState] = {}
        #: Total circuit establishments executed (reservations with setup).
        self.switching_count = 0

    def _state(self, table: Dict[int, _PortState], port: int) -> _PortState:
        if port < 0 or port >= self.num_ports:
            raise ValueError(f"port {port} outside a {self.num_ports}-port switch")
        return table.setdefault(port, _PortState())

    # ------------------------------------------------------------------
    def handle_setup(self, now: float, command: SetupCircuit) -> List[SwitchEvent]:
        """Execute a setup command received at ``now``.

        Returns the signals to deliver: ``CircuitLive`` at the end of the
        reconfiguration and ``CircuitDown`` at the reservation's planned
        end (superseded by an earlier teardown's down signal if one comes).

        Raises:
            PortBusyError: if either port is still held by an earlier
                reservation — the controller emitted an invalid schedule.
        """
        reservation = command.reservation
        if now > reservation.start + TIME_EPS:
            raise PortBusyError(f"setup for {reservation} arrived late at {now:.6f}")
        input_state = self._state(self._inputs, reservation.src)
        output_state = self._state(self._outputs, reservation.dst)
        for state, side in ((input_state, "input"), (output_state, "output")):
            if state.busy_until > reservation.start + TIME_EPS:
                raise PortBusyError(
                    f"{side} port busy until {state.busy_until:.6f}, cannot "
                    f"honor {reservation}"
                )
        input_state.busy_until = reservation.end
        input_state.reservation = reservation
        output_state.busy_until = reservation.end
        output_state.reservation = reservation
        if reservation.setup > 0:
            self.switching_count += 1
        return [
            SwitchEvent(
                time=reservation.transmit_start, message=CircuitLive(reservation)
            ),
            SwitchEvent(
                time=reservation.end,
                message=CircuitDown(reservation, actual_end=reservation.end),
            ),
        ]

    def handle_teardown(self, now: float, command: TeardownCircuit) -> List[SwitchEvent]:
        """Release a reservation's ports early (inter-Coflow preemption).

        Idempotent: tearing down a reservation that already ended (or was
        already torn down) does nothing.  Returns an early ``CircuitDown``
        so the host stops transmitting and reports its partial transfer.
        """
        reservation = command.reservation
        when = max(command.when, now)
        input_state = self._state(self._inputs, reservation.src)
        output_state = self._state(self._outputs, reservation.dst)
        if input_state.reservation != reservation or input_state.busy_until <= when + TIME_EPS:
            return []
        input_state.busy_until = when
        output_state.busy_until = when
        return [
            SwitchEvent(
                time=when, message=CircuitDown(reservation, actual_end=when)
            )
        ]

    # ------------------------------------------------------------------
    def input_busy_until(self, port: int) -> float:
        return self._state(self._inputs, port).busy_until

    def output_busy_until(self, port: int) -> float:
        return self._state(self._outputs, port).busy_until
