"""Control-plane messages of the deployed Sunflow system (paper §6).

The paper sketches the deployment stack: a centralized controller computes
PRT rows and distributes them; the optical switch executes circuit setups
(each taking ``δ``); a REACToR-style ToR signals hosts when their circuit
is live; a per-host agent then "sends the flow at line rate" and reports
progress back.  These dataclasses are the messages those components
exchange in :mod:`repro.system.runner`'s event-driven simulation.

All messages are immutable; times are absolute simulation seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.coflow import Coflow
from repro.core.prt import Reservation

Circuit = Tuple[int, int]


@dataclass(frozen=True)
class RegisterCoflow:
    """Client → controller: a new Coflow's endpoints and sizes (Varys-style
    clairvoyant registration; the task scheduler provides the info)."""

    coflow: Coflow


@dataclass(frozen=True)
class SetupCircuit:
    """Controller → switch: establish the circuit of one PRT reservation.

    The switch starts reconfiguring on receipt and the circuit becomes
    live ``reservation.setup`` seconds later (0 when the circuit is being
    continued without reconfiguration).
    """

    reservation: Reservation


@dataclass(frozen=True)
class TeardownCircuit:
    """Controller → switch: release a reservation's ports at ``when``.

    Inter-Coflow preemption: a replan (e.g. a shorter Coflow arrived) may
    reclaim port time promised to a lower-priority Coflow.  ``when`` is
    the physical release instant; transmission on the circuit stops there.
    """

    reservation: Reservation
    when: float


@dataclass(frozen=True)
class CircuitLive:
    """Switch → host agent: your circuit is up; transmit at line rate.

    This is the explicit synchronization signal REACToR provides between
    circuit setup and host transmission.
    """

    reservation: Reservation


@dataclass(frozen=True)
class CircuitDown:
    """Switch → host agent: the circuit dropped at ``actual_end`` (the
    reservation's planned end, or earlier if it was torn down)."""

    reservation: Reservation
    actual_end: float


@dataclass(frozen=True)
class TransferReport:
    """Host agent → controller: bytes moved during one reservation.

    ``finish_time`` is when the last byte left the host (the network-level
    completion the evaluation measures), which precedes the report's
    arrival at the controller by the report latency.
    """

    reservation: Reservation
    transmitted_seconds: float
    flow_finished: bool
    finish_time: float

    @property
    def coflow_id(self) -> int:
        return self.reservation.coflow_id

    @property
    def circuit(self) -> Circuit:
        return (self.reservation.src, self.reservation.dst)
