"""Centralized Sunflow controller (paper §6).

The controller is the system's brain: it collects Coflow registrations,
maintains the authoritative remaining-demand ledger from agents' transfer
reports, replans with :class:`~repro.core.sunflow.SunflowScheduler` at
Coflow arrivals and completions (plus when a report reveals a shortfall),
and issues circuit commands *just in time* — each ``SetupCircuit`` leaves
``command_latency`` before its reservation starts, so replanning simply
stops issuing a stale plan's remaining commands.

Replanning implements Sunflow's inter-Coflow preemption exactly as the
flow-level model does: every in-flight reservation is torn down at the
replan's effective instant and the remaining demand is rescheduled from
there, with circuits that keep serving the same flow continued without a
new ``δ`` (the ``established`` mechanism).  A plan version number
invalidates queued issue ticks from superseded plans — the standard lazy
cancellation pattern for event-driven control loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.coflow import Coflow
from repro.core.policies import CoflowView, Policy, ShortestFirst
from repro.core.prt import Reservation, TIME_EPS
from repro.core.sunflow import SunflowScheduler
from repro.sim.results import SimulationReport, make_record
from repro.system.messages import (
    RegisterCoflow,
    SetupCircuit,
    TeardownCircuit,
    TransferReport,
)

Circuit = Tuple[int, int]


@dataclass
class IssueTick:
    """Internal self-message: time to issue a planned reservation."""

    plan_version: int
    reservation: Reservation


@dataclass
class ControllerOutput:
    """What one controller step wants the runner to do."""

    #: Setup commands to deliver to the switch (after command latency).
    commands: List[SetupCircuit] = field(default_factory=list)
    #: Teardown commands to deliver to the switch (after command latency).
    teardowns: List[TeardownCircuit] = field(default_factory=list)
    #: Future issue ticks to schedule back to the controller.
    ticks: List[Tuple[float, IssueTick]] = field(default_factory=list)


@dataclass
class _CoflowLedger:
    """Controller-side view of one active Coflow."""

    coflow: Coflow
    #: Demand not yet reported transmitted, in processing seconds.
    total_left: Dict[Circuit, float]
    #: Latest network-level flow finish seen so far.
    last_finish: float = 0.0
    #: Circuit establishments issued for this Coflow (setup-paying).
    setups: int = 0
    #: Extra seconds to over-reserve per circuit after a delivery shortfall
    #: (e.g. a late circuit-live signal ate the window head).  Doubles on
    #: every repeated shortfall so retries always converge.
    retry_pad: Dict[Circuit, float] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return all(left <= TIME_EPS for left in self.total_left.values())


class SunflowController:
    """Online controller: plan, issue, observe, replan.

    Args:
        bandwidth_bps: line rate ``B`` used to convert demand to time.
        scheduler: the planning algorithm (a configured SunflowScheduler).
        policy: inter-Coflow priority policy.
        command_latency: controller→switch delay; commands are issued this
            long before their reservation starts and replans take effect
            one latency after the triggering observation.
        priority_classes: optional operator classes per Coflow id.
    """

    def __init__(
        self,
        bandwidth_bps: float,
        scheduler: SunflowScheduler,
        policy: Optional[Policy] = None,
        command_latency: float = 0.0,
        priority_classes: Optional[Dict[int, int]] = None,
    ) -> None:
        if command_latency < 0:
            raise ValueError("command latency must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.scheduler = scheduler
        self.policy = policy if policy is not None else ShortestFirst()
        self.command_latency = command_latency
        self.priority_classes = priority_classes or {}

        self._active: Dict[int, _CoflowLedger] = {}
        #: Issued reservations awaiting their transfer report, mapped to
        #: the service the controller currently expects from them.
        self._outstanding: Dict[Reservation, float] = {}
        self._planned: Dict[int, List[Reservation]] = {}
        self._plan_version = 0
        self.report = SimulationReport("sunflow-system", bandwidth_bps, scheduler.delta)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def handle_register(self, now: float, message: RegisterCoflow) -> ControllerOutput:
        coflow = message.coflow
        self._active[coflow.coflow_id] = _CoflowLedger(
            coflow=coflow,
            total_left=dict(coflow.processing_times(self.bandwidth_bps)),
        )
        return self._replan(now)

    def handle_report(self, now: float, message: TransferReport) -> ControllerOutput:
        expected = self._outstanding.pop(message.reservation, None)
        ledger = self._active.get(message.coflow_id)
        if ledger is None:
            return ControllerOutput()
        circuit = message.circuit
        left = ledger.total_left.get(circuit, 0.0) - message.transmitted_seconds
        ledger.total_left[circuit] = max(0.0, left)
        if message.transmitted_seconds > 0:
            ledger.last_finish = max(ledger.last_finish, message.finish_time)
        if message.flow_finished:
            ledger.retry_pad.pop(circuit, None)

        if ledger.done:
            self._complete(message.coflow_id, ledger)
            return self._replan(now)

        shortfall = (
            expected is not None
            and message.transmitted_seconds < expected - TIME_EPS
            and not message.flow_finished
        )
        if shortfall:
            # A glitch (late circuit-live signal, early teardown estimate
            # drift) delivered less than promised.  If the window moved
            # *nothing*, the glitch ate the whole reservation — over-reserve
            # the retry, doubling on repeats (capped) so retries converge.
            if message.transmitted_seconds <= TIME_EPS:
                previous_pad = ledger.retry_pad.get(circuit, 0.0)
                ledger.retry_pad[circuit] = min(
                    1000.0 * self.scheduler.delta,
                    max(self.scheduler.delta, 2.0 * previous_pad),
                )
            # Replan immediately only when nothing else is scheduled for
            # this circuit — otherwise the leftover simply rides along at
            # the next regular replan (avoids a replan per glitched report).
            if not self._circuit_covered(message.coflow_id, circuit):
                return self._replan(now)
        return ControllerOutput()

    def _circuit_covered(self, coflow_id: int, circuit: Circuit) -> bool:
        """True if a planned or in-flight reservation still serves ``circuit``."""
        for reservation in self._planned.get(coflow_id, ()):
            if (reservation.src, reservation.dst) == circuit:
                return True
        for reservation in self._outstanding:
            if (
                reservation.coflow_id == coflow_id
                and (reservation.src, reservation.dst) == circuit
            ):
                return True
        return False

    def handle_tick(self, now: float, tick: IssueTick) -> ControllerOutput:
        """Issue a planned reservation's setup command, unless superseded."""
        if tick.plan_version != self._plan_version:
            return ControllerOutput()
        queue = self._planned.get(tick.reservation.coflow_id, [])
        if tick.reservation not in queue:
            return ControllerOutput()
        queue.remove(tick.reservation)
        self._outstanding[tick.reservation] = tick.reservation.transmit_duration
        ledger = self._active.get(tick.reservation.coflow_id)
        if ledger is not None and tick.reservation.setup > 0:
            ledger.setups += 1
        return ControllerOutput(commands=[SetupCircuit(tick.reservation)])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _complete(self, coflow_id: int, ledger: _CoflowLedger) -> None:
        self.report.add(
            make_record(
                ledger.coflow,
                completion_time=ledger.last_finish,
                bandwidth_bps=self.bandwidth_bps,
                delta=self.scheduler.delta,
                switching_count=ledger.setups,
            )
        )
        del self._active[coflow_id]
        self._planned.pop(coflow_id, None)

    def _replan(self, now: float) -> ControllerOutput:
        """Preempt the old plan and reschedule everything from
        ``now + command_latency``."""
        self._plan_version += 1
        self._planned = {}
        effective = now + self.command_latency
        output = ControllerOutput()

        # Tear down in-flight reservations that outlive the new plan's
        # start; update their expected service and remember circuits that
        # stay configured so continuations skip (part of) the setup.
        established: Dict[int, Dict[Circuit, float]] = {}
        expected_by_circuit: Dict[Tuple[int, Circuit], float] = {}
        for reservation in list(self._outstanding):
            key = (reservation.coflow_id, (reservation.src, reservation.dst))
            if reservation.end <= effective + TIME_EPS:
                expected_by_circuit[key] = (
                    expected_by_circuit.get(key, 0.0) + self._outstanding[reservation]
                )
                continue
            estimate = max(
                0.0, min(reservation.end, effective) - reservation.transmit_start
            )
            estimate = min(estimate, self._outstanding[reservation])
            output.teardowns.append(TeardownCircuit(reservation, when=effective))
            if effective <= reservation.transmit_start + TIME_EPS:
                # Cancelled before any transmission: the agent never went
                # live and will send no report — settle the ledger now.
                del self._outstanding[reservation]
            else:
                self._outstanding[reservation] = estimate
                expected_by_circuit[key] = expected_by_circuit.get(key, 0.0) + estimate
            if reservation.start <= effective + TIME_EPS:
                remaining_setup = max(0.0, reservation.transmit_start - effective)
                established.setdefault(reservation.coflow_id, {})[
                    (reservation.src, reservation.dst)
                ] = remaining_setup

        views = []
        for cid, ledger in self._active.items():
            demand: Dict[Circuit, float] = {}
            for circuit, left in ledger.total_left.items():
                if left <= TIME_EPS:
                    continue
                pending = expected_by_circuit.get((cid, circuit), 0.0)
                value = max(0.0, left - pending)
                if value > TIME_EPS:
                    demand[circuit] = value + ledger.retry_pad.get(circuit, 0.0)
            views.append(
                CoflowView(
                    coflow_id=cid,
                    arrival_time=ledger.coflow.arrival_time,
                    remaining_times=demand,
                    priority_class=self.priority_classes.get(cid, 0),
                )
            )
        ordered = self.policy.order(views)
        demands = [
            (view.coflow_id, view.remaining_times)
            for view in ordered
            if view.remaining_times
        ]
        _, schedules = self.scheduler.schedule_many(
            demands, start_time=effective, established=established
        )

        for cid, schedule in schedules.items():
            self._planned[cid] = list(schedule.reservations)
            for reservation in schedule.reservations:
                issue_at = max(now, reservation.start - self.command_latency)
                output.ticks.append(
                    (issue_at, IssueTick(self._plan_version, reservation))
                )
        return output

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def finished(self) -> bool:
        return not self._active
