"""Per-host sending agent (paper §6).

One agent runs on each sending machine (one per input port in the rack
abstraction).  Mirroring the paper's modified Varys daemon: it learns each
Coflow's demand at registration, starts transmitting **at line rate** when
the REACToR circuit-live signal arrives, stops when the circuit-down
signal says the circuit dropped (at its planned end, or earlier if the
controller preempted it), and then reports the transfer.

The agent's byte counters are the authoritative record of what actually
moved — the controller's PRT is a plan; the agent reports reality
(including shortfalls when a live signal arrived late or a circuit was
torn down early).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.coflow import Coflow
from repro.core.prt import Reservation, TIME_EPS
from repro.system.messages import CircuitDown, CircuitLive, TransferReport

FlowKey = Tuple[int, int]  # (coflow_id, dst) — the agent owns one src port


@dataclass
class AgentEvent:
    """An output of the agent: deliver ``message`` at ``time``."""

    time: float
    message: TransferReport


class HostAgent:
    """The sending-side daemon for one input port.

    Args:
        port: the input port this agent's machine is attached to.
    """

    def __init__(self, port: int) -> None:
        self.port = port
        #: Remaining processing seconds per (coflow_id, dst).
        self._remaining: Dict[FlowKey, float] = {}
        #: Live transmissions: reservation -> transmission start time.
        self._active: Dict[Reservation, float] = {}
        #: Reservations already closed (down processed before/without live).
        self._closed: Set[Reservation] = set()

    # ------------------------------------------------------------------
    def register(self, coflow: Coflow, bandwidth_bps: float) -> None:
        """Learn the demand this port must send for a new Coflow."""
        for flow in coflow.flows:
            if flow.src == self.port:
                key = (coflow.coflow_id, flow.dst)
                self._remaining[key] = self._remaining.get(key, 0.0) + (
                    flow.processing_time(bandwidth_bps)
                )

    def remaining(self, coflow_id: int, dst: int) -> float:
        return self._remaining.get((coflow_id, dst), 0.0)

    # ------------------------------------------------------------------
    def handle_circuit_live(self, now: float, signal: CircuitLive) -> List[AgentEvent]:
        """Start transmitting; the transfer is accounted when the circuit
        drops (so early teardowns naturally shorten it)."""
        reservation = signal.reservation
        if reservation.src != self.port:
            raise ValueError(
                f"agent on port {self.port} received signal for {reservation}"
            )
        if reservation in self._closed:
            self._closed.discard(reservation)  # torn down before it went live
            return []
        self._active[reservation] = max(now, reservation.transmit_start)
        return []

    def handle_circuit_down(self, now: float, signal: CircuitDown) -> List[AgentEvent]:
        """Close the transmission window and report the transfer.

        ``signal.actual_end`` is when the circuit physically dropped; a
        stale planned-end signal arriving after an early teardown already
        closed the window is ignored.
        """
        reservation = signal.reservation
        if reservation.src != self.port:
            raise ValueError(
                f"agent on port {self.port} received signal for {reservation}"
            )
        if reservation not in self._active:
            if reservation not in self._closed:
                # Down before live: the reservation was aborted mid-setup.
                self._closed.add(reservation)
            return []
        started = self._active.pop(reservation)
        self._closed.add(reservation)

        key = (reservation.coflow_id, reservation.dst)
        left = self._remaining.get(key, 0.0)
        window = max(0.0, signal.actual_end - started)
        served = min(left, window)
        new_left = left - served
        finished = new_left <= TIME_EPS
        if key in self._remaining:
            if finished:
                self._remaining.pop(key, None)
            else:
                self._remaining[key] = new_left
        finish_time = started + served
        report = TransferReport(
            reservation=reservation,
            transmitted_seconds=served,
            flow_finished=finished,
            finish_time=finish_time if served > 0 else signal.actual_end,
        )
        return [AgentEvent(time=max(now, finish_time), message=report)]
