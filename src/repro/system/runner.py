"""System-level simulation runner (paper §6 deployment stack).

Wires the centralized controller, the optical switch and one host agent
per input port over a single discrete-event queue with configurable
control-plane latencies, then replays a Coflow trace end-to-end:

    client ──register──▶ controller ──SetupCircuit──▶ switch
                             ▲                           │ CircuitLive
                             └──TransferReport── agent ◀─┘

With all latencies zero the system-level CCTs reproduce the flow-level
simulator's (cross-validated by the test suite); positive latencies
quantify how much a real control plane would cost — an experiment the
paper leaves to deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compat import legacy_entry_point
from repro.core.coflow import CoflowTrace
from repro.core.policies import Policy
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.sim.engine import EventQueue
from repro.sim.results import SimulationReport
from repro.system.agent import HostAgent
from repro.system.controller import ControllerOutput, IssueTick, SunflowController
from repro.system.messages import (
    CircuitDown,
    CircuitLive,
    RegisterCoflow,
    SetupCircuit,
    TeardownCircuit,
    TransferReport,
)
from repro.system.switch import OpticalSwitch
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA


@dataclass(frozen=True)
class LatencyConfig:
    """Control-plane delays, all in seconds (default: ideal, zero).

    Attributes:
        registration: client → controller (Coflow announcement).
        command: controller → switch (circuit setup command).  The
            controller compensates by planning ``command`` ahead and
            issuing just-in-time.
        signal: switch → host (REACToR circuit-live signal).  Uncompensated
            — a late signal shrinks the usable transmit window, and the
            shortfall is replanned (the "synchronization glitches" §6
            mentions).
        report: host → controller (transfer report).
    """

    registration: float = 0.0
    command: float = 0.0
    signal: float = 0.0
    report: float = 0.0

    def __post_init__(self) -> None:
        for name in ("registration", "command", "signal", "report"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} latency must be non-negative")


class SystemRunner:
    """Replays a trace through controller + switch + agents.

    Args:
        trace: the workload.
        bandwidth_bps / delta: network parameters.
        latency: control-plane delays.
        policy / order / priority_classes: scheduling configuration,
            forwarded to the controller.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        delta: float = DEFAULT_DELTA,
        latency: Optional[LatencyConfig] = None,
        policy: Optional[Policy] = None,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        priority_classes: Optional[Dict[int, int]] = None,
    ) -> None:
        self.trace = trace.sorted_by_arrival()
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency if latency is not None else LatencyConfig()
        self.switch = OpticalSwitch(trace.num_ports)
        self.agents = {port: HostAgent(port) for port in range(trace.num_ports)}
        self.controller = SunflowController(
            bandwidth_bps=bandwidth_bps,
            scheduler=SunflowScheduler(delta=delta, order=order),
            policy=policy,
            command_latency=self.latency.command,
            priority_classes=priority_classes,
        )

    # ------------------------------------------------------------------
    def run(self, max_events: int = 10_000_000) -> SimulationReport:
        """Drive the event loop to completion; returns the CCT report.

        Raises:
            RuntimeError: if the event budget is exhausted (a wiring bug —
                healthy runs use a few events per reservation).
        """
        queue: EventQueue = EventQueue()
        for coflow in self.trace:
            queue.push(
                coflow.arrival_time + self.latency.registration,
                ("controller", RegisterCoflow(coflow)),
            )

        events = 0
        while queue:
            events += 1
            if events > max_events:
                raise RuntimeError("event budget exhausted; runner wedged?")
            event = queue.pop()
            target, message = event.payload
            now = event.time

            if target == "controller":
                output = self._dispatch_controller(now, message)
                self._absorb(queue, now, output)
            elif target == "switch":
                if isinstance(message, SetupCircuit):
                    switch_events = self.switch.handle_setup(now, message)
                elif isinstance(message, TeardownCircuit):
                    switch_events = self.switch.handle_teardown(now, message)
                else:  # pragma: no cover - wiring is closed
                    raise AssertionError(f"switch cannot handle {message!r}")
                for switch_event in switch_events:
                    queue.push(
                        switch_event.time + self.latency.signal,
                        ("agent", switch_event.message),
                    )
            elif target == "agent":
                reservation = message.reservation
                agent = self.agents[reservation.src]
                if isinstance(message, CircuitLive):
                    agent_events = agent.handle_circuit_live(now, message)
                elif isinstance(message, CircuitDown):
                    agent_events = agent.handle_circuit_down(now, message)
                else:  # pragma: no cover - wiring is closed
                    raise AssertionError(f"agent cannot handle {message!r}")
                for agent_event in agent_events:
                    queue.push(
                        agent_event.time + self.latency.report,
                        ("controller", agent_event.message),
                    )
            else:  # pragma: no cover - wiring is closed
                raise AssertionError(f"unknown target {target!r}")

        if not self.controller.finished:
            raise RuntimeError(
                f"{self.controller.active_count} coflows never completed"
            )
        return self.controller.report

    # ------------------------------------------------------------------
    def _dispatch_controller(self, now: float, message) -> ControllerOutput:
        if isinstance(message, RegisterCoflow):
            for agent in self.agents.values():
                agent.register(message.coflow, self.bandwidth_bps)
            return self.controller.handle_register(now, message)
        if isinstance(message, TransferReport):
            return self.controller.handle_report(now, message)
        if isinstance(message, IssueTick):
            return self.controller.handle_tick(now, message)
        raise AssertionError(f"controller cannot handle {message!r}")

    def _absorb(self, queue: EventQueue, now: float, output: ControllerOutput) -> None:
        for teardown in output.teardowns:
            queue.push(now + self.latency.command, ("switch", teardown))
        for command in output.commands:
            queue.push(now + self.latency.command, ("switch", command))
        for time, tick in output.ticks:
            queue.push(max(time, now), ("controller", tick))


@legacy_entry_point
def simulate_system(
    trace: CoflowTrace,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    latency: Optional[LatencyConfig] = None,
    policy: Optional[Policy] = None,
    priority_classes: Optional[Dict[int, int]] = None,
) -> SimulationReport:
    """One-call system-level trace replay (controller/switch/agents)."""
    runner = SystemRunner(
        trace,
        bandwidth_bps=bandwidth_bps,
        delta=delta,
        latency=latency,
        policy=policy,
        priority_classes=priority_classes,
    )
    return runner.run()
