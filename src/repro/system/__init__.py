"""System-level deployment simulation (paper §6): controller, switch, agents."""

from repro.system.agent import HostAgent
from repro.system.controller import SunflowController
from repro.system.messages import (
    CircuitDown,
    CircuitLive,
    RegisterCoflow,
    SetupCircuit,
    TransferReport,
)
from repro.system.runner import LatencyConfig, SystemRunner, simulate_system
from repro.system.switch import OpticalSwitch, PortBusyError

__all__ = [
    "HostAgent",
    "SunflowController",
    "CircuitDown",
    "CircuitLive",
    "RegisterCoflow",
    "SetupCircuit",
    "TransferReport",
    "LatencyConfig",
    "SystemRunner",
    "simulate_system",
    "OpticalSwitch",
    "PortBusyError",
]
