"""Descriptive statistics of a Coflow trace.

One-stop summary of the workload characteristics the paper's §5.1 quotes
(Coflow counts, byte shares, widths, size distributions, arrival process)
— used by the ``repro-sunflow stats`` CLI command, by EXPERIMENTS.md's
workload description, and by tests validating the synthetic generator
against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.classify import CategoryBreakdown, classify
from repro.core.coflow import CoflowCategory, CoflowTrace
from repro.sim.results import percentile
from repro.units import MB


@dataclass
class TraceStatistics:
    """Aggregate description of one trace."""

    num_ports: int
    num_coflows: int
    total_bytes: float
    span_seconds: float
    breakdown: CategoryBreakdown
    #: Subflow counts per Coflow.
    widths: List[int]
    #: Flow sizes in bytes.
    flow_sizes: List[float]
    #: Inter-arrival gaps in seconds (sorted trace).
    interarrivals: List[float]

    # ------------------------------------------------------------------
    @property
    def mean_interarrival(self) -> float:
        if not self.interarrivals:
            return 0.0
        return sum(self.interarrivals) / len(self.interarrivals)

    def width_percentile(self, q: float) -> float:
        return percentile([float(w) for w in self.widths], q)

    def flow_size_percentile(self, q: float) -> float:
        return percentile(self.flow_sizes, q)

    def as_text(self) -> str:
        """Human-readable multi-line summary (the CLI's output)."""
        lines = [
            f"ports: {self.num_ports}   coflows: {self.num_coflows}   "
            f"total: {self.total_bytes / 1e9:.1f} GB   span: {self.span_seconds:.0f} s",
            f"mean inter-arrival: {self.mean_interarrival:.2f} s",
            "",
            f"{'category':>10} {'coflow %':>9} {'bytes %':>9}",
        ]
        for category in CoflowCategory:
            lines.append(
                f"{category.value:>10} "
                f"{self.breakdown.coflow_percent(category):>9.1f} "
                f"{self.breakdown.bytes_percent(category):>9.3f}"
            )
        lines.extend(
            [
                "",
                f"width |C|: median {self.width_percentile(50):.0f}, "
                f"p95 {self.width_percentile(95):.0f}, max {max(self.widths)}",
                f"flow size: median {self.flow_size_percentile(50) / MB:.1f} MB, "
                f"p95 {self.flow_size_percentile(95) / MB:.1f} MB, "
                f"max {max(self.flow_sizes) / MB:.0f} MB",
            ]
        )
        return "\n".join(lines)


def trace_statistics(trace: CoflowTrace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace.

    Raises:
        ValueError: for an empty trace (no statistics to speak of).
    """
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    ordered = trace.sorted_by_arrival()
    arrivals = [coflow.arrival_time for coflow in ordered]
    interarrivals = [b - a for a, b in zip(arrivals, arrivals[1:])]
    return TraceStatistics(
        num_ports=trace.num_ports,
        num_coflows=len(trace),
        total_bytes=trace.total_bytes,
        span_seconds=trace.span,
        breakdown=classify(trace),
        widths=[coflow.num_flows for coflow in trace],
        flow_sizes=[flow.size_bytes for coflow in trace for flow in coflow.flows],
        interarrivals=interarrivals,
    )
