"""Export simulation results as CSV for external plotting.

The benchmark harness prints paper-vs-measured rows; users who want the
actual figures (CDFs, scatters, sweeps) in their own plotting stack need
the underlying series.  These helpers write plain CSV — no plotting
dependency — in the layouts the paper's figures use:

* per-Coflow records (Figures 3, 7, 9 scatters),
* empirical CDFs (Figures 4, 5),
* labeled series from sweeps (Figures 6, 8, 10).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence, TextIO, Union

from repro.analysis.stats import ecdf
from repro.sim.results import SimulationReport

Destination = Union[str, Path, TextIO]


def _open(destination: Destination):
    if isinstance(destination, (str, Path)):
        return open(destination, "w", newline="", encoding="utf-8"), True
    return destination, False


RECORD_FIELDS = [
    "coflow_id",
    "arrival_time",
    "completion_time",
    "cct",
    "num_flows",
    "total_bytes",
    "category",
    "circuit_lower",
    "packet_lower",
    "cct_over_circuit_lower",
    "cct_over_packet_lower",
    "switching_count",
    "normalized_switching",
]


def write_records_csv(report: SimulationReport, destination: Destination) -> int:
    """Write one row per Coflow record; returns the number of rows.

    The columns carry everything the paper's per-Coflow scatters need —
    CCT, both lower bounds, their ratios, switching counts, category.
    """
    stream, owned = _open(destination)
    try:
        writer = csv.writer(stream)
        writer.writerow(["scheduler", "bandwidth_bps", "delta"] + RECORD_FIELDS)
        for record in report.records:
            writer.writerow(
                [report.scheduler, report.bandwidth_bps, report.delta]
                + [
                    record.coflow_id,
                    record.arrival_time,
                    record.completion_time,
                    record.cct,
                    record.num_flows,
                    record.total_bytes,
                    record.category.value,
                    record.circuit_lower,
                    record.packet_lower,
                    record.cct_over_circuit_lower,
                    record.cct_over_packet_lower,
                    record.switching_count,
                    record.normalized_switching,
                ]
            )
        return len(report.records)
    finally:
        if owned:
            stream.close()


def write_cdf_csv(
    series: Mapping[str, Sequence[float]], destination: Destination
) -> int:
    """Write empirical CDFs as ``series,value,fraction`` rows.

    One ECDF per named series (e.g. ``{"sunflow": ratios, "solstice":
    ratios}`` for Figure 4).  Returns the number of data rows written.
    """
    stream, owned = _open(destination)
    rows = 0
    try:
        writer = csv.writer(stream)
        writer.writerow(["series", "value", "fraction"])
        for name in sorted(series):
            for value, fraction in ecdf(list(series[name])):
                writer.writerow([name, value, fraction])
                rows += 1
        return rows
    finally:
        if owned:
            stream.close()


def write_sweep_csv(
    rows: Sequence[Mapping[str, object]],
    destination: Destination,
    fieldnames: Sequence[str] = (),
) -> int:
    """Write sweep results (one dict per point) as CSV.

    ``fieldnames`` fixes the column order; by default the first row's
    insertion order is used.  Missing keys become empty cells.
    """
    if not rows:
        raise ValueError("no sweep rows to write")
    names = list(fieldnames) if fieldnames else list(rows[0].keys())
    stream, owned = _open(destination)
    try:
        writer = csv.DictWriter(stream, fieldnames=names, restval="")
        writer.writeheader()
        for row in rows:
            unknown = set(row) - set(names)
            if unknown:
                raise ValueError(f"sweep row has unknown fields: {sorted(unknown)}")
            writer.writerow(dict(row))
        return len(rows)
    finally:
        if owned:
            stream.close()


def records_csv_text(report: SimulationReport) -> str:
    """Convenience: :func:`write_records_csv` into a string."""
    buffer = io.StringIO()
    write_records_csv(report, buffer)
    return buffer.getvalue()
