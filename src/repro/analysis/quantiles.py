"""Bounded-memory quantile estimation for streaming CCT statistics.

A million-coflow streaming replay cannot keep every CCT in a result list
just to answer "what was p95?" at the end.  :class:`QuantileDigest` is a
merging t-digest-style sketch: values accumulate in a fixed-size buffer
and are periodically *compressed* into a bounded list of weighted
centroids, tighter near the distribution tails (the k1 scale function),
so p95/p99 stay accurate while memory stays O(compression).

:class:`ExactQuantiles` is the unbounded reference oracle the tests
compare against: it keeps every value and answers with the same
linear-interpolation percentile the in-memory
:class:`~repro.sim.results.SimulationReport` aggregates use.

Error model (documented, asserted by ``tests/analysis/test_quantiles.py``):
the digest's error is bounded in *rank* space, not value space — for a
compression of ``δ``, the estimate for quantile ``q`` is the exact value
of some quantile ``q'`` with ``|q' − q|`` at most a few multiples of
``1/δ`` (≤ 0.02 at δ = 200 in practice, and tighter near the tails where
the k1 scale function concentrates centroids).  Value-space error follows
from the local density, so heavy-tailed CCT distributions keep accurate
tails even when the absolute values span orders of magnitude.

Everything here is deterministic: same values in the same order produce
the same centroids, buffers, and estimates — the property the streaming
differential suites rely on.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.results import percentile


class QuantileDigest:
    """Mergeable streaming quantile sketch (t-digest style, k1 scale).

    Args:
        compression: the ``δ`` parameter — centroid budget.  Memory and
            rank error both scale with it: roughly ``2δ`` centroids
            retained, rank error a few multiples of ``1/δ``.
        buffer_size: values accumulated before a compression pass;
            defaults to ``5 × compression`` (amortizes the sort).

    Attributes:
        count: total number of values added.
        compressions: how many buffer-merge passes have run (surfaced as
            the ``sketch_merges`` perf counter by the streaming replay).
    """

    __slots__ = (
        "compression",
        "count",
        "compressions",
        "_buffer",
        "_buffer_limit",
        "_means",
        "_weights",
        "_min",
        "_max",
    )

    def __init__(self, compression: int = 200, buffer_size: Optional[int] = None):
        if compression < 20:
            raise ValueError(f"compression must be >= 20, got {compression!r}")
        self.compression = compression
        self.count = 0
        self.compressions = 0
        self._buffer: List[float] = []
        self._buffer_limit = buffer_size if buffer_size else 5 * compression
        if self._buffer_limit < 1:
            raise ValueError(f"buffer size must be positive, got {buffer_size!r}")
        self._means: List[float] = []
        self._weights: List[float] = []
        self._min = math.inf
        self._max = -math.inf

    def __len__(self) -> int:
        return self.count

    @property
    def min(self) -> float:
        """Smallest value seen (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest value seen (``-inf`` when empty)."""
        return self._max

    def num_centroids(self) -> int:
        """Centroids currently held (buffer excluded) — the memory bound."""
        return len(self._means)

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one value into the sketch."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile sketch")
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self.count += 1
        buffer = self._buffer
        buffer.append(value)
        if len(buffer) >= self._buffer_limit:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another sketch into this one (fleet/shard aggregation).

        The other sketch's centroids enter as weighted points, so the
        result is order-insensitive up to the usual digest rank error.
        """
        if other.count == 0:
            return
        self._compress()
        other._compress()
        points = sorted(
            zip(self._means, self._weights),
            key=lambda pair: pair[0],
        )
        points = sorted(points + list(zip(other._means, other._weights)))
        self._means = [m for m, _ in points]
        self._weights = [w for _, w in points]
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._merge_sorted_points()

    # ------------------------------------------------------------------
    def _k(self, q: float) -> float:
        """The k1 scale function: tail-biased centroid size limit."""
        return self.compression / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _compress(self) -> None:
        """Merge the buffer into the centroid list (one sketch merge)."""
        buffer = self._buffer
        if not buffer:
            return
        buffer.sort()
        points: List[Tuple[float, float]] = sorted(
            [(value, 1.0) for value in buffer]
            + list(zip(self._means, self._weights))
        )
        del buffer[:]
        self._means = [m for m, _ in points]
        self._weights = [w for _, w in points]
        self._merge_sorted_points()
        self.compressions += 1

    def _merge_sorted_points(self) -> None:
        """Greedy left-to-right centroid merge under the k1 size limit."""
        means, weights = self._means, self._weights
        if not means:
            return
        total = math.fsum(weights)
        out_means: List[float] = []
        out_weights: List[float] = []
        cur_mean = means[0]
        cur_weight = weights[0]
        weight_before = 0.0  # total weight strictly left of the open centroid
        k_left = self._k(0.0)
        for mean, weight in zip(means[1:], weights[1:]):
            q_right = (weight_before + cur_weight + weight) / total
            if self._k(q_right) - k_left <= 1.0:
                # Absorb: weighted mean update keeps the centroid exact.
                cur_weight += weight
                cur_mean += (mean - cur_mean) * (weight / cur_weight)
            else:
                out_means.append(cur_mean)
                out_weights.append(cur_weight)
                weight_before += cur_weight
                k_left = self._k(weight_before / total)
                cur_mean = mean
                cur_weight = weight
        out_means.append(cur_mean)
        out_weights.append(cur_weight)
        self._means = out_means
        self._weights = out_weights

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        self._compress()
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        total = self.count
        if len(means) == total:
            # Still in the singleton regime (counts below ≈2δ/π, where
            # the k1 limit first allows a merge): every centroid is one
            # value, so delegate to the in-memory percentile for
            # bit-for-bit agreement with SimulationReport aggregates.
            return percentile(means, q * 100.0)
        # Anchor convention: ``q·(n−1) + ½`` against midpoint anchors keeps
        # the merged-centroid estimate on the same rank scale as
        # :func:`repro.sim.results.percentile` — it differs from the
        # textbook ``q·n`` target by at most half a rank, well inside the
        # documented error.
        target = q * (total - 1) + 0.5
        # Centroid i is anchored at the midpoint of its weight span.
        cumulative = 0.0
        anchors: List[float] = []
        for weight in weights:
            anchors.append(cumulative + weight / 2.0)
            cumulative += weight
        # Interpolation is written ``a*(1-f) + b*f`` — the exact float
        # expression :func:`repro.sim.results.percentile` uses — so the
        # singleton regime matches it to the last bit, not just closely.
        if target <= anchors[0]:
            # Interpolate from the exact minimum up to the first centroid.
            span = anchors[0]
            fraction = target / span if span > 0 else 0.0
            return self._min * (1 - fraction) + means[0] * fraction
        if target >= anchors[-1]:
            span = total - anchors[-1]
            fraction = (target - anchors[-1]) / span if span > 0 else 0.0
            return means[-1] * (1 - fraction) + self._max * fraction
        hi = bisect_right(anchors, target)
        lo = hi - 1
        span = anchors[hi] - anchors[lo]
        fraction = (target - anchors[lo]) / span if span > 0 else 0.0
        return means[lo] * (1 - fraction) + means[hi] * fraction

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        return self.quantile(p / 100.0)


class ExactQuantiles:
    """Unbounded exact-quantile oracle (the sketch's reference twin).

    Keeps every value in a sorted list and answers with the same
    linear-interpolation convention as
    :func:`repro.sim.results.percentile` — what the in-memory result
    aggregates would report.  O(n) memory by design: tests run the
    oracle next to the sketch to measure the sketch's rank error, and the
    streaming benchmark uses it at reference scale to certify the
    documented bound.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    def add(self, value: float) -> None:
        insort(self._values, float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        return percentile(self._values, q * 100.0)

    def percentile(self, p: float) -> float:
        return percentile(self._values, p)

    def rank_of(self, value: float) -> Tuple[float, float]:
        """The rank interval of ``value`` as quantile fractions.

        Returns ``(lo, hi)`` where ``lo`` is the fraction of values
        strictly below ``value`` and ``hi`` the fraction at or below it —
        an interval because duplicates make ranks ambiguous.  The sketch
        accuracy tests assert the target quantile lies within (or near)
        this interval.
        """
        n = len(self._values)
        if n == 0:
            raise ValueError("rank_of on an empty oracle")
        return (
            bisect_left(self._values, value) / n,
            bisect_right(self._values, value) / n,
        )


def rank_error(oracle: ExactQuantiles, estimate: float, q: float) -> float:
    """Rank-space error of ``estimate`` against the exact ``q``-quantile.

    Zero when the estimate's (duplicate-widened) rank interval contains
    ``q``; otherwise the distance from ``q`` to the nearest interval edge.
    This is the quantity the digest bounds, so it is what the tests and
    the streaming benchmark assert on.
    """
    lo, hi = oracle.rank_of(estimate)
    if lo <= q <= hi:
        return 0.0
    return lo - q if q < lo else q - hi


__all__ = [
    "QuantileDigest",
    "ExactQuantiles",
    "rank_error",
]
