"""Statistics helpers used by the evaluation harness.

Percentiles live in :mod:`repro.sim.results`; here are the correlation
measures the paper quotes — the linear (Pearson) correlation between
Solstice's normalized switching count and ``|C|`` (0.84, §5.3.1), and the
rank (Spearman) correlation between ``p_avg`` and CCT/``T^p_L``
(−0.96, §5.3.2) — plus an empirical CDF sampler for the figure benches.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Linear correlation coefficient; raises on mismatched/short input."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("zero variance input")
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Rank correlation coefficient (Pearson over fractional ranks)."""
    return pearson(_ranks(xs), _ranks(ys))


def ecdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, fraction ≤ value)`` steps."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points = []
    for index, value in enumerate(ordered, start=1):
        if index < n and ordered[index] == value:
            continue  # collapse ties to the last occurrence
        points.append((value, index / n))
    return points


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values ≤ ``threshold``."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for value in values if value <= threshold) / len(values)
