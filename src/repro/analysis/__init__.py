"""Trace analysis: classification, idleness, statistics."""

from repro.analysis.classify import CategoryBreakdown, classify
from repro.analysis.idleness import (
    active_intervals,
    merge_intervals,
    network_idleness,
)
from repro.analysis.export import (
    records_csv_text,
    write_cdf_csv,
    write_records_csv,
    write_sweep_csv,
)
from repro.analysis.quantiles import ExactQuantiles, QuantileDigest, rank_error
from repro.analysis.stats import cdf_at, ecdf, pearson, spearman
from repro.analysis.timeline import render_timeline
from repro.analysis.tracestats import TraceStatistics, trace_statistics

__all__ = [
    "CategoryBreakdown",
    "classify",
    "active_intervals",
    "merge_intervals",
    "network_idleness",
    "ExactQuantiles",
    "QuantileDigest",
    "rank_error",
    "cdf_at",
    "ecdf",
    "pearson",
    "spearman",
    "records_csv_text",
    "write_cdf_csv",
    "write_records_csv",
    "write_sweep_csv",
    "render_timeline",
    "TraceStatistics",
    "trace_statistics",
]
