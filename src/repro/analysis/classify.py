"""Coflow classification by sender-to-receiver ratio (paper Table 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.coflow import Coflow, CoflowCategory


@dataclass
class CategoryBreakdown:
    """Coflow-count and byte shares per category, as Table 4 reports them."""

    coflow_counts: Dict[CoflowCategory, int]
    byte_totals: Dict[CoflowCategory, float]

    @property
    def total_coflows(self) -> int:
        return sum(self.coflow_counts.values())

    @property
    def total_bytes(self) -> float:
        return sum(self.byte_totals.values())

    def coflow_percent(self, category: CoflowCategory) -> float:
        total = self.total_coflows
        return 100.0 * self.coflow_counts[category] / total if total else 0.0

    def bytes_percent(self, category: CoflowCategory) -> float:
        total = self.total_bytes
        return 100.0 * self.byte_totals[category] / total if total else 0.0

    def as_table(self) -> List[Dict[str, object]]:
        """Rows in Table 4's layout (category, Coflow %, bytes %)."""
        return [
            {
                "category": category.value,
                "coflow_percent": self.coflow_percent(category),
                "bytes_percent": self.bytes_percent(category),
            }
            for category in CoflowCategory
        ]


def classify(coflows: Iterable[Coflow]) -> CategoryBreakdown:
    """Tally Coflows and bytes per sender-to-receiver category."""
    counts = {category: 0 for category in CoflowCategory}
    bytes_total = {category: 0.0 for category in CoflowCategory}
    for coflow in coflows:
        category = coflow.category
        counts[category] += 1
        bytes_total[category] += coflow.total_bytes
    return CategoryBreakdown(coflow_counts=counts, byte_totals=bytes_total)
