"""Network idleness metric (paper §5.4).

A Coflow is considered *active* from its arrival ``t_Arr`` until
``t_Arr + T^p_L`` — the soonest it could possibly finish on the given
bandwidth.  Network idleness is the fraction of the trace horizon during
which no Coflow is active.  The metric is scheduling-independent and upper
bounds true idle time (Coflows may linger past ``T^p_L`` while waiting).

The original trace measures 12 % idle at 1 Gbps; scaling ``B`` to 10 and
100 Gbps raises it to 81 % and 98 %, and §5.4's byte-scaling procedure
(:func:`repro.workloads.transforms.scale_to_idleness`) targets 20 %/40 %.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.bounds import packet_lower_bound
from repro.core.coflow import CoflowTrace


def active_intervals(
    trace: CoflowTrace, bandwidth_bps: float
) -> List[Tuple[float, float]]:
    """Per-Coflow ``[arrival, arrival + T^p_L)`` activity intervals."""
    intervals = []
    for coflow in trace:
        lower = packet_lower_bound(coflow, bandwidth_bps)
        if lower > 0:
            intervals.append((coflow.arrival_time, coflow.arrival_time + lower))
    return intervals


def merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of half-open intervals, sorted and coalesced."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def network_idleness(trace: CoflowTrace, bandwidth_bps: float) -> float:
    """Fraction of the horizon ``[first arrival, last potential finish]``
    with no active Coflow.  Returns 0.0 for an empty trace."""
    intervals = active_intervals(trace, bandwidth_bps)
    if not intervals:
        return 0.0
    merged = merge_intervals(intervals)
    horizon_start = merged[0][0]
    horizon_end = max(end for _, end in merged)
    horizon = horizon_end - horizon_start
    if horizon <= 0:
        return 0.0
    busy = sum(end - start for start, end in merged)
    return max(0.0, 1.0 - busy / horizon)
