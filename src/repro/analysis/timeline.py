"""ASCII rendering of circuit schedules.

Draws the kind of per-input-port timeline the paper's Figures 1 and 2 use:
one row per input port, time flowing right, each reservation shown as a
``≡`` setup region followed by the destination port number repeated for
the transmit region.  Useful for eyeballing schedules in examples, tests
and notebooks without a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.prt import Reservation

#: Glyph for the reconfiguration (setup) part of a reservation.
SETUP_GLYPH = "="
#: Glyph for idle port time.
IDLE_GLYPH = "."


def render_timeline(
    reservations: Iterable[Reservation],
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> str:
    """Render reservations as one text row per input port.

    Args:
        reservations: any iterable of reservations (e.g. a
            :class:`~repro.core.sunflow.CoflowSchedule`'s, or a whole PRT).
        width: characters available for the time axis.
        start, end: time window; defaults to the reservations' span.

    Returns:
        A multi-line string; empty input renders as an empty string.
    """
    items: List[Reservation] = sorted(reservations, key=lambda r: (r.src, r.start))
    if not items:
        return ""
    lo = min(r.start for r in items) if start is None else start
    hi = max(r.end for r in items) if end is None else end
    if hi <= lo:
        raise ValueError(f"empty time window [{lo}, {hi})")
    scale = width / (hi - lo)

    def column(t: float) -> int:
        return max(0, min(width, int(round((t - lo) * scale))))

    lines = []
    ports = sorted({r.src for r in items})
    label_width = max(len(f"in.{port}") for port in ports)
    for port in ports:
        row = [IDLE_GLYPH] * width
        for reservation in items:
            if reservation.src != port:
                continue
            first = column(reservation.start)
            setup_end = column(reservation.transmit_start)
            last = column(reservation.end)
            for i in range(first, min(setup_end, width)):
                row[i] = SETUP_GLYPH
            glyph = str(reservation.dst)[-1]
            for i in range(setup_end, min(last, width)):
                row[i] = glyph
        lines.append(f"in.{port}".rjust(label_width) + " |" + "".join(row) + "|")
    axis = " " * label_width + "  " + f"{lo:<10.3f}".ljust(width // 2)
    axis += f"{hi:>10.3f}".rjust(width - width // 2)
    lines.append(axis)
    return "\n".join(lines)
