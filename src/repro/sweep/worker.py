"""Per-cell execution, shared by the serial and the pooled paths.

``run_cell`` is the unit of work the engine ships to worker processes: it
rebuilds the :class:`~repro.api.spec.SimulationSpec` from its plain-JSON
payload, runs :func:`repro.api.simulate` under an optional wall-clock
timeout, and returns a *deterministic* result payload (records and
summary statistics, no timings).  The serial path calls the very same
function in-process, which is what makes serial, parallel, and cache-warm
runs byte-identical per cell.

Crash isolation: any exception inside the cell — bad scenario, scheduler
bug, timeout — is converted into an ``error``/``timeout`` result payload
instead of propagating, so one poisoned cell cannot kill a sweep.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.api.facade import simulate
from repro.api.spec import spec_from_payload
from repro.core.coflow import CoflowCategory
from repro.sim.results import CoflowRecord, SimulationReport, mean, percentile


class CellTimeout(Exception):
    """A cell exceeded its wall-clock budget."""


@contextmanager
def cell_timeout(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`CellTimeout` if the block runs longer than ``seconds``.

    Uses ``SIGALRM``, so it only arms in a main thread on POSIX; elsewhere
    the block runs unbounded (the pool's crash isolation still applies).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {seconds} s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Report <-> payload
# ----------------------------------------------------------------------
_RECORD_FIELDS = (
    "coflow_id",
    "arrival_time",
    "completion_time",
    "num_flows",
    "total_bytes",
    "circuit_lower",
    "packet_lower",
    "switching_count",
    "average_processing_time",
)


def report_to_payload(report: SimulationReport) -> dict:
    """Deterministic plain-JSON encoding of a simulation report."""
    records = sorted(report.records, key=lambda r: r.coflow_id)
    ccts = [record.cct for record in records]
    return {
        "scheduler": report.scheduler,
        "bandwidth_bps": report.bandwidth_bps,
        "delta": report.delta,
        "records": [
            {
                **{name: getattr(record, name) for name in _RECORD_FIELDS},
                "category": record.category.value,
                "cct": record.cct,
            }
            for record in records
        ],
        "summary": {
            "coflows": len(records),
            "average_cct": mean(ccts) if ccts else 0.0,
            "median_cct": percentile(ccts, 50) if ccts else 0.0,
            "p95_cct": percentile(ccts, 95) if ccts else 0.0,
            "max_cct": max(ccts) if ccts else 0.0,
            "total_switching": sum(r.switching_count for r in records),
        },
    }


def report_from_payload(payload: dict) -> SimulationReport:
    """Rebuild a :class:`SimulationReport` from its payload encoding."""
    report = SimulationReport(
        payload["scheduler"], payload["bandwidth_bps"], payload["delta"]
    )
    for entry in payload["records"]:
        report.add(
            CoflowRecord(
                category=CoflowCategory(entry["category"]),
                **{name: entry[name] for name in _RECORD_FIELDS},
            )
        )
    return report


# ----------------------------------------------------------------------
# The unit of work
# ----------------------------------------------------------------------
def execute_cell(task: Dict) -> dict:
    """Run one cell; always returns a result payload, never raises.

    The payload deliberately omits the cell id and any timing, so the
    bytes are a pure function of the cell's spec — the property the
    content-addressed cache and the byte-identity checks rely on.
    """
    try:
        spec = spec_from_payload(task["spec"])
        with cell_timeout(task.get("timeout_s")):
            report = simulate(spec)
        return {
            "status": "ok",
            "seed": spec.seed,
            "report": report_to_payload(report),
        }
    except CellTimeout:
        return {"status": "timeout", "timeout_s": task.get("timeout_s")}
    except Exception as exc:  # noqa: BLE001 - crash isolation is the point
        return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}


def run_cell(task: Dict) -> Tuple[str, dict, float]:
    """Pool entry point: ``(cell_id, result payload, wall seconds)``."""
    start = time.perf_counter()
    result = execute_cell(task)
    return task["cell_id"], result, time.perf_counter() - start
