"""Content-addressed on-disk result cache for sweep cells.

A cell's cache key is the SHA-256 of the canonical JSON encoding of its
full specification (workload, scheduler, network, seed, payload-format
version).  Re-running a sweep therefore recomputes only cells whose
specification changed — editing one axis value invalidates exactly the
cells that use it.

Cached values are the cells' *deterministic* result payloads (records and
summaries, never wall-clock timings), stored as the same canonical bytes
the engine uses for its byte-identity checks, so a cache-warm run returns
bit-for-bit the bytes a cold run computed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union


def canonical_bytes(obj) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, ASCII only.

    Python's ``repr``-based float formatting is deterministic across
    processes and platforms (shortest round-trip representation), so two
    equal payloads always encode to identical bytes.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def content_key(payload) -> str:
    """SHA-256 hex digest of a payload's canonical encoding."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


class ResultCache:
    """Sharded ``<root>/<key[:2]>/<key>.json`` store of cell results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[bytes]:
        """The cached canonical bytes for ``key``, or None on a miss."""
        try:
            return self.path(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` atomically (write + rename)."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
