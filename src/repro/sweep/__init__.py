"""Process-parallel experiment-sweep engine (``repro.sweep``).

Declare a grid once, run it anywhere:

    from repro.api import NetworkSpec, SimulationSpec, TraceSpec
    from repro.sweep import SweepSpec, run_sweep

    sweep = SweepSpec(
        name="delta-sensitivity",
        base=SimulationSpec(trace=TraceSpec(num_coflows=200, max_width=40)),
        axes={"network.delta": [0.1, 0.01, 0.001], "scheduler": ["sunflow"]},
    )
    result = run_sweep(sweep, workers=4, cache_dir=".sweep-cache")
    result.write("results/delta-sensitivity")

Cells are the cartesian product of the axes; each runs through
:func:`repro.api.simulate` in a worker process with deterministic
seeding, per-cell timeout and crash isolation, and a content-hash disk
cache so re-runs recompute only changed cells.
"""

from repro.sweep.cache import ResultCache, canonical_bytes, content_key
from repro.sweep.engine import (
    CellOutcome,
    SweepProgress,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.sweep.spec import SweepCell, SweepSpec, derive_cell_seed
from repro.sweep.worker import (
    CellTimeout,
    cell_timeout,
    report_from_payload,
    report_to_payload,
)

__all__ = [
    "ResultCache",
    "canonical_bytes",
    "content_key",
    "CellOutcome",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
    "SweepCell",
    "SweepSpec",
    "derive_cell_seed",
    "CellTimeout",
    "cell_timeout",
    "report_from_payload",
    "report_to_payload",
]
