"""Declarative experiment grids: ``SweepSpec`` → cells.

A sweep is a base :class:`~repro.api.spec.SimulationSpec` plus ordered
axes, each a dotted override path with a list of values
(``"network.delta": [0.1, 0.01, 0.001]``).  The cells are the cartesian
product of the axes, every cell a complete ``SimulationSpec`` with a
stable human-readable id and a deterministic derived seed.

Specs load from TOML or JSON files (see ``docs/usage.md`` for the layout)
so grids can live next to the benchmarks that run them.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.spec import (
    SimulationSpec,
    TraceSpec,
    override_spec,
    spec_from_payload,
    spec_to_payload,
)
from repro.sweep.cache import canonical_bytes, content_key

Axes = Tuple[Tuple[str, Tuple[object, ...]], ...]


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a complete runnable scenario.

    Attributes:
        index: position in axis-major (cartesian product) order.
        cell_id: stable human-readable id, ``"axis=value/axis2=value2"``.
        overrides: the axis values applied to the base spec.
        spec: the resolved :class:`SimulationSpec`, seed already derived —
            or None when the overrides were rejected (see ``error``).
        error: the spec-construction error for a poisoned cell, else None.
    """

    index: int
    cell_id: str
    overrides: Tuple[Tuple[str, object], ...]
    spec: Optional[SimulationSpec]
    error: Optional[str] = None

    def override_map(self) -> dict:
        return dict(self.overrides)


def derive_cell_seed(spec: SimulationSpec) -> int:
    """Deterministic per-cell seed from the cell's own content.

    Stable across runs, processes and machines — two cells differing in
    any spec field get (almost surely) different seeds, and re-running a
    sweep reproduces every cell's seed exactly.
    """
    key = content_key(spec_to_payload(spec))
    return int(key[:8], 16)


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of simulation scenarios.

    Attributes:
        name: sweep identifier, used in reports and output files.
        base: the spec every cell starts from.  For process-parallel runs
            the trace should be declarative (a
            :class:`~repro.api.spec.TraceSpec` or a small inline trace).
        axes: ordered ``(path, values)`` pairs; the cartesian product in
            axis-major order defines the cells.
    """

    name: str
    base: SimulationSpec
    axes: Axes = ()

    def __init__(
        self,
        name: str,
        base: SimulationSpec,
        axes: Union[Mapping[str, Sequence], Axes] = (),
    ) -> None:
        if isinstance(axes, Mapping):
            normalized = tuple((path, tuple(values)) for path, values in axes.items())
        else:
            normalized = tuple((path, tuple(values)) for path, values in axes)
        for path, values in normalized:
            if not values:
                raise ValueError(f"axis {path!r} has no values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", normalized)

    # ------------------------------------------------------------------
    def num_cells(self) -> int:
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def cells(self) -> List[SweepCell]:
        """The grid, axis-major, each cell with its derived seed.

        A cell whose axis values violate spec invariants (an invalid
        scheduler name, a negative delta) still becomes a cell — carrying
        the construction error instead of a spec — so one poisoned axis
        value cannot prevent the rest of the grid from running.  Such
        cells surface as ``error`` results in the sweep.
        """
        paths = [path for path, _ in self.axes]
        cells: List[SweepCell] = []
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            overrides = tuple(zip(paths, combo))
            cell_id = (
                "/".join(f"{p}={_format_value(v)}" for p, v in overrides) or "base"
            )
            spec = self.base
            error = None
            try:
                for path, value in overrides:
                    spec = override_spec(spec, path, value)
                if spec.seed is None:
                    spec = override_spec(spec, "seed", derive_cell_seed(spec))
            except (TypeError, ValueError) as exc:
                spec, error = None, f"{type(exc).__name__}: {exc}"
            cells.append(
                SweepCell(
                    index=index,
                    cell_id=cell_id,
                    overrides=overrides,
                    spec=spec,
                    error=error,
                )
            )
        return cells

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "base": spec_to_payload(self.base),
            "axes": [[path, list(values)] for path, values in self.axes],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SweepSpec":
        base_payload = dict(payload["base"])
        # File-friendly shorthand: a bare [base.trace] table means a
        # declarative TraceSpec.
        trace = base_payload.get("trace")
        if isinstance(trace, Mapping) and "__trace__" not in trace:
            base_payload["trace"] = {"__trace__": "spec", **trace}
        base_payload.setdefault("trace", {"__trace__": "spec"})
        axes = payload.get("axes", [])
        if isinstance(axes, Mapping):
            axes = list(axes.items())
        return cls(
            name=payload.get("name", "sweep"),
            base=spec_from_payload({"version": 1, **base_payload}),
            axes=[(path, tuple(values)) for path, values in axes],
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a sweep from a ``.toml`` or ``.json`` grid file."""
        path = Path(path)
        if path.suffix == ".toml":
            import tomllib

            payload = tomllib.loads(path.read_text(encoding="utf-8"))
        else:
            payload = json.loads(path.read_text(encoding="utf-8"))
        return cls.from_payload(payload)

    def write(self, path: Union[str, Path]) -> None:
        """Save the sweep as a JSON grid file (round-trips from_file)."""
        Path(path).write_bytes(canonical_bytes(self.to_payload()) + b"\n")
