"""Process-parallel sweep execution with caching and crash isolation.

:class:`SweepRunner` drives a :class:`~repro.sweep.spec.SweepSpec` to a
:class:`SweepResult`:

* cells whose content-hash is already in the :class:`ResultCache` are
  served from disk without computing anything;
* the rest fan out over a ``multiprocessing`` worker pool (``workers``
  processes; ``workers <= 1`` runs serially in-process through the *same*
  per-cell code path, so serial and parallel results are byte-identical);
* a cell that raises records an ``error`` result, a cell that exceeds
  ``timeout_s`` records a ``timeout`` result, and a cell that takes its
  whole worker process down is retried once in a fresh pool before being
  recorded as ``crashed`` — in every case the sweep keeps going;
* progress (done/total, cache hits, failures, ETA) streams through an
  optional callback, and :class:`~repro.perf.PerfCounters` record where
  the time went.

Results aggregate to JSON and CSV in the same spirit as the repository's
``BENCH_*.json`` / ``benchmarks/results`` files.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.spec import spec_to_payload
from repro.perf import PerfCounters
from repro.sim.results import SimulationReport
from repro.sweep.cache import ResultCache, canonical_bytes, content_key
from repro.sweep.spec import SweepCell, SweepSpec
from repro.sweep.worker import report_from_payload, run_cell


@dataclass(frozen=True)
class SweepProgress:
    """Snapshot handed to the progress callback after every cell."""

    total: int
    done: int
    computed: int
    cached: int
    failed: int
    elapsed_s: float

    @property
    def eta_s(self) -> float:
        """Naive remaining-time estimate from the average cell cost so far."""
        if self.done == 0:
            return float("inf")
        return self.elapsed_s / self.done * (self.total - self.done)


@dataclass
class CellOutcome:
    """One cell's fate: where its result came from and what it is."""

    index: int
    cell_id: str
    overrides: Tuple[Tuple[str, object], ...]
    status: str  # ok | error | timeout | crashed
    result: dict
    key: Optional[str] = None
    from_cache: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def result_bytes(self) -> bytes:
        """Canonical bytes of the deterministic result payload."""
        return canonical_bytes(self.result)

    def report(self) -> SimulationReport:
        if not self.ok:
            raise ValueError(f"cell {self.cell_id!r} has no report ({self.status})")
        return report_from_payload(self.result["report"])

    def summary(self) -> dict:
        return self.result.get("report", {}).get("summary", {})


@dataclass
class SweepResult:
    """All cell outcomes of one sweep run, in grid order."""

    name: str
    outcomes: List[CellOutcome]
    wall_s: float
    workers: int
    perf: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outcomes)

    def outcome(self, cell_id: str) -> CellOutcome:
        for outcome in self.outcomes:
            if outcome.cell_id == cell_id:
                return outcome
        raise KeyError(f"no cell {cell_id!r} in sweep {self.name!r}")

    def find(self, overrides: Mapping[str, object]) -> CellOutcome:
        """The unique outcome whose axis values include all of ``overrides``."""
        matches = [
            outcome
            for outcome in self.outcomes
            if all(
                item in outcome.overrides for item in overrides.items()
            )
        ]
        if not matches:
            raise KeyError(f"no cell matches {dict(overrides)!r}")
        if len(matches) > 1:
            raise KeyError(f"{len(matches)} cells match {dict(overrides)!r}")
        return matches[0]

    def report(self, cell_id: str) -> SimulationReport:
        return self.outcome(cell_id).report()

    def failures(self) -> List[CellOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.from_cache)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "cells_total": len(self.outcomes),
            "cells_failed": len(self.failures()),
            "cache_hits": self.cache_hits,
            "perf": self.perf,
            "cells": [
                {
                    "index": outcome.index,
                    "cell_id": outcome.cell_id,
                    "overrides": [list(pair) for pair in outcome.overrides],
                    "status": outcome.status,
                    "from_cache": outcome.from_cache,
                    "wall_s": outcome.wall_s,
                    "key": outcome.key,
                    "result": outcome.result,
                }
                for outcome in self.outcomes
            ],
        }

    def write(self, output_dir: Union[str, Path]) -> Tuple[Path, Path]:
        """Write ``sweep.json`` (full) and ``cells.csv`` (one row per cell).

        The JSON mirrors the root-level ``BENCH_*.json`` convention; the
        CSV matches the plain-series layout of ``benchmarks/results``.
        """
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        json_path = output_dir / "sweep.json"
        json_path.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        csv_path = output_dir / "cells.csv"
        with open(csv_path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                [
                    "index",
                    "cell_id",
                    "status",
                    "from_cache",
                    "wall_s",
                    "coflows",
                    "average_cct",
                    "median_cct",
                    "p95_cct",
                    "max_cct",
                    "total_switching",
                ]
            )
            for outcome in self.outcomes:
                summary = outcome.summary()
                writer.writerow(
                    [
                        outcome.index,
                        outcome.cell_id,
                        outcome.status,
                        int(outcome.from_cache),
                        f"{outcome.wall_s:.6f}",
                        summary.get("coflows", ""),
                        summary.get("average_cct", ""),
                        summary.get("median_cct", ""),
                        summary.get("p95_cct", ""),
                        summary.get("max_cct", ""),
                        summary.get("total_switching", ""),
                    ]
                )
        return json_path, csv_path


ProgressCallback = Callable[[SweepProgress], None]


def _pool_context():
    """Prefer fork (fast, inherits the loaded package) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SweepRunner:
    """Executes a sweep: cache → worker pool → aggregated result.

    Args:
        spec: the grid to run.
        workers: pool size; ``0`` or ``1`` runs serially in-process
            (identical per-cell code path and results).
        cache_dir: directory of the content-hash result cache; None
            disables caching.
        timeout_s: per-cell wall-clock budget (None = unbounded).
        perf: counter sink; a fresh one is created if omitted and exposed
            as :attr:`perf`.
        progress: callback invoked with a :class:`SweepProgress` after
            every settled cell.
        max_attempts: pool submissions per cell before a pool-killing cell
            is recorded as ``crashed`` (the second attempt runs in a fresh
            pool alongside the innocent retried cells).
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
        timeout_s: Optional[float] = None,
        perf: Optional[PerfCounters] = None,
        progress: Optional[ProgressCallback] = None,
        max_attempts: int = 2,
    ) -> None:
        self.spec = spec
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.timeout_s = timeout_s
        self.perf = perf if perf is not None else PerfCounters()
        self.progress = progress
        self.max_attempts = max_attempts

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        start = time.perf_counter()
        perf = self.perf
        cells = self.spec.cells()
        perf.inc("sweep_cells_total", len(cells))
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        tasks: List[dict] = []
        cell_by_id: Dict[str, SweepCell] = {}

        with perf.timer("sweep_prepare"):
            for cell in cells:
                if cell.error is not None:
                    # Poisoned axis value: the overrides never produced a
                    # valid spec.  Record and move on.
                    perf.inc("sweep_cell_errors")
                    outcomes[cell.index] = CellOutcome(
                        index=cell.index,
                        cell_id=cell.cell_id,
                        overrides=cell.overrides,
                        status="error",
                        result={"status": "error", "error": cell.error},
                    )
                    continue
                key = content_key(spec_to_payload(cell.spec))
                cached = self.cache.get(key) if self.cache is not None else None
                if cached is not None:
                    perf.inc("sweep_cache_hits")
                    result = json.loads(cached)
                    outcomes[cell.index] = CellOutcome(
                        index=cell.index,
                        cell_id=cell.cell_id,
                        overrides=cell.overrides,
                        status=result.get("status", "ok"),
                        result=result,
                        key=key,
                        from_cache=True,
                    )
                    continue
                cell_by_id[cell.cell_id] = cell
                tasks.append(
                    {
                        "cell_id": cell.cell_id,
                        "key": key,
                        "spec": spec_to_payload(cell.spec),
                        "timeout_s": self.timeout_s,
                    }
                )

        self._emit_progress(outcomes, start)
        with perf.timer("sweep_compute"):
            if tasks:
                if self.workers > 1:
                    self._run_pool(tasks, cell_by_id, outcomes, start)
                else:
                    self._run_serial(tasks, cell_by_id, outcomes, start)

        assert all(outcome is not None for outcome in outcomes)
        return SweepResult(
            name=self.spec.name,
            outcomes=outcomes,  # type: ignore[arg-type]
            wall_s=time.perf_counter() - start,
            workers=self.workers,
            perf=perf.snapshot(),
        )

    # ------------------------------------------------------------------
    def _settle(
        self,
        task: dict,
        result: dict,
        wall_s: float,
        outcomes: List[Optional[CellOutcome]],
        start: float,
    ) -> None:
        cell_id = task["cell_id"]
        cell = self._cell_by_id[cell_id]
        status = result.get("status", "error")
        if status == "ok":
            perf_name = "sweep_cells_computed"
            if self.cache is not None:
                self.cache.put(task["key"], canonical_bytes(result))
        else:
            perf_name = "sweep_cell_errors"
        self.perf.inc(perf_name)
        outcomes[cell.index] = CellOutcome(
            index=cell.index,
            cell_id=cell_id,
            overrides=cell.overrides,
            status=status,
            result=result,
            key=task["key"],
            wall_s=wall_s,
        )
        self._emit_progress(outcomes, start)

    def _run_serial(self, tasks, cell_by_id, outcomes, start) -> None:
        self._cell_by_id = cell_by_id
        for task in tasks:
            cell_id, result, wall_s = run_cell(task)
            self._settle(task, result, wall_s, outcomes, start)

    def _run_pool(self, tasks, cell_by_id, outcomes, start) -> None:
        self._cell_by_id = cell_by_id
        context = _pool_context()
        attempts: Dict[str, int] = {task["cell_id"]: 0 for task in tasks}
        pending = list(tasks)
        while pending:
            current, pending = pending, []
            with ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            ) as pool:
                futures = {pool.submit(run_cell, task): task for task in current}
                for future in as_completed(futures):
                    task = futures[future]
                    cell_id = task["cell_id"]
                    try:
                        _, result, wall_s = future.result()
                    except BrokenProcessPool:
                        # The pool died under this cell (or while it was
                        # queued behind the killer).  Retry in a fresh
                        # pool; give up only after max_attempts.
                        attempts[cell_id] += 1
                        if attempts[cell_id] >= self.max_attempts:
                            self.perf.inc("sweep_cell_crashes")
                            self._settle(
                                task,
                                {
                                    "status": "crashed",
                                    "error": "worker process died",
                                },
                                0.0,
                                outcomes,
                                start,
                            )
                        else:
                            self.perf.inc("sweep_cell_retries")
                            pending.append(task)
                        continue
                    except Exception as exc:  # pickling or submission bug
                        self._settle(
                            task,
                            {
                                "status": "error",
                                "error": f"{type(exc).__name__}: {exc}",
                            },
                            0.0,
                            outcomes,
                            start,
                        )
                        continue
                    self._settle(task, result, wall_s, outcomes, start)

    # ------------------------------------------------------------------
    def _emit_progress(self, outcomes, start: float) -> None:
        if self.progress is None:
            return
        settled = [outcome for outcome in outcomes if outcome is not None]
        self.progress(
            SweepProgress(
                total=len(outcomes),
                done=len(settled),
                computed=sum(
                    1 for o in settled if not o.from_cache and o.status == "ok"
                ),
                cached=sum(1 for o in settled if o.from_cache),
                failed=sum(1 for o in settled if o.status != "ok"),
                elapsed_s=time.perf_counter() - start,
            )
        )


def run_sweep(
    spec: SweepSpec,
    workers: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """One-call sweep execution (the CLI and benchmarks use this)."""
    return SweepRunner(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        progress=progress,
    ).run()
