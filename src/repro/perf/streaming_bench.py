"""Streaming-replay benchmark: flat memory and steady throughput at scale.

Two measurements back the streaming subsystem's claims:

* :func:`run_streaming_bench` replays a ≥100k-Coflow synthetic arrival
  stream through :func:`~repro.sim.streaming.simulate_inter_sunflow_stream`
  while sampling resident-set size and event throughput in fixed-size
  event windows.  Flat memory shows up as a late/early RSS ratio near
  1.0; steady throughput as a second-half/first-half events-per-second
  ratio near 1.0.  Nothing in the run is O(trace): the arrivals come
  from a generator and completions fold into a
  :class:`~repro.sim.streaming.StreamingReport`.

* :func:`run_reference_check` pins correctness at the committed
  reference scale (500 Coflows, 150 ports, seed 2016 — the same
  configuration as ``BENCH_trace_replay.json``): the streaming engine
  driven with an in-memory record sink must reproduce
  :func:`~repro.sim.circuit_sim.simulate_inter_sunflow` *byte-for-byte*,
  and the quantile sketch must stay within the documented rank-error
  bound against the exact oracle.

The CLI wrapper in ``benchmarks/bench_streaming.py`` dumps both as
``BENCH_streaming.json`` and turns any violation into a nonzero exit.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.perf import current_rss_bytes
from repro.perf.counters import PLAN_SUBTIMERS, PerfCounters

#: Rank-error bound the quantile sketch is documented (and asserted) to
#: meet at the default compression of 200.  See
#: :mod:`repro.analysis.quantiles` — measured worst-case is ~0.001.
SKETCH_RANK_ERROR_BOUND = 0.02

#: Quantiles the reference check measures sketch error at.
_CHECK_QUANTILES = (0.50, 0.90, 0.95, 0.99)


def run_streaming_bench(
    num_coflows: int = 100_000,
    num_ports: int = 40,
    max_width: Optional[int] = 12,
    seed: int = 2016,
    sample_every: int = 2_000,
) -> Dict[str, Any]:
    """Replay a large synthetic arrival stream; sample RSS and throughput.

    Args:
        num_coflows: stream length (the headline run uses 100k; CI smoke
            uses ~5k via ``REPRO_STREAM_COFLOWS``).
        num_ports: fabric width.  Smaller than the paper's 150 so the
            100k-Coflow run finishes in minutes — the memory claim is
            about trace length, not radix.
        max_width: Coflow width cap (keeps per-event planning cheap).
        seed: generator seed.
        sample_every: events between RSS/throughput samples.

    Returns:
        JSON-ready dict with the wall, aggregate summary, the RSS/event
        sample series, and the flatness/steadiness ratios.
    """
    from repro.sim.streaming import simulate_inter_sunflow_stream
    from repro.workloads.stream import stream_synthetic
    from repro.workloads.synthetic import GeneratorConfig

    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )

    samples: list = []
    state = {"events": 0, "last_events": 0, "last_wall": 0.0}
    start = time.perf_counter()

    def on_event(_event_time: float) -> None:
        state["events"] += 1
        if state["events"] % sample_every:
            return
        wall = time.perf_counter() - start
        window_events = state["events"] - state["last_events"]
        window_wall = wall - state["last_wall"]
        samples.append(
            {
                "events": state["events"],
                "wall_s": wall,
                "rss_bytes": current_rss_bytes(),
                "window_events_per_sec": (
                    window_events / window_wall if window_wall > 0 else None
                ),
            }
        )
        state["last_events"] = state["events"]
        state["last_wall"] = wall

    perf = PerfCounters()
    result = simulate_inter_sunflow_stream(
        stream_synthetic(config),
        bandwidth_bps=1e9,
        delta=0.01,
        perf=perf,
        on_event=on_event,
    )
    wall = time.perf_counter() - start

    counts = perf.snapshot()["counts"]
    payload: Dict[str, Any] = {
        "bench": "streaming_replay",
        "config": {
            "num_coflows": num_coflows,
            "num_ports": num_ports,
            "max_width": max_width,
            "seed": seed,
            "sample_every": sample_every,
        },
        "wall_s": wall,
        "events": result.events,
        "events_per_sec": result.events / wall if wall > 0 else None,
        "coflows_completed": result.report.count,
        "summary": result.report.summary(),
        "peak_rss_bytes": counts.get("peak_rss_bytes"),
        "prt_compactions": counts.get("prt_compactions", 0),
        "sketch_merges": counts.get("sketch_merges", 0),
        "order_reuses": counts.get("order_reuses", 0),
        # Same replan-transaction phase breakdown the trace-replay bench
        # reports — the streaming engine shares the hot path, so a phase
        # regressing here without regressing there points at the stream
        # loop, not the planner.
        "plan_phases_s": {name: perf.time(name) for name in PLAN_SUBTIMERS},
        "digest_centroids": result.report.digest.num_centroids(),
        "rss_samples": samples,
    }
    payload.update(_series_ratios(samples))
    return payload


def _series_ratios(samples: list) -> Dict[str, Optional[float]]:
    """Flat-memory and steady-throughput ratios from the sample series.

    ``rss_growth_ratio`` compares the final RSS sample against the one a
    quarter of the way in (past warm-up: interpreter, caches, and the
    high-water active set are all allocated by then) — a run whose memory
    scales with trace length would show this ratio growing with
    ``num_coflows``, while an O(active) run keeps it near 1.  The
    throughput ratio compares mean window events/sec between the second
    and first half of the run.
    """
    rss = [s["rss_bytes"] for s in samples if s["rss_bytes"] is not None]
    rates = [
        s["window_events_per_sec"]
        for s in samples
        if s["window_events_per_sec"] is not None
    ]
    ratios: Dict[str, Optional[float]] = {
        "rss_growth_ratio": None,
        "throughput_ratio": None,
    }
    if len(rss) >= 8:
        warm = rss[len(rss) // 4]
        if warm:
            ratios["rss_growth_ratio"] = rss[-1] / warm
    if len(rates) >= 8:
        half = len(rates) // 2
        first = sum(rates[:half]) / half
        second = sum(rates[half:]) / (len(rates) - half)
        if first > 0:
            ratios["throughput_ratio"] = second / first
    return ratios


def run_reference_check(
    num_coflows: int = 500,
    num_ports: int = 150,
    max_width: Optional[int] = None,
    seed: int = 2016,
) -> Dict[str, Any]:
    """Byte-identity and sketch-accuracy check at the reference scale.

    Runs the in-memory engine on the materialized trace and the streaming
    engine on the equivalent generator (with a full
    :class:`~repro.sim.results.SimulationReport` sink so records are
    comparable), then:

    * asserts every :class:`~repro.sim.results.CoflowRecord` is equal —
      dataclass equality covers completion times, switching counts,
      bounds, and categories bit-for-bit;
    * folds the same CCTs into a :class:`~repro.analysis.quantiles.\
QuantileDigest` and measures its rank error against the
      :class:`~repro.analysis.quantiles.ExactQuantiles` oracle at
      p50/p90/p95/p99, reporting the worst case against
      :data:`SKETCH_RANK_ERROR_BOUND`.

    Returns a JSON-ready dict; ``identical`` and ``sketch_ok`` are the
    pass/fail bits the CLI turns into exit codes.
    """
    from repro.analysis.quantiles import ExactQuantiles, QuantileDigest, rank_error
    from repro.sim.circuit_sim import simulate_inter_sunflow
    from repro.sim.results import SimulationReport
    from repro.sim.streaming import simulate_inter_sunflow_stream
    from repro.workloads.stream import stream_synthetic
    from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    trace = FacebookLikeTraceGenerator(config).generate()

    start = time.perf_counter()
    memory_report = simulate_inter_sunflow(trace, 1e9, 0.01)
    memory_wall = time.perf_counter() - start

    sink = SimulationReport("sunflow", bandwidth_bps=1e9, delta=0.01)
    start = time.perf_counter()
    stream_result = simulate_inter_sunflow_stream(
        stream_synthetic(config), bandwidth_bps=1e9, delta=0.01, report=sink
    )
    stream_wall = time.perf_counter() - start

    identical = sink.records == memory_report.records

    digest = QuantileDigest()
    oracle = ExactQuantiles()
    for cct in memory_report.ccts():
        digest.add(cct)
        oracle.add(cct)
    errors = {
        f"q{q:.2f}": rank_error(oracle, digest.quantile(q), q)
        for q in _CHECK_QUANTILES
    }
    worst = max(errors.values())

    return {
        "check": "reference_byte_identity",
        "config": {
            "num_coflows": num_coflows,
            "num_ports": num_ports,
            "max_width": max_width,
            "seed": seed,
        },
        "identical": identical,
        "records": len(memory_report.records),
        "memory_wall_s": memory_wall,
        "stream_wall_s": stream_wall,
        "stream_events": stream_result.events,
        "sketch_rank_errors": errors,
        "sketch_worst_rank_error": worst,
        "sketch_rank_error_bound": SKETCH_RANK_ERROR_BOUND,
        "sketch_ok": worst <= SKETCH_RANK_ERROR_BOUND,
    }


__all__ = [
    "SKETCH_RANK_ERROR_BOUND",
    "run_streaming_bench",
    "run_reference_check",
]
