"""K-core fabric benchmark: CCT-vs-lower-bound sweeps over K.

Replays a synthetic Facebook-like trace over ``K ∈ {1, 2, 4, 8}`` switch
cores in both service modes (Fig-6-style intra, Fig-10-style inter) and
reports, per cell, the mean CCT normalized by the K-core circuit lower
bound (:func:`repro.core.bounds.multicore_circuit_lower_bound`).

Two differential checks ride along and feed a ``differential_mismatches``
count that must come out zero:

* ``K = 1`` must reproduce the single-switch replay **bitwise** (records
  and event times) for every placement policy, in both modes;
* at every ``K``, the incremental and full-replan paths of the K-core
  replay must agree bitwise.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

__all__ = ["run_multicore_sweep"]

#: Inter-mode placement policies swept by the bench ("first-fit" is
#: intra-only: it spreads individual flows, not whole Coflows).
INTER_POLICIES = ("ok-approx", "balanced-split")
INTRA_POLICIES = ("first-fit", "ok-approx", "balanced-split")


def run_multicore_sweep(
    num_coflows: int = 200,
    num_ports: int = 150,
    max_width: Optional[int] = 40,
    seed: int = 2016,
    cores_list: Sequence[int] = (1, 2, 4, 8),
) -> Dict[str, Any]:
    """Run the K-core sweep; returns a JSON-ready result dict.

    Args:
        num_coflows: trace length (200 keeps the 8-core cell tractable).
        num_ports: switch radix (the paper's fabric has 150 ports).
        max_width: cap on Coflow width, ``None`` for unbounded.
        seed: trace generator seed.
        cores_list: fabric widths to sweep.

    Returns:
        ``{"bench": "multicore", "wall_s": ..., "differential_mismatches":
        ..., "cells": [...]}`` — one cell per (mode, policy, K) with the
        mean CCT and its ratio to the K-core circuit lower bound.
    """
    # Imported here so ``repro.perf`` stays importable without the
    # simulation stack.
    from repro.core.bounds import multicore_circuit_lower_bound
    from repro.core.multicore import uniform_cores
    from repro.sim.circuit_sim import InterCoflowSimulator, simulate_intra_sunflow
    from repro.sim.multicore_sim import MultiCoreInterSimulator, simulate_intra_multicore
    from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA
    from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    trace = FacebookLikeTraceGenerator(config).generate()
    bandwidth, delta = DEFAULT_BANDWIDTH, DEFAULT_DELTA
    mismatches = 0
    cells = []
    started = time.perf_counter()

    def bound_ratio(report, num_cores: int) -> Optional[float]:
        # Mean of per-Coflow CCT / T^c_L(K); Coflows whose bound is zero
        # (no demand) are excluded rather than divided by.
        bounds = {
            c.coflow_id: multicore_circuit_lower_bound(
                c, [bandwidth] * num_cores, [delta] * num_cores
            )
            for c in trace
        }
        ratios = [
            (r.completion_time - r.arrival_time) / bounds[r.coflow_id]
            for r in report.records
            if bounds[r.coflow_id] > 0
        ]
        return sum(ratios) / len(ratios) if ratios else None

    def mean_cct(report) -> float:
        return sum(
            r.completion_time - r.arrival_time for r in report.records
        ) / len(report.records)

    # Single-switch references for the K = 1 bitwise differential.
    reference_inter = InterCoflowSimulator(
        trace, bandwidth_bps=bandwidth, delta=delta
    )
    reference_inter_report = reference_inter.run()
    reference_intra_report = simulate_intra_sunflow(trace, bandwidth, delta)

    for num_cores in cores_list:
        cores = uniform_cores(num_cores, bandwidth, delta)

        for policy in INTER_POLICIES:
            runs = {}
            walls = {}
            for incremental in (True, False):
                simulator = MultiCoreInterSimulator(
                    trace,
                    cores,
                    multicore_policy=policy,
                    incremental=incremental,
                )
                t0 = time.perf_counter()
                report = simulator.run()
                walls[incremental] = time.perf_counter() - t0
                runs[incremental] = (simulator.event_times, report)
            if runs[True][0] != runs[False][0] or (
                runs[True][1].records != runs[False][1].records
            ):
                mismatches += 1
            report = runs[True][1]
            k1_bitwise = None
            if num_cores == 1:
                k1_bitwise = (
                    runs[True][0] == reference_inter.event_times
                    and report.records == reference_inter_report.records
                )
                if not k1_bitwise:
                    mismatches += 1
            cells.append(
                {
                    "mode": "inter",
                    "policy": policy,
                    "num_cores": num_cores,
                    "wall_s": walls[True],
                    "full_replan_wall_s": walls[False],
                    "mean_cct_s": mean_cct(report),
                    "cct_vs_circuit_bound": bound_ratio(report, num_cores),
                    "k1_bitwise": k1_bitwise,
                }
            )

        for policy in INTRA_POLICIES:
            t0 = time.perf_counter()
            report = simulate_intra_multicore(
                trace, cores, multicore_policy=policy
            )
            wall = time.perf_counter() - t0
            k1_bitwise = None
            if num_cores == 1:
                k1_bitwise = report.records == reference_intra_report.records
                if not k1_bitwise:
                    mismatches += 1
            cells.append(
                {
                    "mode": "intra",
                    "policy": policy,
                    "num_cores": num_cores,
                    "wall_s": wall,
                    "mean_cct_s": mean_cct(report),
                    "cct_vs_circuit_bound": bound_ratio(report, num_cores),
                    "k1_bitwise": k1_bitwise,
                }
            )

    return {
        "bench": "multicore",
        "wall_s": time.perf_counter() - started,
        "config": {
            "num_coflows": num_coflows,
            "num_ports": num_ports,
            "max_width": max_width,
            "seed": seed,
            "cores": list(cores_list),
            "bandwidth_bps": bandwidth,
            "delta": delta,
        },
        "differential_mismatches": mismatches,
        "cells": cells,
    }
