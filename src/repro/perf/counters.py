"""Lightweight performance counters for the hot simulation paths.

The incremental inter-Coflow replanner trades recomputation for
bookkeeping; these counters make the trade observable — how many replans
were avoided, how many reservations were replayed from cache instead of
re-planned, and where the wall time went — without pulling in a profiler.

Counters are plain dict-backed integers and float timers; incrementing a
disabled counter set is still cheap enough to leave in the hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: The replan-transaction phase timers every instrumented run reports.
#: ``plan.pack`` (demand → planner entries), ``plan.rollback`` (PRT
#: journal truncation), ``plan.replay`` (verbatim re-insertion of cached
#: plans), ``plan.kernel`` (Algorithm 1 proper) and ``plan.transform``
#: (continuation-plan proofs) partition the Python-side cost of the
#: ``plan`` timer; the bench smoke checks assert their presence so a
#: refactor cannot silently drop the instrumentation.
PLAN_SUBTIMERS = (
    "plan.pack",
    "plan.rollback",
    "plan.replay",
    "plan.kernel",
    "plan.transform",
)

#: Process-wide accumulation of every :meth:`PerfCounters.add_time` call,
#: keyed by timer name.  Commands that bury their counter instance inside
#: a simulator (the CLI's ``--profile`` report) read the totals from here
#: instead of threading the instance out.
_process_timers_s: Dict[str, float] = {}


def process_timers() -> Dict[str, float]:
    """Copy of the process-wide timer totals (seconds by timer name)."""
    return dict(_process_timers_s)


def reset_process_timers() -> None:
    """Zero the process-wide timer totals (benchmarks isolate runs)."""
    _process_timers_s.clear()


class PerfCounters:
    """Named integer counters plus named wall-clock phase timers.

    Usage::

        perf = PerfCounters()
        perf.inc("plans_reused")
        with perf.timer("plan"):
            ...  # timed phase
        perf.snapshot()  # {"counts": {...}, "timers_s": {...}}
    """

    __slots__ = ("counts", "timers_s")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.timers_s: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self.counts.get(name, 0)

    def observe_max(self, name: str, value: int) -> None:
        """Track a high-water mark (e.g. peak concurrent flows).

        Stored in ``counts`` alongside the monotonic counters; note that
        :meth:`merge` *sums* counts, so fleet aggregation treats merged
        peaks as totals — snapshot per-run peaks before merging if the
        distinction matters.
        """
        current = self.counts.get(name)
        if current is None or value > current:
            self.counts[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        self.timers_s[name] = self.timers_s.get(name, 0.0) + seconds
        _process_timers_s[name] = _process_timers_s.get(name, 0.0) + seconds

    def time(self, name: str) -> float:
        return self.timers_s.get(name, 0.0)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.counts.clear()
        self.timers_s.clear()

    def merge(self, other: "PerfCounters") -> None:
        """Fold another counter set into this one (fleet aggregation)."""
        for name, value in other.counts.items():
            self.inc(name, value)
        for name, value in other.timers_s.items():
            # Straight into the instance dict: the source counters already
            # fed the process-wide totals when the time was first recorded.
            self.timers_s[name] = self.timers_s.get(name, 0.0) + value

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready copy of the current counter and timer values."""
        return {
            "counts": dict(self.counts),
            "timers_s": dict(self.timers_s),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters(counts={self.counts}, timers_s={self.timers_s})"
