"""Performance observability for the simulation hot paths.

* :class:`PerfCounters` — named counters and per-phase wall timers used by
  the inter-Coflow simulator to report replans avoided, reservations
  made/replayed, and where time went.
* :mod:`repro.perf.replay_bench` — the end-to-end trace-replay benchmark
  comparing the incremental replanner against the full-replan path.
* :func:`bench_provenance` — backend/host provenance (kernel backend,
  native-extension availability, cpu count, python version) attached to
  every ``BENCH_*.json`` by the bench CLIs.
* :data:`scheduler_counters` — process-wide counters for the baseline
  scheduler layer (``matchings_extracted``, ``stuffing_iterations``,
  ``slices_emitted``, ``bvn_permutations``, ``hungarian_solves``),
  incremented by the kernel layer and the scheduler pipeline and surfaced
  in ``BENCH_schedulers.json``.
* :data:`packet_counters` — process-wide counters for the fluid packet
  simulators (``rate_reallocations``, ``allocator_passes``,
  ``flows_active_peak``, ``events_processed``), incremented identically
  by the reference and array-backed engines and surfaced in
  ``BENCH_packet_sim.json``.
"""

from typing import Any, Dict, Optional

from repro.perf.counters import (
    PLAN_SUBTIMERS,
    PerfCounters,
    process_timers,
    reset_process_timers,
)


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes (None if unknown).

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on Linux, bytes
    on macOS — so the value is a high-water mark over the whole process
    lifetime: it can only grow.  The streaming benchmark asserts its
    memory ceiling on this number (a flat peak across a million-coflow
    replay is the whole point), and :func:`bench_provenance` stamps it
    into every ``BENCH_*.json``.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def current_rss_bytes() -> Optional[int]:
    """Current resident set size in bytes via ``/proc`` (None elsewhere).

    Unlike :func:`peak_rss_bytes` this can go down, so the streaming
    benchmark samples it at checkpoints to show the *trajectory* is flat,
    not just the final high-water mark.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as statm:
            fields = statm.read().split()
        import os

        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


def bench_provenance() -> Dict[str, Any]:
    """Machine and backend provenance stamped into every ``BENCH_*.json``.

    Perf trajectories are only comparable when the runs they came from
    are: the same bench is 2× faster with the compiled planner built, and
    multicore numbers depend on the host's core count.  Every bench CLI
    attaches this dict under a ``"provenance"`` key so a committed JSON
    records *what* produced it, not just the numbers.

    Keys:
        ``repro_kernel``
            The active kernel backend (``REPRO_KERNEL`` resolved through
            :func:`repro.kernels.active_backend`; the raw value if unknown).
        ``planner_backend``
            Which ``schedule_demand`` loop actually runs — ``"native"``
            only when ``REPRO_KERNEL=native`` *and* the extension is built.
        ``native_extension_available``
            Whether :mod:`repro._native` imported (independent of whether
            it is selected).
        ``cpu_count`` / ``python_version`` / ``platform``
            The host context.
        ``peak_rss_bytes``
            Process peak resident memory at stamping time (None when the
            platform cannot report it) — so every committed bench payload
            records memory alongside wall time.
    """
    # Imported lazily so ``repro.perf`` stays importable without numpy
    # (repro.kernels imports it eagerly) or the simulation stack.
    import os
    import platform as platform_mod

    from repro.core.sunflow import native_planner_available, planner_backend

    try:
        from repro.kernels import active_backend

        backend = active_backend()
    except (ImportError, ValueError):
        backend = os.environ.get("REPRO_KERNEL", "").strip().lower() or "numpy"
    return {
        "repro_kernel": backend,
        "planner_backend": planner_backend(),
        "native_extension_available": native_planner_available(),
        "cpu_count": os.cpu_count(),
        "python_version": platform_mod.python_version(),
        "platform": platform_mod.platform(),
        "peak_rss_bytes": peak_rss_bytes(),
    }

#: Process-wide counters for the baseline scheduler / kernel layer.
#: Benchmarks ``reset()`` this before a run and ``snapshot()`` it after;
#: leaving it always-on costs one dict update per decomposition step.
scheduler_counters = PerfCounters()

#: Process-wide counters for the packet-switched simulators (both the
#: reference and the vectorized engine increment the same names, so a
#: mismatch in ``events_processed`` between backends is itself a bug
#: signal).  ``flows_active_peak`` is an ``observe_max`` high-water mark.
packet_counters = PerfCounters()

__all__ = [
    "PLAN_SUBTIMERS",
    "PerfCounters",
    "bench_provenance",
    "peak_rss_bytes",
    "current_rss_bytes",
    "process_timers",
    "reset_process_timers",
    "scheduler_counters",
    "packet_counters",
]
