"""Performance observability for the simulation hot paths.

* :class:`PerfCounters` — named counters and per-phase wall timers used by
  the inter-Coflow simulator to report replans avoided, reservations
  made/replayed, and where time went.
* :mod:`repro.perf.replay_bench` — the end-to-end trace-replay benchmark
  comparing the incremental replanner against the full-replan path.
* :data:`scheduler_counters` — process-wide counters for the baseline
  scheduler layer (``matchings_extracted``, ``stuffing_iterations``,
  ``slices_emitted``, ``bvn_permutations``, ``hungarian_solves``),
  incremented by the kernel layer and the scheduler pipeline and surfaced
  in ``BENCH_schedulers.json``.
* :data:`packet_counters` — process-wide counters for the fluid packet
  simulators (``rate_reallocations``, ``allocator_passes``,
  ``flows_active_peak``, ``events_processed``), incremented identically
  by the reference and array-backed engines and surfaced in
  ``BENCH_packet_sim.json``.
"""

from repro.perf.counters import PerfCounters

#: Process-wide counters for the baseline scheduler / kernel layer.
#: Benchmarks ``reset()`` this before a run and ``snapshot()`` it after;
#: leaving it always-on costs one dict update per decomposition step.
scheduler_counters = PerfCounters()

#: Process-wide counters for the packet-switched simulators (both the
#: reference and the vectorized engine increment the same names, so a
#: mismatch in ``events_processed`` between backends is itself a bug
#: signal).  ``flows_active_peak`` is an ``observe_max`` high-water mark.
packet_counters = PerfCounters()

__all__ = ["PerfCounters", "scheduler_counters", "packet_counters"]
