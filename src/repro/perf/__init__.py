"""Performance observability for the simulation hot paths.

* :class:`PerfCounters` — named counters and per-phase wall timers used by
  the inter-Coflow simulator to report replans avoided, reservations
  made/replayed, and where time went.
* :mod:`repro.perf.replay_bench` — the end-to-end trace-replay benchmark
  comparing the incremental replanner against the full-replan path.
"""

from repro.perf.counters import PerfCounters

__all__ = ["PerfCounters"]
