"""End-to-end trace-replay benchmark for the inter-Coflow replanner.

Replays a synthetic Facebook-like trace (§5.1's 150-port fabric) through
:class:`~repro.sim.circuit_sim.InterCoflowSimulator` twice — once with the
incremental prefix-reuse replanner and once with the validation-only
full-replan path — measures both walls, and cross-checks that every
Coflow's completion time and switching count are *identical* between the
two runs.  The CLI wrapper in ``benchmarks/bench_trace_replay.py`` dumps
the result as ``BENCH_trace_replay.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.perf.counters import PLAN_SUBTIMERS, PerfCounters


def _cache_hit_rate(perf: PerfCounters) -> Tuple[float, bool]:
    """Plan-cache hit rate plus a ``skips_only`` qualifier.

    Skipped lookups (key never stored — the pre-check proved a hit
    impossible) are excluded: they are first-sight plans, and counting
    them as misses would deflate the rate achieved on genuinely recurring
    problems.  When *every* lookup was such a skip (or the run never
    looked up at all) there were zero cache opportunities, so the rate is
    reported as ``0.0`` with ``skips_only=True`` — a concrete number
    downstream tooling can plot without a null guard, flagged so it is
    not mistaken for a cache that tried and missed.
    """
    hits = perf.count("plan_cache_hits")
    lookups = hits + perf.count("plan_cache_misses")
    if lookups:
        return hits / lookups, False
    return 0.0, True


def run_trace_replay(
    num_coflows: int = 500,
    num_ports: int = 150,
    max_width: Optional[int] = None,
    seed: int = 2016,
    compare_full: bool = True,
) -> Dict[str, Any]:
    """Run the replay benchmark; returns a JSON-ready result dict.

    Args:
        num_coflows: trace length (the headline configuration uses 500).
        num_ports: switch radix (the paper's fabric has 150 ports).
        max_width: cap on Coflow width, ``None`` for unbounded (paper
            scale — wide Coflows are what make replanning expensive).
        seed: trace generator seed.
        compare_full: also run the full-replan path and verify per-Coflow
            results match bit-for-bit (skip for quick timing-only runs).

    Returns:
        ``{"bench": "trace_replay", "wall_s": ..., "events": ...,
        "coflows": ..., ...}`` — ``wall_s`` is the incremental-mode wall;
        the full-replan wall, speedup, mismatch count, and the incremental
        run's perf counters ride along.
    """
    # Imported here so ``repro.perf`` stays importable without the
    # simulation stack.
    from repro.sim.circuit_sim import InterCoflowSimulator
    from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    trace = FacebookLikeTraceGenerator(config).generate()

    def replay(incremental: bool):
        perf = PerfCounters()
        simulator = InterCoflowSimulator(trace, incremental=incremental, perf=perf)
        start = time.perf_counter()
        report = simulator.run()
        wall = time.perf_counter() - start
        return wall, report, perf

    wall_inc, report_inc, perf_inc = replay(incremental=True)

    inc_rate, inc_skips_only = _cache_hit_rate(perf_inc)
    computed = perf_inc.count("plans_computed")
    events_inc = perf_inc.count("events")
    result: Dict[str, Any] = {
        "bench": "trace_replay",
        "wall_s": wall_inc,
        "events": events_inc,
        "events_per_sec": events_inc / wall_inc if wall_inc > 0 else None,
        "coflows": len(report_inc.records),
        "config": {
            "num_coflows": num_coflows,
            "num_ports": num_ports,
            "max_width": max_width,
            "seed": seed,
        },
        # Reuse summary for the two planner layers: the gap-signature
        # plan cache (intra-Coflow) and the incremental replanner's
        # kept/transformed/replayed layers (inter-Coflow).  The
        # replanner fetches from the cache before any reuse path and
        # populates it from all of them, so this rate reflects genuine
        # recurrence in the trace.
        "incremental_plan_cache_hit_rate": inc_rate,
        "incremental_plan_cache_skips_only": inc_skips_only,
        "plan_cache_skips": perf_inc.count("plan_cache_skips"),
        "plans_kept_per_computed": (
            perf_inc.count("plans_kept") / computed if computed else None
        ),
        "plans_transformed": perf_inc.count("plans_transformed"),
        "plans_reused": perf_inc.count("plans_reused"),
        # Where the ``plan`` timer's time actually went (see
        # ``PLAN_SUBTIMERS``): packing demand, PRT rollback/replay, the
        # planner kernel, and continuation-transform proofs.  Keys are
        # always present (0.0 when a phase never ran) so smoke checks can
        # assert the instrumentation survived refactors.
        "plan_phases_s": {name: perf_inc.time(name) for name in PLAN_SUBTIMERS},
        "counters": perf_inc.snapshot(),
    }

    if compare_full:
        wall_full, report_full, perf_full = replay(incremental=False)
        by_id = {record.coflow_id: record for record in report_full.records}
        mismatches = sum(
            1
            for record in report_inc.records
            if record.completion_time != by_id[record.coflow_id].completion_time
            or record.switching_count != by_id[record.coflow_id].switching_count
        )
        result["full_replan_wall_s"] = wall_full
        result["speedup_vs_full"] = wall_full / wall_inc if wall_inc > 0 else None
        # The full path replans every queued Coflow at every event, so it
        # is where shifted plan-cache hits show up at scale.
        full_rate, full_skips_only = _cache_hit_rate(perf_full)
        result["full_replan_plan_cache_hit_rate"] = full_rate
        result["full_replan_plan_cache_skips_only"] = full_skips_only
        result["mismatches"] = mismatches

    return result


#: How the incremental replanner and the plan cache compose.  Recorded in
#: the bench JSON so the hit-rate numbers are read correctly.
PLAN_CACHE_DIAGNOSIS = (
    "The incremental replanner is cache-aware: for every unestablished "
    "Coflow in the dirty suffix it fetches from the gap-signature plan "
    "cache first (exact and shifted hits; profiles prove the planning "
    "context independently of the replanner's superset chain), then falls "
    "back to verbatim replay, continuation transform, and finally a true "
    "recompute - and every one of those paths stores its plan under the "
    "probe from the missed lookup, so recurrences first seen by the "
    "replanner still seed future hits. A key pre-check counts first-sight "
    "lookups as plan_cache_skips rather than misses, so the hit rate "
    "measures recurring planning problems only. Established Coflows never "
    "touch the cache (their demand mutates every event) and RANDOM "
    "reservation order bypasses it (a hit would desynchronize the rng "
    "stream)."
)


def run_plan_cache_scenario() -> Dict[str, Any]:
    """Recurring-Coflow scenario that exercises the gap-signature cache.

    A convoy of queued Coflows contends for one hot port pair behind a
    long-running head while small transfers on disjoint ports arrive
    periodically, forcing a replan event that does not touch the hot
    ports.  Every event the full-replan path rebuilds each queued plan at
    a later origin against bitwise-identical port profiles — the shifted
    hit the cache was built for.  The incremental replanner fetches from
    the cache before its verbatim-replay path and populates it from every
    reuse path, so the same recurrences hit there too.

    Returns a JSON-ready dict with per-mode cache counters; callers
    assert both modes' ``plan_cache_hit_rate`` (incremental ≥ 0.80).
    """
    from repro.core.coflow import Coflow, CoflowTrace
    from repro.sim.circuit_sim import InterCoflowSimulator

    gb = 1e9

    def transfer(coflow_id: int, arrival: float, src: int, dst: int, gbytes: float):
        return Coflow.from_demand(
            coflow_id, {(src, dst): gbytes * gb}, arrival_time=arrival
        )

    coflows = [transfer(0, 0.0, 0, 1, 8.0)]
    # Convoy on the hot pair; increasing sizes keep ShortestFirst stable.
    coflows += [transfer(1 + k, 0.05, 0, 1, 9.0 + k) for k in range(12)]
    # Churn on disjoint ports: each arrival is a replan event that leaves
    # the hot ports' occupancy untouched.
    coflows += [
        transfer(13 + k, 0.2 + 0.25 * k, 2 + (k % 4) * 2, 3 + (k % 4) * 2, 0.05)
        for k in range(30)
    ]
    trace = CoflowTrace(num_ports=12, coflows=coflows)

    def replay(incremental: bool) -> Dict[str, Any]:
        perf = PerfCounters()
        simulator = InterCoflowSimulator(trace, incremental=incremental, perf=perf)
        simulator.run()
        rate, skips_only = _cache_hit_rate(perf)
        return {
            "plan_cache_hit_rate": rate,
            "plan_cache_skips_only": skips_only,
            "plan_cache_hits": perf.count("plan_cache_hits"),
            "plan_cache_shifted_hits": perf.count("plan_cache_shifted_hits"),
            "plan_cache_misses": perf.count("plan_cache_misses"),
            "plan_cache_skips": perf.count("plan_cache_skips"),
            "plans_reused": perf.count("plans_reused"),
            "plans_transformed": perf.count("plans_transformed"),
            "plans_computed": perf.count("plans_computed"),
        }

    return {
        "scenario": "recurring_coflow_convoy",
        "coflows": len(coflows),
        "incremental": replay(incremental=True),
        "full_replan": replay(incremental=False),
        "diagnosis": PLAN_CACHE_DIAGNOSIS,
    }
