"""End-to-end trace-replay benchmark for the inter-Coflow replanner.

Replays a synthetic Facebook-like trace (§5.1's 150-port fabric) through
:class:`~repro.sim.circuit_sim.InterCoflowSimulator` twice — once with the
incremental prefix-reuse replanner and once with the validation-only
full-replan path — measures both walls, and cross-checks that every
Coflow's completion time and switching count are *identical* between the
two runs.  The CLI wrapper in ``benchmarks/bench_trace_replay.py`` dumps
the result as ``BENCH_trace_replay.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.perf.counters import PerfCounters


def run_trace_replay(
    num_coflows: int = 500,
    num_ports: int = 150,
    max_width: Optional[int] = None,
    seed: int = 2016,
    compare_full: bool = True,
) -> Dict[str, Any]:
    """Run the replay benchmark; returns a JSON-ready result dict.

    Args:
        num_coflows: trace length (the headline configuration uses 500).
        num_ports: switch radix (the paper's fabric has 150 ports).
        max_width: cap on Coflow width, ``None`` for unbounded (paper
            scale — wide Coflows are what make replanning expensive).
        seed: trace generator seed.
        compare_full: also run the full-replan path and verify per-Coflow
            results match bit-for-bit (skip for quick timing-only runs).

    Returns:
        ``{"bench": "trace_replay", "wall_s": ..., "events": ...,
        "coflows": ..., ...}`` — ``wall_s`` is the incremental-mode wall;
        the full-replan wall, speedup, mismatch count, and the incremental
        run's perf counters ride along.
    """
    # Imported here so ``repro.perf`` stays importable without the
    # simulation stack.
    from repro.sim.circuit_sim import InterCoflowSimulator
    from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    trace = FacebookLikeTraceGenerator(config).generate()

    def replay(incremental: bool):
        perf = PerfCounters()
        simulator = InterCoflowSimulator(trace, incremental=incremental, perf=perf)
        start = time.perf_counter()
        report = simulator.run()
        wall = time.perf_counter() - start
        return wall, report, perf

    wall_inc, report_inc, perf_inc = replay(incremental=True)

    def cache_hit_rate(perf: PerfCounters) -> Optional[float]:
        hits = perf.count("plan_cache_hits")
        lookups = hits + perf.count("plan_cache_misses")
        return hits / lookups if lookups else None

    computed = perf_inc.count("plans_computed")
    result: Dict[str, Any] = {
        "bench": "trace_replay",
        "wall_s": wall_inc,
        "events": perf_inc.count("events"),
        "coflows": len(report_inc.records),
        "config": {
            "num_coflows": num_coflows,
            "num_ports": num_ports,
            "max_width": max_width,
            "seed": seed,
        },
        # Reuse summary for the two planner layers: the gap-signature
        # plan cache (intra-Coflow) and the incremental replanner's
        # kept/transformed/replayed layers (inter-Coflow).
        "plan_cache_hit_rate": cache_hit_rate(perf_inc),
        "plans_kept_per_computed": (
            perf_inc.count("plans_kept") / computed if computed else None
        ),
        "plans_transformed": perf_inc.count("plans_transformed"),
        "plans_reused": perf_inc.count("plans_reused"),
        "counters": perf_inc.snapshot(),
    }

    if compare_full:
        wall_full, report_full, perf_full = replay(incremental=False)
        by_id = {record.coflow_id: record for record in report_full.records}
        mismatches = sum(
            1
            for record in report_inc.records
            if record.completion_time != by_id[record.coflow_id].completion_time
            or record.switching_count != by_id[record.coflow_id].switching_count
        )
        result["full_replan_wall_s"] = wall_full
        result["speedup_vs_full"] = wall_full / wall_inc if wall_inc > 0 else None
        # The full path replans every queued Coflow at every event, so it
        # is where shifted plan-cache hits show up at scale.
        result["full_replan_plan_cache_hit_rate"] = cache_hit_rate(perf_full)
        result["mismatches"] = mismatches

    return result
