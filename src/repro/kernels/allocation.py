"""Vectorized rate-allocation kernels for the fluid packet simulator.

The packet-switched baselines (Varys' SEBF + MADD, Aalo's D-CLAS) spend
their time in per-event passes over every flow of every active Coflow:
per-port load sums, water-filling, next-completion scans, and linear
drains.  This module is the numpy substrate for those passes, operating
on :class:`FlowArrays` — the struct-of-arrays flow state maintained by
:class:`~repro.sim.packet_vector.VectorPacketSimulator` — instead of the
per-Coflow ``remaining`` dicts the reference
:class:`~repro.sim.packet_sim.PacketSimulator` walks.

**Bitwise-identity discipline** (same contract as the scheduler kernels):
every reduction that feeds control flow — MADD's gamma, SEBF/D-CLAS sort
keys, queue thresholds, completion and crossing times, capacity checks —
replays the reference implementation's sequential operation order, so
both engines emit *identical* event sequences and CCT records:

* per-port load sums use ``np.bincount`` with weights, which accumulates
  sequentially in array (= flow) order, matching the references' dict
  accumulation (``load[p] = load.get(p, 0.0) + x``);
* per-Coflow attained-service updates use ``np.add.at`` (unbuffered,
  index-order application) so the float addition chain matches the
  reference's per-flow ``sent_seconds += served``;
* pairwise-summing primitives (``np.sum``, ``np.add.reduce``/``reduceat``)
  are **never** used on sums that feed control flow;
* the irreducibly sequential cores — Varys' backfill chain and Aalo's
  per-Coflow water-fill, where each take changes the capacities the next
  flow sees — run as plain-Python loops over listified port capacities,
  preceded by an *exact* vectorized screen: capacities only decrease
  within a pass, and a flow (Varys) or whole Coflow (Aalo) whose ports
  are already exhausted is skipped by the reference without any state
  change, so screening it out beforehand cannot alter the result.

Rates are written back into ``FlowArrays.rate``; allocators return the
flow indices in first-assignment order (the reference rates-dict's key
insertion order) so :func:`check_capacity` can replay the reference's
per-port accumulation order exactly.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.prt import TIME_EPS

#: Minimum alive-flow count before an Aalo serve pays for the vectorized
#: port screen; below this the plain loop is cheaper than the screen.
SCREEN_MIN_FLOWS = 24

#: Minimum alive-flow count before an Aalo serve precomputes contender
#: counts as vectorized suffix ranks (radix argsort) instead of dict
#: bookkeeping inside the scalar loop.  The counts are position-dependent
#: only — capacity never influences them — so they are exact either way.
RANK_MIN_FLOWS = 96

_EMPTY_ORDER = np.empty(0, dtype=np.int64)


@dataclass
class FlowArrays:
    """Struct-of-arrays state for every flow of every active Coflow.

    Flows are stored contiguously per Coflow: Coflow ``c`` owns the slice
    ``starts[c]:starts[c + 1]``, in the same order the reference engine's
    ``remaining`` dict iterates (``Coflow.processing_times`` order).  The
    engine maintains the arrays incrementally — ``advance`` mutates
    ``remaining``/``alive``/``unfinished``/``sent_seconds`` in place, and
    the arrays are only rebuilt when membership changes (arrivals, and
    lazily-compacted completions).

    Output ports are addressed in a combined ``2 * num_ports`` capacity
    space (``dst_off = dst + num_ports``), so one gather/scatter covers
    both sides of the fabric.
    """

    num_ports: int
    #: Remaining processing seconds per flow (float64, shape ``(F,)``).
    remaining: np.ndarray
    #: Allocated fraction of line rate per flow (float64, ``(F,)``).
    rate: np.ndarray
    #: Source port per flow (int32).
    src: np.ndarray
    #: Destination port per flow (int32).
    dst: np.ndarray
    #: ``dst + num_ports`` — destination in the combined capacity space.
    dst_off: np.ndarray
    #: Owning Coflow slot per flow (int32).
    coflow_idx: np.ndarray
    #: Slice bounds per Coflow slot (int64, ``(C + 1,)``).
    starts: np.ndarray
    #: ``remaining > TIME_EPS`` per flow (bool) — kept in sync by advance.
    alive: np.ndarray
    #: Count of alive flows per Coflow slot (int64, ``(C,)``).
    unfinished: np.ndarray
    #: Attained service per Coflow slot (float64, ``(C,)``).
    sent_seconds: np.ndarray
    #: Arrival time per slot (plain list — used only in Python sort keys).
    arrival: List[float] = field(default_factory=list)
    #: Coflow id per slot (plain list — sort keys and error messages).
    coflow_ids: List[int] = field(default_factory=list)
    #: Lazily-cached static lookup tables (Varys): flat (Coflow, port)
    #: bincount keys for the input/output sides, and the per-Coflow block
    #: bounds into the flat load table.  Membership changes rebuild the
    #: whole FlowArrays, which resets these to None.
    key_in: np.ndarray = None
    key_out: np.ndarray = None
    block_bounds: np.ndarray = None
    #: Lazily-cached per-Coflow contender suffix ranks (Aalo), keyed by
    #: slot -> (alive_count, in_ranks, out_ranks).  Alive counts only
    #: ever decrease within a table's lifetime, so the count uniquely
    #: identifies the alive subset the ranks were computed for.
    rank_cache: dict = field(default_factory=dict)
    #: Per-event gather reuse between the allocate -> next_completion ->
    #: advance chain (the engine calls them in exactly that order with no
    #: mutation in between).  ``scratch_alloc`` is ``(aidx, seg, rem_a)``
    #: set by the allocators (``rem_a`` may be None); ``scratch_rated``
    #: is ``(pidx, rem_pos, rate_pos)`` set by :func:`next_completion`.
    #: :func:`advance` consumes and clears both before mutating.  Callers
    #: that mutate ``remaining``/``alive`` by hand between these calls
    #: must clear the scratch fields themselves.
    scratch_alloc: tuple = None
    scratch_rated: tuple = None

    @property
    def num_coflows(self) -> int:
        return len(self.starts) - 1

    @property
    def num_flows(self) -> int:
        return int(self.starts[-1])


def _alive_segments(flows: FlowArrays):
    """Alive flow indices plus per-Coflow segment bounds into them.

    Returns ``(aidx, seg_list, seg_arr)`` — the bounds both as a Python
    list (cheap scalar indexing in the per-Coflow loops) and as the
    underlying int64 array (``reduceat`` bounds in completion scans).
    """
    aidx = np.flatnonzero(flows.alive)
    seg_arr = np.searchsorted(aidx, flows.starts)
    return aidx, seg_arr.tolist(), seg_arr


# ----------------------------------------------------------------------
# Varys: SEBF + MADD + ordered backfill
# ----------------------------------------------------------------------
def varys_allocate(
    flows: FlowArrays, num_ports: int, backfill: bool = True
) -> np.ndarray:
    """Vectorized twin of :meth:`VarysAllocator.allocate`.

    Writes rates into ``flows.rate`` and returns the flow indices in
    assignment order.  MADD's per-Coflow gamma is computed from bincount
    port loads (flow-order sums, bitwise equal to the reference's dict
    accumulation); the sequential backfill runs as a screened scalar loop
    because each take changes the capacities every later flow sees.
    """
    P2 = 2 * num_ports
    C = flows.num_coflows
    rate = flows.rate
    rate.fill(0.0)
    flows.scratch_alloc = None
    flows.scratch_rated = None
    aidx, seg, seg_arr = _alive_segments(flows)
    if aidx.size == 0:
        return _EMPTY_ORDER

    if flows.key_in is None:
        # Static per-table lookup tables: flat (Coflow, side-tagged port)
        # bincount keys and the per-Coflow bounds into the load table.
        cof64 = flows.coflow_idx.astype(np.int64) * P2
        flows.key_in = cof64 + flows.src
        flows.key_out = cof64 + flows.dst_off
        flows.block_bounds = np.arange(C + 1, dtype=np.int64) * P2
    # Pre-gather the alive-flow columns once; the per-Coflow loop below
    # then works on free slice views instead of per-Coflow fancy gathers.
    rem_a = flows.remaining[aidx]
    a_src = flows.src[aidx]
    a_dst = flows.dst_off[aidx]
    flows.scratch_alloc = (aidx, seg_arr, rem_a)
    # One flat (Coflow, side-tagged port) load table covering inputs and
    # outputs; bincount accumulates in flow order, so every per-port sum
    # carries the reference's exact float addition sequence.
    keys = np.concatenate((flows.key_in[aidx], flows.key_out[aidx]))
    loads = np.bincount(keys, weights=np.concatenate((rem_a, rem_a)), minlength=C * P2)
    # SEBF key: the max port load (order-independent, so the row max is
    # exact) — identical to PacketCoflowState.bottleneck().
    bottleneck = loads.reshape(C, P2).max(axis=1).tolist()
    arrival = flows.arrival
    ids = flows.coflow_ids
    order_c = sorted(range(C), key=lambda c: (bottleneck[c], arrival[c], ids[c]))

    # Loaded (Coflow, port) pairs in Coflow-major order: per Coflow, the
    # slice nz[lo:hi] lists exactly the ports the reference's _gamma
    # inspects (ports whose alive load is positive).
    nzf = np.flatnonzero(loads)
    nz_vals = loads[nzf]
    nz_port = nzf % P2
    nz_seg = np.searchsorted(nzf, flows.block_bounds).tolist()

    cap = np.ones(P2)
    order_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    rate_parts: List[np.ndarray] = []
    for c in order_c:
        lo, hi = nz_seg[c], nz_seg[c + 1]
        if lo == hi:
            continue  # no unfinished flows (reference gamma == 0)
        cap_c = cap[nz_port[lo:hi]]
        if cap_c.min() <= TIME_EPS:
            continue  # blocked: some needed port has no capacity left
        gamma = (nz_vals[lo:hi] / cap_c).max()
        s0, s1 = seg[c], seg[c + 1]
        r = rem_a[s0:s1] / gamma
        gs = a_src[s0:s1]
        gd = a_dst[s0:s1]
        # Unbuffered index-order application == the reference's per-flow
        # sequential ``capacity[port] -= rate`` chain.
        np.subtract.at(cap, gs, r)
        np.subtract.at(cap, gd, r)
        order_parts.append(aidx[s0:s1])
        src_parts.append(gs)
        dst_parts.append(gd)
        rate_parts.append(r)

    if not order_parts:
        return _EMPTY_ORDER
    order = np.concatenate(order_parts)
    # Nothing inside the MADD loop reads rates (gamma depends on caps
    # only), so the per-Coflow writes batch into one scatter.
    rate[order] = np.concatenate(rate_parts)

    if backfill:
        bs = np.concatenate(src_parts)
        bd = np.concatenate(dst_parts)
        # Exact screen: capacities only decrease during backfill and a
        # skipped flow mutates nothing, so flows already blocked *now*
        # are exactly the flows the reference would skip later.
        cand = np.flatnonzero(np.minimum(cap[bs], cap[bd]) > TIME_EPS)
        if cand.size:
            cap_l = cap.tolist()
            taken_idx: List[int] = []
            taken_val: List[float] = []
            for s, d, g in zip(
                bs[cand].tolist(), bd[cand].tolist(), order[cand].tolist()
            ):
                ci = cap_l[s]
                co = cap_l[d]
                extra = ci if ci < co else co
                if extra <= TIME_EPS:
                    continue
                taken_idx.append(g)
                taken_val.append(extra)
                cap_l[s] = ci - extra
                cap_l[d] = co - extra
            if taken_idx:
                idx = np.array(taken_idx, dtype=np.int64)
                rate[idx] += np.array(taken_val)  # backfill keys are unique
    return order


# ----------------------------------------------------------------------
# Aalo: D-CLAS queues + fair per-flow water-fill
# ----------------------------------------------------------------------
def aalo_allocate(
    flows: FlowArrays,
    num_ports: int,
    thresholds: np.ndarray,
    num_queues: int,
    weighted: bool,
) -> np.ndarray:
    """Vectorized twin of :meth:`AaloAllocator.allocate`.

    Queue assignment is one ``searchsorted`` over the attained-service
    thresholds (exactly ``queue_of``'s first-crossing loop).  The
    per-Coflow equal-split water-fill is inherently sequential (each
    take lowers the capacities later flows see), so it runs as a scalar
    loop over listified capacities — but a whole Coflow whose alive
    flows all sit on exhausted ports takes nothing and changes nothing
    in the reference, so such Coflows are screened out vectorized.

    Two exact simplifications of the reference loop make the scalar core
    cheap.  First, the trailing ``fair = min(fair, cap_in, cap_out)`` is
    dropped: with positive capacities ``fair <= cap / contenders <= cap``
    already, and with a non-positive capacity both variants land at
    ``fair <= TIME_EPS`` and skip the flow without touching state.
    Second, contender counts depend only on each flow's *position* (the
    reference decrements them for skipped flows too), so for wide
    Coflows they are precomputed as vectorized suffix ranks instead of
    dict bookkeeping inside the loop.
    """
    flows.rate.fill(0.0)
    flows.scratch_alloc = None
    flows.scratch_rated = None
    aidx, seg, seg_arr = _alive_segments(flows)
    if aidx.size == 0:
        return _EMPTY_ORDER
    flows.scratch_alloc = (aidx, seg_arr, None)

    C = flows.num_coflows
    # queue_of: first queue whose boundary exceeds sent_seconds — i.e.
    # the count of thresholds <= sent, clamped to the terminal queue.
    queue = np.searchsorted(thresholds, flows.sent_seconds, side="right").tolist()
    arrival = flows.arrival
    ids = flows.coflow_ids
    order_c = sorted(range(C), key=lambda c: (queue[c], arrival[c], ids[c]))

    a_src = flows.src[aidx]
    a_dst = flows.dst_off[aidx]
    rank_cache = flows.rank_cache
    caps = [1.0] * (2 * num_ports)
    screen = _PortScreen(caps)
    eps = TIME_EPS

    if not weighted:
        # Strict priority serves every Coflow exactly once, so first-
        # assignment order is simply append order — no dict needed.
        t_idx: List[int] = []
        t_val: List[float] = []
        push_idx = t_idx.append
        push_val = t_val.append
        for c in order_c:
            lo, hi = seg[c], seg[c + 1]
            if lo == hi:
                continue
            gs = a_src[lo:hi]
            gd = a_dst[lo:hi]
            if hi - lo >= SCREEN_MIN_FLOWS and screen.blocked(gs, gd):
                continue
            g_l = aidx[lo:hi].tolist()
            s_l = gs.tolist()
            d_l = gd.tolist()
            before = len(t_idx)
            if hi - lo >= RANK_MIN_FLOWS:
                w = hi - lo
                cached = rank_cache.get(c)
                if cached is not None and cached[0] == w:
                    ki_l, ko_l = cached[1], cached[2]
                else:
                    ki_l = _suffix_ranks(gs).tolist()
                    ko_l = _suffix_ranks(gd).tolist()
                    rank_cache[c] = (w, ki_l, ko_l)
                for g_i, s, d, ki, ko in zip(g_l, s_l, d_l, ki_l, ko_l):
                    ci = caps[s]
                    co = caps[d]
                    share_in = ci / ki
                    share_out = co / ko
                    fair = share_in if share_in < share_out else share_out
                    if fair <= eps:
                        continue
                    push_idx(g_i)
                    push_val(fair)
                    caps[s] = ci - fair
                    caps[d] = co - fair
            else:
                contend_in: dict = {}
                contend_out: dict = {}
                for s in s_l:
                    contend_in[s] = contend_in.get(s, 0) + 1
                for d in d_l:
                    contend_out[d] = contend_out.get(d, 0) + 1
                for g_i, s, d in zip(g_l, s_l, d_l):
                    ci = caps[s]
                    co = caps[d]
                    ki = contend_in[s]
                    ko = contend_out[d]
                    contend_in[s] = ki - 1
                    contend_out[d] = ko - 1
                    share_in = ci / ki
                    share_out = co / ko
                    fair = share_in if share_in < share_out else share_out
                    if fair <= eps:
                        continue
                    push_idx(g_i)
                    push_val(fair)
                    caps[s] = ci - fair
                    caps[d] = co - fair
            if len(t_idx) > before:
                screen.invalidate()
        if not t_idx:
            return _EMPTY_ORDER
        order = np.array(t_idx, dtype=np.int64)
        flows.rate[order] = np.array(t_val)
        return order

    # Weighted discipline: two passes revisit the same flows, so rates
    # accumulate in a dict keyed by flow index (insertion order == the
    # reference rates-dict's first-assignment order).
    acc: dict = {}

    def serve(c: int, budget) -> None:
        lo, hi = seg[c], seg[c + 1]
        if lo == hi:
            return
        gs = a_src[lo:hi]
        gd = a_dst[lo:hi]
        if hi - lo >= SCREEN_MIN_FLOWS and screen.blocked(gs, gd):
            return
        g_l = aidx[lo:hi].tolist()
        s_l = gs.tolist()
        d_l = gd.tolist()
        contend_in: dict = {}
        contend_out: dict = {}
        for s in s_l:
            contend_in[s] = contend_in.get(s, 0) + 1
        for d in d_l:
            contend_out[d] = contend_out.get(d, 0) + 1
        took = False
        for g_i, s, d in zip(g_l, s_l, d_l):
            ci = caps[s]
            co = caps[d]
            ki = contend_in[s]
            ko = contend_out[d]
            contend_in[s] = ki - 1
            contend_out[d] = ko - 1
            share_in = ci / ki
            share_out = co / ko
            fair = share_in if share_in < share_out else share_out
            if budget is not None and budget < fair:
                fair = budget
            if fair <= eps:
                continue
            acc[g_i] = acc.get(g_i, 0.0) + fair
            caps[s] = ci - fair
            caps[d] = co - fair
            took = True
        if took:
            screen.invalidate()

    weights = [float(num_queues - k) for k in range(num_queues)]
    total_weight = sum(weights)
    for c in order_c:
        serve(c, weights[queue[c]] / total_weight)
    for c in order_c:
        serve(c, None)

    if not acc:
        return _EMPTY_ORDER
    order = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
    flows.rate[order] = np.fromiter(acc.values(), dtype=np.float64, count=len(acc))
    return order


def _suffix_ranks(keys: np.ndarray) -> np.ndarray:
    """Per-position count of equal keys at this index or later.

    This is exactly the water-fill's contender count at the moment each
    flow is processed: the reference decrements a port's count for every
    flow on it — taken or skipped — so the count a flow sees is purely
    positional and never depends on capacities.
    """
    w = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    newgrp = np.empty(w, dtype=bool)
    newgrp[0] = True
    np.not_equal(sk[1:], sk[:-1], out=newgrp[1:])
    gidx = np.cumsum(newgrp) - 1
    counts = np.bincount(gidx)
    first = np.flatnonzero(newgrp)
    suffix = counts[gidx] - (np.arange(w, dtype=np.int64) - first[gidx])
    out = np.empty(w, dtype=np.int64)
    out[order] = suffix
    return out


class _PortScreen:
    """Cached ndarray view of the scalar capacity list for Aalo screens.

    Rebuilding the array costs one pass over ``2P`` floats; serves that
    take nothing leave the capacities untouched, so once the fabric
    saturates the same array screens every remaining (blocked) Coflow.
    """

    __slots__ = ("_caps", "_array")

    def __init__(self, caps: List[float]) -> None:
        self._caps = caps
        self._array = None

    def invalidate(self) -> None:
        self._array = None

    def blocked(self, gs: np.ndarray, gd: np.ndarray) -> bool:
        """True when every flow's port pair is already exhausted.

        Exact: ``fair <= min(cap_in, cap_out)`` for every flow, so if
        that bound is ``<= TIME_EPS`` for all of them the reference's
        serve loop skips each one without touching shared state (its
        contender counts are local to the call).
        """
        if self._array is None:
            # array('d', list) unboxes at C speed; frombuffer is a view.
            self._array = np.frombuffer(array("d", self._caps))
        a = self._array
        return float(np.minimum(a[gs], a[gd]).max()) <= TIME_EPS


def aalo_extra_event_time(
    flows: FlowArrays,
    now: float,
    thresholds: np.ndarray,
    num_queues: int,
) -> float:
    """Earliest queue-threshold crossing (twin of ``extra_event_time``).

    Per-Coflow total rates come from a weighted bincount over alive
    flows, which replays the reference's flow-order ``sum`` exactly (the
    reference also adds the 0.0 rates of unallocated flows, a bitwise
    no-op).
    """
    rated = flows.scratch_rated
    if rated is not None:
        aidx, _, r_a = rated
    else:
        aidx = np.flatnonzero(flows.alive)
        r_a = None
    if aidx.size == 0:
        return math.inf
    if r_a is None:
        r_a = flows.rate[aidx]
    C = flows.num_coflows
    total_rate = np.bincount(flows.coflow_idx[aidx], weights=r_a, minlength=C)
    queue = np.searchsorted(thresholds, flows.sent_seconds, side="right")
    eligible = (total_rate > TIME_EPS) & (queue < num_queues - 1)
    if not eligible.any():
        return math.inf
    boundary = thresholds[queue[eligible]]
    crossing = now + (boundary - flows.sent_seconds[eligible]) / total_rate[eligible]
    crossing = crossing[crossing > now + TIME_EPS]
    if crossing.size == 0:
        return math.inf
    return float(crossing.min())


# ----------------------------------------------------------------------
# Engine passes shared by every allocator
# ----------------------------------------------------------------------
def next_completion(
    flows: FlowArrays, now: float, reallocate_on_flow_completion: bool
) -> float:
    """Vectorized twin of ``PacketSimulator._next_completion``.

    With flow-level reallocation (Aalo) the earliest event is simply the
    min finish time over alive flows with positive rate (the reference's
    per-Coflow maxima are maxima of already-included finishes and can
    never lower the min).  Without it (Varys), only whole-Coflow
    completions count, and a Coflow with any starved alive flow is
    excluded — exactly the reference's ``coflow_finish in (0, inf)``
    filter.

    Starved flows divide to ``+inf`` (suppressed warning) instead of
    being masked out: ``min`` over finishes ignores the infinities
    unless *everything* is starved, in which case the reference returns
    ``inf`` too, and a starved Coflow's ``max`` finish becomes ``inf``,
    which drops out of the candidate ``min`` exactly like the
    reference's exclusion.  Per-Coflow maxima use ``maximum.reduceat``
    over the contiguous alive segments (max is order-independent, so
    this is exact).
    """
    scratch = flows.scratch_alloc
    if scratch is not None:
        aidx, seg_arr, rem_a = scratch
    else:
        aidx = np.flatnonzero(flows.alive)
        seg_arr = None
        rem_a = None
    if aidx.size == 0:
        return math.inf
    if rem_a is None:
        rem_a = flows.remaining[aidx]
    r = flows.rate[aidx]
    flows.scratch_rated = (aidx, rem_a, r)
    with np.errstate(divide="ignore"):
        finish = now + rem_a / r
    if reallocate_on_flow_completion:
        return float(finish.min())

    if seg_arr is None:
        seg_arr = np.searchsorted(aidx, flows.starts)
    # Reduce only over Coflows with alive flows: their segment starts
    # are strictly increasing, and empty segments between two of them
    # share a boundary, so consecutive starts delimit exactly each
    # Coflow's alive run (the last start reduces through to the end).
    nonempty = np.flatnonzero(flows.unfinished)
    if nonempty.size == 0:
        return math.inf
    coflow_finish = np.maximum.reduceat(finish, seg_arr[nonempty])
    return float(coflow_finish.min())


def advance(flows: FlowArrays, duration: float) -> None:
    """Vectorized twin of ``PacketSimulator._advance``.

    One fused ``remaining -= min(remaining, rate * duration)`` over the
    alive flows, with attained service scattered back per Coflow via
    ``np.add.at`` (index-order accumulation == the reference's per-flow
    ``sent_seconds += served`` chain).  Unrated flows are bitwise no-ops
    in every step (``served = 0.0``, ``p - 0.0 == p``, ``x + 0.0 == x``
    for the non-negative quantities involved), so they ride along
    instead of being filtered out — which lets the whole event chain
    share one gather set via the scratch fields.  Newly drained flows
    drop out of ``alive``/``unfinished`` here, which is what makes
    ``done`` checks O(1) for the engine.
    """
    if duration <= 0:
        return
    scratch = flows.scratch_rated
    flows.scratch_alloc = None
    flows.scratch_rated = None
    if scratch is not None:
        idx, p, r = scratch
    else:
        idx = np.flatnonzero(flows.alive)
        p = flows.remaining[idx]
        r = flows.rate[idx]
    if idx.size == 0:
        return
    served = np.minimum(p, r * duration)
    left = p - served
    flows.remaining[idx] = left
    cof = flows.coflow_idx[idx]
    np.add.at(flows.sent_seconds, cof, served)
    drained = left <= TIME_EPS
    if drained.any():
        flows.alive[idx[drained]] = False
        np.subtract.at(flows.unfinished, cof[drained], 1)


def check_capacity(flows: FlowArrays, order: np.ndarray, num_ports: int) -> None:
    """Vectorized twin of ``PacketSimulator._check_capacity``.

    ``order`` is the assignment-order index array the allocators return,
    so the bincount per-port sums replay the reference's rates-dict
    iteration order bit for bit.
    """
    if order.size == 0:
        return
    r = flows.rate[order]
    negative = r < -TIME_EPS
    if negative.any():
        i = int(order[int(np.argmax(negative))])
        raise ValueError(
            f"negative rate for flow ({int(flows.src[i])}, {int(flows.dst[i])})"
        )
    tolerance = 1e-6
    input_rate = np.bincount(flows.src[order], weights=r, minlength=num_ports)
    over = input_rate > 1.0 + tolerance
    if over.any():
        port = int(np.argmax(over))
        raise ValueError(f"input port {port} over capacity: {input_rate[port]}")
    output_rate = np.bincount(flows.dst[order], weights=r, minlength=num_ports)
    over = output_rate > 1.0 + tolerance
    if over.any():
        port = int(np.argmax(over))
        raise ValueError(f"output port {port} over capacity: {output_rate[port]}")
