"""Hungarian assignment kernel (vectorized twin of ``hungarian``).

The reference is the classic JV shortest-augmenting-path formulation with
an O(n) Python scan over columns per Dijkstra step.  The kernel keeps the
outer control flow — one augmentation per row, one column marked used per
step — and compresses the inner scan to five ndarray dispatches whose
observable decisions are identical to the reference:

* the tentative reduced cost is ``(cost_row − u[i0]) − v``, the same two
  subtractions in the same order — valid because during one augmentation
  every term is static (``u[i0]`` belongs to a freshly reached row and
  ``v[j]`` of an unused column only changes once the column is used);
* ``np.fmin`` replaces the compare-and-copy pair: elementwise it keeps
  exactly the value the reference's strict ``<`` update keeps (a ±0.0
  sign flip on ties is possible but invisible — every downstream use is
  a comparison, and ``−0.0`` orders identically to ``+0.0``);
* used columns are folded out *in place*: their ``v`` slot becomes
  ``−1e300`` so their tentative cost is astronomically large, which keeps
  them out of ``argmin`` without a mask (``argmin`` ties break to the
  first index, matching the reference's ascending scan with strict
  ``<``);
* the predecessor array is not maintained at all — for the handful of
  columns on the augmenting path, the reference's ``way`` entry is
  recovered afterwards by replaying that column's scalar update sequence
  in Python, bit for bit;
* dual updates are deferred to the end of the augmentation and replayed
  per element as the same ordered sequence of ``± delta`` additions the
  reference performs (zero deltas are skipped — a ``± 0.0`` add/subtract
  is an exact no-op on values that are never ``−0.0``, which holds for
  the duals by induction from their ``+0.0`` start).

The result: identical assignments wherever the reference's own float
decisions are reproduced, which is everywhere — the differential tests
drive both through hundreds of random matrices and assert equality.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.perf import scheduler_counters

_INF = float("inf")

#: Sentinel folded into ``v`` at used columns: tentative costs become
#: ~1e300, far above any genuine candidate, so a plain ``argmin`` skips
#: them.  Genuine costs are bounded by the demand scale (« 1e300), so no
#: overflow and no collision is possible.
_USED_FOLD = -1e300


def min_cost_assignment(cost) -> Dict[int, int]:
    """Minimum-cost perfect assignment of rows to columns.

    Accepts a square ndarray or nested sequence; returns ``{row: column}``.
    Mirrors ``hungarian.min_cost_assignment`` including its ValueError on
    non-square input.
    """
    try:
        a = np.asarray(cost, dtype=np.float64)
    except ValueError:
        # Ragged nested rows fail densification; report them the same way
        # the reference reports any non-square input.
        raise ValueError("cost matrix must be square") from None
    if a.size == 0 and a.ndim <= 1:
        return {}
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("cost matrix must be square")
    n = a.shape[0]
    scheduler_counters.inc("hungarian_solves")

    # Column-extended cost: slot 0 is the virtual start column of the JV
    # formulation; its value is never read (folded out before first use).
    ext = np.zeros((n, n + 1), dtype=np.float64)
    ext[:, 1:] = a
    rows = [ext[k] for k in range(n)]

    u: List[float] = [0.0] * (n + 1)  # scalar reads only — plain floats
    v_py: List[float] = [0.0] * (n + 1)  # authoritative column potentials
    v = np.zeros(n + 1, dtype=np.float64)  # ndarray twin with used-folds
    assignment: List[int] = [0] * (n + 1)  # column -> row (1-indexed)

    minv = np.empty(n + 1, dtype=np.float64)
    cur = np.empty(n + 1, dtype=np.float64)

    for i in range(1, n + 1):
        assignment[0] = i
        j0 = 0
        minv[:] = _INF
        used_cols: List[int] = []  # in join order
        joined_rows: List[int] = []
        joined_at: Dict[int, int] = {}
        deltas: List[float] = []
        while True:
            joined_at[j0] = len(used_cols)
            i0 = assignment[j0]
            used_cols.append(j0)
            joined_rows.append(i0)
            v[j0] = _USED_FOLD
            minv[j0] = _INF
            row = rows[i0 - 1]
            u_i0 = u[i0]
            if u_i0 != 0.0:
                np.subtract(row, u_i0, out=cur)
                np.subtract(cur, v, out=cur)
            else:
                # x − (+0.0) is a bitwise no-op and u is never −0.0
                # (it starts at +0.0 and a float sum only yields −0.0
                # from −0.0 operands), so the first subtract can go.
                np.subtract(row, v, out=cur)
            np.fmin(minv, cur, out=minv)
            j1 = int(minv.argmin())
            delta = float(minv[j1])
            deltas.append(delta)
            if delta != 0.0 or math.copysign(1.0, delta) < 0.0:
                # Skipping an exact +0.0 subtraction is a bitwise no-op;
                # −0.0 must still be applied (it flips −0.0 slots to +0.0
                # exactly as the reference does).
                np.subtract(minv, delta, out=minv)
            j0 = j1
            if assignment[j0] == 0:
                break

        # --- augment along the reference's predecessor chain -----------
        # way[j] is recovered per path column by replaying its scalar
        # update sequence: same costs, same strict <, same delta drains.
        total = len(used_cols)
        while j0:
            limit = joined_at.get(j0, total)
            vj = v_py[j0]
            mv = _INF
            pred = 0
            for t in range(limit):
                i_t = joined_rows[t]
                c = (float(ext[i_t - 1, j0]) - u[i_t]) - vj
                if c < mv:
                    mv = c
                    pred = used_cols[t]
                mv -= deltas[t]
            assignment[j0] = assignment[pred]
            j0 = pred

        # --- deferred dual updates: exact per-element replay -----------
        nonzero = [
            (t, d) for t, d in enumerate(deltas) if d != 0.0
        ]
        start = 0
        for k in range(total):
            jc = used_cols[k]
            ir = joined_rows[k]
            while start < len(nonzero) and nonzero[start][0] < k:
                start += 1
            if start < len(nonzero):
                uv = u[ir]
                vv = v_py[jc]
                for t in range(start, len(nonzero)):
                    d = nonzero[t][1]
                    uv += d
                    vv -= d
                u[ir] = uv
                v_py[jc] = vv
            v[jc] = v_py[jc]  # unfold the sentinel

    return {assignment[j] - 1: j - 1 for j in range(1, n + 1)}


def max_weight_assignment(weight) -> Dict[int, int]:
    """Maximum-weight perfect assignment (negated costs)."""
    a = np.asarray(weight, dtype=np.float64)
    return min_cost_assignment(-a)


def max_weight_matching(weight) -> Dict[int, int]:
    """Maximum-weight matching: perfect assignment minus zero-weight pairs."""
    a = np.asarray(weight, dtype=np.float64)
    if a.size and float(a.min()) < 0:
        raise ValueError("demand weights must be non-negative")
    perfect = max_weight_assignment(a)
    return {i: j for i, j in perfect.items() if a[i, j] > 0}
