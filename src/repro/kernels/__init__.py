"""Vectorized demand-matrix kernels for the baseline schedulers.

The assignment-based baselines the paper sweeps Sunflow against (Solstice,
TMS, Edmond — see :mod:`repro.schedulers`) all reduce to dense linear
algebra over an ``n × n`` demand matrix: line sums and stuffing, repeated
bipartite matchings, Hungarian assignments, and Birkhoff–von-Neumann
decompositions.  This package is the numpy-backed implementation of that
substrate; demand matrices flow through it as contiguous ``float64``
ndarrays, canonicalized once at the boundary by :func:`as_demand_matrix`.

**Backend contract.**  Every kernel has a pure-Python twin retained in the
``repro.matching.*_reference`` modules (the implementations that shipped
before this layer, kept verbatim as behavioural oracles — the
``ReferencePortReservationTable`` pattern).  The kernels follow the
reference algorithms step for step, including iteration order and
tie-breaking, so both sides emit *identical* assignments; differential
tests in ``tests/kernels/`` enforce this on random sparse, skewed, and
doubly-stochastic matrices.  The only tolerated divergence is last-ulp
float drift where numpy's pairwise summation replaces Python's sequential
``sum`` (Sinkhorn line sums), which the schedulers absorb well inside
their ``1e-9`` duration tolerance.

**Runtime selection.**  ``REPRO_KERNEL=python`` in the environment routes
the scheduler pipeline through the pure-Python references instead —
useful for differential debugging and as a numpy-free escape hatch.  The
default (``REPRO_KERNEL`` unset or ``numpy``) uses the kernels.

**Packet-simulator kernels.**  :mod:`repro.kernels.allocation` extends
the layer to the fluid packet simulator: struct-of-arrays flow state
(``FlowArrays``) with vectorized Varys MADD, Aalo D-CLAS, completion
search, and drain passes, dispatched by
:func:`repro.sim.packet_sim.simulate_packet` on the same backend switch.
Unlike the scheduler kernels these promise *strictly* bitwise-identical
event sequences and CCT records against the dict-based reference engine
— no tolerated drift.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

#: Environment variable selecting the kernel backend at runtime.
BACKEND_ENV = "REPRO_KERNEL"

#: Recognized backend names.  ``native`` selects the compiled Sunflow
#: planner (:mod:`repro._native`) for ``schedule_demand`` and behaves like
#: ``numpy`` everywhere else; when the extension is not built the planner
#: falls back to pure Python with a one-time warning (see
#: :func:`repro.core.sunflow.planner_backend`).
BACKENDS = ("numpy", "python", "native")


def active_backend() -> str:
    """The backend the scheduler pipeline dispatches to right now.

    Reads ``REPRO_KERNEL`` on every call (it is consulted once per
    ``schedule()`` call, not in inner loops), so tests and sweeps can flip
    the backend without reimporting anything — worker processes inherit
    the variable through the environment.

    Raises:
        ValueError: if ``REPRO_KERNEL`` names an unknown backend.
    """
    value = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not value:
        return "numpy"
    if value not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={value!r} is not a known kernel backend; "
            f"expected one of {BACKENDS}"
        )
    return value


def numpy_enabled() -> bool:
    """True when the numpy kernel layer is active.

    The ``native`` backend only swaps the Sunflow planner loop; the
    scheduler/packet kernels keep their numpy implementations, so every
    backend except ``python`` enables them.
    """
    return active_backend() != "python"


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily pin the kernel backend (tests and benchmarks)."""
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {BACKENDS}")
    previous = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = previous


def as_demand_matrix(matrix) -> np.ndarray:
    """Canonicalize a demand matrix to a square, contiguous ``float64`` array.

    The single dtype boundary of the kernel layer: nested lists, tuples,
    and ndarrays of any float/int dtype all land on the same canonical
    form, and an already-canonical array passes through *without copying*
    (callers that mutate must copy explicitly, exactly as with the
    reference helpers that return fresh lists).

    Raises:
        ValueError: if the matrix is not square or has negative entries
            (matching the reference helpers' messages).
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        if a.ndim == 1 and a.size == 0:
            # [] densifies to shape (0,) — treat as the empty 0×0 matrix.
            return np.zeros((0, 0), dtype=np.float64)
        raise ValueError("demand matrix must be square")
    if a.size and float(a.min()) < 0:
        raise ValueError("demand must be non-negative")
    return np.ascontiguousarray(a)


from repro.kernels.assignment import (  # noqa: E402
    max_weight_assignment,
    max_weight_matching,
    min_cost_assignment,
)
from repro.kernels.decomposition import birkhoff_von_neumann  # noqa: E402
from repro.kernels.matching import SupportMatcher, matching_from_matrix  # noqa: E402
from repro.kernels.matrix import (  # noqa: E402
    has_equal_line_sums,
    line_sums,
    quick_stuff,
    sinkhorn_scale,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "active_backend",
    "numpy_enabled",
    "use_backend",
    "as_demand_matrix",
    "line_sums",
    "has_equal_line_sums",
    "quick_stuff",
    "sinkhorn_scale",
    "matching_from_matrix",
    "SupportMatcher",
    "min_cost_assignment",
    "max_weight_assignment",
    "max_weight_matching",
    "birkhoff_von_neumann",
]
