"""Perfect-matching kernel over ndarray support (twin of ``hopcroft_karp``).

The BvN decomposition extracts one perfect matching per term — up to
``(n−1)² + 1`` of them for a dense 150×150 matrix — and the reference
rebuilds an adjacency dict from the full matrix every time, an O(n²)
Python scan per term that dominates the TMS baseline.
:class:`SupportMatcher` keeps the support three ways: a mutable boolean
ndarray (cheap membership for ``remove_edge``), one Python integer
bitmask per row (greedy matching and BFS layering), and one ascending
column list per row (the DFS inner loop).  ``row_mask & free_mask``
isolates a row's free columns in a single big-int AND, and the lowest
set bit *is* the first free column in ascending order — the exact
vertex the reference algorithm picks.  Successive BvN terms pay only
for the handful of edges each subtraction actually removes.

Equivalence with the reference Hopcroft–Karp is structural:

* The reference's **first phase** (all left vertices free) degenerates
  to greedy first-free-column in row order — every DFS sees only
  vertices at distance 0, so the recursive branch
  (``distance == distance[u] + 1``, i.e. ``0 == 1``) can never fire.
  The kernel runs that greedy pass directly via the bitmasks.
* **Later phases** replay the reference exactly: the bitmask-layered
  BFS assigns the same shortest distances as the reference's FIFO BFS
  (unit edges from multiple sources), and the augmenting DFS is the
  reference's recursion made iterative, walking the same ascending
  per-row column lists — same order, same ``distance[u] = INF``
  poisoning on failure.

Since a maximum matching's *cardinality* is unique, the perfect-or-None
answer always agrees; when a perfect matching exists the row→column map
itself is identical by the argument above.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.perf import scheduler_counters

_INF = float("inf")


class SupportMatcher:
    """Maximum bipartite matching over a mutable boolean support matrix.

    Args:
        support: square boolean ndarray; ``support[i, j]`` is True when
            row ``i`` may be matched to column ``j``.  The matcher keeps a
            reference and mutates it through :meth:`remove_edge`.
    """

    __slots__ = ("_support", "_n", "_masks", "_cols", "_bits")

    def __init__(self, support: np.ndarray) -> None:
        if support.ndim != 2 or support.shape[0] != support.shape[1]:
            raise ValueError("support matrix must be square")
        if support.dtype != np.bool_:
            support = support.astype(np.bool_)
        self._support = support
        n = support.shape[0]
        self._n = n
        self._bits: List[int] = [1 << v for v in range(n)]
        if n:
            packed = np.packbits(support, axis=1, bitorder="little").tobytes()
            stride = (n + 7) // 8
            self._masks: List[int] = [
                int.from_bytes(packed[k * stride : (k + 1) * stride], "little")
                for k in range(n)
            ]
            # Ascending column lists mirror the masks: the DFS iterates
            # these (a C-level list walk per edge beats big-int extraction).
            self._cols: List[List[int]] = [
                np.flatnonzero(row).tolist() for row in support
            ]
        else:
            self._masks = []
            self._cols = []

    # ------------------------------------------------------------------
    def remove_edge(self, row: int, col: int) -> None:
        """Drop one support edge (a drained BvN cell)."""
        if self._support[row, col]:
            self._support[row, col] = False
            self._masks[row] &= ~self._bits[col]
            self._cols[row].remove(col)

    # ------------------------------------------------------------------
    def perfect_matching_array(self) -> Optional[np.ndarray]:
        """Row→column perfect matching as an ``intp`` array, or None.

        Cold-started on every call (the reference decomposes each term
        from scratch, and a warm-started repair would pick a *different*
        perfect matching); only the support bookkeeping is incremental.
        """
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.intp)
        match_left = [-1] * n
        match_right = [-1] * n
        masks = self._masks

        # Phase 1 — greedy first-free-column (== reference's first round).
        free_mask = (1 << n) - 1
        free_rows: List[int] = []
        for i in range(n):
            candidates = masks[i] & free_mask
            if candidates:
                low = candidates & -candidates
                j = low.bit_length() - 1
                match_left[i] = j
                match_right[j] = i
                free_mask ^= low
            else:
                free_rows.append(i)

        # Later phases — reference Hopcroft–Karp on the residual graph.
        if free_rows:
            self._augment_phases(match_left, match_right)

        if -1 in match_left:
            return None
        scheduler_counters.inc("matchings_extracted")
        return np.array(match_left, dtype=np.intp)

    def perfect_matching(self) -> Optional[Dict[int, int]]:
        """Row→column perfect matching as a dict, or None (reference API)."""
        perm = self.perfect_matching_array()
        if perm is None:
            return None
        return {i: int(j) for i, j in enumerate(perm.tolist())}

    # ------------------------------------------------------------------
    def _augment_phases(
        self, match_left: List[int], match_right: List[int]
    ) -> None:
        """BFS-layer + DFS-augment until no augmenting path remains.

        The layering runs on the row bitmasks: OR-ing the current layer's
        masks yields every adjacent column in one big-int op, and matched
        columns map back to the next layer of left vertices through
        ``match_right``.  The layer sets (and therefore the ``dist``
        labels the DFS consumes) are identical to the reference's FIFO
        BFS — unit edges from multiple sources.
        """
        n = self._n
        masks = self._masks
        dist: List[float] = [0.0] * n
        while True:
            free = [u for u in range(n) if match_left[u] == -1]
            if not free:
                return
            for u in range(n):
                dist[u] = _INF
            for u in free:
                dist[u] = 0.0
            bits = self._bits
            free_cols = 0
            for v in range(n):
                if match_right[v] == -1:
                    free_cols |= bits[v]
            found = False
            depth = 0.0
            layer = free
            while layer:
                cols = 0
                for u in layer:
                    cols |= masks[u]
                if cols & free_cols:
                    found = True
                remaining = cols & ~free_cols
                depth += 1.0
                nxt: List[int] = []
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    partner = match_right[low.bit_length() - 1]
                    if dist[partner] == _INF:
                        dist[partner] = depth
                        nxt.append(partner)
                layer = nxt
            if not found:
                return
            for u in range(n):
                if match_left[u] == -1:
                    self._dfs(u, dist, match_left, match_right)

    def _dfs(
        self,
        u: int,
        dist: List[float],
        match_left: List[int],
        match_right: List[int],
    ) -> bool:
        """Augment from ``u`` along the BFS layering.

        Iterative rendition of the reference recursion — same ascending
        edge order, same ``dist[u] = INF`` poisoning on failure, same
        match flips on success — with the per-edge Python call replaced
        by an explicit frame stack (the BvN drain makes hundreds of
        thousands of these calls per decomposition).
        """
        cols = self._cols
        stack: List = []
        row = cols[u]
        idx = 0
        nxt = dist[u] + 1.0
        while True:
            while idx < len(row):
                v = row[idx]
                idx += 1
                partner = match_right[v]
                if partner == -1:
                    # Success: flip the matched edges along the path.
                    match_left[u] = v
                    match_right[v] = u
                    while stack:
                        u, v, row, idx, nxt = stack.pop()
                        match_left[u] = v
                        match_right[v] = u
                    return True
                if dist[partner] == nxt:
                    # Descend into the partner's frame.
                    stack.append((u, v, row, idx, nxt))
                    u = partner
                    row = cols[u]
                    idx = 0
                    nxt = dist[u] + 1.0
            dist[u] = _INF
            if not stack:
                return False
            u, v, row, idx, nxt = stack.pop()


def matching_from_matrix(
    matrix, threshold: float = 0.0
) -> Optional[Dict[int, int]]:
    """Perfect matching of rows to columns where ``matrix[i][j] > threshold``.

    Kernel twin of ``hopcroft_karp.matching_from_matrix``: one vectorized
    comparison builds the support, then :class:`SupportMatcher` runs.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2:
        if a.size == 0:
            a = np.zeros((0, 0), dtype=np.float64)
        else:
            raise ValueError("matrix must be two-dimensional")
    return SupportMatcher(a > threshold).perfect_matching()
