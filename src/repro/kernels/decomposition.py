"""Birkhoff–von-Neumann decomposition kernel (twin of ``birkhoff``).

The reference rebuilds a Python adjacency dict from the full matrix for
every extracted permutation — O(n²) work per term against the
``(n−1)² + 1`` terms a dense 150×150 TMS matrix produces.  The kernel
threads one :class:`~repro.kernels.matching.SupportMatcher` through the
whole drain: the support starts as ``work > zero`` and each term only
*removes* the handful of edges its subtraction actually drained (matched
cells are the only cells that change), so per-term cost collapses to the
matching itself plus a few fancy-indexed vector ops.

Bitwise parity with the reference:

* the equal-line-sums gate and the drain total use sequential Python
  sums (:func:`repro.kernels.matrix.sequential_line_sums`) — numpy's
  pairwise summation could shift a knife-edge gate decision;
* each term's weight is the same ``min`` over the same matched cells,
  the subtraction and the ``< zero`` clamp are the same per-element
  operations, and the support seen by the next matching is exactly the
  reference's rebuilt ``work[i][j] > zero`` adjacency;
* the matcher itself returns the reference Hopcroft–Karp matching (see
  ``repro.kernels.matching``), so terms agree permutation for
  permutation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.kernels.matching import SupportMatcher
from repro.kernels.matrix import sequential_line_sums
from repro.matching.birkhoff_reference import BvnTerm
from repro.perf import scheduler_counters

#: Entries below this fraction of the matrix scale are treated as zero
#: (mirrors ``birkhoff._ZERO_TOLERANCE``).
_ZERO_TOLERANCE = 1e-12


def birkhoff_von_neumann(matrix, max_terms: int = 0) -> List[BvnTerm]:
    """Decompose a matrix with equal line sums into weighted permutations.

    Kernel twin of ``birkhoff.birkhoff_von_neumann``: same gate, same
    tolerances, same crumb-break behaviour, same terms.
    """
    work = np.array(matrix, dtype=np.float64)
    if work.ndim != 2 and work.size == 0:
        return []
    if work.ndim != 2 or work.shape[0] != work.shape[1]:
        raise ValueError("demand matrix must be square")
    n = work.shape[0]
    if n == 0:
        return []

    rows, cols = sequential_line_sums(work)
    sums = rows + cols
    reference = sums[0]
    gate_scale = max(abs(reference), 1.0)
    if any(abs(s - reference) > 1e-5 * gate_scale for s in sums):
        raise ValueError(
            "BvN requires equal row/column sums; stuff the matrix first"
        )
    scale = max(max(rows), 1e-30)
    zero = scale * _ZERO_TOLERANCE

    matcher = SupportMatcher(work > zero)
    indices = np.arange(n)
    terms: List[BvnTerm] = []
    remaining = rows[0]
    while remaining > zero:
        perm = matcher.perfect_matching_array()
        if perm is None:
            if remaining <= scale * 1e-6:
                # Floating-point crumbs left by the subtractions; the
                # matrix is drained for all practical purposes.
                break
            raise ValueError(
                "no perfect matching over positive entries; "
                "matrix is not decomposable (check stuffing/tolerances)"
            )
        matched = work[indices, perm]
        weight = float(matched.min())
        terms.append(
            BvnTerm(
                weight=weight,
                permutation={
                    i: int(j) for i, j in enumerate(perm.tolist())
                },
            )
        )
        drained = matched - weight
        drained[drained < zero] = 0.0
        work[indices, perm] = drained
        for i in np.flatnonzero(drained <= zero).tolist():
            matcher.remove_edge(i, int(perm[i]))
        remaining -= weight
        if max_terms and len(terms) >= max_terms:
            break
    scheduler_counters.inc("bvn_permutations", len(terms))
    return terms
