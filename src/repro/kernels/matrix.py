"""Demand-matrix stuffing kernels (vectorized twin of ``stuffing_reference``).

``quick_stuff`` is bit-for-bit identical to the reference: line sums are
computed with Python's sequential ``sum`` (pairwise summation would drift
by an ulp and move the stuffing target), and the greedy pour is replayed
with the same float operations in the same order — the reference's
restart-per-row column scan provably visits columns monotonically, so a
single two-pointer walk with at most ``2n − 1`` pours reproduces it in
O(n) instead of O(n²).

``sinkhorn_scale`` is bitwise identical too: line sums use the same
sequential summation (an ulp of pairwise-summation drift is enough to
flip which matched entry is the minimum in the downstream BvN drain,
diverging the whole term sequence at 150 ports), while the O(n²) scaling
multiplies stay vectorized — broadcasting a per-line reciprocal rounds
exactly like the reference's per-element multiply.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels import as_demand_matrix


def sequential_line_sums(a: np.ndarray) -> Tuple[List[float], List[float]]:
    """Row/column sums with Python's left-to-right summation order.

    Bitwise-identical to ``stuffing_reference.line_sums`` — used where a
    sum feeds a control-flow decision that must match the reference
    exactly (the stuffing target, the BvN drain total).  O(n²) Python,
    but called once per decomposition, not per term.
    """
    rows_list = a.tolist()
    rows = [sum(row) for row in rows_list]
    cols = [sum(col) for col in zip(*rows_list)] if rows_list else []
    return rows, cols


def line_sums(a) -> Tuple[List[float], List[float]]:
    """Row sums and column sums of a square matrix (vectorized)."""
    a = as_demand_matrix(a)
    return a.sum(axis=1).tolist(), a.sum(axis=0).tolist()


def has_equal_line_sums(a, tolerance: float = 1e-6) -> bool:
    """True if all row sums and column sums are equal within ``tolerance``."""
    a = as_demand_matrix(a)
    if a.size == 0:
        return True
    rows = a.sum(axis=1)
    cols = a.sum(axis=0)
    reference = float(rows[0])
    scale = max(abs(reference), 1.0)
    bound = tolerance * scale
    return bool(
        np.abs(rows - reference).max() <= bound
        and np.abs(cols - reference).max() <= bound
    )


def quick_stuff(a) -> Tuple[np.ndarray, np.ndarray]:
    """Solstice's QuickStuff: pad with dummy demand to equal line sums.

    Returns ``(stuffed, dummy)`` as float64 ndarrays; see the reference
    docstring for semantics.  The greedy pour consumes rows and columns in
    ascending order; each pour zeroes a row or column deficit, so a
    two-pointer walk performs at most ``2n − 1`` pours.
    """
    work = as_demand_matrix(a).copy()
    n = work.shape[0]
    dummy = np.zeros_like(work)
    if n == 0:
        return work, dummy
    rows, cols = sequential_line_sums(work)
    target = max(rows + cols)
    row_deficit = [target - r for r in rows]
    col_deficit = [target - c for c in cols]
    j = 0
    for i in range(n):
        deficit = row_deficit[i]
        while deficit > 0 and j < n:
            capacity = col_deficit[j]
            if capacity <= 0:
                j += 1
                continue
            pour = min(deficit, capacity)
            work[i, j] += pour
            dummy[i, j] += pour
            deficit -= pour
            capacity -= pour
            col_deficit[j] = capacity
            if capacity <= 0:
                j += 1
    return work, dummy


def sinkhorn_scale(
    a,
    iterations: int = 100,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Sinkhorn–Knopp scaling toward a doubly stochastic matrix.

    Bitwise-identical twin of ``stuffing_reference.sinkhorn_scale``: line
    sums use the reference's sequential summation order (pairwise numpy
    reductions drift by an ulp, and at 150 ports that drift flips which
    matched entry is the minimum inside the downstream BvN drain,
    cascading into a different term sequence), while the O(n²) scaling
    multiplies stay vectorized — ``x * scale`` broadcast row- or
    column-wise rounds exactly like the reference's per-element multiply,
    and skipped lines multiply by exactly 1.0 (a float no-op).  Reports
    the iteration count via :func:`repro.perf.scheduler_counters`
    (``stuffing_iterations``).
    """
    from repro.perf import scheduler_counters

    work = as_demand_matrix(a).copy()
    n = work.shape[0]
    if n == 0:
        return work
    peak = float(work.max())
    if peak > 0:
        work = work / peak
    safe = 1e-300
    ran = 0
    for _ in range(iterations):
        ran += 1
        rows, _ = sequential_line_sums(work)
        scale = np.array([1.0 / r if r > safe else 1.0 for r in rows])
        work *= scale[:, None]
        _, cols = sequential_line_sums(work)
        scale = np.array([1.0 / c if c > safe else 1.0 for c in cols])
        work *= scale[None, :]
        rows, cols = sequential_line_sums(work)
        drift = max(
            [abs(r - 1.0) for r in rows if r > 0]
            + [abs(c - 1.0) for c in cols if c > 0]
            + [0.0]
        )
        if drift <= tolerance:
            break
    scheduler_counters.inc("stuffing_iterations", ran)
    return work
