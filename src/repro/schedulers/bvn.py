"""Pure Birkhoff–von-Neumann scheduler (paper §2.3's δ = 0 optimum).

"When the preemption penalty is zero, i.e. δ = 0, the problem can be
solved optimally with the classic BvN algorithm."  This scheduler stuffs
the demand to equal line sums (preserving the original entries, unlike
TMS's scaling) and emits the exact BvN decomposition: total transmission
time equals the stuffed bottleneck load, which at δ = 0 equals the
packet-switched lower bound ``T^p_L``.

It serves two roles in the reproduction:

* a *reference optimum* for δ = 0 — tests check the executed makespan hits
  ``T^p_L`` exactly;
* the cleanest illustration of why preemptive decompositions collapse at
  δ > 0: its (potentially many) assignments each pay reconfiguration.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.kernels import numpy_enabled
from repro.kernels.decomposition import birkhoff_von_neumann as _bvn_kernel
from repro.kernels.matrix import quick_stuff as _quick_stuff_kernel
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

_ZERO = 1e-12


class BvnScheduler(AssignmentScheduler):
    """QuickStuff + exact Birkhoff–von-Neumann decomposition.

    Runs on the numpy kernel layer by default (both backends emit
    identical schedules — QuickStuff and BvN are bit-for-bit twins);
    ``REPRO_KERNEL=python`` selects the retained references.
    """

    name = "bvn"

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if matrix.size == 0:
            return AssignmentSchedule(assignments=[])
        if numpy_enabled():
            stuffed, _dummy = _quick_stuff_kernel(matrix)
            # Sequential sum: same gate decision as the reference path.
            if sum(sum(row) for row in stuffed.tolist()) <= _ZERO:
                return AssignmentSchedule(assignments=[])
            terms = _bvn_kernel(stuffed)
        else:
            from repro.matching.birkhoff_reference import birkhoff_von_neumann
            from repro.matching.stuffing_reference import quick_stuff

            stuffed_list, _dummy = quick_stuff(matrix.tolist())
            if sum(sum(row) for row in stuffed_list) <= _ZERO:
                return AssignmentSchedule(assignments=[])
            terms = birkhoff_von_neumann(stuffed_list)

        assignments: List[Assignment] = []
        for term in terms:
            if term.weight <= _ZERO:
                continue
            circuits = []
            for i, j in sorted(term.permutation.items()):
                src, dst = src_labels[i], dst_labels[j]
                if src < 0 and dst < 0:
                    continue
                circuits.append((src, dst))
            assignments.append(
                Assignment(circuits=tuple(circuits), duration=term.weight)
            )

        # BvN's numerical drain can leave a ≤1e-6-relative crumb; top it up
        # so executors always finish (same safety net as TMS).
        schedule = AssignmentSchedule(assignments=assignments)
        service = schedule.service_per_circuit()
        for (src, dst), seconds in demand_times.items():
            shortfall = seconds - service.get((src, dst), 0.0)
            if seconds > _ZERO and shortfall > _ZERO:
                assignments.append(
                    Assignment(circuits=((src, dst),), duration=shortfall * (1 + 1e-9))
                )
        return AssignmentSchedule(assignments=assignments)
