"""Assignment-based circuit scheduling abstractions (paper §3.1.1).

The baselines Sunflow is compared against (Edmond, TMS, Solstice) all share
one shape: given a single demand matrix, emit a sequence of *assignments*
``{A_1, …, A_m}`` — each a one-to-one matching of input ports to output
ports — with a planned transmission duration per assignment.  The switch
then holds ``A_k`` for its duration, reconfigures, and moves to ``A_(k+1)``.

The classes here express that contract; :mod:`repro.sim.assignment_exec`
executes a schedule under the all-stop or not-all-stop switch model and
measures CCT/switching counts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.prt import TIME_EPS
from repro.kernels import as_demand_matrix

Circuit = Tuple[int, int]


@dataclass(frozen=True)
class Assignment:
    """One circuit configuration: a matching held for ``duration`` seconds.

    ``duration`` is planned *transmission* time and excludes the
    reconfiguration delay, which the executor charges according to the
    switch model.
    """

    circuits: Tuple[Circuit, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"assignment duration must be positive, got {self.duration!r}")
        sources = [src for src, _ in self.circuits]
        destinations = [dst for _, dst in self.circuits]
        if len(set(sources)) != len(sources) or len(set(destinations)) != len(destinations):
            raise ValueError(
                f"assignment is not a matching (port used twice): {self.circuits}"
            )

    @property
    def circuit_set(self) -> frozenset:
        return frozenset(self.circuits)


@dataclass
class AssignmentSchedule:
    """An ordered sequence of assignments produced by a baseline scheduler."""

    assignments: List[Assignment]

    @property
    def num_assignments(self) -> int:
        return len(self.assignments)

    @property
    def total_transmission_time(self) -> float:
        return sum(a.duration for a in self.assignments)

    def service_per_circuit(self) -> Dict[Circuit, float]:
        """Planned seconds of service per circuit across all assignments."""
        service: Dict[Circuit, float] = {}
        for assignment in self.assignments:
            for circuit in assignment.circuits:
                service[circuit] = service.get(circuit, 0.0) + assignment.duration
        return service

    def covers(self, demand_times: Mapping[Circuit, float]) -> bool:
        """True if planned service meets or exceeds every demand entry."""
        service = self.service_per_circuit()
        return all(
            service.get(circuit, 0.0) >= seconds - TIME_EPS
            for circuit, seconds in demand_times.items()
            if seconds > 0
        )


class AssignmentScheduler(abc.ABC):
    """A single-demand-matrix circuit scheduler (the baseline family)."""

    #: Scheduler name used in reports and the CLI.
    name: str = "assignment-scheduler"

    @abc.abstractmethod
    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        """Plan assignments for one demand matrix.

        Args:
            demand_times: ``{(src, dst): processing seconds}`` — demand
                already converted to circuit-holding time at line rate.
            num_ports: fabric size ``N``; ports are ``0 … N-1``.
        """

    @staticmethod
    def demand_matrix(
        demand_times: Mapping[Circuit, float], num_ports: int
    ) -> np.ndarray:
        """Densify sparse demand into an ``N × N`` float64 ndarray of seconds.

        This is the canonicalization boundary of the scheduler pipeline:
        demand becomes a contiguous ``float64`` ndarray here and flows to
        the kernels without further dtype conversions.
        """
        matrix = np.zeros((num_ports, num_ports), dtype=np.float64)
        for (src, dst), seconds in demand_times.items():
            if src >= num_ports or dst >= num_ports:
                raise ValueError(
                    f"circuit ({src}, {dst}) outside a {num_ports}-port fabric"
                )
            if seconds > 0:
                matrix[src, dst] += seconds
        return matrix

    @staticmethod
    def used_ports(demand_times: Mapping[Circuit, float]) -> Tuple[List[int], List[int]]:
        """Distinct sources and destinations with positive demand, sorted."""
        sources = sorted({src for (src, _), p in demand_times.items() if p > 0})
        destinations = sorted({dst for (_, dst), p in demand_times.items() if p > 0})
        return sources, destinations


def compact_demand(
    demand_times: Mapping[Circuit, float]
) -> Tuple[np.ndarray, List[int], List[int]]:
    """Project sparse demand onto the square sub-matrix of used ports.

    The baselines' running time depends on the matrix dimension, so they
    operate on the ``k × k`` matrix over the ``k = max(#sources, #dests)``
    used ports rather than the full fabric.  Returns the compact matrix as
    a contiguous ``float64`` ndarray — the canonical demand representation
    of the scheduler pipeline — plus the source/destination port labels
    for mapping matchings back.
    """
    sources = sorted({src for (src, _), p in demand_times.items() if p > 0})
    destinations = sorted({dst for (_, dst), p in demand_times.items() if p > 0})
    size = max(len(sources), len(destinations))
    # Pad the shorter side with unused (virtual) ports so the matrix is
    # square; virtual ports simply never receive demand.
    src_labels = list(sources) + [-1 - k for k in range(size - len(sources))]
    dst_labels = list(destinations) + [-1 - k for k in range(size - len(destinations))]
    index_of_src = {port: i for i, port in enumerate(src_labels)}
    index_of_dst = {port: j for j, port in enumerate(dst_labels)}
    matrix = np.zeros((size, size), dtype=np.float64)
    for (src, dst), seconds in demand_times.items():
        if seconds > 0:
            matrix[index_of_src[src], index_of_dst[dst]] += seconds
    return matrix, src_labels, dst_labels


def canonical_demand(matrix) -> np.ndarray:
    """Canonicalize matrix-shaped demand to a contiguous float64 ndarray.

    Accepts nested lists or any ndarray dtype/layout and converts exactly
    once (no copy when the input is already contiguous float64) — the
    entry point for callers holding a densified matrix rather than sparse
    ``{(src, dst): seconds}`` demand.
    """
    return as_demand_matrix(matrix)
