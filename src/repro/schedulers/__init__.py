"""Baseline circuit schedulers the paper compares Sunflow against."""

from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    compact_demand,
)
from repro.schedulers.bvn import BvnScheduler
from repro.schedulers.edmond import EdmondScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.schedulers.tms import TmsScheduler

__all__ = [
    "Assignment",
    "AssignmentSchedule",
    "AssignmentScheduler",
    "compact_demand",
    "BvnScheduler",
    "EdmondScheduler",
    "SolsticeScheduler",
    "TmsScheduler",
]
