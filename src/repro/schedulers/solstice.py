"""Solstice circuit scheduler (Liu et al., CoNEXT 2015; paper §3.1.1).

Solstice is the strongest preemptive baseline in the paper.  Two stages:

1. **QuickStuff** — pad the demand matrix with dummy demand until every row
   and column sums to the same value.  The padded matrix always admits a
   perfect matching over its positive entries.
2. **BigSlice** — repeatedly extract a perfect matching over entries at
   least a threshold ``r`` (starting at the largest power of two not
   exceeding the biggest entry and halving on failure), scheduling each
   matching as an assignment of duration ``r``.

The geometric threshold schedule leaves a fine-grained tail; we drain it
with an exact Birkhoff–von-Neumann decomposition once ``r`` falls below the
smallest positive entry, so the emitted schedule covers the demand exactly.
This mirrors Solstice's long tail of short slots (and is what produces the
many switching events Figure 5 counts).
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from repro.matching.birkhoff import birkhoff_von_neumann
from repro.matching.hopcroft_karp import matching_from_matrix
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

#: Entries below this fraction of the largest entry are treated as drained.
_ZERO_FRACTION = 1e-9


class SolsticeScheduler(AssignmentScheduler):
    """QuickStuff + BigSlice, with an exact BvN tail drain.

    Args:
        tail_fraction: once the halving threshold falls below this fraction
            of the largest stuffed entry, the residual is drained exactly
            with a BvN decomposition instead of halving further.  Real
            demands have unbounded binary expansions, so without a floor
            the threshold cascade would emit arbitrarily short slots; the
            floor mirrors Solstice's demand quantum.
    """

    name = "solstice"

    def __init__(self, tail_fraction: float = 2.0**-10) -> None:
        if not 0 < tail_fraction < 1:
            raise ValueError(f"tail_fraction must be in (0, 1), got {tail_fraction!r}")
        self.tail_fraction = tail_fraction

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if not matrix:
            return AssignmentSchedule(assignments=[])
        stuffed, _dummy = _quick_stuff(matrix)
        assignments = _big_slice(stuffed, self.tail_fraction)
        return AssignmentSchedule(
            assignments=[
                _relabel(assignment, src_labels, dst_labels)
                for assignment in assignments
            ]
        )


def _quick_stuff(matrix: List[List[float]]) -> Tuple[List[List[float]], List[List[float]]]:
    from repro.matching.stuffing import quick_stuff

    return quick_stuff(matrix)


def _big_slice(stuffed: List[List[float]], tail_fraction: float) -> List[Assignment]:
    """Threshold-halving decomposition of an equal-line-sum matrix."""
    work = [row[:] for row in stuffed]
    peak = max((value for row in work for value in row), default=0.0)
    if peak <= 0:
        return []
    zero = peak * _ZERO_FRACTION
    tail_threshold = peak * tail_fraction

    # Largest power of two <= peak (works for sub-second values too).
    threshold = 1.0
    while threshold > peak:
        threshold /= 2.0
    while threshold * 2.0 <= peak:
        threshold *= 2.0

    assignments: List[Assignment] = []
    while True:
        positive = [value for row in work for value in row if value > zero]
        if not positive:
            break
        smallest = min(positive)
        if threshold <= smallest or threshold <= tail_threshold:
            # Exact tail drain: BvN pulls out perfect matchings weighted by
            # the minimum matched entry, terminating with full coverage.
            assignments.extend(_bvn_tail(work, zero))
            break
        matching = matching_from_matrix(work, threshold=threshold - zero)
        if matching is None:
            threshold /= 2.0
            continue
        circuits = tuple(sorted(matching.items()))
        assignments.append(Assignment(circuits=circuits, duration=threshold))
        for i, j in matching.items():
            work[i][j] -= threshold
            if work[i][j] < zero:
                work[i][j] = 0.0
    return assignments


def _bvn_tail(work: List[List[float]], zero: float) -> List[Assignment]:
    """Drain the residual equal-line-sum matrix exactly via BvN."""
    residual_total = sum(sum(row) for row in work)
    if residual_total <= zero:
        return []
    terms = birkhoff_von_neumann(work)
    tail = []
    for term in terms:
        if term.weight > zero:
            circuits = tuple(sorted(term.permutation.items()))
            tail.append(Assignment(circuits=circuits, duration=term.weight))
    for row in work:
        for j in range(len(row)):
            row[j] = 0.0
    return tail


def _relabel(
    assignment: Assignment, src_labels: List[int], dst_labels: List[int]
) -> Assignment:
    """Map compact-matrix indices back to fabric port numbers.

    Circuits touching a virtual pad port (label < 0) carry only dummy
    demand and are dropped — the executor would waste time holding them,
    exactly as Solstice does, so we keep them *unless* both endpoints are
    virtual (those circuits can never carry even dummy bytes for a real
    port and exist purely to square the matrix).
    """
    circuits = []
    for i, j in assignment.circuits:
        src, dst = src_labels[i], dst_labels[j]
        if src < 0 and dst < 0:
            continue
        circuits.append((src, dst))
    return Assignment(circuits=tuple(circuits), duration=assignment.duration)
