"""Solstice circuit scheduler (Liu et al., CoNEXT 2015; paper §3.1.1).

Solstice is the strongest preemptive baseline in the paper.  Two stages:

1. **QuickStuff** — pad the demand matrix with dummy demand until every row
   and column sums to the same value.  The padded matrix always admits a
   perfect matching over its positive entries.
2. **BigSlice** — repeatedly extract a perfect matching over entries at
   least a threshold ``r`` (starting at the largest power of two not
   exceeding the biggest entry and halving on failure), scheduling each
   matching as an assignment of duration ``r``.

The geometric threshold schedule leaves a fine-grained tail; we drain it
with an exact Birkhoff–von-Neumann decomposition once ``r`` falls below the
smallest positive entry, so the emitted schedule covers the demand exactly.
This mirrors Solstice's long tail of short slots (and is what produces the
many switching events Figure 5 counts).

The pipeline runs on the numpy kernel layer (:mod:`repro.kernels`) by
default — demand stays a ``float64`` ndarray from :func:`compact_demand`
through stuffing, matching, and the BvN tail — and falls back to the
retained pure-Python references when ``REPRO_KERNEL=python``.  Both paths
emit identical schedules (the differential tests assert it).
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.kernels import numpy_enabled
from repro.kernels.decomposition import birkhoff_von_neumann as _bvn_kernel
from repro.kernels.matching import matching_from_matrix as _matching_kernel
from repro.kernels.matrix import quick_stuff as _quick_stuff_kernel
from repro.perf import scheduler_counters
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

#: Entries below this fraction of the largest entry are treated as drained.
_ZERO_FRACTION = 1e-9


class SolsticeScheduler(AssignmentScheduler):
    """QuickStuff + BigSlice, with an exact BvN tail drain.

    Args:
        tail_fraction: once the halving threshold falls below this fraction
            of the largest stuffed entry, the residual is drained exactly
            with a BvN decomposition instead of halving further.  Real
            demands have unbounded binary expansions, so without a floor
            the threshold cascade would emit arbitrarily short slots; the
            floor mirrors Solstice's demand quantum.
    """

    name = "solstice"

    def __init__(self, tail_fraction: float = 2.0**-10) -> None:
        if not 0 < tail_fraction < 1:
            raise ValueError(f"tail_fraction must be in (0, 1), got {tail_fraction!r}")
        self.tail_fraction = tail_fraction

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if matrix.size == 0:
            return AssignmentSchedule(assignments=[])
        if numpy_enabled():
            stuffed, _dummy = _quick_stuff_kernel(matrix)
            assignments = _big_slice_kernel(stuffed, self.tail_fraction)
        else:
            from repro.matching.stuffing_reference import quick_stuff

            stuffed_list, _dummy = quick_stuff(matrix.tolist())
            assignments = _big_slice_reference(stuffed_list, self.tail_fraction)
        scheduler_counters.inc("slices_emitted", len(assignments))
        return AssignmentSchedule(
            assignments=[
                _relabel(assignment, src_labels, dst_labels)
                for assignment in assignments
            ]
        )


def _initial_threshold(peak: float) -> float:
    """Largest power of two <= peak (works for sub-second values too)."""
    threshold = 1.0
    while threshold > peak:
        threshold /= 2.0
    while threshold * 2.0 <= peak:
        threshold *= 2.0
    return threshold


def _big_slice_kernel(stuffed: np.ndarray, tail_fraction: float) -> List[Assignment]:
    """Threshold-halving decomposition over an ndarray (kernel backend).

    Step-for-step twin of :func:`_big_slice_reference`: same thresholds,
    same matchings (the kernel matcher reproduces the reference
    Hopcroft–Karp), same subtractions — only the per-iteration O(n²)
    Python scans become vectorized reductions.
    """
    work = stuffed.copy()
    peak = float(work.max()) if work.size else 0.0
    if peak <= 0:
        return []
    zero = peak * _ZERO_FRACTION
    tail_threshold = peak * tail_fraction
    threshold = _initial_threshold(peak)

    assignments: List[Assignment] = []
    while True:
        positive = work[work > zero]
        if positive.size == 0:
            break
        smallest = float(positive.min())
        if threshold <= smallest or threshold <= tail_threshold:
            assignments.extend(_bvn_tail_kernel(work, zero))
            break
        matching = _matching_kernel(work, threshold=threshold - zero)
        if matching is None:
            threshold /= 2.0
            continue
        circuits = tuple(sorted(matching.items()))
        assignments.append(Assignment(circuits=circuits, duration=threshold))
        rows = np.fromiter(matching.keys(), dtype=np.intp, count=len(matching))
        cols = np.fromiter(matching.values(), dtype=np.intp, count=len(matching))
        values = work[rows, cols] - threshold
        values[values < zero] = 0.0
        work[rows, cols] = values
    return assignments


def _bvn_tail_kernel(work: np.ndarray, zero: float) -> List[Assignment]:
    """Drain the residual equal-line-sum ndarray exactly via BvN."""
    # Sequential sum to match the reference's drain gate bit for bit.
    residual_total = sum(sum(row) for row in work.tolist())
    if residual_total <= zero:
        return []
    terms = _bvn_kernel(work)
    tail = []
    for term in terms:
        if term.weight > zero:
            circuits = tuple(sorted(term.permutation.items()))
            tail.append(Assignment(circuits=circuits, duration=term.weight))
    work[:] = 0.0
    return tail


def _big_slice_reference(
    stuffed: List[List[float]], tail_fraction: float
) -> List[Assignment]:
    """Threshold-halving decomposition (retained pure-Python path)."""
    from repro.matching.birkhoff_reference import birkhoff_von_neumann
    from repro.matching.hopcroft_karp_reference import matching_from_matrix

    work = [row[:] for row in stuffed]
    peak = max((value for row in work for value in row), default=0.0)
    if peak <= 0:
        return []
    zero = peak * _ZERO_FRACTION
    tail_threshold = peak * tail_fraction
    threshold = _initial_threshold(peak)

    assignments: List[Assignment] = []
    while True:
        positive = [value for row in work for value in row if value > zero]
        if not positive:
            break
        smallest = min(positive)
        if threshold <= smallest or threshold <= tail_threshold:
            # Exact tail drain: BvN pulls out perfect matchings weighted by
            # the minimum matched entry, terminating with full coverage.
            residual_total = sum(sum(row) for row in work)
            if residual_total > zero:
                for term in birkhoff_von_neumann(work):
                    if term.weight > zero:
                        circuits = tuple(sorted(term.permutation.items()))
                        assignments.append(
                            Assignment(circuits=circuits, duration=term.weight)
                        )
            for row in work:
                for j in range(len(row)):
                    row[j] = 0.0
            break
        matching = matching_from_matrix(work, threshold=threshold - zero)
        if matching is None:
            threshold /= 2.0
            continue
        circuits = tuple(sorted(matching.items()))
        assignments.append(Assignment(circuits=circuits, duration=threshold))
        for i, j in matching.items():
            work[i][j] -= threshold
            if work[i][j] < zero:
                work[i][j] = 0.0
    return assignments


def _relabel(
    assignment: Assignment, src_labels: List[int], dst_labels: List[int]
) -> Assignment:
    """Map compact-matrix indices back to fabric port numbers.

    Circuits touching a virtual pad port (label < 0) carry only dummy
    demand and are dropped — the executor would waste time holding them,
    exactly as Solstice does, so we keep them *unless* both endpoints are
    virtual (those circuits can never carry even dummy bytes for a real
    port and exist purely to square the matrix).
    """
    circuits = []
    for i, j in assignment.circuits:
        src, dst = src_labels[i], dst_labels[j]
        if src < 0 and dst < 0:
            continue
        circuits.append((src, dst))
    return Assignment(circuits=tuple(circuits), duration=assignment.duration)
