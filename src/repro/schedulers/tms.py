"""TMS — Traffic Matrix Scheduling (Porter et al., SIGCOMM 2013; paper §3.1.1).

TMS drives the Mordia microsecond switch: it scales the demand matrix into
a doubly stochastic *bandwidth-allocation* matrix via Sinkhorn–Knopp,
Birkhoff–von-Neumann-decomposes it into weighted permutations, and holds
each permutation for a slot proportional to its weight.

Sinkhorn needs strictly positive support to converge, so zero entries are
first filled with a small uniform demand (the Mordia construction).  This
pre-processing "heavily modif[ies] the original demand matrix" (paper
§3.1.1): the doubly stochastic shares no longer match the requested
proportions, so to actually drain a Coflow the schedule length ``W`` must
stretch until the *worst-served* circuit gets its bytes —
``W = max over real demand of d_ij / s_ij`` — over-serving everything
else.  For sparse Coflows the waste is dramatic (a single flow receives a
``1/n`` share, so TMS spends ``n×`` the needed time), which is exactly why
the paper finds TMS ≈ 2× slower than Solstice.

The pipeline runs on the numpy kernel layer by default (ndarray demand
from :func:`compact_demand` through Sinkhorn, BvN, and the week stretch)
and falls back to the retained pure-Python references when
``REPRO_KERNEL=python``.  The kernel Sinkhorn may differ from the
reference by an ulp (numpy pairwise summation), so TMS durations carry a
1e-9 relative tolerance in the differential tests; assignments are
identical.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

import numpy as np

from repro.kernels import numpy_enabled
from repro.kernels.decomposition import birkhoff_von_neumann as _bvn_kernel
from repro.kernels.matrix import sinkhorn_scale as _sinkhorn_kernel
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

_ZERO = 1e-12


class TmsScheduler(AssignmentScheduler):
    """Zero-fill + Sinkhorn scaling + BvN with proportional durations.

    Args:
        fill_fraction: zero entries are filled with ``fill_fraction × max
            entry`` before scaling, guaranteeing Sinkhorn convergence (the
            Mordia construction).  Larger values distort the demand more.
        sinkhorn_iterations: scaling iterations (the matrix is strictly
            positive, so convergence is geometric).
    """

    name = "tms"

    def __init__(
        self, fill_fraction: float = 0.01, sinkhorn_iterations: int = 500
    ) -> None:
        if not 0 < fill_fraction <= 1:
            raise ValueError(f"fill_fraction must be in (0, 1], got {fill_fraction!r}")
        self.fill_fraction = fill_fraction
        self.sinkhorn_iterations = sinkhorn_iterations

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if matrix.size == 0:
            return AssignmentSchedule(assignments=[])
        if numpy_enabled():
            terms, week = self._decompose_kernel(matrix)
        else:
            terms, week = self._decompose_reference(matrix.tolist())
        assignments: List[Assignment] = []
        for term in terms:
            duration = term.weight * week
            if duration <= _ZERO:
                continue
            circuits = []
            for i, j in sorted(term.permutation.items()):
                src, dst = src_labels[i], dst_labels[j]
                if src < 0 and dst < 0:
                    continue
                circuits.append((src, dst))
            assignments.append(Assignment(circuits=tuple(circuits), duration=duration))

        # Numerical safety net: the BvN loop may truncate a ≤1e-6 crumb of
        # the stochastic matrix; top up any real demand left uncovered with
        # a dedicated slot so executors always finish.
        schedule = AssignmentSchedule(assignments=assignments)
        service = schedule.service_per_circuit()
        for (src, dst), seconds in demand_times.items():
            shortfall = seconds - service.get((src, dst), 0.0)
            if seconds > _ZERO and shortfall > _ZERO:
                assignments.append(
                    Assignment(circuits=((src, dst),), duration=shortfall * (1 + 1e-9))
                )
        return AssignmentSchedule(assignments=assignments)

    def _decompose_kernel(self, matrix: np.ndarray) -> Tuple[list, float]:
        """Sinkhorn + BvN + week stretch over ndarrays (kernel backend)."""
        peak = float(matrix.max())
        if peak <= _ZERO:
            return [], 0.0
        # Mordia's pre-processing: make the matrix strictly positive so the
        # Sinkhorn scaling converges to a doubly stochastic matrix.
        fill = peak * self.fill_fraction
        filled = np.where(matrix > _ZERO, matrix, fill)
        stochastic = _sinkhorn_kernel(filled, iterations=self.sinkhorn_iterations)

        # Stretch the schedule until the worst-served *real* demand drains.
        mask = matrix > _ZERO
        week = float((matrix[mask] / stochastic[mask]).max()) if mask.any() else 0.0
        return _bvn_kernel(stochastic), week

    def _decompose_reference(self, matrix: List[List[float]]) -> Tuple[list, float]:
        """Sinkhorn + BvN + week stretch on the retained pure-Python path."""
        from repro.matching.birkhoff_reference import birkhoff_von_neumann
        from repro.matching.stuffing_reference import sinkhorn_scale

        peak = max(max(row) for row in matrix)
        if peak <= _ZERO:
            return [], 0.0
        fill = peak * self.fill_fraction
        filled = [
            [value if value > _ZERO else fill for value in row] for row in matrix
        ]
        stochastic = sinkhorn_scale(filled, iterations=self.sinkhorn_iterations)

        week = 0.0
        for i, row in enumerate(matrix):
            for j, seconds in enumerate(row):
                if seconds > _ZERO:
                    week = max(week, seconds / stochastic[i][j])
        return birkhoff_von_neumann(stochastic), week
