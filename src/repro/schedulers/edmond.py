"""Edmond baseline — max-weight matching per slot (paper §3.1.1).

Helios and c-Through style control loops apply a maximum-weight matching to
the current demand matrix and hold the resulting configuration for a fixed
slot whose length is set *outside* the algorithm ("typically fixed and on
the order of hundreds of milliseconds").  The paper calls this family
*Edmond* after the matching algorithm.

Our implementation solves the max-weight matching with the Hungarian
assignment substrate (optimal on bipartite graphs), subtracts the service a
slot delivers, and repeats until the demand drains.  Slots are shortened
only when the *entire* remaining demand fits inside one slot — otherwise a
circuit whose demand finishes early idles for the rest of the slot, which
is exactly the head-of-line inefficiency the paper attributes to this
approach.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.matching.hungarian import max_weight_matching
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

_ZERO = 1e-12


class EdmondScheduler(AssignmentScheduler):
    """Repeated maximum-weight matching with a fixed externally-set slot.

    Args:
        slot_duration: seconds each configuration is held (default 300 ms —
            "typically fixed and on the order of hundreds of milliseconds",
            paper §3.1.1).
    """

    name = "edmond"

    def __init__(self, slot_duration: float = 0.3) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot duration must be positive, got {slot_duration!r}")
        self.slot_duration = slot_duration

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if not matrix:
            return AssignmentSchedule(assignments=[])
        work = [row[:] for row in matrix]

        assignments: List[Assignment] = []
        while True:
            remaining_entries = [v for row in work for v in row if v > _ZERO]
            if not remaining_entries:
                break
            matching = max_weight_matching(work)
            if not matching:
                break
            # The slot length is fixed outside the algorithm: circuits whose
            # demand drains early idle for the rest of the slot — the
            # head-of-line inefficiency the paper attributes to this family.
            circuits = tuple(
                (src_labels[i], dst_labels[j]) for i, j in sorted(matching.items())
            )
            assignments.append(Assignment(circuits=circuits, duration=self.slot_duration))
            for i, j in matching.items():
                work[i][j] = max(0.0, work[i][j] - self.slot_duration)
        return AssignmentSchedule(assignments=assignments)
