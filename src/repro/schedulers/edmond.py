"""Edmond baseline — max-weight matching per slot (paper §3.1.1).

Helios and c-Through style control loops apply a maximum-weight matching to
the current demand matrix and hold the resulting configuration for a fixed
slot whose length is set *outside* the algorithm ("typically fixed and on
the order of hundreds of milliseconds").  The paper calls this family
*Edmond* after the matching algorithm.

Our implementation solves the max-weight matching with the Hungarian
assignment substrate (optimal on bipartite graphs), subtracts the service a
slot delivers, and repeats until the demand drains.  Slots are shortened
only when the *entire* remaining demand fits inside one slot — otherwise a
circuit whose demand finishes early idles for the rest of the slot, which
is exactly the head-of-line inefficiency the paper attributes to this
approach.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.kernels import numpy_enabled
from repro.kernels.assignment import max_weight_matching as _matching_kernel
from repro.schedulers.base import (
    Assignment,
    AssignmentSchedule,
    AssignmentScheduler,
    Circuit,
    compact_demand,
)

_ZERO = 1e-12


class EdmondScheduler(AssignmentScheduler):
    """Repeated maximum-weight matching with a fixed externally-set slot.

    Args:
        slot_duration: seconds each configuration is held (default 300 ms —
            "typically fixed and on the order of hundreds of milliseconds",
            paper §3.1.1).
    """

    name = "edmond"

    def __init__(self, slot_duration: float = 0.3) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot duration must be positive, got {slot_duration!r}")
        self.slot_duration = slot_duration

    def schedule(
        self, demand_times: Mapping[Circuit, float], num_ports: int
    ) -> AssignmentSchedule:
        matrix, src_labels, dst_labels = compact_demand(demand_times)
        if matrix.size == 0:
            return AssignmentSchedule(assignments=[])
        if numpy_enabled():
            return AssignmentSchedule(
                assignments=self._slots_kernel(matrix, src_labels, dst_labels)
            )
        return AssignmentSchedule(
            assignments=self._slots_reference(
                matrix.tolist(), src_labels, dst_labels
            )
        )

    def _slots_kernel(
        self, matrix: np.ndarray, src_labels: List[int], dst_labels: List[int]
    ) -> List[Assignment]:
        """Slot loop over an ndarray (kernel backend).

        Twin of :meth:`_slots_reference`: the per-slot O(n²) Python scan
        for remaining demand becomes one vectorized comparison and the
        drain update touches only the matched cells.
        """
        work = matrix.copy()
        assignments: List[Assignment] = []
        while bool((work > _ZERO).any()):
            matching = _matching_kernel(work)
            if not matching:
                break
            circuits = tuple(
                (src_labels[i], dst_labels[j]) for i, j in sorted(matching.items())
            )
            assignments.append(
                Assignment(circuits=circuits, duration=self.slot_duration)
            )
            rows = np.fromiter(matching.keys(), dtype=np.intp, count=len(matching))
            cols = np.fromiter(matching.values(), dtype=np.intp, count=len(matching))
            values = work[rows, cols] - self.slot_duration
            np.maximum(values, 0.0, out=values)
            work[rows, cols] = values
        return assignments

    def _slots_reference(
        self,
        matrix: List[List[float]],
        src_labels: List[int],
        dst_labels: List[int],
    ) -> List[Assignment]:
        """Slot loop on the retained pure-Python path."""
        from repro.matching.hungarian_reference import max_weight_matching

        work = [row[:] for row in matrix]
        assignments: List[Assignment] = []
        while True:
            remaining_entries = [v for row in work for v in row if v > _ZERO]
            if not remaining_entries:
                break
            matching = max_weight_matching(work)
            if not matching:
                break
            # The slot length is fixed outside the algorithm: circuits whose
            # demand drains early idle for the rest of the slot — the
            # head-of-line inefficiency the paper attributes to this family.
            circuits = tuple(
                (src_labels[i], dst_labels[j]) for i, j in sorted(matching.items())
            )
            assignments.append(
                Assignment(circuits=circuits, duration=self.slot_duration)
            )
            for i, j in matching.items():
                work[i][j] = max(0.0, work[i][j] - self.slot_duration)
        return assignments
