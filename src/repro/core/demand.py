"""Packed per-Coflow demand state for the replan transaction hot path.

Every incremental replan repacks a Coflow's remaining demand into
consideration order: ``sorted(demand_times.items())`` plus a tuple (or
``_Entry``) per circuit, paid once per plan — the dominant Python-side
cost left after the compiled planner kernel took over the event loop.
But the demand *keys* of an active Coflow never change after admission
(service only decrements values toward zero; completed circuits keep a
zero entry), so the sort is invariant across the Coflow's lifetime.

:class:`PackedDemand` exploits that: a ``dict`` subclass that additionally
maintains the demand as struct-of-arrays columns — ``array('q')`` source
and destination ports in ``(src, dst)`` order plus a parallel
``array('d')`` of remaining times — sorted **once** at construction and
patched in place on every value write.  Consumers (the planner's entry
packing, and the ``repro._native`` kernel through the buffer protocol)
read the columns instead of re-sorting the dict per plan.

The class stays a real dict — iteration order, ``items()``, cache keys,
and every foreign driver that treats ``remaining`` as a plain mapping are
unaffected.  Any mutation the packed columns cannot mirror in place
(adding a key, deleting one, non-integer ports) flips :attr:`packed_ok`
off, and every consumer falls back to the sorted-items path, so
correctness never depends on the invariant holding.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Tuple

__all__ = ["PackedDemand"]


class PackedDemand(dict):
    """``{(src, dst): remaining}`` with sorted packed array columns.

    The columns are valid (:attr:`packed_ok`) while every key is an
    ``(int, int)`` pair that fits ``array('q')`` and no key has been
    added or removed since the last rebuild; value writes to existing
    keys are mirrored into the value column in O(1).
    """

    __slots__ = ("_srcs", "_dsts", "_vals", "_pos", "_packed_ok")

    def __init__(self, items=()) -> None:
        super().__init__(items)
        self._srcs = array("q")
        self._dsts = array("q")
        self._vals = array("d")
        self._pos = {}
        self._packed_ok = False
        self.repack()

    # ------------------------------------------------------------------
    @property
    def packed_ok(self) -> bool:
        """True while the packed columns mirror the dict exactly."""
        return self._packed_ok

    @property
    def columns(self) -> Tuple[array, array, array]:
        """``(srcs, dsts, vals)`` arrays in ``(src, dst)`` order.

        Only meaningful while :attr:`packed_ok`; the native kernel reads
        these through the buffer protocol.
        """
        return self._srcs, self._dsts, self._vals

    def iter_packed(self) -> Iterator[Tuple[int, int, float]]:
        """``(src, dst, remaining)`` triples in ``(src, dst)`` order."""
        return zip(self._srcs, self._dsts, self._vals)

    def repack(self) -> bool:
        """Rebuild the columns from the dict; returns :attr:`packed_ok`."""
        srcs = array("q")
        dsts = array("q")
        vals = array("d")
        pos = {}
        try:
            index = 0
            for key in sorted(self.keys()):
                src, dst = key
                srcs.append(src)
                dsts.append(dst)
                vals.append(self[key])
                pos[key] = index
                index += 1
        except (TypeError, ValueError, OverflowError):
            # Non-pair or non-integer keys (or values the double column
            # refuses): stay a plain dict.
            self._packed_ok = False
            return False
        self._srcs = srcs
        self._dsts = dsts
        self._vals = vals
        self._pos = pos
        self._packed_ok = True
        return True

    # ------------------------------------------------------------------
    # Mutators: patch the columns in place when possible, otherwise
    # invalidate them (the dict itself is always updated first).
    # ------------------------------------------------------------------
    def __setitem__(self, key, value) -> None:
        dict.__setitem__(self, key, value)
        index = self._pos.get(key)
        if index is None:
            self._packed_ok = False
            return
        try:
            self._vals[index] = value
        except TypeError:
            self._packed_ok = False

    def __delitem__(self, key) -> None:
        dict.__delitem__(self, key)
        self._packed_ok = False

    def pop(self, *args):
        self._packed_ok = False
        return dict.pop(self, *args)

    def popitem(self):
        self._packed_ok = False
        return dict.popitem(self)

    def clear(self) -> None:
        dict.clear(self)
        self._packed_ok = False

    def update(self, *args, **kwargs) -> None:
        dict.update(self, *args, **kwargs)
        self._packed_ok = False

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self._packed_ok = False
        return dict.setdefault(self, key, default)

    def __ior__(self, other):
        self._packed_ok = False
        dict.update(self, other)
        return self
