"""Inter-Coflow priority policies (paper §4.2).

Sunflow deliberately keeps inter-Coflow scheduling policy-agnostic: the
operator translates a high-level resource-management policy into a priority
ordering of Coflows, and Sunflow serves them in that order so that a more
prioritized Coflow is never blocked by a less prioritized one.

A policy here is an object with ``order(views) -> list`` where each view is
a :class:`CoflowView` — a snapshot of a Coflow's *remaining* demand at the
moment the scheduler replans.  The paper's evaluation uses
:class:`ShortestFirst` (shortest-Coflow-first by ``T^p_L``), the same
policy family as Varys/Aalo.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass
class CoflowView:
    """Snapshot of one Coflow's remaining demand used for priority ordering.

    Attributes:
        coflow_id: trace-unique identifier.
        arrival_time: seconds; used for FIFO ordering and tie-breaking.
        remaining_times: ``{(src, dst): remaining processing seconds}``.
            Processing time already folds in the bandwidth, so policies can
            compare Coflows without knowing ``B``.
        priority_class: operator-assigned class; *lower is more important*.
            Policies order by class first, then by their own criterion.
    """

    coflow_id: int
    arrival_time: float
    remaining_times: Dict[Tuple[int, int], float] = field(default_factory=dict)
    priority_class: int = 0
    #: Precomputed bottleneck, when the caller already knows it.  The
    #: incremental replayer memoizes the value per active Coflow (demand
    #: only changes when a circuit is drained), so each replan's ordering
    #: pass skips the per-view load scan.
    bottleneck_hint: Optional[float] = None

    @property
    def bottleneck(self) -> float:
        """Remaining ``T^p_L``: the busiest port's remaining seconds of work."""
        hint = self.bottleneck_hint
        if hint is not None:
            return hint
        # One defaultdict over both port spaces (input ``p`` → ``2p``,
        # output ``p`` → ``2p + 1``): this property runs on every view at
        # every replan.
        loads: Dict[int, float] = defaultdict(float)
        for (src, dst), p in self.remaining_times.items():
            if p > 0:
                loads[src * 2] += p
                loads[dst * 2 + 1] += p
        return max(loads.values()) if loads else 0.0

    @property
    def total_time(self) -> float:
        """Sum of remaining processing seconds across all subflows."""
        return sum(p for p in self.remaining_times.values() if p > 0)


class Policy:
    """Base class: a deterministic priority ordering over Coflow views."""

    #: Human-readable policy name, used in reports and CLI flags.
    name = "policy"

    def key(self, view: CoflowView) -> Tuple:
        """Sort key; lower sorts first (higher priority)."""
        raise NotImplementedError

    def order(self, views: Sequence[CoflowView]) -> List[CoflowView]:
        """Return views sorted from most to least prioritized."""
        return sorted(views, key=self.key)


class ShortestFirst(Policy):
    """Shortest-Coflow-first by remaining ``T^p_L`` (paper §4.2, §5.2).

    This is the policy under which the paper compares Sunflow with Varys
    and Aalo; it minimizes average CCT by serving small Coflows promptly.
    """

    name = "shortest-first"

    def key(self, view: CoflowView) -> Tuple:
        return (view.priority_class, view.bottleneck, view.arrival_time, view.coflow_id)


class Fifo(Policy):
    """First-come-first-served by arrival time."""

    name = "fifo"

    def key(self, view: CoflowView) -> Tuple:
        return (view.priority_class, view.arrival_time, view.coflow_id)


class SmallestTotalFirst(Policy):
    """Smallest total remaining demand first (an alternative size proxy)."""

    name = "smallest-total-first"

    def key(self, view: CoflowView) -> Tuple:
        return (view.priority_class, view.total_time, view.arrival_time, view.coflow_id)


class NarrowestFirst(Policy):
    """Fewest remaining subflows first (favors sparse Coflows)."""

    name = "narrowest-first"

    def key(self, view: CoflowView) -> Tuple:
        width = sum(1 for p in view.remaining_times.values() if p > 0)
        return (view.priority_class, width, view.arrival_time, view.coflow_id)


class EarliestDeadlineFirst(Policy):
    """Earliest-deadline-first for latency-sensitive Coflows (§4.2).

    The paper's second usage scenario subdivides Coflows into
    latency-sensitive vs latency-tolerant; the classic way to serve the
    sensitive ones is by absolute deadline.  Coflows without a deadline
    sort after all deadlined ones, by shortest-first among themselves.

    Args:
        deadlines: ``{coflow_id: absolute deadline seconds}``.
    """

    name = "earliest-deadline-first"

    def __init__(self, deadlines: Mapping[int, float]) -> None:
        self.deadlines = dict(deadlines)

    def key(self, view: CoflowView) -> Tuple:
        deadline = self.deadlines.get(view.coflow_id)
        has_deadline = 0 if deadline is not None else 1
        return (
            view.priority_class,
            has_deadline,
            deadline if deadline is not None else view.bottleneck,
            view.arrival_time,
            view.coflow_id,
        )


class ClassThen(Policy):
    """Strict priority classes, refined by another policy within a class.

    Models the paper's privileged-vs-regular-user and multi-stage-job
    scenarios: the operator assigns each Coflow a class (smaller = more
    important) and picks a secondary policy to break ties inside a class.
    """

    name = "class-then"

    def __init__(self, within: Policy) -> None:
        self.within = within
        self.name = f"class-then-{within.name}"

    def key(self, view: CoflowView) -> Tuple:
        return (view.priority_class,) + tuple(self.within.key(view)[1:])


def views_from_coflows(
    coflows,
    bandwidth_bps: float,
    priority_classes: Optional[Mapping[int, int]] = None,
) -> List[CoflowView]:
    """Build :class:`CoflowView` snapshots for whole (unstarted) Coflows."""
    if priority_classes is None:
        priority_classes = {}
    views = []
    for coflow in coflows:
        views.append(
            CoflowView(
                coflow_id=coflow.coflow_id,
                arrival_time=coflow.arrival_time,
                remaining_times=coflow.processing_times(bandwidth_bps),
                priority_class=priority_classes.get(coflow.coflow_id, 0),
            )
        )
    return views


#: Registry used by the CLI and the benchmark harness.  (Policies needing
#: per-Coflow metadata — EarliestDeadlineFirst, ClassThen — are built
#: programmatically and are not listed here.)
POLICIES: Dict[str, Policy] = {
    policy.name: policy
    for policy in (ShortestFirst(), Fifo(), SmallestTotalFirst(), NarrowestFirst())
}
