"""Port Reservation Table (paper §4.1.1).

The PRT is the data structure at the heart of Sunflow.  It records, for
every input and output port of the optical circuit switch, the time
intervals during which the port is taken by a circuit.  A circuit
``[in.i, out.j]`` is scheduled by making a *reservation* on both ports for
the same interval; the first ``setup`` seconds of a reservation model the
circuit reconfiguration delay ``δ`` (no data moves), the remainder
transmits at full link rate.

Reservations are half-open intervals ``[start, end)``: a reservation ending
at ``t`` frees its ports at exactly ``t``, and a new reservation may begin
at ``t``.  The table enforces the port constraint of §2.1 — an input
(output) port carries at most one circuit at any instant — by refusing
overlapping reservations.

Storage layout
--------------

Each port timeline is a struct-of-arrays, not a list of objects: an
``array('d')`` of interleaved boundaries ``[s0, e0, s1, e1, ...]`` plus an
``array('q')`` of indices into the insertion-order journal.  Per-port
reservations never overlap, so the boundary array is sorted and one bisect
answers every hot query — "is the port covered at ``t``?" is a single
``bisect_right`` whose *parity* is the answer (odd ⇒ inside an interval).
The hot queries (:meth:`input_covering_end`, :meth:`next_reserved_time`,
:meth:`release_of_block`, :meth:`release_events_for_input`) therefore
compare raw doubles without touching a :class:`Reservation`;  full objects
are materialized from the journal only for the plan-facing API
(:meth:`reserve` returns the object recorded in a Coflow's plan,
:meth:`reservations_for_input` and friends rebuild views on demand).

The pre-array implementation is retained as
:class:`repro.core.prt_reference.ReferencePortReservationTable` and the
two are differentially fuzzed against each other.
"""

from __future__ import annotations

import os
import warnings
from array import array
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Tolerance for floating-point time comparisons throughout the scheduler.
TIME_EPS = 1e-9

#: Version of the storage layout documented above, as consumed by the
#: optional compiled planner (``src/repro/_native.c`` reads the per-port
#: ``array('d')``/``array('q')`` buffers directly through the buffer
#: protocol).  Bump this whenever the struct-of-arrays contract changes —
#: boundary interleaving, typecodes, the ``__slots__`` names, or the
#: journal/``_ends``/``_ends_sorted`` bookkeeping — so a stale extension
#: build is refused (``repro.core.sunflow`` falls back to pure Python)
#: instead of corrupting tables.
PRT_LAYOUT_VERSION = 1

# Optional compiled transaction kernels (`repro._native`): batched
# rollback and batched replay implemented directly against the per-port
# array buffers, one C call per transaction instead of one Python-level
# bisect/insert (or slice surgery) per reservation.  This gate is
# independent of the planner's (`repro.core.sunflow`) — the two modules
# degrade separately, each with its own one-time warning — but enforces
# the same layout-version contract: a build compiled against a different
# storage layout is treated as absent.
try:
    from repro import _native
except ImportError:  # pragma: no cover - depends on the build environment
    _native = None
if _native is not None and getattr(_native, "LAYOUT_VERSION", None) != PRT_LAYOUT_VERSION:
    _native = None  # pragma: no cover - stale build artifact
if _native is not None and not hasattr(_native, "prt_rollback"):
    _native = None  # pragma: no cover - pre-transaction build artifact

#: Same environment variable :mod:`repro.kernels` dispatches on.
_BACKEND_ENV = "REPRO_KERNEL"

_warned_native_missing = False


def native_transactions_available() -> bool:
    """True when the compiled PRT transaction kernels are importable and
    layout-compatible."""
    return _native is not None


def _use_native() -> bool:
    if os.environ.get(_BACKEND_ENV, "").strip().lower() != "native":
        return False
    if _native is None:
        global _warned_native_missing
        if not _warned_native_missing:
            _warned_native_missing = True
            warnings.warn(
                "REPRO_KERNEL=native requested but the repro._native "
                "extension is not available; using the pure-Python PRT "
                "transaction paths (build it with `python setup.py "
                "build_ext --inplace` or by installing the package with a "
                "C compiler present)",
                RuntimeWarning,
                stacklevel=3,
            )
        return False
    return True


#: Profile of a port with no (future) reservations; shared singleton.
_EMPTY_PROFILE: Tuple[float, ...] = (0,)


@dataclass(slots=True, unsafe_hash=True)
class Reservation:
    """One circuit held on ``[start, end)`` between ``src`` and ``dst``.

    Treat instances as immutable: reservations are shared between the
    journal, plan layers, and cached plans, and are hashed/compared by
    value.  (The class is not ``frozen`` because frozen-dataclass
    ``__init__`` pays an ``object.__setattr__`` call per field, and the
    schedulers construct hundreds of thousands of these on the replay
    hot path.)

    Attributes:
        start: when the ports become taken (reconfiguration begins).
        end: when the ports are released.
        src: input port index.
        dst: output port index.
        coflow_id: the Coflow whose flow this circuit serves.
        setup: leading seconds spent reconfiguring; data flows only during
            ``[start + setup, end)``.
    """

    start: float
    end: float
    src: int
    dst: int
    coflow_id: int
    setup: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty reservation [{self.start}, {self.end})")
        if self.setup < 0 or self.setup > (self.end - self.start) + TIME_EPS:
            raise ValueError(
                f"setup {self.setup} outside reservation of length {self.end - self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def transmit_start(self) -> float:
        """First instant at which data moves on this circuit."""
        return self.start + self.setup

    @property
    def transmit_duration(self) -> float:
        return max(0.0, self.end - self.transmit_start)

    def transmitted_before(self, t: float) -> float:
        """Seconds of transmission completed strictly before time ``t``."""
        return max(0.0, min(t, self.end) - self.transmit_start)

    @property
    def circuit(self) -> Tuple[int, int]:
        return (self.src, self.dst)


class PortConflictError(ValueError):
    """Raised when a reservation would overlap an existing one on a port."""


class PortReservationTable:
    """Reservation timelines for every input and output port.

    The table is write-once per interval: Sunflow never preempts an existing
    reservation, so reservations only accumulate.  Lookups the scheduler
    needs — "is this port free at ``t``?", "when is the next reservation on
    this port after ``t``?", "when is the next circuit release anywhere?" —
    are all O(log n) bisects over per-port boundary arrays (see the module
    docstring for the layout).

    The table additionally supports *checkpoint/rollback*: reservations are
    journalled in insertion order, so any suffix of the insertion history
    can be undone in O(k log n) for k undone reservations.  The incremental
    inter-Coflow replanner uses this to keep the reservations of
    higher-priority Coflows in place while re-planning only the dirty
    suffix of the priority order.  The global release-time column is kept
    in journal order (append on insert, slice-truncate on rollback) and
    sorted lazily only when :meth:`next_release_after` needs it.
    """

    __slots__ = (
        "_in_bounds",
        "_in_refs",
        "_out_bounds",
        "_out_refs",
        "_ends",
        "_ends_sorted",
        "_reservations",
    )

    def __init__(self) -> None:
        self._in_bounds: Dict[int, array] = {}
        self._in_refs: Dict[int, array] = {}
        self._out_bounds: Dict[int, array] = {}
        self._out_refs: Dict[int, array] = {}
        #: Reservation end times in *journal* order (not sorted).
        self._ends: array = array("d")
        #: Lazily rebuilt sorted copy of ``_ends`` (None when stale).
        self._ends_sorted: Optional[array] = None
        self._reservations: List[Reservation] = []

    def clear(self) -> None:
        """Drop every reservation (and the journal) in place.

        The incremental replanner compacts with this when everything left
        in the table lies entirely in the past: such reservations cannot
        cover, block, or release anything from ``now`` on, so the table is
        semantically empty — clearing keeps per-port arrays from growing
        with the age of the simulation.
        """
        self._in_bounds.clear()
        self._in_refs.clear()
        self._out_bounds.clear()
        self._out_refs.clear()
        del self._ends[:]
        self._ends_sorted = None
        self._reservations.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    _EMPTY: Tuple[Reservation, ...] = ()

    def _port_view(self, refs: Optional[array]) -> Sequence[Reservation]:
        if not refs:
            return self._EMPTY
        journal = self._reservations
        return tuple(journal[i] for i in refs)

    def reservations_for_input(self, port: int) -> Sequence[Reservation]:
        """Reservations on input ``port``, sorted by start.

        Materialized from the journal on demand (a fresh tuple per call):
        cheap enough for analysis/validation paths, but not for hot loops —
        those use the scalar queries below.
        """
        return self._port_view(self._in_refs.get(port))

    def reservations_for_output(self, port: int) -> Sequence[Reservation]:
        """Reservations on output ``port``, sorted by start (materialized)."""
        return self._port_view(self._out_refs.get(port))

    def _releases_after(
        self, bounds: Optional[array], refs: Optional[array], t: float
    ) -> Iterator[Reservation]:
        """Reservations on one port whose end lies after ``t``.

        One bisect lands directly on the first candidate: per-port
        reservations are non-overlapping, so sorted-by-start is also
        sorted-by-end, and ``bisect_right`` over the interleaved boundary
        array already skips the released prefix — no clamp, no linear scan.
        """
        if not bounds:
            return
        journal = self._reservations
        for i in refs[bisect_right(bounds, t + TIME_EPS) >> 1 :]:
            yield journal[i]

    def input_releases_after(self, port: int, t: float) -> Iterator[Reservation]:
        return self._releases_after(
            self._in_bounds.get(port), self._in_refs.get(port), t
        )

    def output_releases_after(self, port: int, t: float) -> Iterator[Reservation]:
        return self._releases_after(
            self._out_bounds.get(port), self._out_refs.get(port), t
        )

    def release_events_for_input(
        self, port: int, t: float
    ) -> List[Tuple[float, int, int]]:
        """``(end, src, dst)`` for input-port reservations ending after ``t``.

        The scalar twin of :meth:`input_releases_after`, shaped for the
        scheduler's release-event heap: ends come straight from the
        boundary array and only the peer port is read off the journal.
        """
        bounds = self._in_bounds.get(port)
        if not bounds:
            return []
        k = bisect_right(bounds, t + TIME_EPS) >> 1
        journal = self._reservations
        refs = self._in_refs[port]
        return [
            (end, port, journal[i].dst)
            for end, i in zip(bounds[2 * k + 1 :: 2], refs[k:])
        ]

    def release_events_for_output(
        self, port: int, t: float
    ) -> List[Tuple[float, int, int]]:
        """``(end, src, dst)`` for output-port reservations ending after ``t``."""
        bounds = self._out_bounds.get(port)
        if not bounds:
            return []
        k = bisect_right(bounds, t + TIME_EPS) >> 1
        journal = self._reservations
        refs = self._out_refs[port]
        return [
            (end, journal[i].src, port)
            for end, i in zip(bounds[2 * k + 1 :: 2], refs[k:])
        ]

    @staticmethod
    def _release_in(bounds: Optional[array], t0: float, t1: float) -> bool:
        """True when any reservation on the port ends in ``(t0, t1]``.

        Parity over the interleaved boundary array: ends sit at odd
        indices, so the window ``(t0 + eps, t1 + eps]`` contains one as
        soon as it spans two boundaries or opens on an odd index.
        """
        if not bounds:
            return False
        i = bisect_right(bounds, t0 + TIME_EPS)
        j = bisect_right(bounds, t1 + TIME_EPS)
        if i == j:
            return False
        return (j - i) > 1 or (i & 1) == 1

    def input_release_in(self, port: int, t0: float, t1: float) -> bool:
        """Any reservation end on input ``port`` within ``(t0, t1]``?"""
        return self._release_in(self._in_bounds.get(port), t0, t1)

    def output_release_in(self, port: int, t0: float, t1: float) -> bool:
        """Any reservation end on output ``port`` within ``(t0, t1]``?"""
        return self._release_in(self._out_bounds.get(port), t0, t1)

    def input_covering_end(self, port: int, t: float) -> Optional[float]:
        """End of the reservation covering ``t`` on input ``port``, if any.

        The single hottest query in ``schedule_demand``: one bisect over
        the boundary array; odd parity means ``t`` lies inside an interval
        and the boundary at the insertion point is its end.
        """
        bounds = self._in_bounds.get(port)
        if not bounds:
            return None
        i = bisect_right(bounds, t + TIME_EPS)
        if i & 1:
            return bounds[i]
        return None

    def output_covering_end(self, port: int, t: float) -> Optional[float]:
        """End of the reservation covering ``t`` on output ``port``, if any."""
        bounds = self._out_bounds.get(port)
        if not bounds:
            return None
        i = bisect_right(bounds, t + TIME_EPS)
        if i & 1:
            return bounds[i]
        return None

    def _covering(
        self,
        bounds: Optional[array],
        refs: Optional[array],
        t: float,
    ) -> Optional[Reservation]:
        if not bounds:
            return None
        i = bisect_right(bounds, t + TIME_EPS)
        if i & 1:
            return self._reservations[refs[i >> 1]]
        return None

    def input_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        """The reservation covering ``t`` on input port ``port``, if any."""
        return self._covering(self._in_bounds.get(port), self._in_refs.get(port), t)

    def output_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        """The reservation covering ``t`` on output port ``port``, if any."""
        return self._covering(self._out_bounds.get(port), self._out_refs.get(port), t)

    def input_free_at(self, port: int, t: float) -> bool:
        return self.input_covering_end(port, t) is None

    def output_free_at(self, port: int, t: float) -> bool:
        return self.output_covering_end(port, t) is None

    @staticmethod
    def _next_start(bounds: Optional[array], t: float) -> float:
        """Earliest reservation start at or after ``t`` (inf if none).

        ``bisect_left`` at ``t - eps``: a start within eps *before* ``t``
        still counts as "next" so a zero-length gap is never mistaken for
        usable port time.  Odd parity means the insertion point fell on an
        interval *end*, in which case the next start is the boundary after
        it.
        """
        if not bounds:
            return float("inf")
        i = bisect_left(bounds, t - TIME_EPS)
        if i & 1:
            i += 1
        if i < len(bounds):
            return bounds[i]
        return float("inf")

    def next_reserved_time(self, src: int, dst: int, t: float) -> float:
        """``t_m`` of Algorithm 1 line 16: earliest upcoming reservation start
        on either ``in.src`` or ``out.dst``, at or after ``t`` (inf if none)."""
        next_in = self._next_start(self._in_bounds.get(src), t)
        next_out = self._next_start(self._out_bounds.get(dst), t)
        return min(next_in, next_out)

    def release_of_block(
        self, src: int, dst: int, t: float, t_next: float
    ) -> Tuple[float, bool]:
        """Earliest end among the reservations starting at ``t_next``.

        Companion to :meth:`next_reserved_time`: when the free gap
        ``[t, t_next)`` is too small to fit a setup, the circuit stays
        infeasible until the blocking reservation releases its port.  The
        minimum end over both ports' ``t_next``-starting reservations is a
        proven lower bound on when that can change.

        Returns ``(end, on_input)`` — the bound and whether the
        earliest-releasing blocker sits on the input port (so the caller
        knows which port's release to wait for).  ``(inf, True)`` if
        neither port has a blocker, which cannot happen when ``t_next``
        came from :meth:`next_reserved_time` with a finite value.
        """
        end = float("inf")
        on_input = True
        tol = t - TIME_EPS
        start_tol = t_next + TIME_EPS
        bounds = self._in_bounds.get(src)
        if bounds:
            i = bisect_left(bounds, tol)
            if i & 1:
                i += 1
            if i < len(bounds) and bounds[i] <= start_tol:
                end = bounds[i + 1]
                on_input = True
        bounds = self._out_bounds.get(dst)
        if bounds:
            i = bisect_left(bounds, tol)
            if i & 1:
                i += 1
            if i < len(bounds) and bounds[i] <= start_tol:
                candidate = bounds[i + 1]
                if candidate < end:
                    end = candidate
                    on_input = False
        return end, on_input

    def next_release_after(self, t: float) -> Optional[float]:
        """Earliest reservation end strictly after ``t`` across all ports.

        Algorithm 1 line 10 advances the scheduling clock to this instant.
        Sorts the journal-order end column lazily (the event-driven
        scheduler never calls this; the literal Algorithm 1 transcription
        and the analysis paths do).
        """
        ends_sorted = self._ends_sorted
        if ends_sorted is None:
            ends_sorted = self._ends_sorted = array("d", sorted(self._ends))
        idx = bisect_right(ends_sorted, t + TIME_EPS)
        if idx < len(ends_sorted):
            return ends_sorted[idx]
        return None

    def makespan(self) -> float:
        """Latest reservation end in the table (0 when empty)."""
        ends = self._ends
        if not ends:
            return 0.0
        return max(ends)

    # ------------------------------------------------------------------
    # Occupancy profiles (gap signatures)
    # ------------------------------------------------------------------
    @staticmethod
    def _profile(bounds: Optional[array], t: float) -> Tuple[float, ...]:
        """Hashable occupancy profile of one port at/after ``t``.

        ``(parity, b0, b1, ...)`` — the boundary suffix past the cut
        ``bisect_right(bounds, t + TIME_EPS)`` plus the cut's parity
        (1 ⇒ the port is covered at ``t`` and ``b0`` is the covering end).
        The cut is the *same* index the covering probe and the
        release-event seeding compute, so two contexts with equal profiles
        are indistinguishable to every scheduler query at times ``>= t``:
        a reservation running since before ``t`` and one clamped to start
        exactly at ``t`` both canonicalize to ``(1, end, ...)``.  The plan
        cache keys on these profiles.
        """
        if not bounds:
            return _EMPTY_PROFILE
        i = bisect_right(bounds, t + TIME_EPS)
        if i == len(bounds):
            return _EMPTY_PROFILE
        return (i & 1, *bounds[i:])

    def input_profile(self, port: int, t: float) -> Tuple[float, ...]:
        """Gap-signature profile of input ``port`` at/after ``t``."""
        return self._profile(self._in_bounds.get(port), t)

    def output_profile(self, port: int, t: float) -> Tuple[float, ...]:
        """Gap-signature profile of output ``port`` at/after ``t``."""
        return self._profile(self._out_bounds.get(port), t)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        src: int,
        dst: int,
        start: float,
        end: float,
        coflow_id: int,
        setup: float,
    ) -> Reservation:
        """Reserve circuit ``[in.src, out.dst]`` on ``[start, end)``.

        Raises:
            PortConflictError: if either port is already taken anywhere in
                the interval (Sunflow never preempts).
        """
        reservation = Reservation(
            start=start, end=end, src=src, dst=dst, coflow_id=coflow_id, setup=setup
        )
        self._insert(reservation)
        return reservation

    def _insert(self, reservation: Reservation) -> None:
        """Insert with overlap checks; one bisect per port, reused for both
        the check and the insertion point (this is the hottest PRT write).

        The insertion point among the interleaved boundaries maps to a
        reservation slot as ``j = (k + 1) >> 1``; the would-be neighbors'
        end (``bounds[2j - 1]``) and start (``bounds[2j]``) are then raw
        doubles, so the overlap check never materializes an object.
        """
        start = reservation.start
        end = reservation.end
        in_bounds = self._in_bounds.get(reservation.src)
        if in_bounds is None:
            in_bounds = self._in_bounds[reservation.src] = array("d")
            in_refs = self._in_refs[reservation.src] = array("q")
        else:
            in_refs = self._in_refs[reservation.src]
        out_bounds = self._out_bounds.get(reservation.dst)
        if out_bounds is None:
            out_bounds = self._out_bounds[reservation.dst] = array("d")
            out_refs = self._out_refs[reservation.dst] = array("q")
        else:
            out_refs = self._out_refs[reservation.dst]

        start_tol = start + TIME_EPS
        end_tol = end - TIME_EPS
        j_in = (bisect_left(in_bounds, start) + 1) >> 1
        k_in = 2 * j_in
        if (k_in and in_bounds[k_in - 1] > start_tol) or (
            k_in < len(in_bounds) and in_bounds[k_in] < end_tol
        ):
            self._raise_conflict(reservation, in_refs, j_in, k_in, len(in_bounds))
        j_out = (bisect_left(out_bounds, start) + 1) >> 1
        k_out = 2 * j_out
        if (k_out and out_bounds[k_out - 1] > start_tol) or (
            k_out < len(out_bounds) and out_bounds[k_out] < end_tol
        ):
            self._raise_conflict(reservation, out_refs, j_out, k_out, len(out_bounds))

        idx = len(self._reservations)
        in_bounds.insert(k_in, end)
        in_bounds.insert(k_in, start)
        in_refs.insert(j_in, idx)
        out_bounds.insert(k_out, end)
        out_bounds.insert(k_out, start)
        out_refs.insert(j_out, idx)
        self._ends.append(end)
        self._ends_sorted = None
        self._reservations.append(reservation)

    def _raise_conflict(
        self, new: Reservation, refs: array, j: int, k: int, n: int
    ) -> None:
        """Materialize the offending neighbor for the error message."""
        journal = self._reservations
        start_tol = new.start + TIME_EPS
        bounds_len = n
        if k and j - 1 < len(refs):
            prev = journal[refs[j - 1]]
            if prev.end > start_tol:
                raise PortConflictError(f"{new} overlaps existing {prev}")
        if k < bounds_len and j < len(refs):
            raise PortConflictError(f"{new} overlaps existing {journal[refs[j]]}")
        raise PortConflictError(f"{new} overlaps an existing reservation")

    def replay(self, reservations: Sequence[Reservation]) -> None:
        """Re-insert already-validated reservations (e.g. a cached Coflow
        plan after a :meth:`rollback`).  Overlap checks still apply, so a
        stale plan that no longer fits raises :class:`PortConflictError`
        instead of corrupting the table.

        The call is *atomic*: every port is validated (against existing
        reservations and the other replayed ones) before anything is
        written, so a conflicting batch leaves the table untouched.
        Insertion is batched per port — the replayed items are merged
        into each boundary array in one pass instead of paying a bisect
        plus three mid-array inserts per reservation.

        Under ``REPRO_KERNEL=native`` the whole transaction (grouping,
        validation, merge, journal/ends bookkeeping) is one C call into
        :mod:`repro._native`; the staging there never mutates the table,
        so on a conflict the call reports failure and this method falls
        through to the pure-Python twin, which re-derives and raises the
        byte-identical :class:`PortConflictError`.
        """
        n = len(reservations)
        if n == 0:
            return
        if n == 1:
            self._insert(reservations[0])
            return
        if _use_native() and _native.prt_replay(self, reservations, TIME_EPS):
            return
        self._replay_python(reservations)

    def _replay_python(self, reservations: Sequence[Reservation]) -> None:
        """Pure-Python batched replay (n >= 2); the native kernel's twin
        and the conflict-path error oracle."""
        base = len(self._reservations)
        in_groups: Dict[int, List[Tuple[float, float, int]]] = {}
        out_groups: Dict[int, List[Tuple[float, float, int]]] = {}
        for offset, reservation in enumerate(reservations):
            item = (reservation.start, reservation.end, base + offset)
            group = in_groups.get(reservation.src)
            if group is None:
                in_groups[reservation.src] = [item]
            else:
                group.append(item)
            group = out_groups.get(reservation.dst)
            if group is None:
                out_groups[reservation.dst] = [item]
            else:
                group.append(item)
        staged: List[Tuple[Dict[int, array], Dict[int, array], int, array, array, bool]] = []
        eps = TIME_EPS
        neg_inf = float("-inf")
        for table_b, table_r, groups in (
            (self._in_bounds, self._in_refs, in_groups),
            (self._out_bounds, self._out_refs, out_groups),
        ):
            for port, items in groups.items():
                if len(items) > 1:
                    items.sort()
                bounds = table_b.get(port)
                if not bounds or bounds[-1] <= items[0][0] + eps:
                    # Pure tail append: only the new items need checks
                    # against each other.
                    new_bounds = array("d")
                    new_refs = array("q")
                    prev_end = neg_inf
                    prev_ref = -1
                    for start, end, ref in items:
                        if prev_end > start + eps:
                            self._replay_conflict(
                                reservations, base, ref, prev_ref
                            )
                        new_bounds.append(start)
                        new_bounds.append(end)
                        new_refs.append(ref)
                        prev_end = end
                        prev_ref = ref
                    staged.append((table_b, table_r, port, new_bounds, new_refs, True))
                    continue
                refs = table_r[port]
                n_exist = len(refs)
                n_new = len(items)
                merged_bounds = array("d")
                merged_refs = array("q")
                i = 0
                k = 0
                prev_end = neg_inf
                prev_ref = -1
                while i < n_exist or k < n_new:
                    # Ties go to the new item, matching ``_insert``'s
                    # ``bisect_left`` placement of equal starts.
                    if k < n_new and (i >= n_exist or items[k][0] <= bounds[2 * i]):
                        start, end, ref = items[k]
                        k += 1
                    else:
                        start = bounds[2 * i]
                        end = bounds[2 * i + 1]
                        ref = refs[i]
                        i += 1
                    if prev_end > start + eps:
                        # Existing reservations never overlap each other,
                        # so one side of this pair is a replayed item.
                        self._replay_conflict(reservations, base, ref, prev_ref)
                    merged_bounds.append(start)
                    merged_bounds.append(end)
                    merged_refs.append(ref)
                    prev_end = end
                    prev_ref = ref
                staged.append((table_b, table_r, port, merged_bounds, merged_refs, False))
        # Apply: nothing above mutated the table, so a conflict left it
        # intact and this loop cannot fail.
        for table_b, table_r, port, new_bounds, new_refs, append in staged:
            bounds = table_b.get(port)
            if bounds is None:
                table_b[port] = new_bounds
                table_r[port] = new_refs
            elif append:
                bounds.extend(new_bounds)
                table_r[port].extend(new_refs)
            else:
                bounds[:] = new_bounds
                table_r[port][:] = new_refs
        self._reservations.extend(reservations)
        ends = self._ends
        for reservation in reservations:
            ends.append(reservation.end)
        self._ends_sorted = None

    def _replay_conflict(
        self,
        replayed: Sequence[Reservation],
        base: int,
        ref: int,
        prev_ref: int,
    ) -> None:
        """Materialize both sides of a replay overlap for the error."""

        def side(journal_ref: int) -> Reservation:
            if journal_ref >= base:
                return replayed[journal_ref - base]
            return self._reservations[journal_ref]

        cur = side(ref)
        if prev_ref < 0:
            raise PortConflictError(f"{cur} overlaps an existing reservation")
        prev = side(prev_ref)
        new = cur if ref >= base else prev
        other = prev if new is cur else cur
        raise PortConflictError(f"{new} overlaps existing {other}")

    # ------------------------------------------------------------------
    # Checkpoint / rollback
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Token for the current state; pass to :meth:`rollback` to undo
        every reservation made after this point."""
        return len(self._reservations)

    def rollback(self, token: int) -> int:
        """Undo all reservations made after ``checkpoint()`` returned
        ``token`` (most recent first).  Returns the number undone.

        The end-time column is in journal order, so the whole undone
        suffix is dropped with one slice deletion instead of a bisect +
        ``del`` per reservation.

        Under ``REPRO_KERNEL=native`` the whole transaction (per-port
        counting, tail strips or rebuilds, journal/ends truncation) is
        one C call; removal involves no float arithmetic, so the two
        paths are trivially bit-identical.
        """
        if _use_native():
            try:
                return _native.prt_rollback(self, token)
            except OverflowError:
                # Ports outside the kernel's int32 hashing range; the
                # kernel scans the whole undone suffix before mutating
                # anything, so the table is intact and the Python twin
                # can take over.
                pass
        return self._rollback_python(token)

    def _rollback_python(self, token: int) -> int:
        """Pure-Python rollback twin (kept as the differential oracle)."""
        journal = self._reservations
        if token < 0 or token > len(journal):
            raise ValueError(
                f"invalid checkpoint token {token} for table of {len(journal)}"
            )
        undone = len(journal) - token
        if not undone:
            return 0
        if undone <= 4:
            for idx in range(len(journal) - 1, token - 1, -1):
                reservation = journal[idx]
                self._remove_from_port(
                    self._in_bounds[reservation.src],
                    self._in_refs[reservation.src],
                    reservation.start,
                    idx,
                )
                self._remove_from_port(
                    self._out_bounds[reservation.dst],
                    self._out_refs[reservation.dst],
                    reservation.start,
                    idx,
                )
        else:
            # Batched path: count how many undone reservations sit on each
            # port side, then strip each port once — one slice deletion
            # when the suffix is a pure tail, one rebuilding filter pass
            # otherwise — instead of a bisect + mid-array ``del`` per
            # reservation.
            in_counts: Dict[int, int] = {}
            out_counts: Dict[int, int] = {}
            for idx in range(token, len(journal)):
                reservation = journal[idx]
                src = reservation.src
                dst = reservation.dst
                in_counts[src] = in_counts.get(src, 0) + 1
                out_counts[dst] = out_counts.get(dst, 0) + 1
            for port, count in in_counts.items():
                self._strip_port(
                    self._in_bounds[port], self._in_refs[port], token, count
                )
            for port, count in out_counts.items():
                self._strip_port(
                    self._out_bounds[port], self._out_refs[port], token, count
                )
        del journal[token:]
        del self._ends[token:]
        self._ends_sorted = None
        return undone

    @staticmethod
    def _strip_port(bounds: array, refs: array, token: int, count: int) -> None:
        """Drop the ``count`` entries with journal ref >= ``token``."""
        n = len(refs)
        j = n
        while j and refs[j - 1] >= token:
            j -= 1
        if n - j == count:
            # All undone entries form a contiguous tail (the common case:
            # later reservations usually extend the timeline rightwards).
            del refs[j:]
            del bounds[2 * j :]
            return
        new_bounds = array("d")
        new_refs = array("q")
        for i in range(n):
            ref = refs[i]
            if ref < token:
                new_refs.append(ref)
                new_bounds.append(bounds[2 * i])
                new_bounds.append(bounds[2 * i + 1])
        bounds[:] = new_bounds
        refs[:] = new_refs

    @staticmethod
    def _remove_from_port(
        bounds: array, refs: array, start: float, journal_idx: int
    ) -> None:
        k = bisect_left(bounds, start)
        if k & 1:
            # Landed on the previous interval's end (== start, adjacent
            # reservations); the start itself is the next boundary.
            k += 1
        j = k >> 1
        # Starts are unique per port (reservations never overlap), so the
        # bisect lands exactly on the entry to remove.
        if j >= len(refs) or refs[j] != journal_idx or bounds[k] != start:
            raise ValueError(
                f"journal entry {journal_idx} (start={start}) not found on port"
            )
        del bounds[k : k + 2]
        del refs[j]

    # ------------------------------------------------------------------
    # Validation (used heavily by the test suite)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the port constraint holds for every port timeline.

        Raises:
            PortConflictError: if any two reservations overlap on a port.
        """
        journal = self._reservations
        for bounds_table, refs_table in (
            (self._in_bounds, self._in_refs),
            (self._out_bounds, self._out_refs),
        ):
            for port, bounds in bounds_table.items():
                refs = refs_table[port]
                for i in range(1, len(bounds) - 1, 2):
                    if bounds[i] > bounds[i + 1] + TIME_EPS:
                        earlier = journal[refs[(i - 1) >> 1]]
                        later = journal[refs[(i + 1) >> 1]]
                        raise PortConflictError(
                            f"port {port}: {earlier} overlaps {later}"
                        )
                for i in range(0, len(bounds), 2):
                    if bounds[i + 1] <= bounds[i]:  # pragma: no cover - invariant
                        raise PortConflictError(
                            f"port {port}: corrupt boundary pair at {i}"
                        )


class CoreReservationTables:
    """K per-core Port Reservation Tables with batched group operations.

    A K-core OCS fabric gives every port pair ``K`` parallel switch cores,
    each enforcing its own port constraint (a rack has one transceiver per
    core).  This container holds one :class:`PortReservationTable` per core
    and mirrors the single-table transaction surface — checkpoint,
    rollback, replay — *across* the group, so multi-core planners can
    speculate and undo whole multi-core plans exactly the way the
    single-switch incremental replanner does on one table:

    * :meth:`checkpoint` captures every core's journal position at once;
    * :meth:`rollback` undoes every core back to such a group token;
    * :meth:`replay` re-inserts a ``(core, reservation)`` batch atomically
      — if any core raises :class:`PortConflictError`, the cores already
      written are rolled back before the error propagates, leaving the
      whole group untouched.
    """

    __slots__ = ("tables",)

    def __init__(self, tables: Sequence[PortReservationTable]) -> None:
        if not tables:
            raise ValueError("a core group needs at least one table")
        self.tables = list(tables)

    @classmethod
    def fresh(cls, num_cores: int) -> "CoreReservationTables":
        """A group of ``num_cores`` empty tables."""
        if num_cores <= 0:
            raise ValueError(f"core count must be positive, got {num_cores!r}")
        return cls([PortReservationTable() for _ in range(num_cores)])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[PortReservationTable]:
        return iter(self.tables)

    def __getitem__(self, core: int) -> PortReservationTable:
        return self.tables[core]

    @property
    def num_reservations(self) -> int:
        return sum(len(table) for table in self.tables)

    # ------------------------------------------------------------------
    def checkpoint(self) -> Tuple[int, ...]:
        """Group token: every core's journal position, in core order."""
        return tuple(table.checkpoint() for table in self.tables)

    def rollback(self, token: Sequence[int]) -> int:
        """Undo every core back to a group ``checkpoint``; returns the
        total number of reservations undone across the cores."""
        if len(token) != len(self.tables):
            raise ValueError(
                f"group token has {len(token)} entries for {len(self.tables)} cores"
            )
        return sum(
            table.rollback(mark) for table, mark in zip(self.tables, token)
        )

    def replay(self, items: Sequence[Tuple[int, Reservation]]) -> None:
        """Atomically re-insert ``(core, reservation)`` pairs.

        Per-core batches go through :meth:`PortReservationTable.replay`
        (itself atomic per table); on a conflict in any core, the cores
        already written are rolled back so the group is left exactly as it
        was before the call.
        """
        if not items:
            return
        per_core: Dict[int, List[Reservation]] = {}
        for core, reservation in items:
            if not 0 <= core < len(self.tables):
                raise ValueError(
                    f"core {core} out of range for {len(self.tables)}-core group"
                )
            per_core.setdefault(core, []).append(reservation)
        token = self.checkpoint()
        written: List[int] = []
        try:
            for core, batch in per_core.items():
                self.tables[core].replay(batch)
                written.append(core)
        except PortConflictError:
            for core in written:
                self.tables[core].rollback(token[core])
            raise

    # ------------------------------------------------------------------
    def clear(self) -> None:
        for table in self.tables:
            table.clear()

    def makespan(self) -> float:
        return max(table.makespan() for table in self.tables)

    def validate(self) -> None:
        for table in self.tables:
            table.validate()


__all__ = [
    "TIME_EPS",
    "PRT_LAYOUT_VERSION",
    "Reservation",
    "PortConflictError",
    "PortReservationTable",
    "CoreReservationTables",
    "native_transactions_available",
]
