"""Port Reservation Table (paper §4.1.1).

The PRT is the data structure at the heart of Sunflow.  It records, for
every input and output port of the optical circuit switch, the time
intervals during which the port is taken by a circuit.  A circuit
``[in.i, out.j]`` is scheduled by making a *reservation* on both ports for
the same interval; the first ``setup`` seconds of a reservation model the
circuit reconfiguration delay ``δ`` (no data moves), the remainder
transmits at full link rate.

Reservations are half-open intervals ``[start, end)``: a reservation ending
at ``t`` frees its ports at exactly ``t``, and a new reservation may begin
at ``t``.  The table enforces the port constraint of §2.1 — an input
(output) port carries at most one circuit at any instant — by refusing
overlapping reservations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Tolerance for floating-point time comparisons throughout the scheduler.
TIME_EPS = 1e-9


@dataclass(frozen=True)
class Reservation:
    """One circuit held on ``[start, end)`` between ``src`` and ``dst``.

    Attributes:
        start: when the ports become taken (reconfiguration begins).
        end: when the ports are released.
        src: input port index.
        dst: output port index.
        coflow_id: the Coflow whose flow this circuit serves.
        setup: leading seconds spent reconfiguring; data flows only during
            ``[start + setup, end)``.
    """

    start: float
    end: float
    src: int
    dst: int
    coflow_id: int
    setup: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty reservation [{self.start}, {self.end})")
        if self.setup < 0 or self.setup > (self.end - self.start) + TIME_EPS:
            raise ValueError(
                f"setup {self.setup} outside reservation of length {self.end - self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def transmit_start(self) -> float:
        """First instant at which data moves on this circuit."""
        return self.start + self.setup

    @property
    def transmit_duration(self) -> float:
        return max(0.0, self.end - self.transmit_start)

    def transmitted_before(self, t: float) -> float:
        """Seconds of transmission completed strictly before time ``t``."""
        return max(0.0, min(t, self.end) - self.transmit_start)

    @property
    def circuit(self) -> Tuple[int, int]:
        return (self.src, self.dst)


class PortConflictError(ValueError):
    """Raised when a reservation would overlap an existing one on a port."""


class PortReservationTable:
    """Reservation timelines for every input and output port.

    The table is write-once per interval: Sunflow never preempts an existing
    reservation, so reservations only accumulate.  Lookups the scheduler
    needs — "is this port free at ``t``?", "when is the next reservation on
    this port after ``t``?", "when is the next circuit release anywhere?" —
    are all O(log n) via per-port sorted lists plus a global sorted list of
    release (end) times.
    """

    def __init__(self) -> None:
        self._in: Dict[int, List[Reservation]] = {}
        self._out: Dict[int, List[Reservation]] = {}
        self._in_starts: Dict[int, List[float]] = {}
        self._out_starts: Dict[int, List[float]] = {}
        self._ends: List[float] = []
        self._reservations: List[Reservation] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    def reservations_for_input(self, port: int) -> List[Reservation]:
        return list(self._in.get(port, ()))

    def reservations_for_output(self, port: int) -> List[Reservation]:
        return list(self._out.get(port, ()))

    @staticmethod
    def _covering(
        reservations: List[Reservation], starts: List[float], t: float
    ) -> Optional[Reservation]:
        """The reservation whose ``[start, end)`` contains ``t``, if any."""
        idx = bisect.bisect_right(starts, t + TIME_EPS) - 1
        if idx >= 0:
            candidate = reservations[idx]
            if candidate.start <= t + TIME_EPS and t < candidate.end - TIME_EPS:
                return candidate
        return None

    def input_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        return self._covering(self._in.get(port, []), self._in_starts.get(port, []), t)

    def output_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        return self._covering(self._out.get(port, []), self._out_starts.get(port, []), t)

    def input_free_at(self, port: int, t: float) -> bool:
        return self.input_reservation_at(port, t) is None

    def output_free_at(self, port: int, t: float) -> bool:
        return self.output_reservation_at(port, t) is None

    @staticmethod
    def _next_start(starts: List[float], t: float) -> float:
        """Earliest reservation start at or after ``t`` (inf if none)."""
        idx = bisect.bisect_left(starts, t - TIME_EPS)
        # Skip starts that are effectively equal to t only if they are in the
        # past; bisect_left with the epsilon already lands us on the first
        # start >= t - eps, which is what "next reservation" means here.
        while idx < len(starts) and starts[idx] < t - TIME_EPS:
            idx += 1
        return starts[idx] if idx < len(starts) else float("inf")

    def next_reserved_time(self, src: int, dst: int, t: float) -> float:
        """``t_m`` of Algorithm 1 line 16: earliest upcoming reservation start
        on either ``in.src`` or ``out.dst``, at or after ``t`` (inf if none)."""
        next_in = self._next_start(self._in_starts.get(src, []), t)
        next_out = self._next_start(self._out_starts.get(dst, []), t)
        return min(next_in, next_out)

    def next_release_after(self, t: float) -> Optional[float]:
        """Earliest reservation end strictly after ``t`` across all ports.

        Algorithm 1 line 10 advances the scheduling clock to this instant.
        """
        idx = bisect.bisect_right(self._ends, t + TIME_EPS)
        if idx < len(self._ends):
            return self._ends[idx]
        return None

    def makespan(self) -> float:
        """Latest reservation end in the table (0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_no_overlap(
        self, reservations: List[Reservation], starts: List[float], new: Reservation
    ) -> None:
        idx = bisect.bisect_left(starts, new.start)
        # The previous reservation must end before the new one starts...
        if idx > 0 and reservations[idx - 1].end > new.start + TIME_EPS:
            raise PortConflictError(
                f"{new} overlaps existing {reservations[idx - 1]}"
            )
        # ...and the next must start after the new one ends.
        if idx < len(reservations) and reservations[idx].start < new.end - TIME_EPS:
            raise PortConflictError(f"{new} overlaps existing {reservations[idx]}")

    def reserve(
        self,
        src: int,
        dst: int,
        start: float,
        end: float,
        coflow_id: int,
        setup: float,
    ) -> Reservation:
        """Reserve circuit ``[in.src, out.dst]`` on ``[start, end)``.

        Raises:
            PortConflictError: if either port is already taken anywhere in
                the interval (Sunflow never preempts).
        """
        reservation = Reservation(
            start=start, end=end, src=src, dst=dst, coflow_id=coflow_id, setup=setup
        )
        in_list = self._in.setdefault(src, [])
        in_starts = self._in_starts.setdefault(src, [])
        out_list = self._out.setdefault(dst, [])
        out_starts = self._out_starts.setdefault(dst, [])
        self._check_no_overlap(in_list, in_starts, reservation)
        self._check_no_overlap(out_list, out_starts, reservation)

        idx = bisect.bisect_left(in_starts, reservation.start)
        in_list.insert(idx, reservation)
        in_starts.insert(idx, reservation.start)
        idx = bisect.bisect_left(out_starts, reservation.start)
        out_list.insert(idx, reservation)
        out_starts.insert(idx, reservation.start)
        bisect.insort(self._ends, reservation.end)
        self._reservations.append(reservation)
        return reservation

    # ------------------------------------------------------------------
    # Validation (used heavily by the test suite)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the port constraint holds for every port timeline.

        Raises:
            PortConflictError: if any two reservations overlap on a port.
        """
        for table in (self._in, self._out):
            for port, reservations in table.items():
                for earlier, later in zip(reservations, reservations[1:]):
                    if earlier.end > later.start + TIME_EPS:
                        raise PortConflictError(
                            f"port {port}: {earlier} overlaps {later}"
                        )
