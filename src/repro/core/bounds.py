"""CCT lower bounds (paper §2.4, Equations 1–4) and Lemma bounds (§4.1.2).

Two theoretical, schedule-independent lower bounds on Coflow Completion
Time:

* ``T^p_L`` (*packet-switched*): the busiest port's total processing time —
  Equation (2).
* ``T^c_L`` (*circuit-switched*): same, but every non-zero flow pays at
  least one circuit reconfiguration ``δ`` — Equations (3) and (4).  This is
  tighter than the all-stop-model bound used by prior work because it is
  derived under the not-all-stop switch model.

Both are per-Coflow quantities; the inter-Coflow simulators use ``T^p_L``
for shortest-Coflow-first ordering (paper §4.2) and for the idleness metric
(§5.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence, Tuple

from repro.core.coflow import Coflow
from repro.units import processing_time


def port_loads(
    coflow: Coflow, bandwidth_bps: float
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Per-port total processing time ``Σ_j p_ij`` and ``Σ_i p_ij``.

    Returns:
        ``(input_load, output_load)`` — seconds of work each input/output
        port must serve for this Coflow, excluding reconfiguration delays.
    """
    input_load: Dict[int, float] = defaultdict(float)
    output_load: Dict[int, float] = defaultdict(float)
    for flow in coflow.flows:
        p = processing_time(flow.size_bytes, bandwidth_bps)
        input_load[flow.src] += p
        output_load[flow.dst] += p
    return dict(input_load), dict(output_load)


def packet_lower_bound(coflow: Coflow, bandwidth_bps: float) -> float:
    """``T^p_L``, Equation (2): the maximum port load in seconds.

    The CCT in *any* network (packet or circuit) is at least the time the
    busiest port needs to push its bytes at full line rate.
    """
    input_load, output_load = port_loads(coflow, bandwidth_bps)
    loads = list(input_load.values()) + list(output_load.values())
    return max(loads) if loads else 0.0


def flow_circuit_time(size_bytes: float, bandwidth_bps: float, delta: float) -> float:
    """``t_ij``, Equation (3): processing time plus one setup ``δ`` (0 if no demand)."""
    if size_bytes <= 0:
        return 0.0
    return processing_time(size_bytes, bandwidth_bps) + delta


def circuit_lower_bound(coflow: Coflow, bandwidth_bps: float, delta: float) -> float:
    """``T^c_L``, Equation (4): max port load including one ``δ`` per flow.

    Valid for the not-all-stop switch model: each flow must pay at least one
    reconfiguration on both its ports, and a port serves one circuit at a
    time.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta!r}")
    input_load: Dict[int, float] = defaultdict(float)
    output_load: Dict[int, float] = defaultdict(float)
    for flow in coflow.flows:
        t = flow_circuit_time(flow.size_bytes, bandwidth_bps, delta)
        input_load[flow.src] += t
        output_load[flow.dst] += t
    loads = list(input_load.values()) + list(output_load.values())
    return max(loads) if loads else 0.0


def alpha(coflow: Coflow, bandwidth_bps: float, delta: float) -> float:
    """``α = δ / min_f (d_f / B)`` from Lemma 2.

    The ratio of the switching delay to the smallest flow's transmission
    time.  Sunflow's CCT is at most ``2(1+α)`` times the packet-switched
    optimum.  Returns 0 for an empty Coflow.
    """
    if not coflow.flows:
        return 0.0
    min_p = min(processing_time(f.size_bytes, bandwidth_bps) for f in coflow.flows)
    if min_p == 0:
        raise ValueError("alpha is undefined for zero-size flows")
    return delta / min_p


def sunflow_circuit_bound(coflow: Coflow, bandwidth_bps: float, delta: float) -> float:
    """Lemma 1 guarantee: Sunflow CCT is at most ``2 · T^c_L``."""
    return 2.0 * circuit_lower_bound(coflow, bandwidth_bps, delta)


def sunflow_packet_bound(coflow: Coflow, bandwidth_bps: float, delta: float) -> float:
    """Lemma 2 guarantee: Sunflow CCT is at most ``2(1+α) · T^p_L``."""
    return 2.0 * (1.0 + alpha(coflow, bandwidth_bps, delta)) * packet_lower_bound(
        coflow, bandwidth_bps
    )


# ----------------------------------------------------------------------
# K-core generalizations (the K-core OCS papers' lower bounds)
# ----------------------------------------------------------------------
def multicore_packet_lower_bound(
    coflow: Coflow, core_bandwidths: "Sequence[float]"
) -> float:
    """K-core ``T^p_L``: busiest port's bytes over the *aggregate* rate.

    With one transceiver per core per rack, a port can push (at most) the
    sum of the core line rates; no schedule can drain its bytes faster.
    Degenerates to :func:`packet_lower_bound` at ``K = 1``.
    """
    total = sum(core_bandwidths)
    input_load: Dict[int, float] = defaultdict(float)
    output_load: Dict[int, float] = defaultdict(float)
    for flow in coflow.flows:
        p = processing_time(flow.size_bytes, total)
        input_load[flow.src] += p
        output_load[flow.dst] += p
    loads = list(input_load.values()) + list(output_load.values())
    return max(loads) if loads else 0.0


def multicore_circuit_lower_bound(
    coflow: Coflow,
    core_bandwidths: "Sequence[float]",
    core_deltas: "Sequence[float]",
) -> float:
    """K-core ``T^c_L``: transceiver-time at the busiest port over ``K``.

    Under the not-all-stop model, every flow (however its bytes are split
    across cores) occupies transceiver time on both of its ports of at
    least its transmission at the *fastest* core rate plus one setup at
    the *smallest* core delay.  A port owns one transceiver per core, so
    it accrues at most ``K`` transceiver-seconds per second — the busiest
    port's total transceiver-time divided by ``K`` lower-bounds the CCT.
    Degenerates to :func:`circuit_lower_bound` at ``K = 1``.
    """
    if len(core_bandwidths) != len(core_deltas):
        raise ValueError(
            f"got {len(core_bandwidths)} bandwidths for {len(core_deltas)} deltas"
        )
    num_cores = len(core_bandwidths)
    if num_cores == 0:
        raise ValueError("at least one core is required")
    best_bandwidth = max(core_bandwidths)
    min_delta = min(core_deltas)
    if min_delta < 0:
        raise ValueError(f"delta must be non-negative, got {min_delta!r}")
    input_load: Dict[int, float] = defaultdict(float)
    output_load: Dict[int, float] = defaultdict(float)
    for flow in coflow.flows:
        t = flow_circuit_time(flow.size_bytes, best_bandwidth, min_delta)
        input_load[flow.src] += t
        output_load[flow.dst] += t
    loads = list(input_load.values()) + list(output_load.values())
    return max(loads) / num_cores if loads else 0.0
