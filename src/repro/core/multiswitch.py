"""Deprecated multi-plane shim over :mod:`repro.core.multicore`.

This module began as an ad-hoc sketch of "Sunflow over ``k`` parallel
switch planes" (the paper's §6 future work) with its own private copy of
the release-scan event loop.  The K-core fabric work subsumed it:

* the fabric model, placement policies and the generalized first-fit
  planner live in :mod:`repro.core.multicore`,
* trace replay over cores goes through ``repro.api.simulate`` with
  ``NetworkSpec(num_cores=k)`` (or :mod:`repro.sim.multicore_sim`),
* this module keeps the historical names importable —
  :class:`MultiSwitchSunflow` now *delegates* to
  :class:`~repro.core.multicore.MultiCoreSunflowScheduler` and warns
  (once per call site) on construction.

A "plane" is a core with unit byte-rate: the legacy surface measures
demand in *processing seconds*, so the shim builds cores whose line rate
is exactly one byte per second (``bandwidth_bps = 8``), making the
seconds-to-bytes conversion the identity and preserving the old
numerical behavior exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compat import deprecated_entry_point
from repro.core.coflow import Coflow
from repro.core.multicore import (
    CoreReservation,
    MultiCoreSchedule,
    MultiCoreSunflowScheduler,
    uniform_cores,
)
from repro.core.prt import CoreReservationTables, PortReservationTable
from repro.core.sunflow import ReservationOrder
from repro.units import BITS_PER_BYTE, DEFAULT_BANDWIDTH, DEFAULT_DELTA

#: Historical names, preserved as aliases of the multicore types (a
#: ``plane`` attribute aliases ``core`` on :class:`CoreReservation`).
PlanedReservation = CoreReservation
MultiSwitchSchedule = MultiCoreSchedule


class MultiSwitchSunflow:
    """Deprecated: Sunflow planning over ``num_planes`` parallel planes.

    Superseded by ``repro.api.simulate`` with ``NetworkSpec(num_cores=k)``
    (trace replay) or :class:`~repro.core.multicore.MultiCoreSunflowScheduler`
    (direct planning).  This shim keeps the seconds-denominated legacy
    surface alive and emits a :class:`DeprecationWarning` once per call
    site on construction.

    Args:
        num_planes: number of parallel OCS planes (``k``).
        delta: per-plane circuit reconfiguration delay.
        order: demand consideration order, as in the single-switch case.
        rng: randomness for :attr:`ReservationOrder.RANDOM`.
    """

    @deprecated_entry_point(
        "use repro.api.simulate with NetworkSpec(num_cores=k), or "
        "repro.core.multicore.MultiCoreSunflowScheduler for direct planning"
    )
    def __init__(
        self,
        num_planes: int,
        delta: float = DEFAULT_DELTA,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_planes <= 0:
            raise ValueError(f"plane count must be positive, got {num_planes!r}")
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta!r}")
        self.num_planes = num_planes
        self.delta = delta
        self.order = order
        # Unit byte-rate planes: demand seconds map 1:1 onto demand bytes.
        self._impl = MultiCoreSunflowScheduler(
            uniform_cores(
                num_planes, bandwidth_bps=float(BITS_PER_BYTE), delta=delta
            ),
            order=order,
            rng=rng,
        )

    # ------------------------------------------------------------------
    def new_tables(self) -> List[PortReservationTable]:
        """Fresh per-plane reservation tables."""
        return list(self._impl.new_tables())

    def schedule_demand(
        self,
        tables: Sequence[PortReservationTable],
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
    ) -> MultiSwitchSchedule:
        """Reserve circuits for one Coflow across the planes.

        ``tables`` must have one PRT per plane; reservations made by
        higher-priority Coflows constrain this call exactly as in the
        single-switch scheduler.
        """
        if len(tables) != self.num_planes:
            raise ValueError(
                f"expected {self.num_planes} tables, got {len(tables)}"
            )
        if isinstance(tables, CoreReservationTables):
            group = tables
        else:
            group = CoreReservationTables(list(tables))
        return self._impl.schedule_demand(
            group, coflow_id, dict(demand_times), start_time=start_time
        )

    def schedule_coflow(
        self,
        coflow: Coflow,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        tables: Optional[Sequence[PortReservationTable]] = None,
        start_time: float = 0.0,
    ) -> MultiSwitchSchedule:
        """Convenience wrapper for a whole Coflow on fresh (or given) tables."""
        if tables is None:
            tables = self.new_tables()
        return self.schedule_demand(
            tables, coflow.coflow_id, coflow.processing_times(bandwidth_bps),
            start_time=start_time,
        )

    def schedule_coflows(
        self,
        coflows: Sequence[Coflow],
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        start_time: float = 0.0,
    ) -> Tuple[List[PortReservationTable], Dict[int, MultiSwitchSchedule]]:
        """Priority-ordered inter-Coflow scheduling across the planes."""
        tables = self.new_tables()
        schedules = {}
        for coflow in coflows:
            schedules[coflow.coflow_id] = self.schedule_demand(
                tables,
                coflow.coflow_id,
                coflow.processing_times(bandwidth_bps),
                start_time=start_time,
            )
        return list(tables), schedules


__all__ = ["MultiSwitchSunflow", "MultiSwitchSchedule", "PlanedReservation"]
