"""Sunflow over multiple parallel optical switches (paper §6 future work).

"Sunflow is meant for controlling a single optical circuit switch.
Adapting Sunflow for controlling a network of circuit switches is a
subject of our future work."  This module implements the natural first
step: a fabric of ``k`` parallel switch *planes*, where every rack has one
transceiver per plane (the multi-plane OCS topology of Helios-style
designs).  A flow may be served by any plane; each plane enforces its own
port constraint.

The scheduler generalizes Algorithm 1's MakeReservation to "reserve on the
first plane where both ports are free and the gap fits": everything else —
non-preemption, priority ordering across Coflows, the event-driven release
scan — carries over unchanged.  Lemma 1's argument also survives per
plane: whenever a flow waits, all planes of its ports are busy, so the
waiting bound divides by ``k`` in the best case.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable, Reservation, TIME_EPS
from repro.core.sunflow import ReservationOrder, _Entry
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA


@dataclass(frozen=True)
class PlanedReservation:
    """A reservation bound to one switch plane."""

    plane: int
    reservation: Reservation


@dataclass
class MultiSwitchSchedule:
    """The planned per-plane reservations for one Coflow."""

    coflow_id: int
    start_time: float
    reservations: List[PlanedReservation] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        if not self.reservations:
            return self.start_time
        return max(item.reservation.end for item in self.reservations)

    @property
    def makespan(self) -> float:
        return self.completion_time - self.start_time

    @property
    def num_setups(self) -> int:
        return sum(1 for item in self.reservations if item.reservation.setup > 0)

    def per_plane_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for item in self.reservations:
            counts[item.plane] = counts.get(item.plane, 0) + 1
        return counts


class MultiSwitchSunflow:
    """Sunflow planning over ``num_planes`` parallel switch planes.

    Args:
        num_planes: number of parallel OCS planes (``k``).
        delta: per-plane circuit reconfiguration delay.
        order: demand consideration order, as in the single-switch case.
        rng: randomness for :attr:`ReservationOrder.RANDOM`.
    """

    def __init__(
        self,
        num_planes: int,
        delta: float = DEFAULT_DELTA,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_planes <= 0:
            raise ValueError(f"plane count must be positive, got {num_planes!r}")
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta!r}")
        self.num_planes = num_planes
        self.delta = delta
        self.order = order
        self._rng = rng if rng is not None else random.Random(0)

    # ------------------------------------------------------------------
    def new_tables(self) -> List[PortReservationTable]:
        """Fresh per-plane reservation tables."""
        return [PortReservationTable() for _ in range(self.num_planes)]

    def schedule_demand(
        self,
        tables: Sequence[PortReservationTable],
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
    ) -> MultiSwitchSchedule:
        """Reserve circuits for one Coflow across the planes.

        ``tables`` must have one PRT per plane; reservations made by
        higher-priority Coflows constrain this call exactly as in the
        single-switch scheduler.
        """
        if len(tables) != self.num_planes:
            raise ValueError(
                f"expected {self.num_planes} tables, got {len(tables)}"
            )
        entries = self._make_entries(demand_times)
        schedule = MultiSwitchSchedule(coflow_id=coflow_id, start_time=start_time)
        if not entries:
            return schedule

        pending_by_port: Dict[Tuple[int, str, int], Set[_Entry]] = {}
        for entry in entries:
            for plane in range(self.num_planes):
                pending_by_port.setdefault((plane, "in", entry.src), set()).add(entry)
                pending_by_port.setdefault((plane, "out", entry.dst), set()).add(entry)
        outstanding = len(entries)

        counter = itertools.count()
        events: List[Tuple[float, int, int, int, int]] = []
        used_inputs = {entry.src for entry in entries}
        used_outputs = {entry.dst for entry in entries}
        seeded = set()
        for plane, prt in enumerate(tables):
            for port in used_inputs:
                for reservation in prt.reservations_for_input(port):
                    if reservation.end > start_time + TIME_EPS:
                        seeded.add((reservation.end, plane, reservation.src, reservation.dst))
            for port in used_outputs:
                for reservation in prt.reservations_for_output(port):
                    if reservation.end > start_time + TIME_EPS:
                        seeded.add((reservation.end, plane, reservation.src, reservation.dst))
        for end, plane, src, dst in seeded:
            heapq.heappush(events, (end, next(counter), plane, src, dst))

        def attempt(batch, t: float) -> None:
            nonlocal outstanding
            for entry in sorted(batch, key=lambda e: e.order_index):
                if entry.remaining <= TIME_EPS:
                    continue
                placed = self._make_reservation(tables, schedule, entry, t)
                if placed is not None:
                    plane, reservation = placed
                    heapq.heappush(
                        events,
                        (reservation.end, next(counter), plane,
                         reservation.src, reservation.dst),
                    )
                if entry.remaining <= TIME_EPS:
                    for plane in range(self.num_planes):
                        pending_by_port[(plane, "in", entry.src)].discard(entry)
                        pending_by_port[(plane, "out", entry.dst)].discard(entry)
                    outstanding -= 1

        attempt(entries, start_time)
        while outstanding > 0:
            if not events:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t = events[0][0]
            released: Set[Tuple[int, str, int]] = set()
            while events and events[0][0] <= t + TIME_EPS:
                _, _, plane, src, dst = heapq.heappop(events)
                released.add((plane, "in", src))
                released.add((plane, "out", dst))
            candidates: Set[_Entry] = set()
            for key in released:
                candidates.update(pending_by_port.get(key, ()))
            if candidates:
                attempt(candidates, t)
        return schedule

    def schedule_coflow(
        self,
        coflow: Coflow,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        tables: Optional[Sequence[PortReservationTable]] = None,
        start_time: float = 0.0,
    ) -> MultiSwitchSchedule:
        """Convenience wrapper for a whole Coflow on fresh (or given) tables."""
        if tables is None:
            tables = self.new_tables()
        return self.schedule_demand(
            tables, coflow.coflow_id, coflow.processing_times(bandwidth_bps),
            start_time=start_time,
        )

    def schedule_coflows(
        self,
        coflows: Sequence[Coflow],
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        start_time: float = 0.0,
    ) -> Tuple[List[PortReservationTable], Dict[int, MultiSwitchSchedule]]:
        """Priority-ordered inter-Coflow scheduling across the planes."""
        tables = self.new_tables()
        schedules = {}
        for coflow in coflows:
            schedules[coflow.coflow_id] = self.schedule_demand(
                tables,
                coflow.coflow_id,
                coflow.processing_times(bandwidth_bps),
                start_time=start_time,
            )
        return list(tables), schedules

    # ------------------------------------------------------------------
    def _make_entries(self, demand_times) -> List[_Entry]:
        entries = [
            _Entry(src, dst, p)
            for (src, dst), p in demand_times.items()
            if p > TIME_EPS
        ]
        if self.order is ReservationOrder.ORDERED_PORT:
            entries.sort(key=lambda e: (e.src, e.dst))
        elif self.order is ReservationOrder.RANDOM:
            entries.sort(key=lambda e: (e.src, e.dst))
            self._rng.shuffle(entries)
        else:
            entries.sort(key=lambda e: (-e.remaining, e.src, e.dst))
        for index, entry in enumerate(entries):
            entry.order_index = index
        return entries

    def _make_reservation(
        self,
        tables: Sequence[PortReservationTable],
        schedule: MultiSwitchSchedule,
        entry: _Entry,
        t: float,
    ) -> Optional[Tuple[int, Reservation]]:
        """Try each plane in turn; reserve on the first feasible one."""
        for plane, prt in enumerate(tables):
            if not (
                prt.input_free_at(entry.src, t) and prt.output_free_at(entry.dst, t)
            ):
                continue
            t_next = prt.next_reserved_time(entry.src, entry.dst, t)
            max_length = t_next - t
            desired_length = self.delta + entry.remaining
            if max_length <= self.delta + TIME_EPS:
                continue
            length = min(max_length, desired_length)
            reservation = prt.reserve(
                entry.src,
                entry.dst,
                start=t,
                end=t + length,
                coflow_id=schedule.coflow_id,
                setup=self.delta,
            )
            schedule.reservations.append(PlanedReservation(plane, reservation))
            entry.remaining = desired_length - length
            return plane, reservation
        return None
