"""Coflow traffic model (paper §2.2).

A *Coflow* is a collection of independent flows sharing one performance
objective.  Its demand is a sparse matrix ``D`` where ``d[i][j]`` is the
number of bytes flow ``f_(i,j)`` must move from input port ``in.i`` to
output port ``out.j``.  ``|C|`` — the number of subflows — is the number of
non-zero entries.

The classes here are the data model used by every scheduler and simulator
in the library:

* :class:`Flow` — one (source, destination, size) demand entry,
* :class:`Coflow` — a set of flows plus an arrival time,
* :class:`CoflowTrace` — an ordered collection of Coflows over a fabric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.units import processing_time


class CoflowCategory(enum.Enum):
    """Sender-to-receiver structure of a Coflow (paper Table 4)."""

    ONE_TO_ONE = "O2O"
    ONE_TO_MANY = "O2M"
    MANY_TO_ONE = "M2O"
    MANY_TO_MANY = "M2M"


@dataclass(frozen=True)
class Flow:
    """A single subflow: ``size_bytes`` from input port ``src`` to output port ``dst``.

    Ports are zero-based indices into the fabric's input/output port sets.
    A :class:`Flow` is immutable; mutable transfer progress lives in the
    simulators, not in the traffic model.
    """

    src: int
    dst: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"ports must be non-negative, got ({self.src}, {self.dst})")
        if self.size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {self.size_bytes!r}")

    def processing_time(self, bandwidth_bps: float) -> float:
        """Equation (1): seconds of circuit time to drain this flow at full rate."""
        return processing_time(self.size_bytes, bandwidth_bps)


@dataclass
class Coflow:
    """A Coflow: flows sharing a completion-time objective (paper §2.2).

    Attributes:
        coflow_id: identifier, unique within a trace.
        arrival_time: seconds since the start of the trace.
        flows: the subflows.  At most one flow per (src, dst) pair; use
            :meth:`from_demand` or :meth:`merged` to combine duplicates.
    """

    coflow_id: int
    arrival_time: float
    flows: List[Flow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.arrival_time!r}")
        seen: set = set()
        for flow in self.flows:
            key = (flow.src, flow.dst)
            if key in seen:
                raise ValueError(
                    f"coflow {self.coflow_id} has duplicate flows on circuit {key}; "
                    "merge them with Coflow.from_demand()"
                )
            seen.add(key)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_demand(
        cls,
        coflow_id: int,
        demand: Dict[Tuple[int, int], float],
        arrival_time: float = 0.0,
    ) -> "Coflow":
        """Build a Coflow from a ``{(src, dst): bytes}`` mapping.

        Entries with zero size are dropped (a zero entry in the demand
        matrix is the absence of a flow).
        """
        flows = [
            Flow(src, dst, size)
            for (src, dst), size in sorted(demand.items())
            if size > 0
        ]
        return cls(coflow_id=coflow_id, arrival_time=arrival_time, flows=flows)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_flows(self) -> int:
        """``|C|``: the number of subflows (non-zero demand entries)."""
        return len(self.flows)

    @property
    def total_bytes(self) -> float:
        return sum(flow.size_bytes for flow in self.flows)

    @property
    def senders(self) -> List[int]:
        """Distinct input ports with demand, sorted."""
        return sorted({flow.src for flow in self.flows})

    @property
    def receivers(self) -> List[int]:
        """Distinct output ports with demand, sorted."""
        return sorted({flow.dst for flow in self.flows})

    @property
    def category(self) -> CoflowCategory:
        """Sender-to-receiver classification used by Table 4."""
        many_senders = len(self.senders) > 1
        many_receivers = len(self.receivers) > 1
        if many_senders and many_receivers:
            return CoflowCategory.MANY_TO_MANY
        if many_senders:
            return CoflowCategory.MANY_TO_ONE
        if many_receivers:
            return CoflowCategory.ONE_TO_MANY
        return CoflowCategory.ONE_TO_ONE

    def demand(self) -> Dict[Tuple[int, int], float]:
        """Demand matrix as a sparse ``{(src, dst): bytes}`` mapping."""
        return {(flow.src, flow.dst): flow.size_bytes for flow in self.flows}

    def processing_times(self, bandwidth_bps: float) -> Dict[Tuple[int, int], float]:
        """Equation (1) applied to every subflow: ``{(src, dst): seconds}``."""
        return {
            (flow.src, flow.dst): flow.processing_time(bandwidth_bps)
            for flow in self.flows
        }

    def average_processing_time(self, bandwidth_bps: float) -> float:
        """``p_avg = (Σ p_ij) / |C|`` (paper §5.3.2), 0 for an empty Coflow."""
        if not self.flows:
            return 0.0
        total = sum(flow.processing_time(bandwidth_bps) for flow in self.flows)
        return total / self.num_flows

    def is_long(self, bandwidth_bps: float, delta: float, threshold: float = 40.0) -> bool:
        """Paper §5.3.2: a Coflow is *long* if ``p_avg > threshold × δ``."""
        return self.average_processing_time(bandwidth_bps) > threshold * delta

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def scaled(self, factor: float, min_bytes: float = 0.0) -> "Coflow":
        """Return a copy with every flow size multiplied by ``factor``.

        Sizes are floored at ``min_bytes`` (used when perturbing/scaling the
        trace: the paper lower-bounds flow sizes at 1 MB).
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        flows = [
            Flow(f.src, f.dst, max(f.size_bytes * factor, min_bytes)) for f in self.flows
        ]
        return Coflow(self.coflow_id, self.arrival_time, flows)

    def with_arrival(self, arrival_time: float) -> "Coflow":
        """Return a copy arriving at ``arrival_time``."""
        return Coflow(self.coflow_id, arrival_time, list(self.flows))

    @staticmethod
    def merged(coflow_id: int, coflows: Iterable["Coflow"], arrival_time: Optional[float] = None) -> "Coflow":
        """Combine several Coflows into one (paper §4.2, equal-priority option).

        Demands on the same circuit are summed; the arrival time defaults to
        the earliest constituent arrival.
        """
        demand: Dict[Tuple[int, int], float] = {}
        arrivals: List[float] = []
        for coflow in coflows:
            arrivals.append(coflow.arrival_time)
            for flow in coflow.flows:
                key = (flow.src, flow.dst)
                demand[key] = demand.get(key, 0.0) + flow.size_bytes
        if not arrivals:
            raise ValueError("merged() needs at least one coflow")
        when = min(arrivals) if arrival_time is None else arrival_time
        return Coflow.from_demand(coflow_id, demand, arrival_time=when)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Coflow(id={self.coflow_id}, arrival={self.arrival_time:.3f}s, "
            f"|C|={self.num_flows}, bytes={self.total_bytes:.0f}, "
            f"category={self.category.value})"
        )


@dataclass
class CoflowTrace:
    """An ordered collection of Coflows over an ``num_ports``-port fabric.

    The fabric is the non-blocking N-port switch of paper §2.1; input port
    ``i`` and output port ``i`` both attach to the same ToR switch.
    """

    num_ports: int
    coflows: List[Coflow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ValueError(f"port count must be positive, got {self.num_ports!r}")
        for coflow in self.coflows:
            self._check_ports(coflow)

    def _check_ports(self, coflow: Coflow) -> None:
        for flow in coflow.flows:
            if flow.src >= self.num_ports or flow.dst >= self.num_ports:
                raise ValueError(
                    f"coflow {coflow.coflow_id} uses port ({flow.src}, {flow.dst}) "
                    f"outside a {self.num_ports}-port fabric"
                )

    def add(self, coflow: Coflow) -> None:
        self._check_ports(coflow)
        self.coflows.append(coflow)

    def sorted_by_arrival(self) -> "CoflowTrace":
        """Return a copy with Coflows ordered by (arrival time, id)."""
        ordered = sorted(self.coflows, key=lambda c: (c.arrival_time, c.coflow_id))
        return CoflowTrace(self.num_ports, ordered)

    def __len__(self) -> int:
        return len(self.coflows)

    def __iter__(self) -> Iterator[Coflow]:
        return iter(self.coflows)

    def __getitem__(self, index: int) -> Coflow:
        return self.coflows[index]

    @property
    def total_bytes(self) -> float:
        return sum(coflow.total_bytes for coflow in self.coflows)

    @property
    def span(self) -> float:
        """Last arrival time in the trace (0 for an empty trace)."""
        if not self.coflows:
            return 0.0
        return max(coflow.arrival_time for coflow in self.coflows)

    def map_sizes(self, fn) -> "CoflowTrace":
        """Return a new trace with ``fn(flow) -> new_size_bytes`` applied to every flow."""
        coflows = []
        for coflow in self.coflows:
            flows = [Flow(f.src, f.dst, fn(f)) for f in coflow.flows]
            coflows.append(Coflow(coflow.coflow_id, coflow.arrival_time, flows))
        return CoflowTrace(self.num_ports, coflows)
