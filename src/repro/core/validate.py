"""Schedule validation: check any circuit schedule against its contract.

A downstream user extending the scheduler (new policies, new orderings,
approximations) needs to know their schedules are still *legal* and still
carry Sunflow's guarantees.  This module provides those checks as a public
API — the same invariants the test suite asserts:

* **port constraint** — no two reservations overlap on an input or output
  port (paper §2.1);
* **coverage** — every flow's demand is fully served by its reservations'
  transmit windows;
* **non-preemption** — in the single-Coflow case, exactly one reservation
  (one setup) per flow;
* **Lemma 1** — makespan within ``2 × T^c_L``.

Each check returns a list of human-readable violation strings (empty =
pass); :func:`validate_schedule` bundles them and can raise.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.bounds import circuit_lower_bound
from repro.core.coflow import Coflow
from repro.core.prt import Reservation, TIME_EPS
from repro.core.sunflow import CoflowSchedule

Circuit = Tuple[int, int]


class ScheduleValidationError(AssertionError):
    """Raised by :func:`validate_schedule` when violations are found."""

    def __init__(self, violations: List[str]) -> None:
        super().__init__("\n".join(violations))
        self.violations = violations


def check_port_constraint(reservations: Iterable[Reservation]) -> List[str]:
    """No input (output) port carries two circuits at once."""
    violations = []
    by_input: Dict[int, List[Reservation]] = defaultdict(list)
    by_output: Dict[int, List[Reservation]] = defaultdict(list)
    for reservation in reservations:
        by_input[reservation.src].append(reservation)
        by_output[reservation.dst].append(reservation)
    for side, table in (("input", by_input), ("output", by_output)):
        for port, items in table.items():
            items.sort(key=lambda r: r.start)
            for earlier, later in zip(items, items[1:]):
                if earlier.end > later.start + TIME_EPS:
                    violations.append(
                        f"{side} port {port}: {earlier} overlaps {later}"
                    )
    return violations


def check_coverage(
    schedule: CoflowSchedule,
    demand_times: Mapping[Circuit, float],
    tolerance: float = 1e-6,
) -> List[str]:
    """Every demanded circuit receives its full processing time."""
    violations = []
    served: Dict[Circuit, float] = defaultdict(float)
    for reservation in schedule.reservations:
        served[reservation.circuit] += reservation.transmit_duration
    for circuit, needed in demand_times.items():
        if needed <= TIME_EPS:
            continue
        got = served.get(circuit, 0.0)
        if got < needed * (1 - tolerance) - TIME_EPS:
            violations.append(
                f"circuit {circuit}: served {got:.9f}s of {needed:.9f}s demanded"
            )
    return violations


def check_non_preemption(
    schedule: CoflowSchedule, demand_times: Mapping[Circuit, float]
) -> List[str]:
    """Intra-Coflow rule: one reservation per non-zero flow (isolated case).

    Only meaningful for schedules planned on an empty PRT — inter-Coflow
    gap truncation legitimately splits flows.
    """
    violations = []
    counts: Dict[Circuit, int] = defaultdict(int)
    for reservation in schedule.reservations:
        counts[reservation.circuit] += 1
    for circuit, needed in demand_times.items():
        if needed <= TIME_EPS:
            continue
        if counts.get(circuit, 0) != 1:
            violations.append(
                f"circuit {circuit}: {counts.get(circuit, 0)} reservations "
                "(expected exactly 1 in the isolated case)"
            )
    return violations


def check_lemma_one(
    schedule: CoflowSchedule,
    coflow: Coflow,
    bandwidth_bps: float,
    delta: float,
) -> List[str]:
    """Makespan within twice the circuit-switched lower bound."""
    bound = circuit_lower_bound(coflow, bandwidth_bps, delta)
    if schedule.makespan > 2 * bound * (1 + 1e-9) + TIME_EPS:
        return [
            f"Lemma 1 violated: makespan {schedule.makespan:.6f}s exceeds "
            f"2 x TcL = {2 * bound:.6f}s"
        ]
    return []


def validate_schedule(
    schedule: CoflowSchedule,
    coflow: Coflow,
    bandwidth_bps: float,
    delta: float,
    isolated: bool = True,
    raise_on_error: bool = True,
) -> List[str]:
    """Run every applicable check on a Coflow's schedule.

    Args:
        schedule: the planned reservations.
        coflow: the Coflow they should serve.
        bandwidth_bps / delta: the network parameters the plan assumed.
        isolated: the schedule was planned on an empty PRT — enables the
            non-preemption and Lemma 1 checks (they do not apply under
            inter-Coflow interference).
        raise_on_error: raise :class:`ScheduleValidationError` instead of
            returning violations.

    Returns:
        The list of violations (empty when the schedule is valid).
    """
    demand_times = coflow.processing_times(bandwidth_bps)
    violations = check_port_constraint(schedule.reservations)
    violations += check_coverage(schedule, demand_times)
    if isolated:
        violations += check_non_preemption(schedule, demand_times)
        violations += check_lemma_one(schedule, coflow, bandwidth_bps, delta)
    if violations and raise_on_error:
        raise ScheduleValidationError(violations)
    return violations
