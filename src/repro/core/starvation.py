"""Starvation guard for inter-Coflow scheduling (paper §4.2).

Priority scheduling can starve low-priority Coflows indefinitely — e.g. if
an attacker keeps submitting small high-priority Coflows.  The paper's
remedy: fix a list of ``N`` circuit assignments ``Φ = {A_1 … A_N}`` that
together cover all ``N²`` circuits, and carve time into recurring
``(T + τ)`` intervals.  During each ``T`` slice Sunflow's priority-ordered
InterCoflow runs as usual; during the following ``τ`` slice the fabric is
configured as ``A_k`` (round-robin over ``Φ``) and *every* Coflow with
demand on an enabled circuit shares its bandwidth.

Every Coflow therefore receives non-zero service at least once per
``N(T + τ)`` seconds, at the cost of some utilization during ``τ`` slices
whose enabled circuits carry no demand.

This module provides the assignment list, the interval geometry, and a
helper that pre-reserves the ``τ`` slices in a Port Reservation Table so
that the priority scheduler plans around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.prt import PortReservationTable, TIME_EPS

#: Sentinel Coflow id for guard reservations in a PRT.
GUARD_COFLOW_ID = -1


def round_robin_assignments(num_ports: int) -> List[List[Tuple[int, int]]]:
    """The fixed assignment list ``Φ``: N rotations covering all N² circuits.

    ``A_k`` connects input ``i`` to output ``(i + k) mod N``.  Each ``A_k``
    is a perfect matching (respects the port constraint), and the union over
    ``k = 0 … N-1`` is every possible circuit.
    """
    if num_ports <= 0:
        raise ValueError(f"port count must be positive, got {num_ports!r}")
    return [
        [(i, (i + k) % num_ports) for i in range(num_ports)]
        for k in range(num_ports)
    ]


@dataclass(frozen=True)
class GuardWindow:
    """One ``τ`` slice: the fabric holds assignment ``Φ[assignment_index]``."""

    start: float
    end: float
    assignment_index: int


class StarvationGuard:
    """Geometry of the recurring ``(T + τ)`` guard intervals.

    Args:
        num_ports: fabric size ``N``.
        period: the priority-scheduling slice ``T`` (seconds).
        tau: the shared round-robin slice ``τ`` (seconds).
        delta: circuit reconfiguration delay; must satisfy ``τ > δ`` or the
            guard slice could not transmit anything.
        origin: absolute time of the first interval's start.
    """

    def __init__(
        self,
        num_ports: int,
        period: float,
        tau: float,
        delta: float,
        origin: float = 0.0,
    ) -> None:
        if period <= 0 or tau <= 0:
            raise ValueError(f"T and tau must be positive, got T={period}, tau={tau}")
        if tau <= delta:
            raise ValueError(
                f"tau ({tau}) must exceed the reconfiguration delay ({delta}) "
                "or guard slices transmit nothing"
            )
        self.num_ports = num_ports
        self.period = period
        self.tau = tau
        self.delta = delta
        self.origin = origin
        self.assignments = round_robin_assignments(num_ports)

    @property
    def cycle(self) -> float:
        """Length of one ``(T + τ)`` interval."""
        return self.period + self.tau

    @property
    def max_service_gap(self) -> float:
        """Worst-case wait for a given circuit to be enabled: ``N(T + τ)``."""
        return self.num_ports * self.cycle

    def window(self, interval_index: int) -> GuardWindow:
        """The ``τ`` slice of the ``interval_index``-th ``(T + τ)`` interval."""
        start = self.origin + interval_index * self.cycle + self.period
        return GuardWindow(
            start=start,
            end=start + self.tau,
            assignment_index=interval_index % self.num_ports,
        )

    def windows_between(self, start: float, end: float) -> Iterator[GuardWindow]:
        """All ``τ`` slices overlapping ``[start, end)``, in time order."""
        if end <= start:
            return
        first = max(0, int((start - self.origin - self.period - self.tau) // self.cycle))
        index = first
        while True:
            window = self.window(index)
            if window.start >= end - TIME_EPS:
                return
            if window.end > start + TIME_EPS:
                yield window
            index += 1

    def reserve_windows(
        self, prt: PortReservationTable, start: float, end: float
    ) -> List[GuardWindow]:
        """Reserve every ``τ`` slice in ``[start, end)`` on all ports of ``prt``.

        The priority scheduler then plans around the slices automatically
        (its reservations never overlap existing ones).  Only slices lying
        entirely within ``[start, end)`` and not conflicting with existing
        reservations are booked; returns the slices reserved.
        """
        reserved = []
        for window in self.windows_between(start, end):
            if window.start < start - TIME_EPS or window.end > end + TIME_EPS:
                continue
            for src, dst in self.assignments[window.assignment_index]:
                prt.reserve(
                    src,
                    dst,
                    start=window.start,
                    end=window.end,
                    coflow_id=GUARD_COFLOW_ID,
                    setup=self.delta,
                )
            reserved.append(window)
        return reserved
