"""The Sunflow scheduling algorithm (paper §4, Algorithm 1).

Sunflow schedules optical circuits for Coflows under the not-all-stop
switch model.  Its two design rules:

* **intra-Coflow non-preemption** — once a circuit is reserved for a flow
  it is held until the reservation ends; in the single-Coflow case each
  flow needs exactly one setup, which is the minimum possible switching
  count;
* **inter-Coflow priority** — Coflows are scheduled one after another, in
  priority order, against the *same* Port Reservation Table.  A later
  (lower-priority) Coflow can only claim port time the earlier ones left
  free, so it can never block them.  Its reservations may be truncated to
  fit the free gaps (Algorithm 1 line 19), in which case the flow pays an
  extra ``δ`` to resume later — this is the only way a flow ever needs more
  than one setup.

The scheduler is an *offline* planner: given demands (expressed as
remaining processing time per circuit) and a start time, it fills a PRT.
The discrete-event simulators in :mod:`repro.sim` call it at every Coflow
arrival/completion to (re)plan, then execute the plan until the next event.

Implementation note — Algorithm 1 as printed rescans every remaining
demand entry at every circuit-release time, which is O(|C|²) with a large
constant.  This module implements an equivalent event-driven form: an
entry's feasibility (both ports free, gap ≥ δ) can only change when a
reservation on one of *its own* ports is released, so entries wait in
per-port pending sets and are re-attempted — in the same global
consideration order — exactly when one of their ports frees up.  The
literal pseudocode is kept as :func:`schedule_demand_reference` and the
test suite checks the two produce identical reservations.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.coflow import Coflow
from repro.core.prt import PortReservationTable, Reservation, TIME_EPS
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA


class ReservationOrder(enum.Enum):
    """Order in which Algorithm 1 considers the demand entries of a Coflow.

    Lemma 1 holds for *any* order; §5.3.1 measures the (tiny) performance
    difference between these three.
    """

    #: Sort by (src, dst) port label — the paper's default.
    ORDERED_PORT = "ordered_port"
    #: Uniformly random shuffle.
    RANDOM = "random"
    #: Largest remaining demand first.
    SORTED_DEMAND = "sorted_demand"


@dataclass
class CoflowSchedule:
    """The planned reservations for one Coflow.

    ``completion_time`` is absolute (same clock as the PRT); the Coflow
    Completion Time is ``completion_time - arrival_time``, computed by the
    caller which knows the arrival.
    """

    coflow_id: int
    start_time: float
    reservations: List[Reservation] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        if not self.reservations:
            return self.start_time
        return max(r.end for r in self.reservations)

    @property
    def num_setups(self) -> int:
        """Number of circuit establishments (reservations paying a setup)."""
        return sum(1 for r in self.reservations if r.setup > 0)

    @property
    def makespan(self) -> float:
        return self.completion_time - self.start_time


#: Circuits already configured for a Coflow at the schedule origin: either
#: a set (setup complete) or a mapping ``circuit -> remaining setup seconds``.
EstablishedCircuits = Union[
    FrozenSet[Tuple[int, int]],
    Set[Tuple[int, int]],
    Mapping[Tuple[int, int], float],
]


def _normalize_established(established: EstablishedCircuits) -> Dict[Tuple[int, int], float]:
    if isinstance(established, Mapping):
        return dict(established)
    return {circuit: 0.0 for circuit in established}


@dataclass
class _Entry:
    """Mutable remaining demand for one circuit while scheduling."""

    src: int
    dst: int
    remaining: float  # processing seconds still to transmit
    order_index: int = 0

    def __hash__(self) -> int:  # identity hash: entries live in pending sets
        return id(self)


class SunflowScheduler:
    """Plans circuit reservations per Algorithm 1.

    Args:
        delta: circuit reconfiguration delay ``δ`` in seconds.
        order: demand-consideration order (see :class:`ReservationOrder`).
        rng: random source for :attr:`ReservationOrder.RANDOM`; a fresh
            seeded generator is created if omitted, so runs are repeatable.
        quantum: optional approximation knob from §6 — demand processing
            times are rounded *up* to a multiple of ``quantum`` seconds
            before scheduling.  Rounded-up reservations end on a coarse
            grid, so many circuit-release events coincide and the
            scheduling loop runs fewer iterations, at the cost of some
            reserved-but-idle circuit time (the paper: "approximation …
            could reduce the optimality of the resulting schedules").
    """

    def __init__(
        self,
        delta: float = DEFAULT_DELTA,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        rng: Optional[random.Random] = None,
        quantum: Optional[float] = None,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta!r}")
        if quantum is not None and quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.delta = delta
        self.order = order
        self.quantum = quantum
        self._rng = rng if rng is not None else random.Random(0)

    # ------------------------------------------------------------------
    # Intra-Coflow scheduling (Algorithm 1, IntraCoflow + MakeReservation)
    # ------------------------------------------------------------------
    def schedule_demand(
        self,
        prt: PortReservationTable,
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
        established: "EstablishedCircuits" = frozenset(),
    ) -> CoflowSchedule:
        """Reserve circuits on ``prt`` for one Coflow's remaining demand.

        Args:
            prt: shared Port Reservation Table; reservations made by
                higher-priority Coflows constrain (and are never violated
                by) this call.
            coflow_id: recorded on every reservation.
            demand_times: ``{(src, dst): remaining processing seconds}``.
                Zero/negative entries are ignored.
            start_time: scheduling clock origin ``t0`` (e.g. the Coflow's
                arrival, or "now" when replanning).
            established: circuits physically configured (or mid-setup) for
                *this Coflow's flows* at ``start_time``.  Either a set of
                circuits (setup fully complete) or a mapping ``circuit →
                remaining setup seconds``; a reservation starting exactly at
                ``start_time`` on such a circuit pays only the remaining
                setup instead of a full ``δ``.

        Returns:
            The reservations planned for this Coflow.
        """
        established = _normalize_established(established)
        entries = self._make_entries(demand_times)
        schedule = CoflowSchedule(coflow_id=coflow_id, start_time=start_time)
        if not entries:
            return schedule

        # Pending entries indexed by the ports they need.
        pending_by_port: Dict[Tuple[str, int], Set[_Entry]] = {}
        for entry in entries:
            pending_by_port.setdefault(("in", entry.src), set()).add(entry)
            pending_by_port.setdefault(("out", entry.dst), set()).add(entry)
        outstanding = len(entries)

        # Release events: (time, src, dst).  Seed with the ends of
        # pre-existing reservations (higher-priority Coflows, guard slices)
        # on the ports this Coflow actually uses — releases elsewhere cannot
        # change any entry's feasibility; new ends are pushed as we reserve.
        # A counter breaks ties deterministically.
        counter = itertools.count()
        events: List[Tuple[float, int, int, int]] = []
        used_inputs = {entry.src for entry in entries}
        used_outputs = {entry.dst for entry in entries}
        seeded = set()
        for port in used_inputs:
            for reservation in prt.reservations_for_input(port):
                if reservation.end > start_time + TIME_EPS:
                    seeded.add((reservation.end, reservation.src, reservation.dst))
        for port in used_outputs:
            for reservation in prt.reservations_for_output(port):
                if reservation.end > start_time + TIME_EPS:
                    seeded.add((reservation.end, reservation.src, reservation.dst))
        for end, src, dst in seeded:
            heapq.heappush(events, (end, next(counter), src, dst))

        def attempt(batch: Iterable[_Entry], t: float) -> None:
            nonlocal outstanding
            for entry in sorted(batch, key=lambda e: e.order_index):
                if entry.remaining <= TIME_EPS:
                    continue
                before = entry.remaining
                entry.remaining = self._make_reservation(
                    prt, schedule, entry, t, start_time, established
                )
                if entry.remaining != before:
                    reservation = schedule.reservations[-1]
                    heapq.heappush(
                        events,
                        (reservation.end, next(counter), reservation.src, reservation.dst),
                    )
                if entry.remaining <= TIME_EPS:
                    pending_by_port[("in", entry.src)].discard(entry)
                    pending_by_port[("out", entry.dst)].discard(entry)
                    outstanding -= 1

        attempt(entries, start_time)
        while outstanding > 0:
            if not events:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t = events[0][0]
            released_ports: Set[Tuple[str, int]] = set()
            while events and events[0][0] <= t + TIME_EPS:
                _, _, src, dst = heapq.heappop(events)
                released_ports.add(("in", src))
                released_ports.add(("out", dst))
            candidates: Set[_Entry] = set()
            for port in released_ports:
                candidates.update(pending_by_port.get(port, ()))
            if candidates:
                attempt(candidates, t)
        return schedule

    def schedule_coflow(
        self,
        coflow: Coflow,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        prt: Optional[PortReservationTable] = None,
        start_time: Optional[float] = None,
    ) -> CoflowSchedule:
        """Convenience wrapper: schedule a whole :class:`Coflow` from scratch.

        Uses the Coflow's arrival time as the schedule origin unless
        ``start_time`` is given, and a fresh PRT unless one is supplied.
        """
        if prt is None:
            prt = PortReservationTable()
        origin = coflow.arrival_time if start_time is None else start_time
        return self.schedule_demand(
            prt,
            coflow.coflow_id,
            coflow.processing_times(bandwidth_bps),
            start_time=origin,
        )

    # ------------------------------------------------------------------
    # Inter-Coflow scheduling (Algorithm 1, InterCoflow)
    # ------------------------------------------------------------------
    def schedule_many(
        self,
        demands: Sequence[Tuple[int, Mapping[Tuple[int, int], float]]],
        start_time: float = 0.0,
        prt: Optional[PortReservationTable] = None,
        established: Mapping[int, "EstablishedCircuits"] = {},
    ) -> Tuple[PortReservationTable, Dict[int, CoflowSchedule]]:
        """Schedule several Coflows, highest priority first, on one PRT.

        Args:
            demands: ``(coflow_id, demand_times)`` pairs in priority order.
            start_time: common scheduling origin.
            prt: table to fill (fresh one by default).
            established: per-Coflow pre-configured circuits (see
                :meth:`schedule_demand`).

        Returns:
            The filled PRT and a per-Coflow schedule map.
        """
        if prt is None:
            prt = PortReservationTable()
        schedules: Dict[int, CoflowSchedule] = {}
        for coflow_id, demand_times in demands:
            schedules[coflow_id] = self.schedule_demand(
                prt,
                coflow_id,
                demand_times,
                start_time=start_time,
                established=established.get(coflow_id, frozenset()),
            )
        return prt, schedules

    def schedule_coflows(
        self,
        coflows: Iterable[Coflow],
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        start_time: float = 0.0,
    ) -> Tuple[PortReservationTable, Dict[int, CoflowSchedule]]:
        """Schedule whole Coflows (already in priority order) from scratch."""
        demands = [
            (c.coflow_id, c.processing_times(bandwidth_bps)) for c in coflows
        ]
        return self.schedule_many(demands, start_time=start_time)

    # ------------------------------------------------------------------
    # Reference implementation (literal Algorithm 1; used by tests)
    # ------------------------------------------------------------------
    def schedule_demand_reference(
        self,
        prt: PortReservationTable,
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
        established: "EstablishedCircuits" = frozenset(),
    ) -> CoflowSchedule:
        """Literal transcription of Algorithm 1 (quadratic rescan loop).

        Produces the same reservations as :meth:`schedule_demand`; kept for
        validation and as executable documentation of the pseudocode.
        """
        established = _normalize_established(established)
        entries = self._make_entries(demand_times)
        schedule = CoflowSchedule(coflow_id=coflow_id, start_time=start_time)
        t = start_time
        while entries:
            for entry in entries:
                entry.remaining = self._make_reservation(
                    prt, schedule, entry, t, start_time, established
                )
            entries = [e for e in entries if e.remaining > TIME_EPS]
            if not entries:
                break
            next_t = prt.next_release_after(t)
            if next_t is None:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t = next_t
        return schedule

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _quantize(self, seconds: float) -> float:
        """Round a processing time up to the §6 approximation grid."""
        if self.quantum is None:
            return seconds
        return math.ceil(seconds / self.quantum - TIME_EPS) * self.quantum

    def _make_entries(
        self, demand_times: Mapping[Tuple[int, int], float]
    ) -> List[_Entry]:
        entries = [
            _Entry(src, dst, self._quantize(p))
            for (src, dst), p in demand_times.items()
            if p > TIME_EPS
        ]
        if self.order is ReservationOrder.ORDERED_PORT:
            entries.sort(key=lambda e: (e.src, e.dst))
        elif self.order is ReservationOrder.RANDOM:
            entries.sort(key=lambda e: (e.src, e.dst))  # canonical base order
            self._rng.shuffle(entries)
        elif self.order is ReservationOrder.SORTED_DEMAND:
            entries.sort(key=lambda e: (-e.remaining, e.src, e.dst))
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unknown order {self.order!r}")
        for index, entry in enumerate(entries):
            entry.order_index = index
        return entries

    def _make_reservation(
        self,
        prt: PortReservationTable,
        schedule: CoflowSchedule,
        entry: _Entry,
        t: float,
        start_time: float,
        established: FrozenSet[Tuple[int, int]],
    ) -> float:
        """Algorithm 1, MakeReservation: try to reserve for one entry at ``t``.

        Returns the remaining processing time after the reservation (the
        unchanged remaining time if no reservation could be made).
        """
        if not (prt.input_free_at(entry.src, t) and prt.output_free_at(entry.dst, t)):
            return entry.remaining

        # A circuit already configured (or mid-setup) for this flow at the
        # schedule origin only pays its remaining setup if we keep using it
        # from that same instant.
        reuse = (
            abs(t - start_time) <= TIME_EPS
            and (entry.src, entry.dst) in established
        )
        if reuse:
            setup = min(self.delta, established[(entry.src, entry.dst)])
        else:
            setup = self.delta

        t_next = prt.next_reserved_time(entry.src, entry.dst, t)
        max_length = t_next - t
        desired_length = setup + entry.remaining
        if max_length <= setup + TIME_EPS:
            # The gap cannot fit even the reconfiguration: reserving would
            # transmit nothing, so skip (Algorithm 1 line 19, lm < δ).
            return entry.remaining
        length = min(max_length, desired_length)
        reservation = prt.reserve(
            entry.src,
            entry.dst,
            start=t,
            end=t + length,
            coflow_id=schedule.coflow_id,
            setup=setup,
        )
        schedule.reservations.append(reservation)
        return desired_length - length
